(* Documentation lint for interface files: every value exported by the
   .mli files given on the command line must carry an odoc comment
   immediately above its declaration (blank lines in between are
   allowed). Regions hidden from odoc with the standard stop-comment
   toggle are exempt. The check is a line-level heuristic — it never
   parses OCaml — but that is exactly what keeps it dependency-free, so
   it can run in the tier-1 test alias on images without odoc. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !lines)

let stop_comment = "(**" ^ "/**)"

let lint_file path failures =
  let lines = read_lines path in
  let hidden = ref false in
  Array.iteri
    (fun i line ->
      let t = String.trim line in
      if t = stop_comment then hidden := not !hidden
      else if (not !hidden) && starts_with "val " t then begin
        let rec prev j =
          if j < 0 then None
          else
            let p = String.trim lines.(j) in
            if p = "" then prev (j - 1) else Some p
        in
        (* Accept both placements odoc attaches: a comment above the
           declaration (blank lines allowed), or a floating comment on
           the very next line. *)
        let doc_after =
          i + 1 < Array.length lines && starts_with "(**" (String.trim lines.(i + 1))
        in
        let documented =
          (match prev (i - 1) with Some p -> ends_with "*)" p | None -> false)
          || doc_after
        in
        if not documented then failures := (path, i + 1, t) :: !failures
      end)
    lines

let () =
  let failures = ref [] in
  for i = 1 to Array.length Sys.argv - 1 do
    lint_file Sys.argv.(i) failures
  done;
  match List.rev !failures with
  | [] -> Printf.printf "doc lint: %d files ok\n" (Array.length Sys.argv - 1)
  | fs ->
      List.iter
        (fun (path, line, decl) ->
          Printf.eprintf "%s:%d: undocumented value: %s\n" path line decl)
        fs;
      Printf.eprintf "doc lint: %d undocumented values\n" (List.length fs);
      exit 1
