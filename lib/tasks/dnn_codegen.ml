open Prom_linalg
open Prom_ml
open Prom_nn
open Prom
open Prom_synth

type network_row = {
  network : Schedule.network;
  native_ratio : float;
  prom_ratio : float option;
  detection : Detection_metrics.t option;
}

type result = {
  rows : network_row list;
  coverage : Assessment.report;
  design_mae : float;
  n_clusters : int;
}

(* The cost model consumes a tokenized view of (workload, schedule)
   features: every feature dimension is z-scored and discretized into 8
   buckets, giving TLP-style schedule-primitive tokens. *)
let n_buckets = 16
let feat_dim = 13
let spec = { Encoding.Seq.max_len = feat_dim; vocab = 1 + (feat_dim * n_buckets) }

let tokenize scaler w s =
  let z = Dataset.Scaler.transform scaler (Schedule.feature_vector w s) in
  let tokens =
    Array.mapi
      (fun i v ->
        let b =
          Stdlib.max 0
            (Stdlib.min (n_buckets - 1)
               (int_of_float ((v +. 2.0) /. 4.0 *. float_of_int n_buckets)))
        in
        1 + (i * n_buckets) + b)
      z
  in
  Encoding.Seq.encode spec tokens

let model_params =
  {
    (Seq_model.default_params spec) with
    Seq_model.arch = Attention;
    embed_dim = 8;
    hidden = 12;
    epochs = 12;
    learning_rate = 0.01;
  }

let log_deviation_limit = log 1.2

let sample_pairs rng net count =
  Array.init count (fun _ ->
      let w = Schedule.sample_workload rng net in
      let s = Schedule.random_schedule rng in
      (w, s))

let run ?(config = Config.default) ?(train_samples = 360) ?(test_samples = 120)
    ?(search_workloads = 3) ~seed () =
  let rng = Rng.create seed in
  (* Design-time data: BERT-base workloads. *)
  let base_pairs = sample_pairs rng Schedule.Bert_base (train_samples + 80) in
  let scaler =
    Dataset.Scaler.fit
      (Dataset.create
         (Array.map (fun (w, s) -> Schedule.feature_vector w s) base_pairs)
         (Array.map (fun _ -> 0.0) base_pairs))
  in
  let encode (w, s) = tokenize scaler w s in
  let target (w, s) = log (Schedule.throughput w s) in
  let to_dataset pairs = Dataset.create (Array.map encode pairs) (Array.map target pairs) in
  let pool = to_dataset (Array.sub base_pairs 0 train_samples) in
  let held_out =
    to_dataset (Array.sub base_pairs train_samples (Array.length base_pairs - train_samples))
  in
  let train_data, calibration =
    Framework.data_partitioning ~calibration_ratio:0.2 ~seed pool
  in
  let trainer = Seq_model.regressor_trainer ~params:model_params in
  (* Online retraining fine-tunes gently: few epochs from the warm
     start, so the freshly profiled samples adjust rather than reset the
     model. *)
  let retrainer =
    Seq_model.regressor_trainer ~params:{ model_params with Seq_model.epochs = 4 }
  in
  let model = trainer.Model.train_reg train_data in
  let design_mae = Model.mae model held_out in
  (* CP feature space: the workload-shape tokens (the first three packed
     positions hold the m, n, k buckets). Drift in C5 is a property of
     the deployed network, not of the schedule knobs - which are uniform
     random on both sides and would only dilute the distance test - so
     the feature extractor focuses on the workload, exactly the
     user-supplied choice the paper's Sec. 4.1.1 asks for. *)
  let feature_of packed =
    [| packed.(1); packed.(2); packed.(3); packed.(feat_dim) |]
  in
  let detector =
    Detector.Regression.create ~config ~model ~feature_of ~seed calibration
  in
  let coverage =
    Assessment.regression ~config ~committee:Nonconformity.default_reg_committee ~model
      ~feature_of calibration
  in
  (* Search-quality evaluation: perf-to-oracle of model-guided search. *)
  let cost_of m x = exp (m.Model.predict x) in
  let search_ratio m net =
    let ratios =
      List.init search_workloads (fun i ->
          let wrng = Rng.create (seed + (997 * i) + Hashtbl.hash (Schedule.network_name net)) in
          let w = Schedule.sample_workload wrng net in
          let oracle = Schedule.oracle (Rng.split wrng) w in
          let r =
            Tvm_search.search wrng w
              ~cost:(fun s -> cost_of m (tokenize scaler w s))
              ~on_measure:(fun _ _ -> ())
              ()
          in
          r.Tvm_search.best_true /. oracle)
    in
    Stats.mean (Array.of_list ratios)
  in
  (* PROM-assisted search: phase A flags drifting cost queries, profiles
     a small budget of them, retrains online, then phase B searches with
     the refreshed model. *)
  let prom_search_ratio net =
    let buffer_x = ref [] and buffer_y = ref [] in
    let flagged = ref 0 in
    let ratios =
      List.init search_workloads (fun i ->
          let wrng = Rng.create (seed + (997 * i) + Hashtbl.hash (Schedule.network_name net)) in
          let w = Schedule.sample_workload wrng net in
          let oracle = Schedule.oracle (Rng.split wrng) w in
          (* Profiling a flagged candidate yields its true throughput, so
             the profiled samples both retrain the model and count as
             search results - the paper's "alternative search process"
             for rejected predictions. *)
          let best_profiled = ref 0.0 in
          let cost_with_feedback s =
            let x = tokenize scaler w s in
            let v = Detector.Regression.evaluate detector x in
            if v.Detector.reg_drifted then begin
              incr flagged;
              (* Profile ~5% of flagged candidates. *)
              if !flagged mod 10 = 0 then begin
                let truth = Schedule.throughput w s in
                if truth > !best_profiled then best_profiled := truth;
                buffer_x := x :: !buffer_x;
                buffer_y := log truth :: !buffer_y
              end
            end;
            exp v.Detector.predicted_value
          in
          let phase_a =
            Tvm_search.search ~rounds:5 wrng w ~cost:cost_with_feedback
              ~on_measure:(fun s t ->
                (* Hardware measurements are free labels: feed them back. *)
                buffer_x := tokenize scaler w s :: !buffer_x;
                buffer_y := log t :: !buffer_y)
              ()
          in
          let updated =
            match !buffer_x with
            | [] -> model
            | _ ->
                let extra =
                  Dataset.create
                    (Array.of_list !buffer_x)
                    (Array.of_list !buffer_y)
                in
                (* Oversample the freshly profiled samples so they are
                   not drowned out by the stale training pool. *)
                let extra3 = Dataset.append extra (Dataset.append extra extra) in
                retrainer.Model.train_reg ?init:(Some model)
                  (Dataset.append train_data extra3)
          in
          let phase_b =
            Tvm_search.search ~rounds:10 wrng w
              ~cost:(fun s -> cost_of updated (tokenize scaler w s))
              ~on_measure:(fun _ _ -> ())
              ()
          in
          Stdlib.max !best_profiled
            (Stdlib.max phase_a.Tvm_search.best_true phase_b.Tvm_search.best_true)
          /. oracle)
    in
    Stats.mean (Array.of_list ratios)
  in
  (* Drift detection on raw cost predictions per variant. *)
  let detection_for net =
    let pairs = sample_pairs rng net test_samples in
    let xs = Array.map encode pairs in
    let truths = Array.map target pairs in
    let flagged = Array.map snd (Detector.Regression.predict_batch detector xs) in
    let mispredicted =
      Array.mapi
        (fun i x -> abs_float (model.Model.predict x -. truths.(i)) > log_deviation_limit)
        xs
    in
    Detection_metrics.compute ~flagged ~mispredicted
  in
  let rows =
    List.map
      (fun net ->
        if net = Schedule.Bert_base then
          {
            network = net;
            native_ratio = search_ratio model net;
            prom_ratio = None;
            detection = None;
          }
        else
          {
            network = net;
            native_ratio = search_ratio model net;
            prom_ratio = Some (prom_search_ratio net);
            detection = Some (detection_for net);
          })
      [ Schedule.Bert_base; Schedule.Bert_tiny; Schedule.Bert_medium; Schedule.Bert_large ]
  in
  {
    rows;
    coverage;
    design_mae;
    n_clusters = Detector.Regression.n_clusters detector;
  }

let pp_result fmt r =
  Format.fprintf fmt "@[<v>C5 DNN code generation (design log-MAE %.3f, %d clusters)@,"
    r.design_mae r.n_clusters;
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-12s native=%.3f" (Schedule.network_name row.network)
        row.native_ratio;
      (match row.prom_ratio with
      | Some p -> Format.fprintf fmt " prom=%.3f" p
      | None -> Format.fprintf fmt " prom=/");
      (match row.detection with
      | Some d -> Format.fprintf fmt "  [%a]" Detection_metrics.pp d
      | None -> ());
      Format.pp_print_cut fmt ())
    r.rows;
  Format.fprintf fmt "  coverage deviation %.3f@]" r.coverage.Assessment.deviation
