open Prom_linalg
open Prom

(* Drifting-stream evaluation protocol for the streaming recalibration
   loop. The workload is a Gaussian-blob classification stream whose
   class centroids wander a fixed step per round while the deployed
   "model" — a nearest-centroid scorer frozen on the round-0 centroids —
   never retrains. Round by round the stream's sliding-window
   calibration store admits the relabeled rejects
   ([Incremental.service_round]), so the committee's notion of
   in-distribution tracks the drift even though the model doesn't; the
   decay policies differ in how fast the stale region is forgotten,
   which is what the ablation compares. *)

type config = {
  sp_seed : int;
  sp_dim : int;
  sp_classes : int;
  sp_cal : int;  (* calibration batch seeding the service *)
  sp_rounds : int;
  sp_batch : int;  (* queries per round *)
  sp_drift : float;  (* centroid step per round, in units of sigma *)
  sp_budget_fraction : float;
  sp_capacity : int;
  sp_compact_fraction : float;
}

let default =
  {
    sp_seed = 42;
    sp_dim = 6;
    sp_classes = 3;
    sp_cal = 160;
    sp_rounds = 24;
    sp_batch = 40;
    sp_drift = 0.35;
    sp_budget_fraction = 0.5;
    sp_capacity = 320;
    sp_compact_fraction = 0.5;
  }

type result = {
  sp_policy : string;
  sp_accept_rate : float;  (* accepted fraction over the whole stream *)
  sp_accept_late : float;  (* accepted fraction over the last quarter *)
  sp_accuracy_accepted : float;  (* model accuracy on accepted queries *)
  sp_accuracy_all : float;  (* model accuracy on every query *)
  sp_admitted : int;
  sp_evicted : int;
  sp_compactions : int;
  sp_publishes : int;
  sp_final_resident : int;
}

let validate c =
  if c.sp_dim < 1 || c.sp_classes < 2 then
    invalid_arg "Stream_protocol: need dim >= 1 and >= 2 classes";
  if c.sp_cal < 2 * c.sp_classes then
    invalid_arg "Stream_protocol: calibration batch too small";
  if c.sp_rounds < 1 || c.sp_batch < 1 then
    invalid_arg "Stream_protocol: need at least one round and one query";
  if not (c.sp_drift >= 0.0) then invalid_arg "Stream_protocol: negative drift"

(* Well-separated initial centroids on coordinate axes; each class
   drifts along its own unit direction so the phases stay separable
   while leaving the frozen model behind. *)
let initial_centroids rng c =
  Array.init c.sp_classes (fun k ->
      Array.init c.sp_dim (fun d ->
          (if d = k mod c.sp_dim then 4.0 *. float_of_int (1 + (k / c.sp_dim))
           else 0.0)
          +. Rng.gaussian rng ~mu:0.0 ~sigma:0.3))

let drift_directions rng c =
  Array.init c.sp_classes (fun _ ->
      let v = Array.init c.sp_dim (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
      let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
      Array.map (fun x -> x /. Stdlib.max norm 1e-9) v)

let sample rng centroids k =
  Array.map (fun c -> c +. Rng.gaussian rng ~mu:0.0 ~sigma:1.0) centroids.(k)

(* The frozen model: softmax over negative squared distances to the
   round-0 centroids. *)
let proba_of ~frozen x =
  let scores =
    Array.map
      (fun c ->
        let acc = ref 0.0 in
        Array.iteri (fun d cd -> acc := !acc +. ((x.(d) -. cd) ** 2.0)) c;
        -0.5 *. !acc)
      frozen
  in
  let m = Array.fold_left Stdlib.max neg_infinity scores in
  let e = Array.map (fun s -> exp (s -. m)) scores in
  let z = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. z) e

let run ?(policy = Prom.Decay.Unit_weights) ?config:(c = default) () =
  validate c;
  let rng = Rng.create c.sp_seed in
  let centroids = initial_centroids rng c in
  let frozen = Array.map Array.copy centroids in
  let dirs = drift_directions rng c in
  (* Seed the service with a round-0 calibration batch. *)
  let triples =
    List.init c.sp_cal (fun i ->
        let k = i mod c.sp_classes in
        let x = sample rng centroids k in
        (x, k, proba_of ~frozen x))
  in
  let service = Service.create triples in
  let monitor = Monitor.create ~window:(4 * c.sp_batch) () in
  let stream =
    Stream.create ~policy ~capacity:c.sp_capacity
      ~compact_fraction:c.sp_compact_fraction ~monitor service
  in
  let labels : (Vec.t, int) Hashtbl.t = Hashtbl.create (c.sp_rounds * c.sp_batch) in
  let accepted = ref 0 and correct_accepted = ref 0 and correct = ref 0 in
  let late_accepted = ref 0 and late_total = ref 0 in
  let late_from = c.sp_rounds - Stdlib.max 1 (c.sp_rounds / 4) in
  for round = 0 to c.sp_rounds - 1 do
    (* Advance the drift before sampling: round 0 queries are already
       one step away from the calibration batch. *)
    Array.iteri
      (fun k ctr ->
        Array.iteri (fun d v -> ctr.(d) <- v +. (c.sp_drift *. dirs.(k).(d))) ctr)
      centroids;
    let queries =
      Array.init c.sp_batch (fun i ->
          let k = (i + round) mod c.sp_classes in
          let x = sample rng centroids k in
          Hashtbl.replace labels x k;
          (x, proba_of ~frozen x))
    in
    (* Count acceptance and model accuracy on this round's verdicts
       before the round's admissions move the store. *)
    let verdicts = Service.evaluate_batch (Stream.service stream) queries in
    Array.iteri
      (fun i (v : Detector.cls_verdict) ->
        let x, proba = queries.(i) in
        let truth = Hashtbl.find labels x in
        let predicted = Vec.argmax proba in
        if predicted = truth then incr correct;
        if not v.Detector.drifted then begin
          incr accepted;
          if round >= late_from then incr late_accepted;
          if predicted = truth then incr correct_accepted
        end;
        if round >= late_from then incr late_total)
      verdicts;
    let oracle x =
      match Hashtbl.find_opt labels x with
      | Some k -> k
      | None -> invalid_arg "Stream_protocol: unknown oracle input"
    in
    ignore
      (Incremental.service_round ~budget_fraction:c.sp_budget_fraction ~monitor
         ~stream ~oracle queries)
  done;
  let total = c.sp_rounds * c.sp_batch in
  let st = Stream.stats stream in
  {
    sp_policy = Prom.Decay.to_string policy;
    sp_accept_rate = float_of_int !accepted /. float_of_int total;
    sp_accept_late =
      float_of_int !late_accepted /. float_of_int (Stdlib.max 1 !late_total);
    sp_accuracy_accepted =
      float_of_int !correct_accepted /. float_of_int (Stdlib.max 1 !accepted);
    sp_accuracy_all = float_of_int !correct /. float_of_int total;
    sp_admitted = st.Stream.admitted;
    sp_evicted = st.Stream.evicted;
    sp_compactions = st.Stream.compactions;
    sp_publishes = st.Stream.publishes;
    sp_final_resident = st.Stream.resident;
  }

let ablation ?config:(c = default) () =
  let window = Stdlib.max 1 (c.sp_capacity / 2) in
  let half_life = float_of_int (Stdlib.max 1 (c.sp_capacity / 4)) in
  List.map
    (fun policy -> run ~policy ~config:c ())
    [
      Prom.Decay.Unit_weights;
      Prom.Decay.Exponential { half_life };
      Prom.Decay.Sliding { window };
    ]

let pp_result fmt r =
  Format.fprintf fmt
    "policy=%-10s accept=%.3f accept-late=%.3f acc|accepted=%.3f acc|all=%.3f \
     admitted=%d evicted=%d compactions=%d publishes=%d resident=%d"
    r.sp_policy r.sp_accept_rate r.sp_accept_late r.sp_accuracy_accepted
    r.sp_accuracy_all r.sp_admitted r.sp_evicted r.sp_compactions r.sp_publishes
    r.sp_final_resident
