(** Drifting-stream evaluation protocol for the streaming
    recalibration loop ({!Prom.Stream}).

    The workload is a synthetic Gaussian-blob classification stream:
    class centroids take a fixed step per round along per-class drift
    directions, while the deployed "model" — a nearest-centroid softmax
    scorer frozen on the round-0 centroids — never retrains. Each
    round, the current service evaluates a query batch; the committee's
    rejects are relabeled (oracle = the generator's true label) and
    admitted into the sliding-window calibration store through
    {!Prom.Incremental.service_round}, so the store tracks the drift
    even though the model cannot. Policies are compared on how fast
    they forget the stale region: accept rate (overall and over the
    final quarter of the stream) and model accuracy restricted to
    accepted queries. Fully deterministic for a given seed. *)

(** Protocol shape. All counts are per run; see {!default} for the
    values EXPERIMENTS.md reports. *)
type config = {
  sp_seed : int;
  sp_dim : int;  (** feature dimension *)
  sp_classes : int;
  sp_cal : int;  (** calibration batch seeding the service *)
  sp_rounds : int;
  sp_batch : int;  (** queries per round *)
  sp_drift : float;  (** centroid step per round, in units of sigma *)
  sp_budget_fraction : float;  (** relabeling budget per round *)
  sp_capacity : int;  (** streaming store capacity *)
  sp_compact_fraction : float;  (** compaction trigger fraction *)
}

(** Reference configuration: 3 classes in 6 dimensions, 160-sample
    calibration batch, 24 rounds of 40 queries drifting 0.35 sigma per
    round, relabeling half of each round's rejects into a 320-entry
    window. *)
val default : config

(** One policy's end-of-stream summary. *)
type result = {
  sp_policy : string;  (** {!Prom.Decay.to_string} of the policy run *)
  sp_accept_rate : float;  (** accepted fraction over the whole stream *)
  sp_accept_late : float;  (** accepted fraction over the last quarter *)
  sp_accuracy_accepted : float;  (** model accuracy on accepted queries *)
  sp_accuracy_all : float;  (** model accuracy on every query *)
  sp_admitted : int;  (** samples admitted into the store *)
  sp_evicted : int;  (** entries dropped by compaction *)
  sp_compactions : int;
  sp_publishes : int;  (** service hot-swaps issued *)
  sp_final_resident : int;  (** store size at end of stream *)
}

(** [run ?policy ?config ()] replays the stream under one decay policy
    (default {!Prom.Decay.Unit_weights}). Raises [Invalid_argument] on
    a degenerate configuration. *)
val run : ?policy:Prom.Decay.policy -> ?config:config -> unit -> result

(** [ablation ?config ()] runs the same stream under unit weights, an
    exponential half-life of [capacity/4] admissions and a sliding
    window of [capacity/2] — the EXPERIMENTS.md decay-ablation rows. *)
val ablation : ?config:config -> unit -> result list

(** One-line rendering of a {!result} row. *)
val pp_result : Format.formatter -> result -> unit
