open Prom_synth

type result = {
  best_schedule : Schedule.schedule;
  best_true : float;
  measurements : int;
}

let search ?(rounds = 10) ?(pop_size = 24) ?(top_k = 1) rng workload ~cost ~on_measure
    () =
  let population = ref (Array.init pop_size (fun _ -> Schedule.random_schedule rng)) in
  let best = ref None in
  let measurements = ref 0 in
  let measure s =
    let t = Schedule.throughput workload s in
    incr measurements;
    on_measure s t;
    (match !best with
    | Some (_, bt) when bt >= t -> ()
    | _ -> best := Some (s, t));
    t
  in
  for _round = 1 to rounds do
    (* Propose: mutate every member, plus some fresh immigrants. *)
    let children =
      Array.concat
        [
          Array.map (fun s -> Schedule.mutate rng s) !population;
          Array.init (pop_size / 4) (fun _ -> Schedule.random_schedule rng);
        ]
    in
    let candidates = Array.append !population children in
    (* Rank by the learned cost model (descending predicted throughput). *)
    let ranked = Array.map (fun s -> (s, cost s)) candidates in
    Array.sort (fun (_, a) (_, b) -> Float.compare b a) ranked;
    (* Measure only the model's top picks — the expensive step the cost
       model exists to minimize. *)
    for i = 0 to Stdlib.min top_k (Array.length ranked) - 1 do
      ignore (measure (fst ranked.(i)))
    done;
    (* Survivor selection: keep the model's best pop_size candidates. *)
    population := Array.init pop_size (fun i -> fst ranked.(i))
  done;
  match !best with
  | Some (best_schedule, best_true) ->
      { best_schedule; best_true; measurements = !measurements }
  | None -> failwith "Tvm_search.search: no measurements taken"
