open Prom

type scale = Quick | Full

type t = {
  classification_results : Case_study.result list;
  c5 : Dnn_codegen.result;
  table2 : float * float * float * Detection_metrics.t;
}

(* One entry per (case study, model): the runner thunk regenerates the
   scenario so each pair is independent and individually runnable. *)
let classification_cases ~scale ~seed =
  let q full quick = match scale with Full -> full | Quick -> quick in
  let c1 () = Thread_coarsening.scenario ~kernels_per_suite:(q 110 36) ~seed () in
  let c2 () = Loop_vectorization.scenario ~loops_per_family:(q 40 10) ~seed () in
  let c3 () = Hetero_mapping.scenario ~kernels_per_suite:(q 60 20) ~seed () in
  let c4 () = Vuln_detection.scenario ~per_era:(q 80 16) ~seed () in
  let c6 () = Deployment_risk.scenario ~per_window:(q 60 20) ~seed () in
  let entries scenario models =
    List.map
      (fun spec ->
        let s = scenario () in
        ( s.Case_study.cs_name,
          spec.Case_study.spec_name,
          fun () -> Case_study.run ~seed s spec ))
      models
  in
  entries c1 Thread_coarsening.models
  @ entries c2 Loop_vectorization.models
  @ entries c3 Hetero_mapping.models
  @ entries c4 Vuln_detection.models
  @ entries c6 Deployment_risk.models

let run ?(config = Config.default) ~scale ~seed () =
  let classification_results =
    List.map (fun (_, _, thunk) -> thunk ()) (classification_cases ~scale ~seed)
  in
  let q full quick = match scale with Full -> full | Quick -> quick in
  let c5 =
    Dnn_codegen.run ~config ~train_samples:(q 360 120) ~test_samples:(q 120 40)
      ~search_workloads:(q 3 1) ~seed ()
  in
  let table2 = Case_study.summarize classification_results in
  { classification_results; c5; table2 }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun r -> Format.fprintf fmt "%a@,@," Case_study.pp_result r)
    t.classification_results;
  Format.fprintf fmt "%a@,@," Dnn_codegen.pp_result t.c5;
  let design, deploy, prom, detection = t.table2 in
  Format.fprintf fmt
    "Table 2 summary: design=%.3f deploy=%.3f prom=%.3f | %a@]" design deploy prom
    Detection_metrics.pp detection
