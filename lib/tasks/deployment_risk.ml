open Prom_linalg

(* One synthetic deployment: change metrics (what is shipping) plus
   process metrics (who ships it, and when). The latent risk the labels
   are derived from mixes both, so a model that learns the design-time
   correlations keeps working only while the process context — team
   composition, time-of-week mix — stays put. Those are exactly the
   scenario's drift knobs. *)
type deployment = {
  loc_changed : float;  (** lines changed *)
  files_touched : float;
  complexity_delta : float;  (** cyclomatic-complexity change, signed *)
  dep_fanin : float;  (** dependents of the modules touched *)
  review_score : float;  (** fraction of the change peer-reviewed, [0,1] *)
  test_coverage : float;  (** coverage over the touched lines, [0,1] *)
  author_deploys : float;  (** author's prior deploys of this service *)
  team_tenure : float;  (** mean team tenure, months *)
  hour_of_week : float;  (** 0..167, 0 = Monday 00:00 *)
  hours_since_last : float;  (** since the service's previous deploy *)
}

let n_classes = 3 (* risk tiers: 0 proceed, 1 review, 2 block *)

let clamp01 v = Stdlib.max 0.0 (Stdlib.min 1.0 v)

(* Off-hours factor of a deploy slot: 0 mid-week business hours, up to
   1 for weekend nights — the "nobody around to roll back" signal. *)
let offhours hour_of_week =
  let day = hour_of_week /. 24.0 in
  let hod = hour_of_week -. (Float.of_int (int_of_float day) *. 24.0) in
  let weekend = if day >= 5.0 then 1.0 else 0.0 in
  let night = if hod < 7.0 || hod > 19.0 then 1.0 else 0.0 in
  clamp01 ((0.6 *. weekend) +. (0.5 *. night))

(* Latent risk in [0,1]: the DeploymentAnalyzer-style mix of size,
   complexity, dependency, timing and experience scores. *)
let latent_risk d =
  let size = clamp01 (d.loc_changed /. 2000.0 +. (d.files_touched /. 80.0)) in
  let complexity = clamp01 (Float.abs d.complexity_delta /. 40.0) in
  let deps = clamp01 (d.dep_fanin /. 60.0) in
  let timing = offhours d.hour_of_week in
  let staleness = clamp01 (d.hours_since_last /. 720.0) in
  let experience =
    clamp01 ((d.author_deploys /. 50.0) +. (d.team_tenure /. 72.0))
  in
  let process_guard = 0.5 *. (d.review_score +. d.test_coverage) in
  clamp01
    ((0.30 *. size) +. (0.15 *. complexity) +. (0.15 *. deps)
    +. (0.20 *. timing) +. (0.10 *. staleness)
    -. (0.20 *. experience)
    -. (0.25 *. process_guard)
    +. 0.25)

let label_of_risk r = if r < 0.30 then 0 else if r < 0.55 then 1 else 2

(* A team/timing profile — the drift knobs. [juniority] shifts the
   team-composition distributions (tenure, prior deploys) downward;
   [offhours_bias] shifts the time-of-week mix from business hours
   toward nights and weekends. *)
type profile = { juniority : float; offhours_bias : float }

let design_profile = { juniority = 0.0; offhours_bias = 0.0 }

(* Deployment-time shift: a reorganized, greener team shipping far more
   outside business hours. *)
let drift_profile = { juniority = 0.7; offhours_bias = 0.6 }

let sample_hour rng profile =
  if Rng.float rng 1.0 < 0.15 +. (0.55 *. profile.offhours_bias) then
    (* off-hours slot: weekend day, or a night hour *)
    if Rng.float rng 1.0 < 0.5 then 120.0 +. Rng.float rng 47.0
    else (24.0 *. float_of_int (Rng.int rng 5)) +. Rng.float rng 6.0
  else
    (* business hours Monday-Friday *)
    (24.0 *. float_of_int (Rng.int rng 5)) +. 9.0 +. Rng.float rng 9.0

let sample rng profile =
  let pos mu sigma = Stdlib.max 0.0 (Rng.gaussian rng ~mu ~sigma) in
  let seniority = clamp01 (1.0 -. profile.juniority) in
  let d =
    {
      loc_changed = pos 320.0 400.0;
      files_touched = pos 9.0 12.0;
      complexity_delta = Rng.gaussian rng ~mu:2.0 ~sigma:9.0;
      dep_fanin = pos 14.0 16.0;
      review_score =
        clamp01 (Rng.gaussian rng ~mu:(0.45 +. (0.35 *. seniority)) ~sigma:0.18);
      test_coverage =
        clamp01 (Rng.gaussian rng ~mu:(0.40 +. (0.30 *. seniority)) ~sigma:0.20);
      author_deploys = pos (6.0 +. (30.0 *. seniority)) 12.0;
      team_tenure = pos (8.0 +. (40.0 *. seniority)) 14.0;
      hour_of_week = sample_hour rng profile;
      hours_since_last = pos 96.0 160.0;
    }
  in
  (* Label noise: borderline deployments get misjudged either way, so
     neither tier is perfectly separable. *)
  let r = clamp01 (latent_risk d +. Rng.gaussian rng ~mu:0.0 ~sigma:0.04) in
  (d, label_of_risk r)

let samples rng profile count =
  Array.init count (fun _ -> sample rng profile)

(* Pure classification: performance is 1 on the correct tier, 0
   otherwise, so mean performance is accuracy. *)
let perf w label = if label = snd w then 1.0 else 0.0

let scenario ?(per_window = 60) ~seed () =
  let rng = Rng.create seed in
  (* Five design-time windows under the stable profile; three
     deployment windows after the team reorganization. *)
  let train_all = samples rng design_profile (5 * per_window) in
  Rng.shuffle rng train_all;
  let n_id = Array.length train_all / 5 in
  let id_w = Array.sub train_all 0 n_id in
  let train_w = Array.sub train_all n_id (Array.length train_all - n_id) in
  let drift_w = samples rng drift_profile (3 * per_window) in
  let labels = Array.map snd in
  {
    Case_study.cs_name = "C6-deployment-risk";
    n_classes;
    train_w;
    train_y = labels train_w;
    id_w;
    id_y = labels id_w;
    drift_w;
    drift_y = labels drift_w;
    perf;
  }

(* Tabular encoding: the raw metrics plus the derived analyzer scores
   (size/timing), standardized by the harness ([scale_features]). *)
let feature_vector (d, _) =
  [|
    d.loc_changed;
    d.files_touched;
    d.complexity_delta;
    d.dep_fanin;
    d.review_score;
    d.test_coverage;
    d.author_deploys;
    d.team_tenure;
    d.hour_of_week;
    d.hours_since_last;
    offhours d.hour_of_week;
    clamp01 ((d.loc_changed /. 2000.0) +. (d.files_touched /. 80.0));
  |]

let models =
  [
    {
      Case_study.spec_name = "DeployGuard-GBC";
      encode = feature_vector;
      scale_features = true;
      trainer = Prom_ml.Gradient_boosting.trainer ();
      cp_feature_of = (fun _ -> Fun.id);
    };
    {
      Case_study.spec_name = "RiskForest-RF";
      encode = feature_vector;
      scale_features = true;
      trainer = Prom_ml.Random_forest.trainer ();
      cp_feature_of = (fun _ -> Fun.id);
    };
  ]
