(** The full evaluation suite: runs every (case study, model) pair and
    aggregates the paper's headline numbers (Table 2) plus the
    per-figure series the benchmark harness prints. *)

open Prom

(** Scale of the run: [Quick] shrinks datasets for tests and smoke
    runs; [Full] is the bench-harness scale. *)
type scale = Quick | Full

type t = {
  classification_results : Case_study.result list;
      (** C1-C4 and C6 x models *)
  c5 : Dnn_codegen.result;
  table2 : float * float * float * Detection_metrics.t;
      (** design perf, deploy perf, PROM-assisted perf, detection *)
}

(** [run ?config ~scale ~seed ()] executes everything. A [Full] run
    takes a few minutes; [Quick] well under a minute. *)
val run : ?config:Config.t -> scale:scale -> seed:int -> unit -> t

(** [classification_cases ~scale ~seed] enumerates the C1-C4 and C6
    (scenario runner, model name) thunks individually, so callers
    (CLI, bench) can run a single pair. Each thunk returns the full
    result. *)
val classification_cases :
  scale:scale -> seed:int -> (string * string * (unit -> Case_study.result)) list

val pp : Format.formatter -> t -> unit
