(** Case study C6: deployment-risk scoring over change and process
    metrics — the serving workload behind the multi-tenant bench.

    Each sample is one synthetic deployment (churn, complexity and
    dependency metrics for the change; review coverage, test coverage,
    author experience, team tenure, time-of-week and deploy cadence for
    the process). Labels are three risk tiers (proceed / review /
    block) thresholded from a latent DeploymentAnalyzer-style risk mix
    of size, complexity, dependency, timing and experience scores, with
    label noise at the tier borders.

    Drift: the design-time pool is drawn under a stable, senior-heavy
    team deploying in business hours; the deployment pool is drawn
    after a team reorganization — the team-composition knob shifts
    tenure and prior-deploy distributions down, and the time-of-week
    knob shifts the deploy mix toward nights and weekends. Both knobs
    move the latent risk through features a design-time model has seen
    only the stable side of, which is what the conformal committee has
    to catch. *)

(** One synthetic deployment record. *)
type deployment = {
  loc_changed : float;  (** lines changed *)
  files_touched : float;
  complexity_delta : float;  (** cyclomatic-complexity change, signed *)
  dep_fanin : float;  (** dependents of the modules touched *)
  review_score : float;  (** fraction of the change peer-reviewed, [0,1] *)
  test_coverage : float;  (** coverage over the touched lines, [0,1] *)
  author_deploys : float;  (** author's prior deploys of this service *)
  team_tenure : float;  (** mean team tenure, months *)
  hour_of_week : float;  (** 0..167, 0 = Monday 00:00 *)
  hours_since_last : float;  (** since the service's previous deploy *)
}

(** Risk tiers ([3]): 0 proceed, 1 review, 2 block. *)
val n_classes : int

(** [scenario ?per_window ~seed ()] builds the drift scenario: five
    design-time windows under the stable profile (split internally
    into train/calibration/validation) and three deployment windows
    under the reorganized one. [per_window] deployments per window
    (default 60). *)
val scenario :
  ?per_window:int ->
  seed:int ->
  unit ->
  (deployment * int) Case_study.scenario

(** Tabular feature encoding: the ten raw metrics plus the derived
    off-hours and size scores (12 dims, standardized by the
    harness). *)
val feature_vector : deployment * int -> Prom_linalg.Vec.t

(** Gradient boosting and random forest over the tabular encoding. *)
val models : (deployment * int) Case_study.model_spec list
