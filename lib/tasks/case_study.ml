open Prom_linalg
open Prom_ml
open Prom

type 'w scenario = {
  cs_name : string;
  n_classes : int;
  train_w : 'w array;
  train_y : int array;
  id_w : 'w array;
  id_y : int array;
  drift_w : 'w array;
  drift_y : int array;
  perf : 'w -> int -> float;
}

type 'w model_spec = {
  spec_name : string;
  encode : 'w -> Vec.t;
  trainer : Model.classifier_trainer;
  cp_feature_of : Model.classifier -> Vec.t -> Vec.t;
  scale_features : bool;
}

type result = {
  case : string;
  model_name : string;
  design_perf : float array;
  deploy_perf : float array;
  prom_perf : float array;
  detection : Detection_metrics.t;
  per_function : (string * Detection_metrics.t) list;
  baseline_metrics : (string * Detection_metrics.t) list;
  coverage : Assessment.report;
  flagged_fraction : float;
  relabeled : int;
  train_time : float;
  retrain_time : float;
  detect_time : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let perf_of_model scenario model ws xs =
  Array.mapi (fun i x -> scenario.perf ws.(i) (Model.predict model x)) xs

(* The oracle label for a workload: the class with the best
   performance. *)
let oracle_label scenario w =
  let best = ref 0 and best_p = ref neg_infinity in
  for c = 0 to scenario.n_classes - 1 do
    let p = scenario.perf w c in
    if p > !best_p then begin
      best := c;
      best_p := p
    end
  done;
  !best

let run ?(config = Config.default) ?(budget_fraction = 0.05) ~seed scenario spec =
  (* Tabular encodings need standardization to train well; packed token
     sequences must stay untouched. The model spec's encoder decides by
     exposing raw vectors, and we scale everything except sequence
     packings (detected by the spec marker the encoders share). *)
  let raw_pool = Array.map spec.encode scenario.train_w in
  let scaler =
    if spec.scale_features then
      Some (Dataset.Scaler.fit (Dataset.create raw_pool scenario.train_y))
    else None
  in
  let apply v = match scaler with Some s -> Dataset.Scaler.transform s v | None -> v in
  let encode w = apply (spec.encode w) in
  let pool = Dataset.create (Array.map apply raw_pool) scenario.train_y in
  let train_data, calibration =
    Framework.data_partitioning ~calibration_ratio:0.25 ~seed pool
  in
  let model, train_time = timed (fun () -> spec.trainer.Model.train train_data) in
  let feature_of = spec.cp_feature_of model in
  let id_x = Array.map encode scenario.id_w in
  let drift_x = Array.map encode scenario.drift_w in
  let design_perf = perf_of_model scenario model scenario.id_w id_x in
  let deploy_perf = perf_of_model scenario model scenario.drift_w drift_x in
  let detector =
    Detector.Classification.create ~config ~model ~feature_of calibration
  in
  (* Drift detection on the deployment stream, fanned across the domain
     pool (identical results to a sequential map). *)
  let (verdicts : Detector.cls_verdict array), detect_total =
    timed (fun () -> Detector.Classification.evaluate_batch detector drift_x)
  in
  let flagged = Array.map (fun v -> v.Detector.drifted) verdicts in
  let mispredicted = Array.map (fun p -> Metrics.mispredicted ~perf:p) deploy_perf in
  let detection = Detection_metrics.compute ~flagged ~mispredicted in
  (* Individual nonconformity functions (Fig. 11). *)
  let per_function =
    List.map
      (fun fn ->
        let det1 =
          Detector.Classification.create ~config ~committee:[ fn ] ~model ~feature_of
            calibration
        in
        let f1 =
          Array.map snd (Detector.Classification.predict_batch det1 drift_x)
        in
        (fn.Nonconformity.cls_name, Detection_metrics.compute ~flagged:f1 ~mispredicted))
      Nonconformity.default_committee
  in
  (* Baseline comparators (Fig. 10). *)
  let baseline_metrics =
    List.map
      (fun (b : Baselines.t) ->
        let fb = Array.map b.Baselines.flags drift_x in
        (b.Baselines.name, Detection_metrics.compute ~flagged:fb ~mispredicted))
      [
        Baselines.naive_cp ~epsilon:config.Config.epsilon ~model ~feature_of calibration;
        Baselines.tesseract ~epsilon:config.Config.epsilon ~model ~feature_of calibration;
        Baselines.rise ~epsilon:config.Config.epsilon ~seed ~model ~feature_of calibration;
      ]
  in
  let coverage =
    Assessment.classification ~config ~committee:Nonconformity.default_committee ~model
      ~feature_of calibration
  in
  (* Incremental learning: relabel a small budget of flagged samples
     with their oracle label and retrain. *)
  let oracle x =
    (* Recover the workload by position in the drift set. *)
    let rec find i =
      if i >= Array.length drift_x then invalid_arg "Case_study.run: unknown oracle input"
      else if drift_x.(i) == x then i
      else find (i + 1)
    in
    oracle_label scenario scenario.drift_w.(find 0)
  in
  let outcome, retrain_time =
    timed (fun () ->
        Incremental.classification ~budget_fraction ~detector ~trainer:spec.trainer
          ~train_data ~oracle drift_x)
  in
  let prom_perf =
    perf_of_model scenario outcome.Incremental.updated_model scenario.drift_w drift_x
  in
  let n_drift = Array.length drift_x in
  {
    case = scenario.cs_name;
    model_name = spec.spec_name;
    design_perf;
    deploy_perf;
    prom_perf;
    detection;
    per_function;
    baseline_metrics;
    coverage;
    flagged_fraction =
      float_of_int (List.length outcome.Incremental.flagged_indices)
      /. float_of_int (Stdlib.max 1 n_drift);
    relabeled = List.length outcome.Incremental.relabeled_indices;
    train_time;
    retrain_time;
    detect_time = detect_total /. float_of_int (Stdlib.max 1 n_drift);
  }

let summarize results =
  if results = [] then invalid_arg "Case_study.summarize: empty result list";
  let mean f = Stats.mean (Array.of_list (List.map f results)) in
  let avg_metric f = mean (fun r -> f r.detection) in
  let detection =
    {
      Detection_metrics.accuracy = avg_metric (fun m -> m.Detection_metrics.accuracy);
      precision = avg_metric (fun m -> m.Detection_metrics.precision);
      recall = avg_metric (fun m -> m.Detection_metrics.recall);
      f1 = avg_metric (fun m -> m.Detection_metrics.f1);
      false_positive_rate =
        avg_metric (fun m -> m.Detection_metrics.false_positive_rate);
      false_negative_rate =
        avg_metric (fun m -> m.Detection_metrics.false_negative_rate);
      n = List.fold_left (fun acc r -> acc + r.detection.Detection_metrics.n) 0 results;
    }
  in
  ( mean (fun r -> Stats.mean r.design_perf),
    mean (fun r -> Stats.mean r.deploy_perf),
    mean (fun r -> Stats.mean r.prom_perf),
    detection )

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%s / %s@," r.case r.model_name;
  Format.fprintf fmt "  design : %a@," Metrics.pp_violin (Metrics.violin_of r.design_perf);
  Format.fprintf fmt "  deploy : %a@," Metrics.pp_violin (Metrics.violin_of r.deploy_perf);
  Format.fprintf fmt "  prom   : %a@," Metrics.pp_violin (Metrics.violin_of r.prom_perf);
  Format.fprintf fmt "  detect : %a@," Detection_metrics.pp r.detection;
  Format.fprintf fmt "  flagged=%.2f relabeled=%d coverage-dev=%.3f@]" r.flagged_fraction
    r.relabeled r.coverage.Assessment.deviation
