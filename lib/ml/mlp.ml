open Prom_linalg

type activation = Relu | Tanh

type params = {
  hidden : int list;
  activation : activation;
  epochs : int;
  learning_rate : float;
  momentum : float;
  l2 : float;
  batch_size : int;
  seed : int;
}

let default_params =
  {
    hidden = [ 32 ];
    activation = Relu;
    epochs = 150;
    learning_rate = 0.05;
    momentum = 0.9;
    l2 = 1e-4;
    batch_size = 32;
    seed = 11;
  }

(* One fully connected layer: [w] is out x in, [b] length out. *)
type layer = { w : float array array; b : float array }
type net = { layers : layer array; activation : activation; sizes : int array }
type Model.state += Net of net

let act activation x =
  match activation with Relu -> if x > 0.0 then x else 0.0 | Tanh -> tanh x

let act' activation y =
  (* Derivative expressed in terms of the activation output [y]. *)
  match activation with
  | Relu -> if y > 0.0 then 1.0 else 0.0
  | Tanh -> 1.0 -. (y *. y)

let layer_forward layer x =
  Array.mapi
    (fun o row ->
      let acc = ref layer.b.(o) in
      for j = 0 to Array.length x - 1 do
        acc := !acc +. (row.(j) *. x.(j))
      done;
      !acc)
    layer.w

(* Forward pass returning activations of every layer (input first, raw
   output last — the output layer is linear). *)
let forward net x =
  let n = Array.length net.layers in
  let acts = Array.make (n + 1) x in
  for l = 0 to n - 1 do
    let z = layer_forward net.layers.(l) acts.(l) in
    acts.(l + 1) <- (if l = n - 1 then z else Array.map (act net.activation) z)
  done;
  acts

let init_net rng ~sizes ~activation =
  let layers =
    Array.init
      (Array.length sizes - 1)
      (fun l ->
        let fan_in = sizes.(l) and fan_out = sizes.(l + 1) in
        let scale = sqrt (2.0 /. float_of_int (fan_in + fan_out)) in
        {
          w =
            Array.init fan_out (fun _ ->
                Array.init fan_in (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:scale));
          b = Array.make fan_out 0.0;
        })
  in
  { layers; activation; sizes }

let copy_net net =
  {
    net with
    layers =
      Array.map
        (fun l -> { w = Array.map Array.copy l.w; b = Array.copy l.b })
        net.layers;
  }

let zero_like net =
  {
    net with
    layers =
      Array.map
        (fun l ->
          {
            w = Array.map (fun r -> Array.make (Array.length r) 0.0) l.w;
            b = Array.make (Array.length l.b) 0.0;
          })
        net.layers;
  }

(* Accumulate gradients for one sample given the output-layer delta. *)
let backprop net acts delta_out grads =
  let n = Array.length net.layers in
  let delta = ref delta_out in
  for l = n - 1 downto 0 do
    let layer = net.layers.(l) and g = grads.layers.(l) in
    let input = acts.(l) and d = !delta in
    for o = 0 to Array.length d - 1 do
      g.b.(o) <- g.b.(o) +. d.(o);
      let gw = g.w.(o) in
      for j = 0 to Array.length input - 1 do
        gw.(j) <- gw.(j) +. (d.(o) *. input.(j))
      done
    done;
    if l > 0 then begin
      let prev = Array.make (Array.length input) 0.0 in
      for o = 0 to Array.length d - 1 do
        let row = layer.w.(o) in
        for j = 0 to Array.length prev - 1 do
          prev.(j) <- prev.(j) +. (d.(o) *. row.(j))
        done
      done;
      (* Multiply by the activation derivative at layer l's output. *)
      for j = 0 to Array.length prev - 1 do
        prev.(j) <- prev.(j) *. act' net.activation acts.(l).(j)
      done;
      delta := prev
    end
  done

let sgd_step params net grads velocity bsz =
  let step = params.learning_rate /. float_of_int bsz in
  Array.iteri
    (fun l layer ->
      let g = grads.layers.(l) and v = velocity.layers.(l) in
      for o = 0 to Array.length layer.b - 1 do
        v.b.(o) <- (params.momentum *. v.b.(o)) -. (step *. g.b.(o));
        layer.b.(o) <- layer.b.(o) +. v.b.(o);
        let wrow = layer.w.(o) and grow = g.w.(o) and vrow = v.w.(o) in
        for j = 0 to Array.length wrow - 1 do
          vrow.(j) <-
            (params.momentum *. vrow.(j))
            -. (step *. (grow.(j) +. (params.l2 *. wrow.(j))));
          wrow.(j) <- wrow.(j) +. vrow.(j)
        done
      done)
    net.layers

(* Shared training loop: [delta_of] computes the output-layer error for
   sample [i] given the raw network output. *)
let run_training params net (x : Vec.t array) n delta_of =
  let rng = Rng.create (params.seed + 1) in
  let grads = zero_like net in
  let velocity = zero_like net in
  for _epoch = 1 to params.epochs do
    let order = Rng.permutation rng n in
    let pos = ref 0 in
    while !pos < n do
      let bsz = Stdlib.min params.batch_size (n - !pos) in
      Array.iter
        (fun l ->
          Array.iter (fun r -> Array.fill r 0 (Array.length r) 0.0) l.w;
          Array.fill l.b 0 (Array.length l.b) 0.0)
        grads.layers;
      for b = 0 to bsz - 1 do
        let i = order.(!pos + b) in
        let acts = forward net x.(i) in
        let out = acts.(Array.length acts - 1) in
        backprop net acts (delta_of i out) grads
      done;
      sgd_step params net grads velocity bsz;
      pos := !pos + bsz
    done
  done

let classifier_of_net ~n_classes net =
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let acts = forward net x in
        Vec.softmax acts.(Array.length acts - 1));
    name = "mlp";
    state = Net net;
  }

let regressor_of_net net =
  {
    Model.predict =
      (fun x ->
        let acts = forward net x in
        acts.(Array.length acts - 1).(0));
    name = "mlp-reg";
    reg_state = Net net;
  }

let sizes_for ~dim ~hidden ~out = Array.of_list ((dim :: hidden) @ [ out ])

let train ?(params = default_params) ?init (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Mlp.train: empty dataset";
  let dim = Dataset.n_features d in
  let n_classes =
    Stdlib.max (Dataset.n_classes d)
      (match init with Some c -> c.Model.n_classes | None -> 1)
  in
  let sizes = sizes_for ~dim ~hidden:params.hidden ~out:n_classes in
  let net =
    match init with
    | Some { Model.state = Net prev; _ } when prev.sizes = sizes -> copy_net prev
    | Some _ | None -> init_net (Rng.create params.seed) ~sizes ~activation:params.activation
  in
  let delta_of i out =
    let p = Vec.softmax out in
    Array.mapi (fun c pc -> pc -. (if c = d.y.(i) then 1.0 else 0.0)) p
  in
  run_training params net d.x (Dataset.length d) delta_of;
  classifier_of_net ~n_classes net

let trainer ?params () =
  { Model.train = (fun ?init d -> train ?params ?init d); trainer_name = "mlp" }

let train_regressor ?(params = default_params) ?init (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Mlp.train_regressor: empty dataset";
  let dim = Dataset.n_features d in
  let sizes = sizes_for ~dim ~hidden:params.hidden ~out:1 in
  let net =
    match init with
    | Some { Model.reg_state = Net prev; _ } when prev.sizes = sizes -> copy_net prev
    | Some _ | None -> init_net (Rng.create params.seed) ~sizes ~activation:params.activation
  in
  let delta_of i out = [| out.(0) -. d.y.(i) |] in
  run_training params net d.x (Dataset.length d) delta_of;
  regressor_of_net net

let regressor_trainer ?params () =
  {
    Model.train_reg = (fun ?init d -> train_regressor ?params ?init d);
    reg_trainer_name = "mlp-reg";
  }

let penultimate (c : Model.classifier) x =
  match c.state with
  | Net net when Array.length net.layers >= 2 ->
      let acts = forward net x in
      Some acts.(Array.length acts - 2)
  | _ -> None

module Buf = Prom_store.Buf

let net_to_buf b net =
  Buf.w_u8 b (match net.activation with Relu -> 0 | Tanh -> 1);
  Buf.w_ints b net.sizes;
  Buf.w_array
    (fun b layer ->
      Buf.w_float_rows b layer.w;
      Buf.w_floats b layer.b)
    b net.layers

let net_of_buf r =
  let activation =
    match Buf.r_u8 r with
    | 0 -> Relu
    | 1 -> Tanh
    | t -> Buf.corrupt "Mlp: invalid activation tag %d" t
  in
  let sizes = Buf.r_ints r in
  let layers =
    Buf.r_array
      (fun r ->
        let w = Buf.r_float_rows r in
        let b = Buf.r_floats r in
        { w; b })
      r
  in
  let n = Array.length layers in
  if Array.length sizes <> n + 1 || n = 0 then Buf.corrupt "Mlp: layer/size count mismatch";
  Array.iteri
    (fun l layer ->
      let fan_in = sizes.(l) and fan_out = sizes.(l + 1) in
      if fan_in < 0 || fan_out < 1 then Buf.corrupt "Mlp: invalid layer size";
      if Array.length layer.w <> fan_out || Array.length layer.b <> fan_out then
        Buf.corrupt "Mlp: layer %d shape mismatch" l;
      Array.iter
        (fun row -> if Array.length row <> fan_in then Buf.corrupt "Mlp: ragged weights")
        layer.w)
    layers;
  { layers; activation; sizes }

let to_buf b (c : Model.classifier) =
  match c.state with
  | Net net -> net_to_buf b net
  | _ -> invalid_arg "Mlp.to_buf: not an mlp classifier"

let of_buf r =
  let net = net_of_buf r in
  classifier_of_net ~n_classes:net.sizes.(Array.length net.sizes - 1) net

let reg_to_buf b (m : Model.regressor) =
  match m.reg_state with
  | Net net -> net_to_buf b net
  | _ -> invalid_arg "Mlp.reg_to_buf: not an mlp regressor"

let reg_of_buf r =
  let net = net_of_buf r in
  if net.sizes.(Array.length net.sizes - 1) <> 1 then
    Buf.corrupt "Mlp: regressor output width must be 1";
  regressor_of_net net
