open Prom_linalg

(* Per-class Gaussian parameters — kept as first-class state (rather
   than closure captures) so the model can be serialized. *)
type nb = { mu : Mat.t; var : Mat.t; log_prior : float array }

type Model.state += Nb of nb

let classifier_of_nb ({ mu; var; log_prior } as nb) =
  let n_classes = Array.length log_prior in
  let dim = if n_classes = 0 then 0 else Array.length mu.(0) in
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let log_post =
          Array.init n_classes (fun c ->
              let acc = ref log_prior.(c) in
              for j = 0 to dim - 1 do
                let v = var.(c).(j) in
                let diff = x.(j) -. mu.(c).(j) in
                acc := !acc -. (0.5 *. (log (2.0 *. Float.pi *. v) +. (diff *. diff /. v)))
              done;
              !acc)
        in
        Vec.softmax log_post);
    name = "naive-bayes";
    state = Nb nb;
  }

let train ?(var_smoothing = 1e-6) ?init:_ (d : int Dataset.t) =
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Naive_bayes.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let dim = Dataset.n_features d in
  let counts = Array.make n_classes 0 in
  let mu = Mat.zeros ~rows:n_classes ~cols:dim in
  let var = Mat.zeros ~rows:n_classes ~cols:dim in
  Array.iteri
    (fun i x ->
      let c = d.y.(i) in
      counts.(c) <- counts.(c) + 1;
      Array.iteri (fun j v -> mu.(c).(j) <- mu.(c).(j) +. v) x)
    d.x;
  for c = 0 to n_classes - 1 do
    let k = float_of_int (Stdlib.max 1 counts.(c)) in
    for j = 0 to dim - 1 do
      mu.(c).(j) <- mu.(c).(j) /. k
    done
  done;
  Array.iteri
    (fun i x ->
      let c = d.y.(i) in
      Array.iteri (fun j v -> var.(c).(j) <- var.(c).(j) +. ((v -. mu.(c).(j)) ** 2.0)) x)
    d.x;
  for c = 0 to n_classes - 1 do
    let k = float_of_int (Stdlib.max 1 counts.(c)) in
    for j = 0 to dim - 1 do
      var.(c).(j) <- (var.(c).(j) /. k) +. var_smoothing
    done
  done;
  let log_prior =
    Array.map (fun c -> log (float_of_int (c + 1) /. float_of_int (n + n_classes))) counts
  in
  classifier_of_nb { mu; var; log_prior }

let trainer ?var_smoothing () =
  {
    Model.train = (fun ?init d -> train ?var_smoothing ?init d);
    trainer_name = "naive-bayes";
  }

module Buf = Prom_store.Buf

let to_buf b (c : Model.classifier) =
  match c.state with
  | Nb { mu; var; log_prior } ->
      Buf.w_float_rows b mu;
      Buf.w_float_rows b var;
      Buf.w_floats b log_prior
  | _ -> invalid_arg "Naive_bayes.to_buf: not a naive-bayes classifier"

let of_buf r =
  let mu = Buf.r_float_rows r in
  let var = Buf.r_float_rows r in
  let log_prior = Buf.r_floats r in
  let n_classes = Array.length log_prior in
  if n_classes < 1 || Array.length mu <> n_classes || Array.length var <> n_classes then
    Buf.corrupt "Naive_bayes: inconsistent class count";
  let dim = Array.length mu.(0) in
  Array.iter
    (fun row -> if Array.length row <> dim then Buf.corrupt "Naive_bayes: ragged mu")
    mu;
  Array.iter
    (fun row -> if Array.length row <> dim then Buf.corrupt "Naive_bayes: ragged var")
    var;
  classifier_of_nb { mu; var; log_prior }
