(** Multilayer perceptron classifier and regressor with configurable
    hidden layers, trained by mini-batch SGD with momentum via manual
    backpropagation. This is the "Magni et al." style model of the
    paper's case studies (C1/C2). *)

open Prom_linalg

type activation = Relu | Tanh

type params = {
  hidden : int list;  (** hidden layer widths, e.g. [[32; 16]] *)
  activation : activation;
  epochs : int;
  learning_rate : float;
  momentum : float;
  l2 : float;
  batch_size : int;
  seed : int;
}

val default_params : params

(** [train ?params ?init d] fits an MLP classifier; [init] warm-starts
    from a previous MLP of identical architecture. *)
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier

val trainer : ?params:params -> unit -> Model.classifier_trainer

(** [train_regressor ?params ?init d] fits an MLP with a single linear
    output unit under squared loss. *)
val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

val regressor_trainer : ?params:params -> unit -> Model.regressor_trainer

(** [to_buf b c] serializes the network (activation, layer sizes,
    weights, biases); raises [Invalid_argument] for classifiers of
    other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(** [reg_to_buf b m] serializes the single-output regression network;
    raises [Invalid_argument] for regressors of other modules. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

(** [reg_of_buf r] rebuilds a regressor with bit-identical
    predictions; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val reg_of_buf : Prom_store.Buf.reader -> Model.regressor

(**/**)

(** [penultimate c x] is the activation of the last hidden layer — the
    embedding PROM can use as feature vector for neural models. [None]
    for classifiers not produced by this module. *)
val penultimate : Model.classifier -> Vec.t -> Vec.t option
