(** Gradient boosting with regression-tree base learners — the "GBC"
    model of the paper's IR2Vec case studies. Classification boosts
    one-vs-all trees on softmax gradients; regression boosts on
    residuals. Warm-starting appends additional boosting rounds to an
    existing ensemble. *)

type params = {
  n_rounds : int;
  learning_rate : float;  (** shrinkage per round *)
  tree : Decision_tree.split_params;
  subsample : float;  (** row subsampling ratio per round *)
  seed : int;
}

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

val regressor_trainer : ?params:params -> unit -> Model.regressor_trainer

(** [to_buf b c] serializes the fitted boosted ensemble (base scores,
    shrinkage, per-round trees); raises [Invalid_argument] for
    classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(** [reg_to_buf b m] serializes the fitted regression ensemble; raises
    [Invalid_argument] for regressors of other modules. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

(** [reg_of_buf r] rebuilds a regressor with bit-identical
    predictions; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val reg_of_buf : Prom_store.Buf.reader -> Model.regressor
