open Prom_linalg

type fitted = { w : Vec.t; b : float }
type Model.state += Coeffs of fitted

let regressor_of fitted =
  {
    Model.predict = (fun x -> Vec.dot fitted.w x +. fitted.b);
    name = "linreg";
    reg_state = Coeffs fitted;
  }

let train ?(l2 = 1e-6) ?init:_ (d : float Dataset.t) =
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Linreg.train: empty dataset";
  let dim = Dataset.n_features d in
  (* Augment with a constant column for the intercept, then solve
     (X^T X + l2 I) w = X^T y. *)
  let aug = Array.map (fun x -> Array.append x [| 1.0 |]) d.x in
  let k = dim + 1 in
  let xtx = Mat.zeros ~rows:k ~cols:k in
  let xty = Array.make k 0.0 in
  Array.iteri
    (fun i x ->
      for a = 0 to k - 1 do
        xty.(a) <- xty.(a) +. (x.(a) *. d.y.(i));
        for b = 0 to k - 1 do
          xtx.(a).(b) <- xtx.(a).(b) +. (x.(a) *. x.(b))
        done
      done)
    aug;
  for a = 0 to k - 1 do
    xtx.(a).(a) <- xtx.(a).(a) +. l2
  done;
  let sol = Mat.solve xtx xty in
  regressor_of { w = Array.sub sol 0 dim; b = sol.(dim) }

let trainer ?l2 () =
  {
    Model.train_reg = (fun ?init d -> train ?l2 ?init d);
    reg_trainer_name = "linreg";
  }

let coefficients (r : Model.regressor) =
  match r.reg_state with Coeffs { w; b } -> Some (w, b) | _ -> None

module Buf = Prom_store.Buf

let reg_to_buf buf (m : Model.regressor) =
  match m.reg_state with
  | Coeffs { w; b } ->
      Buf.w_floats buf w;
      Buf.w_float buf b
  | _ -> invalid_arg "Linreg.reg_to_buf: not a linreg regressor"

let reg_of_buf r =
  let w = Buf.r_floats r in
  let b = Buf.r_float r in
  regressor_of { w; b }
