(** CART decision trees for classification (Gini impurity) and
    regression (variance reduction). These are the base learners for
    {!Random_forest} and {!Gradient_boosting}. *)

open Prom_linalg

type split_params = {
  max_depth : int;
  min_samples_leaf : int;
  min_samples_split : int;
  max_features : int option;
      (** number of candidate features per split; [None] = all. Used by
          random forests for decorrelation. *)
  seed : int;
}

val default_split_params : split_params

(** A fitted tree. The payload stored at the leaves is polymorphic:
    class histograms for classification, means for regression. *)
type 'leaf tree

(** [leaf_value t x] routes [x] down the tree and returns the leaf
    payload. *)
val leaf_value : 'leaf tree -> Vec.t -> 'leaf

val depth : _ tree -> int
val n_leaves : _ tree -> int

(** [fit_classification ?params d] grows a tree; leaves hold class
    probability vectors of length [n_classes d]. *)
val fit_classification : ?params:split_params -> int Dataset.t -> Vec.t tree

(** [fit_regression ?params d] grows a tree; leaves hold mean targets. *)
val fit_regression : ?params:split_params -> float Dataset.t -> float tree

(** [classifier ?params d] wraps a fitted classification tree as a
    probabilistic classifier. *)
val classifier : ?params:split_params -> int Dataset.t -> Model.classifier

val regressor : ?params:split_params -> float Dataset.t -> Model.regressor

(** {2 Serialization}

    Pre-order binary encoding with one tag byte per node; the leaf
    codec is a parameter so tree ensembles ({!Random_forest},
    {!Gradient_boosting}) reuse the same framing. Decoders raise
    [Prom_store.Buf.Corrupt] on malformed input. *)

(** [tree_to_buf w_leaf b t] appends the binary encoding of [t]. *)
val tree_to_buf : (Buffer.t -> 'leaf -> unit) -> Buffer.t -> 'leaf tree -> unit

(** [tree_of_buf r_leaf r] decodes a tree written by {!tree_to_buf}. *)
val tree_of_buf :
  (Prom_store.Buf.reader -> 'leaf) -> Prom_store.Buf.reader -> 'leaf tree

(** [to_buf b c] serializes a classifier produced by this module;
    raises [Invalid_argument] for classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical predictions. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(** [reg_to_buf b m] — regressor analogue of {!to_buf}. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

val reg_of_buf : Prom_store.Buf.reader -> Model.regressor
