(** k-nearest-neighbour classifier and regressor. The classifier's
    probability vector is the distance-weighted vote share of the
    neighbourhood; the regressor averages neighbour targets — the same
    estimator PROM uses to proxy regression ground truth
    (paper Sec. 5.1.1). *)

open Prom_linalg

type params = { k : int; weighted : bool }

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

(** [predict_value ~k d v] is the k-NN estimate of the target of [v]
    from dataset [d] directly, without building a model value. *)
val predict_value : k:int -> float Dataset.t -> Vec.t -> float

(** [to_buf b c] serializes the parameters and retained training set;
    raises [Invalid_argument] for classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(** [reg_to_buf b m] serializes the regressor's [k] and training set;
    raises [Invalid_argument] for regressors of other modules. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

(** [reg_of_buf r] rebuilds a regressor with bit-identical
    predictions; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val reg_of_buf : Prom_store.Buf.reader -> Model.regressor
