open Prom_linalg

type kernel = Linear | Rbf of { gamma : float; n_components : int }

type params = { kernel : kernel; lambda : float; epochs : int; seed : int }

let default_params = { kernel = Linear; lambda = 1e-3; epochs = 60; seed = 23 }

(* Feature maps are kept as data (not closures) so fitted models can be
   serialized; the random Fourier projection is realized eagerly at
   train time. *)
type fmap = Fm_linear | Fm_fourier of { ws : Mat.t; bs : float array }

type fitted = {
  w : float array array;  (* class -> weights (last entry bias) *)
  fmap : fmap;
  platt : (float * float) array;  (* per-class sigmoid (a, b) *)
  dim : int;
}

type Model.state += Svm of fitted

let margin_of w x =
  let dim = Array.length w - 1 in
  let acc = ref w.(dim) in
  for j = 0 to dim - 1 do
    acc := !acc +. (w.(j) *. x.(j))
  done;
  !acc

(* Random Fourier features: cos(w.x + b) with w ~ N(0, 2*gamma). *)
let realize_fmap rng ~dim = function
  | Linear -> Fm_linear
  | Rbf { gamma; n_components } ->
      let ws =
        Array.init n_components (fun _ ->
            Array.init dim (fun _ ->
                Rng.gaussian rng ~mu:0.0 ~sigma:(sqrt (2.0 *. gamma))))
      in
      let bs =
        Array.init n_components (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))
      in
      Fm_fourier { ws; bs }

let apply_fmap fmap x =
  match fmap with
  | Fm_linear -> x
  | Fm_fourier { ws; bs } ->
      let n_components = Array.length ws in
      let scale = sqrt (2.0 /. float_of_int n_components) in
      Array.init n_components (fun k -> scale *. cos (Vec.dot ws.(k) x +. bs.(k)))

(* Pegasos on hinge loss for one binary problem: labels in {-1, +1}. *)
let pegasos rng ~lambda ~epochs (x : Vec.t array) (y : float array) =
  let n = Array.length x in
  let dim = if n = 0 then 0 else Array.length x.(0) in
  let w = Array.make (dim + 1) 0.0 in
  let t = ref 0 in
  for _epoch = 1 to epochs do
    let order = Rng.permutation rng n in
    Array.iter
      (fun i ->
        incr t;
        let eta = 1.0 /. (lambda *. float_of_int !t) in
        let m = y.(i) *. margin_of w x.(i) in
        let decay = 1.0 -. (eta *. lambda) in
        for j = 0 to dim - 1 do
          w.(j) <- decay *. w.(j)
        done;
        if m < 1.0 then begin
          for j = 0 to dim - 1 do
            w.(j) <- w.(j) +. (eta *. y.(i) *. x.(i).(j))
          done;
          w.(dim) <- w.(dim) +. (eta *. y.(i))
        end)
      order
  done;
  w

(* Fit sigmoid p = 1 / (1 + exp (a * m + b)) on (margin, label) pairs by
   a short gradient descent — a light-weight version of Platt scaling. *)
let platt_fit margins labels =
  let a = ref (-1.0) and b = ref 0.0 in
  let n = Array.length margins in
  let lr = 0.01 in
  for _ = 1 to 300 do
    let ga = ref 0.0 and gb = ref 0.0 in
    for i = 0 to n - 1 do
      let p = 1.0 /. (1.0 +. exp ((!a *. margins.(i)) +. !b)) in
      let err = p -. labels.(i) in
      (* dp/da = -p(1-p) m ; chain through squared-error-like gradient *)
      ga := !ga -. (err *. p *. (1.0 -. p) *. margins.(i));
      gb := !gb -. (err *. p *. (1.0 -. p))
    done;
    a := !a -. (lr *. !ga /. float_of_int n *. 100.0);
    b := !b -. (lr *. !gb /. float_of_int n *. 100.0)
  done;
  (!a, !b)

let platt_apply (a, b) m = 1.0 /. (1.0 +. exp ((a *. m) +. b))

let classifier_of_fitted fitted =
  let n_classes = Array.length fitted.w in
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let phi = apply_fmap fitted.fmap x in
        let raw =
          Array.mapi (fun c wc -> platt_apply fitted.platt.(c) (margin_of wc phi)) fitted.w
        in
        let z = Vec.sum raw in
        if z <= 0.0 then Array.make n_classes (1.0 /. float_of_int n_classes)
        else Vec.scale (1.0 /. z) raw);
    name = "svm";
    state = Svm fitted;
  }

let train ?(params = default_params) ?init:_ (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Svm.train: empty dataset";
  let rng = Rng.create params.seed in
  let fmap = realize_fmap (Rng.split rng) ~dim:(Dataset.n_features d) params.kernel in
  let mapped = Array.map (apply_fmap fmap) d.x in
  let n_classes = Dataset.n_classes d in
  let w =
    Array.init n_classes (fun c ->
        let y = Array.map (fun label -> if label = c then 1.0 else -1.0) d.y in
        pegasos (Rng.split rng) ~lambda:params.lambda ~epochs:params.epochs mapped y)
  in
  let platt =
    Array.init n_classes (fun c ->
        let margins = Array.map (fun x -> margin_of w.(c) x) mapped in
        let labels = Array.map (fun label -> if label = c then 1.0 else 0.0) d.y in
        platt_fit margins labels)
  in
  classifier_of_fitted { w; fmap; platt; dim = Dataset.n_features d }

let trainer ?params () =
  { Model.train = (fun ?init d -> train ?params ?init d); trainer_name = "svm" }

let margins (c : Model.classifier) x =
  match c.state with
  | Svm fitted ->
      let phi = apply_fmap fitted.fmap x in
      Some (Array.map (fun wc -> margin_of wc phi) fitted.w)
  | _ -> None

module Buf = Prom_store.Buf

let to_buf b (c : Model.classifier) =
  match c.state with
  | Svm { w; fmap; platt; dim } ->
      Buf.w_float_rows b w;
      (match fmap with
      | Fm_linear -> Buf.w_u8 b 0
      | Fm_fourier { ws; bs } ->
          Buf.w_u8 b 1;
          Buf.w_float_rows b ws;
          Buf.w_floats b bs);
      Buf.w_array
        (fun b (a, pb) ->
          Buf.w_float b a;
          Buf.w_float b pb)
        b platt;
      Buf.w_int b dim
  | _ -> invalid_arg "Svm.to_buf: not an svm classifier"

let of_buf r =
  let w = Buf.r_float_rows r in
  let fmap =
    match Buf.r_u8 r with
    | 0 -> Fm_linear
    | 1 ->
        let ws = Buf.r_float_rows r in
        let bs = Buf.r_floats r in
        if Array.length ws <> Array.length bs then
          Buf.corrupt "Svm: Fourier projection shape mismatch";
        Fm_fourier { ws; bs }
    | t -> Buf.corrupt "Svm: invalid feature-map tag %d" t
  in
  let platt =
    Buf.r_array
      (fun r ->
        let a = Buf.r_float r in
        let pb = Buf.r_float r in
        (a, pb))
      r
  in
  let dim = Buf.r_int r in
  if Array.length w < 1 then Buf.corrupt "Svm: no classes";
  if Array.length platt <> Array.length w then Buf.corrupt "Svm: Platt/class count mismatch";
  if dim < 0 then Buf.corrupt "Svm: invalid dim";
  classifier_of_fitted { w; fmap; platt; dim }
