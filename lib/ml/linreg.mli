(** Ordinary least squares / ridge regression solved in closed form via
    the normal equations (Gaussian elimination from {!Prom_linalg.Mat}). *)

open Prom_linalg

(** [train ?l2 d] fits [y = w . x + b]; [l2] (default [1e-6]) is the
    ridge penalty, which also keeps the normal equations well
    conditioned. *)
val train : ?l2:float -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

val trainer : ?l2:float -> unit -> Model.regressor_trainer

(** [coefficients r] returns [(w, b)] for a model trained by this
    module; [None] otherwise. *)
val coefficients : Model.regressor -> (Vec.t * float) option

(** [reg_to_buf b m] serializes the fitted coefficients; raises
    [Invalid_argument] for regressors of other modules. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

(** [reg_of_buf r] rebuilds a regressor with bit-identical
    predictions. *)
val reg_of_buf : Prom_store.Buf.reader -> Model.regressor
