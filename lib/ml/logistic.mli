(** Multinomial logistic regression trained by mini-batch stochastic
    gradient descent on the softmax cross-entropy loss with L2
    regularization. Supports warm-starting, which incremental learning
    uses to fine-tune a deployed model on relabeled drifting samples. *)

open Prom_linalg

type params = {
  epochs : int;  (** passes over the training data (default 200) *)
  learning_rate : float;  (** SGD step size (default 0.1) *)
  l2 : float;  (** L2 penalty weight (default 1e-4) *)
  batch_size : int;  (** mini-batch size (default 32) *)
  seed : int;
}

val default_params : params

(** [train ?params ?init d] fits a classifier on [d]. When [init] is a
    classifier previously produced by this module, optimization resumes
    from its weights (fine-tuning); an [init] from another module is
    ignored. *)
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier

(** [trainer ?params ()] packages [train] as a first-class trainer. *)
val trainer : ?params:params -> unit -> Model.classifier_trainer

(** [to_buf b c] serializes the weight matrix of a classifier trained by
    this module; raises [Invalid_argument] for foreign classifiers. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(**/**)

(** Exposed for white-box tests: raw decision scores before softmax. *)
val decision_scores : Model.classifier -> Vec.t -> Vec.t option
