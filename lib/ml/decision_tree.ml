open Prom_linalg

type split_params = {
  max_depth : int;
  min_samples_leaf : int;
  min_samples_split : int;
  max_features : int option;
  seed : int;
}

let default_split_params =
  {
    max_depth = 8;
    min_samples_leaf = 2;
    min_samples_split = 4;
    max_features = None;
    seed = 13;
  }

type 'leaf tree =
  | Leaf of 'leaf
  | Node of { feature : int; threshold : float; left : 'leaf tree; right : 'leaf tree }

let rec leaf_value t x =
  match t with
  | Leaf v -> v
  | Node { feature; threshold; left; right } ->
      if x.(feature) <= threshold then leaf_value left x else leaf_value right x

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + Stdlib.max (depth left) (depth right)

let rec n_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> n_leaves left + n_leaves right

(* Generic recursive CART builder. [impurity idx] scores a candidate
   subset, [make_leaf idx] builds the payload. Splits are chosen
   exhaustively over candidate thresholds (midpoints between consecutive
   distinct sorted values). *)
let build ~params ~(x : Vec.t array) ~impurity ~make_leaf indices =
  let rng = Rng.create params.seed in
  let dim = if Array.length x = 0 then 0 else Array.length x.(0) in
  let feature_pool = Array.init dim Fun.id in
  let candidate_features () =
    match params.max_features with
    | None -> feature_pool
    | Some k -> Rng.sample rng feature_pool (Stdlib.min k dim)
  in
  let rec grow indices d =
    let n = Array.length indices in
    if d >= params.max_depth || n < params.min_samples_split then Leaf (make_leaf indices)
    else begin
      let parent_impurity = impurity indices in
      if parent_impurity <= 1e-12 then Leaf (make_leaf indices)
      else begin
        let best = ref None in
        let consider feature threshold =
          let left = ref [] and right = ref [] and nl = ref 0 in
          Array.iter
            (fun i ->
              if x.(i).(feature) <= threshold then begin
                left := i :: !left;
                incr nl
              end
              else right := i :: !right)
            indices;
          let nr = n - !nl in
          if !nl >= params.min_samples_leaf && nr >= params.min_samples_leaf then begin
            let left = Array.of_list !left and right = Array.of_list !right in
            let score =
              ((float_of_int !nl *. impurity left) +. (float_of_int nr *. impurity right))
              /. float_of_int n
            in
            match !best with
            | Some (s, _, _, _, _) when s <= score -> ()
            | _ -> best := Some (score, feature, threshold, left, right)
          end
        in
        (* Cap candidate thresholds per feature to bound split search cost
           on large nodes. *)
        let max_thresholds = 24 in
        Array.iter
          (fun feature ->
            let values = Array.map (fun i -> x.(i).(feature)) indices in
            Array.sort Float.compare values;
            let midpoints = ref [] in
            for i = Array.length values - 2 downto 0 do
              if values.(i) < values.(i + 1) then
                midpoints := ((values.(i) +. values.(i + 1)) /. 2.0) :: !midpoints
            done;
            let midpoints = Array.of_list !midpoints in
            let m = Array.length midpoints in
            if m <= max_thresholds then Array.iter (consider feature) midpoints
            else
              for k = 0 to max_thresholds - 1 do
                consider feature midpoints.(k * m / max_thresholds)
              done)
          (candidate_features ());
        match !best with
        | Some (score, feature, threshold, left, right) when score < parent_impurity ->
            Node
              {
                feature;
                threshold;
                left = grow left (d + 1);
                right = grow right (d + 1);
              }
        | Some _ | None -> Leaf (make_leaf indices)
      end
    end
  in
  grow indices 0

let fit_classification ?(params = default_split_params) (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Decision_tree.fit_classification: empty dataset";
  let n_classes = Dataset.n_classes d in
  let histogram indices =
    let h = Array.make n_classes 0.0 in
    Array.iter (fun i -> h.(d.y.(i)) <- h.(d.y.(i)) +. 1.0) indices;
    h
  in
  let gini indices =
    let h = histogram indices in
    let n = float_of_int (Array.length indices) in
    1.0 -. Array.fold_left (fun acc c -> acc +. ((c /. n) ** 2.0)) 0.0 h
  in
  let make_leaf indices =
    let h = histogram indices in
    let n = float_of_int (Array.length indices) in
    Array.map (fun c -> c /. n) h
  in
  build ~params ~x:d.x ~impurity:gini ~make_leaf (Array.init (Dataset.length d) Fun.id)

let fit_regression ?(params = default_split_params) (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Decision_tree.fit_regression: empty dataset";
  let variance indices =
    let n = float_of_int (Array.length indices) in
    let mean = Array.fold_left (fun acc i -> acc +. d.y.(i)) 0.0 indices /. n in
    Array.fold_left (fun acc i -> acc +. ((d.y.(i) -. mean) ** 2.0)) 0.0 indices /. n
  in
  let make_leaf indices =
    let n = float_of_int (Array.length indices) in
    Array.fold_left (fun acc i -> acc +. d.y.(i)) 0.0 indices /. n
  in
  build ~params ~x:d.x ~impurity:variance ~make_leaf (Array.init (Dataset.length d) Fun.id)

type Model.state += Class_tree of Vec.t tree | Reg_tree of float tree

let classifier ?params (d : int Dataset.t) =
  let t = fit_classification ?params d in
  {
    Model.n_classes = Dataset.n_classes d;
    predict_proba = (fun x -> leaf_value t x);
    name = "decision-tree";
    state = Class_tree t;
  }

let regressor ?params (d : float Dataset.t) =
  let t = fit_regression ?params d in
  {
    Model.predict = (fun x -> leaf_value t x);
    name = "decision-tree-reg";
    reg_state = Reg_tree t;
  }

(* --- Serialization. Trees are written pre-order with a tag byte per
   node; the leaf payload codec is a parameter so the forest and
   boosting ensembles reuse the same framing for their float-leaf
   trees. *)

module Buf = Prom_store.Buf

let rec tree_to_buf w_leaf b = function
  | Leaf v ->
      Buf.w_u8 b 0;
      w_leaf b v
  | Node { feature; threshold; left; right } ->
      Buf.w_u8 b 1;
      Buf.w_int b feature;
      Buf.w_float b threshold;
      tree_to_buf w_leaf b left;
      tree_to_buf w_leaf b right

let rec tree_of_buf r_leaf r =
  match Buf.r_u8 r with
  | 0 -> Leaf (r_leaf r)
  | 1 ->
      let feature = Buf.r_int r in
      if feature < 0 then Buf.corrupt "Decision_tree: negative split feature";
      let threshold = Buf.r_float r in
      let left = tree_of_buf r_leaf r in
      let right = tree_of_buf r_leaf r in
      Node { feature; threshold; left; right }
  | t -> Buf.corrupt "Decision_tree: invalid node tag %d" t

let to_buf b (c : Model.classifier) =
  match c.state with
  | Class_tree t ->
      Buf.w_int b c.n_classes;
      tree_to_buf Buf.w_floats b t
  | _ -> invalid_arg "Decision_tree.to_buf: not a decision-tree classifier"

let of_buf r =
  let n_classes = Buf.r_int r in
  if n_classes < 1 then Buf.corrupt "Decision_tree: invalid n_classes";
  let t = tree_of_buf Buf.r_floats r in
  {
    Model.n_classes;
    predict_proba = (fun x -> leaf_value t x);
    name = "decision-tree";
    state = Class_tree t;
  }

let reg_to_buf b (m : Model.regressor) =
  match m.reg_state with
  | Reg_tree t -> tree_to_buf Buf.w_float b t
  | _ -> invalid_arg "Decision_tree.reg_to_buf: not a decision-tree regressor"

let reg_of_buf r =
  let t = tree_of_buf Buf.r_float r in
  {
    Model.predict = (fun x -> leaf_value t x);
    name = "decision-tree-reg";
    reg_state = Reg_tree t;
  }
