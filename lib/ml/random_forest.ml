open Prom_linalg

type params = {
  n_trees : int;
  tree : Decision_tree.split_params;
  bootstrap_ratio : float;
  seed : int;
}

let default_params =
  {
    n_trees = 25;
    tree =
      {
        Decision_tree.default_split_params with
        max_depth = 6;
        max_features = Some 4;
      };
    bootstrap_ratio = 0.8;
    seed = 17;
  }

(* Fitted ensembles are kept as first-class state (not closure
   captures) so the snapshot codecs can write them out. *)
type Model.state +=
  | Forest of { trees : Vec.t Decision_tree.tree array; fc_classes : int }
  | Forest_reg of { reg_trees : float Decision_tree.tree array }

let bootstrap rng (d : 'a Dataset.t) ratio =
  let n = Dataset.length d in
  let k = Stdlib.max 1 (int_of_float (ratio *. float_of_int n)) in
  Dataset.subset d (Array.init k (fun _ -> Rng.int rng n))

let classifier_of_trees ~n_classes trees =
  {
    Model.n_classes;
    predict_proba =
      (fun x ->
        let acc = Array.make n_classes 0.0 in
        Array.iter
          (fun t ->
            let h = Decision_tree.leaf_value t x in
            (* A bootstrap sample may miss the rarest classes, yielding a
               shorter histogram; align on the common prefix. *)
            Array.iteri
              (fun c p -> if c < n_classes then acc.(c) <- acc.(c) +. p)
              h)
          trees;
        Vec.scale (1.0 /. float_of_int (Array.length trees)) acc);
    name = "random-forest";
    state = Forest { trees; fc_classes = n_classes };
  }

let train ?(params = default_params) ?init:_ (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Random_forest.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  let rng = Rng.create params.seed in
  let trees =
    Array.init params.n_trees (fun i ->
        let sample = bootstrap rng d params.bootstrap_ratio in
        let tree_params = { params.tree with seed = params.tree.seed + i } in
        Decision_tree.fit_classification ~params:tree_params sample)
  in
  classifier_of_trees ~n_classes trees

let trainer ?params () =
  {
    Model.train = (fun ?init d -> train ?params ?init d);
    trainer_name = "random-forest";
  }

let regressor_of_trees trees =
  {
    Model.predict =
      (fun x ->
        let acc =
          Array.fold_left (fun acc t -> acc +. Decision_tree.leaf_value t x) 0.0 trees
        in
        acc /. float_of_int (Array.length trees));
    name = "random-forest-reg";
    reg_state = Forest_reg { reg_trees = trees };
  }

let train_regressor ?(params = default_params) ?init:_ (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Random_forest.train_regressor: empty dataset";
  let rng = Rng.create params.seed in
  let trees =
    Array.init params.n_trees (fun i ->
        let sample = bootstrap rng d params.bootstrap_ratio in
        let tree_params = { params.tree with seed = params.tree.seed + i } in
        Decision_tree.fit_regression ~params:tree_params sample)
  in
  regressor_of_trees trees

module Buf = Prom_store.Buf

let to_buf b (c : Model.classifier) =
  match c.state with
  | Forest { trees; fc_classes } ->
      Buf.w_int b fc_classes;
      Buf.w_array (Decision_tree.tree_to_buf Buf.w_floats) b trees
  | _ -> invalid_arg "Random_forest.to_buf: not a random-forest classifier"

let of_buf r =
  let n_classes = Buf.r_int r in
  let trees = Buf.r_array (Decision_tree.tree_of_buf Buf.r_floats) r in
  if n_classes < 1 then Buf.corrupt "Random_forest: invalid class count";
  if Array.length trees = 0 then Buf.corrupt "Random_forest: empty ensemble";
  classifier_of_trees ~n_classes trees

let reg_to_buf b (m : Model.regressor) =
  match m.reg_state with
  | Forest_reg { reg_trees } ->
      Buf.w_array (Decision_tree.tree_to_buf Buf.w_float) b reg_trees
  | _ -> invalid_arg "Random_forest.reg_to_buf: not a random-forest regressor"

let reg_of_buf r =
  let trees = Buf.r_array (Decision_tree.tree_of_buf Buf.r_float) r in
  if Array.length trees = 0 then Buf.corrupt "Random_forest: empty ensemble";
  regressor_of_trees trees
