open Prom_linalg

type params = {
  n_rounds : int;
  learning_rate : float;
  tree : Decision_tree.split_params;
  subsample : float;
  seed : int;
}

let default_params =
  {
    n_rounds = 40;
    learning_rate = 0.15;
    tree = { Decision_tree.default_split_params with max_depth = 3 };
    subsample = 0.8;
    seed = 19;
  }

type class_ensemble = {
  n_classes : int;
  base_score : float array;
  rounds : float Decision_tree.tree array array;  (* round -> class -> tree *)
  shrinkage : float;
}

type Model.state += Class_ensemble of class_ensemble

type reg_ensemble = {
  base : float;
  reg_rounds : float Decision_tree.tree array;
  reg_shrinkage : float;
}

type Model.state += Reg_ensemble of reg_ensemble

let raw_scores ens x =
  let scores = Array.copy ens.base_score in
  Array.iter
    (fun round ->
      Array.iteri
        (fun c tree ->
          scores.(c) <- scores.(c) +. (ens.shrinkage *. Decision_tree.leaf_value tree x))
        round)
    ens.rounds;
  scores

let subsample_indices rng n ratio =
  let k = Stdlib.max 1 (int_of_float (ratio *. float_of_int n)) in
  Rng.sample rng (Array.init n Fun.id) k

let classifier_of_ensemble ens =
  {
    Model.n_classes = ens.n_classes;
    predict_proba = (fun x -> Vec.softmax (raw_scores ens x));
    name = "gradient-boosting";
    state = Class_ensemble ens;
  }

let train ?(params = default_params) ?init (d : int Dataset.t) =
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Gradient_boosting.train: empty dataset";
  let n_classes =
    Stdlib.max (Dataset.n_classes d)
      (match init with Some c -> c.Model.n_classes | None -> 1)
  in
  let prior =
    (* log class frequencies as the initial raw scores *)
    let counts = Array.make n_classes 1.0 in
    Array.iter (fun y -> counts.(y) <- counts.(y) +. 1.0) d.y;
    Array.map (fun c -> log (c /. float_of_int (n + n_classes))) counts
  in
  let start =
    match init with
    | Some { Model.state = Class_ensemble prev; _ } when prev.n_classes = n_classes ->
        prev
    | Some _ | None ->
        { n_classes; base_score = prior; rounds = [||]; shrinkage = params.learning_rate }
  in
  let rng = Rng.create params.seed in
  (* Current raw scores for every training sample, updated incrementally
     as rounds are appended. *)
  let scores = Array.map (fun x -> raw_scores start x) d.x in
  let rounds = ref (Array.to_list start.rounds) in
  for round = 1 to params.n_rounds do
    let idx = subsample_indices rng n params.subsample in
    let round_trees =
      Array.init n_classes (fun c ->
          (* Negative gradient of softmax cross-entropy for class c. *)
          let residuals =
            Array.map
              (fun i ->
                let p = Vec.softmax scores.(i) in
                (if d.y.(i) = c then 1.0 else 0.0) -. p.(c))
              idx
          in
          let sub = Dataset.create (Array.map (fun i -> d.x.(i)) idx) residuals in
          let tree_params = { params.tree with seed = params.tree.seed + (round * 31) + c } in
          Decision_tree.fit_regression ~params:tree_params sub)
    in
    for i = 0 to n - 1 do
      Array.iteri
        (fun c tree ->
          scores.(i).(c) <-
            scores.(i).(c) +. (params.learning_rate *. Decision_tree.leaf_value tree d.x.(i)))
        round_trees
    done;
    rounds := !rounds @ [ round_trees ]
  done;
  classifier_of_ensemble
    {
      n_classes;
      base_score = start.base_score;
      rounds = Array.of_list !rounds;
      shrinkage = params.learning_rate;
    }

let trainer ?params () =
  {
    Model.train = (fun ?init d -> train ?params ?init d);
    trainer_name = "gradient-boosting";
  }

let reg_predict ens x =
  Array.fold_left
    (fun acc tree -> acc +. (ens.reg_shrinkage *. Decision_tree.leaf_value tree x))
    ens.base ens.reg_rounds

let regressor_of_ensemble ens =
  {
    Model.predict = (fun x -> reg_predict ens x);
    name = "gradient-boosting-reg";
    reg_state = Reg_ensemble ens;
  }

let train_regressor ?(params = default_params) ?init (d : float Dataset.t) =
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Gradient_boosting.train_regressor: empty dataset";
  let start =
    match init with
    | Some { Model.reg_state = Reg_ensemble prev; _ } -> prev
    | Some _ | None ->
        {
          base = Stats.mean d.y;
          reg_rounds = [||];
          reg_shrinkage = params.learning_rate;
        }
  in
  let rng = Rng.create params.seed in
  let preds = Array.map (fun x -> reg_predict start x) d.x in
  let rounds = ref (Array.to_list start.reg_rounds) in
  for round = 1 to params.n_rounds do
    let idx = subsample_indices rng n params.subsample in
    let residuals = Array.map (fun i -> d.y.(i) -. preds.(i)) idx in
    let sub = Dataset.create (Array.map (fun i -> d.x.(i)) idx) residuals in
    let tree_params = { params.tree with seed = params.tree.seed + (round * 31) } in
    let tree = Decision_tree.fit_regression ~params:tree_params sub in
    for i = 0 to n - 1 do
      preds.(i) <- preds.(i) +. (params.learning_rate *. Decision_tree.leaf_value tree d.x.(i))
    done;
    rounds := !rounds @ [ tree ]
  done;
  regressor_of_ensemble
    {
      base = start.base;
      reg_rounds = Array.of_list !rounds;
      reg_shrinkage = params.learning_rate;
    }

let regressor_trainer ?params () =
  {
    Model.train_reg = (fun ?init d -> train_regressor ?params ?init d);
    reg_trainer_name = "gradient-boosting-reg";
  }

module Buf = Prom_store.Buf

let to_buf b (c : Model.classifier) =
  match c.state with
  | Class_ensemble { n_classes; base_score; rounds; shrinkage } ->
      Buf.w_int b n_classes;
      Buf.w_floats b base_score;
      Buf.w_float b shrinkage;
      Buf.w_array (Buf.w_array (Decision_tree.tree_to_buf Buf.w_float)) b rounds
  | _ -> invalid_arg "Gradient_boosting.to_buf: not a gradient-boosting classifier"

let of_buf r =
  let n_classes = Buf.r_int r in
  let base_score = Buf.r_floats r in
  let shrinkage = Buf.r_float r in
  let rounds = Buf.r_array (Buf.r_array (Decision_tree.tree_of_buf Buf.r_float)) r in
  if n_classes < 1 then Buf.corrupt "Gradient_boosting: invalid class count";
  if Array.length base_score <> n_classes then
    Buf.corrupt "Gradient_boosting: base score length mismatch";
  Array.iter
    (fun round ->
      if Array.length round <> n_classes then
        Buf.corrupt "Gradient_boosting: round width mismatch")
    rounds;
  classifier_of_ensemble { n_classes; base_score; rounds; shrinkage }

let reg_to_buf b (m : Model.regressor) =
  match m.reg_state with
  | Reg_ensemble { base; reg_rounds; reg_shrinkage } ->
      Buf.w_float b base;
      Buf.w_float b reg_shrinkage;
      Buf.w_array (Decision_tree.tree_to_buf Buf.w_float) b reg_rounds
  | _ -> invalid_arg "Gradient_boosting.reg_to_buf: not a gradient-boosting regressor"

let reg_of_buf r =
  let base = Buf.r_float r in
  let reg_shrinkage = Buf.r_float r in
  let reg_rounds = Buf.r_array (Decision_tree.tree_of_buf Buf.r_float) r in
  regressor_of_ensemble { base; reg_rounds; reg_shrinkage }
