open Prom_linalg

type params = { k : int; weighted : bool }

let default_params = { k = 5; weighted = true }

let weight ~weighted dist = if weighted then 1.0 /. (1e-6 +. dist) else 1.0

let train ?(params = default_params) ?init:_ (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Knn.train: empty dataset";
  let n_classes = Dataset.n_classes d in
  {
    Model.n_classes;
    predict_proba =
      (fun v ->
        let ranked = Distance.top_k ~dist:Distance.euclidean d.x v params.k in
        let k = Array.length ranked in
        let votes = Array.make n_classes 0.0 in
        for r = 0 to k - 1 do
          let i, dist = ranked.(r) in
          votes.(d.y.(i)) <- votes.(d.y.(i)) +. weight ~weighted:params.weighted dist
        done;
        let z = Vec.sum votes in
        if z = 0.0 then Array.make n_classes (1.0 /. float_of_int n_classes)
        else Vec.scale (1.0 /. z) votes);
    name = "knn";
    state = Model.No_state;
  }

let trainer ?params () =
  { Model.train = (fun ?init d -> train ?params ?init d); trainer_name = "knn" }

let predict_value ~k (d : float Dataset.t) v =
  if Dataset.length d = 0 then invalid_arg "Knn.predict_value: empty dataset";
  let idx = Distance.nearest ~dist:Distance.euclidean d.x v k in
  let acc = Array.fold_left (fun acc i -> acc +. d.y.(i)) 0.0 idx in
  acc /. float_of_int (Array.length idx)

let train_regressor ?(params = default_params) ?init:_ (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Knn.train_regressor: empty dataset";
  {
    Model.predict = (fun v -> predict_value ~k:params.k d v);
    name = "knn-reg";
    reg_state = Model.No_state;
  }
