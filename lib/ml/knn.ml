open Prom_linalg

type params = { k : int; weighted : bool }

let default_params = { k = 5; weighted = true }

let weight ~weighted dist = if weighted then 1.0 /. (1e-6 +. dist) else 1.0

(* The training set IS the model, so it is kept as first-class state
   (not a closure capture) and the snapshot codecs can write it out. *)
type Model.state +=
  | Knn_cls of { cparams : params; cdata : int Dataset.t }
  | Knn_reg of { rk : int; rdata : float Dataset.t }

let classifier_of ~params (d : int Dataset.t) =
  let n_classes = Dataset.n_classes d in
  {
    Model.n_classes;
    predict_proba =
      (fun v ->
        let ranked = Distance.top_k ~dist:Distance.euclidean d.x v params.k in
        let k = Array.length ranked in
        let votes = Array.make n_classes 0.0 in
        for r = 0 to k - 1 do
          let i, dist = ranked.(r) in
          votes.(d.y.(i)) <- votes.(d.y.(i)) +. weight ~weighted:params.weighted dist
        done;
        let z = Vec.sum votes in
        if z = 0.0 then Array.make n_classes (1.0 /. float_of_int n_classes)
        else Vec.scale (1.0 /. z) votes);
    name = "knn";
    state = Knn_cls { cparams = params; cdata = d };
  }

let train ?(params = default_params) ?init:_ (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Knn.train: empty dataset";
  classifier_of ~params d

let trainer ?params () =
  { Model.train = (fun ?init d -> train ?params ?init d); trainer_name = "knn" }

let predict_value ~k (d : float Dataset.t) v =
  if Dataset.length d = 0 then invalid_arg "Knn.predict_value: empty dataset";
  let idx = Distance.nearest ~dist:Distance.euclidean d.x v k in
  let acc = Array.fold_left (fun acc i -> acc +. d.y.(i)) 0.0 idx in
  acc /. float_of_int (Array.length idx)

let regressor_of ~k (d : float Dataset.t) =
  {
    Model.predict = (fun v -> predict_value ~k d v);
    name = "knn-reg";
    reg_state = Knn_reg { rk = k; rdata = d };
  }

let train_regressor ?(params = default_params) ?init:_ (d : float Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Knn.train_regressor: empty dataset";
  regressor_of ~k:params.k d

module Buf = Prom_store.Buf

let w_dataset w_label b (d : _ Dataset.t) =
  Buf.w_float_rows b d.Dataset.x;
  Buf.w_array w_label b d.Dataset.y

let r_dataset r_label r =
  let x = Buf.r_float_rows r in
  let y = Buf.r_array r_label r in
  if Array.length x <> Array.length y then Buf.corrupt "Knn: sample/label count mismatch";
  try Dataset.create x y
  with Invalid_argument msg -> Buf.corrupt "Knn: invalid dataset (%s)" msg

let to_buf b (c : Model.classifier) =
  match c.state with
  | Knn_cls { cparams; cdata } ->
      Buf.w_int b cparams.k;
      Buf.w_bool b cparams.weighted;
      w_dataset Buf.w_int b cdata
  | _ -> invalid_arg "Knn.to_buf: not a knn classifier"

let of_buf r =
  let k = Buf.r_int r in
  let weighted = Buf.r_bool r in
  let d = r_dataset Buf.r_int r in
  if k < 1 then Buf.corrupt "Knn: invalid k";
  if Dataset.length d = 0 then Buf.corrupt "Knn: empty training set";
  Array.iter
    (fun y -> if y < 0 then Buf.corrupt "Knn: negative label")
    d.Dataset.y;
  classifier_of ~params:{ k; weighted } d

let reg_to_buf b (m : Model.regressor) =
  match m.reg_state with
  | Knn_reg { rk; rdata } ->
      Buf.w_int b rk;
      w_dataset Buf.w_float b rdata
  | _ -> invalid_arg "Knn.reg_to_buf: not a knn regressor"

let reg_of_buf r =
  let k = Buf.r_int r in
  let d = r_dataset Buf.r_float r in
  if k < 1 then Buf.corrupt "Knn: invalid k";
  if Dataset.length d = 0 then Buf.corrupt "Knn: empty training set";
  regressor_of ~k d
