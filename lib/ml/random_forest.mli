(** Random forest: bagged CART trees with per-split feature
    subsampling. Probabilities are the average of per-tree leaf
    histograms, which gives smoother probability vectors than a single
    tree — useful for conformal scoring. *)

type params = {
  n_trees : int;
  tree : Decision_tree.split_params;
  bootstrap_ratio : float;  (** fraction of samples drawn per tree *)
  seed : int;
}

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

val train_regressor :
  ?params:params -> ?init:Model.regressor -> float Dataset.t -> Model.regressor

(** [to_buf b c] serializes the fitted tree ensemble; raises
    [Invalid_argument] for classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(** [reg_to_buf b m] serializes the fitted regression ensemble; raises
    [Invalid_argument] for regressors of other modules. *)
val reg_to_buf : Buffer.t -> Model.regressor -> unit

(** [reg_of_buf r] rebuilds a regressor with bit-identical
    predictions; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val reg_of_buf : Prom_store.Buf.reader -> Model.regressor
