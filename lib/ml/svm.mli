(** Linear support vector machine trained with the Pegasos
    (stochastic sub-gradient) algorithm, one-vs-rest for multiclass,
    with Platt scaling so the model exposes the probability vector PROM
    requires. An optional random Fourier feature map approximates an
    RBF kernel. This is the "K.Stock et al." model of case study C2. *)

open Prom_linalg

type kernel = Linear | Rbf of { gamma : float; n_components : int }

type params = {
  kernel : kernel;
  lambda : float;  (** Pegasos regularization *)
  epochs : int;
  seed : int;
}

val default_params : params
val train : ?params:params -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?params:params -> unit -> Model.classifier_trainer

(** [to_buf b c] serializes the per-class weights, realized feature
    map, and Platt coefficients; raises [Invalid_argument] for
    classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier

(**/**)

(** Exposed for tests: per-class margins before Platt scaling. *)
val margins : Model.classifier -> Vec.t -> Vec.t option
