(** Gaussian naive Bayes classifier: per-class, per-feature normal
    likelihoods with class priors. Cheap, fully probabilistic, and a
    useful contrast model in tests. *)

val train : ?var_smoothing:float -> ?init:Model.classifier -> int Dataset.t -> Model.classifier
val trainer : ?var_smoothing:float -> unit -> Model.classifier_trainer

(** [to_buf b c] serializes the fitted per-class Gaussians; raises
    [Invalid_argument] for classifiers of other modules. *)
val to_buf : Buffer.t -> Model.classifier -> unit

(** [of_buf r] rebuilds a classifier with bit-identical probability
    vectors; raises [Prom_store.Buf.Corrupt] on malformed input. *)
val of_buf : Prom_store.Buf.reader -> Model.classifier
