(** Labeled datasets: a feature matrix paired with per-sample labels.
    The label type is polymorphic so the same machinery serves
    classification ([int t]) and regression ([float t]). *)

open Prom_linalg

type 'a t = {
  x : Vec.t array;  (** one feature vector per sample *)
  y : 'a array;  (** one label per sample *)
}

(** [create x y] validates that [x] and [y] have equal length and that
    feature vectors are rectangular. Raises [Invalid_argument]
    otherwise. *)
val create : Vec.t array -> 'a array -> 'a t

val length : 'a t -> int

(** [n_features d] is the dimensionality of the feature space; 0 for an
    empty dataset. *)
val n_features : 'a t -> int

(** [n_classes d] is [1 + max y] for an integer-labeled dataset — the
    number of classes under the convention that labels are
    [0 .. k-1]. *)
val n_classes : int t -> int

val get : 'a t -> int -> Vec.t * 'a
val append : 'a t -> 'a t -> 'a t
val map_features : (Vec.t -> Vec.t) -> 'a t -> 'a t

(** [filter p d] keeps samples satisfying [p x y]. *)
val filter : (Vec.t -> 'a -> bool) -> 'a t -> 'a t

(** [subset d idx] selects samples by index. *)
val subset : 'a t -> int array -> 'a t

(** [shuffle rng d] returns a shuffled copy. *)
val shuffle : Rng.t -> 'a t -> 'a t

(** [split_at d ~ratio] splits into a prefix of [ratio * n] samples and
    the remainder. [ratio] must be within [0, 1]. *)
val split_at : 'a t -> ratio:float -> 'a t * 'a t

(** [train_test_split rng d ~test_ratio] shuffles and splits; returns
    [(train, test)]. *)
val train_test_split : Rng.t -> 'a t -> test_ratio:float -> 'a t * 'a t

(** [k_folds rng d k] partitions into [k] folds and returns, for each
    fold, [(rest, fold)] pairs suitable for cross-validation. *)
val k_folds : Rng.t -> 'a t -> int -> ('a t * 'a t) array

(** Feature standardization fitted on one dataset and applied to
    others, so test data is scaled with training statistics. *)
module Scaler : sig
  type 'a dataset := 'a t
  type t

  val fit : 'a dataset -> t

  val transform : t -> Vec.t -> Vec.t
  val transform_dataset : t -> 'a dataset -> 'a dataset

  (** [params t] exposes the fitted per-feature [(mu, sigma)] so a
      scaler can be serialized. *)
  val params : t -> float array * float array

  (** [of_params ~mu ~sigma] rebuilds a scaler from serialized
      statistics; raises [Invalid_argument] on length mismatch. *)
  val of_params : mu:float array -> sigma:float array -> t
end
