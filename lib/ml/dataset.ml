open Prom_linalg

type 'a t = { x : Vec.t array; y : 'a array }

let create x y =
  if Array.length x <> Array.length y then
    invalid_arg "Dataset.create: feature/label length mismatch";
  (match Array.length x with
  | 0 -> ()
  | _ ->
      let d = Array.length x.(0) in
      Array.iter
        (fun v ->
          if Array.length v <> d then invalid_arg "Dataset.create: ragged features")
        x);
  { x; y }

let length d = Array.length d.x
let n_features d = if length d = 0 then 0 else Array.length d.x.(0)

let n_classes d =
  Array.fold_left (fun acc y -> Stdlib.max acc (y + 1)) 0 d.y

let get d i = (d.x.(i), d.y.(i))
let append a b = { x = Array.append a.x b.x; y = Array.append a.y b.y }
let map_features f d = { d with x = Array.map f d.x }

let subset d idx =
  { x = Array.map (fun i -> d.x.(i)) idx; y = Array.map (fun i -> d.y.(i)) idx }

let filter p d =
  let keep = ref [] in
  for i = length d - 1 downto 0 do
    if p d.x.(i) d.y.(i) then keep := i :: !keep
  done;
  subset d (Array.of_list !keep)

let shuffle rng d =
  let idx = Rng.permutation rng (length d) in
  subset d idx

let split_at d ~ratio =
  if ratio < 0.0 || ratio > 1.0 then invalid_arg "Dataset.split_at: ratio outside [0,1]";
  let n = length d in
  let k = int_of_float (ratio *. float_of_int n) in
  (subset d (Array.init k Fun.id), subset d (Array.init (n - k) (fun i -> i + k)))

let train_test_split rng d ~test_ratio =
  let d = shuffle rng d in
  let test, train = split_at d ~ratio:test_ratio in
  (train, test)

let k_folds rng d k =
  if k < 2 then invalid_arg "Dataset.k_folds: need k >= 2";
  let n = length d in
  let idx = Rng.permutation rng n in
  let fold_of i = i * k / n in
  Array.init k (fun f ->
      let in_fold = ref [] and rest = ref [] in
      for i = n - 1 downto 0 do
        if fold_of i = f then in_fold := idx.(i) :: !in_fold
        else rest := idx.(i) :: !rest
      done;
      (subset d (Array.of_list !rest), subset d (Array.of_list !in_fold)))

module Scaler = struct
  type t = { mu : float array; sigma : float array }

  let fit d =
    let dim = n_features d in
    let n = float_of_int (Stdlib.max 1 (length d)) in
    let mu = Array.make dim 0.0 in
    Array.iter (fun v -> Array.iteri (fun j x -> mu.(j) <- mu.(j) +. x) v) d.x;
    Array.iteri (fun j s -> mu.(j) <- s /. n) mu;
    let sigma = Array.make dim 0.0 in
    Array.iter
      (fun v -> Array.iteri (fun j x -> sigma.(j) <- sigma.(j) +. ((x -. mu.(j)) ** 2.0)) v)
      d.x;
    Array.iteri
      (fun j s ->
        let v = sqrt (s /. n) in
        sigma.(j) <- (if v = 0.0 then 1.0 else v))
      sigma;
    { mu; sigma }

  let transform t v =
    if Array.length v <> Array.length t.mu then
      invalid_arg "Scaler.transform: dimension mismatch";
    Array.mapi (fun j x -> (x -. t.mu.(j)) /. t.sigma.(j)) v

  let transform_dataset t d = map_features (transform t) d

  let params t = (t.mu, t.sigma)

  let of_params ~mu ~sigma =
    if Array.length mu <> Array.length sigma then
      invalid_arg "Scaler.of_params: dimension mismatch";
    { mu; sigma }
end
