open Prom_linalg

type params = {
  epochs : int;
  learning_rate : float;
  l2 : float;
  batch_size : int;
  seed : int;
}

let default_params =
  { epochs = 200; learning_rate = 0.1; l2 = 1e-4; batch_size = 32; seed = 7 }

(* Weights are [n_classes] rows of [dim + 1] (last column is the bias). *)
type weights = { w : float array array; dim : int }
type Model.state += Weights of weights

let scores_of weights x =
  Array.map
    (fun row ->
      let acc = ref row.(weights.dim) in
      for j = 0 to weights.dim - 1 do
        acc := !acc +. (row.(j) *. x.(j))
      done;
      !acc)
    weights.w

let make_classifier ~n_classes weights =
  {
    Model.n_classes;
    predict_proba = (fun x -> Vec.softmax (scores_of weights x));
    name = "logistic";
    state = Weights weights;
  }

let decision_scores (c : Model.classifier) x =
  match c.state with Weights w -> Some (scores_of w x) | _ -> None

let train ?(params = default_params) ?init (d : int Dataset.t) =
  if Dataset.length d = 0 then invalid_arg "Logistic.train: empty dataset";
  let dim = Dataset.n_features d in
  let n_classes =
    Stdlib.max (Dataset.n_classes d)
      (match init with Some c -> c.Model.n_classes | None -> 1)
  in
  let weights =
    match init with
    | Some { Model.state = Weights prev; _ }
      when prev.dim = dim && Array.length prev.w = n_classes ->
        { w = Array.map Array.copy prev.w; dim }
    | Some _ | None ->
        { w = Array.init n_classes (fun _ -> Array.make (dim + 1) 0.0); dim }
  in
  let rng = Rng.create params.seed in
  let n = Dataset.length d in
  let grad = Array.init n_classes (fun _ -> Array.make (dim + 1) 0.0) in
  for _epoch = 1 to params.epochs do
    let order = Rng.permutation rng n in
    let pos = ref 0 in
    while !pos < n do
      let bsz = Stdlib.min params.batch_size (n - !pos) in
      Array.iter (fun g -> Array.fill g 0 (dim + 1) 0.0) grad;
      for b = 0 to bsz - 1 do
        let i = order.(!pos + b) in
        let x = d.x.(i) and y = d.y.(i) in
        let p = Vec.softmax (scores_of weights x) in
        for c = 0 to n_classes - 1 do
          let err = p.(c) -. (if c = y then 1.0 else 0.0) in
          let g = grad.(c) in
          for j = 0 to dim - 1 do
            g.(j) <- g.(j) +. (err *. x.(j))
          done;
          g.(dim) <- g.(dim) +. err
        done
      done;
      let step = params.learning_rate /. float_of_int bsz in
      for c = 0 to n_classes - 1 do
        let w = weights.w.(c) and g = grad.(c) in
        for j = 0 to dim do
          w.(j) <- w.(j) -. (step *. (g.(j) +. (params.l2 *. w.(j))))
        done
      done;
      pos := !pos + bsz
    done
  done;
  make_classifier ~n_classes weights

let trainer ?params () =
  {
    Model.train = (fun ?init d -> train ?params ?init d);
    trainer_name = "logistic";
  }

module Buf = Prom_store.Buf

let to_buf b (c : Model.classifier) =
  match c.state with
  | Weights { w; dim } ->
      Buf.w_int b c.n_classes;
      Buf.w_int b dim;
      Buf.w_float_rows b w
  | _ -> invalid_arg "Logistic.to_buf: not a logistic classifier"

let of_buf r =
  let n_classes = Buf.r_int r in
  let dim = Buf.r_int r in
  let w = Buf.r_float_rows r in
  if n_classes < 1 || dim < 0 || Array.length w <> n_classes then
    Buf.corrupt "Logistic: inconsistent weight shape";
  Array.iter
    (fun row ->
      if Array.length row <> dim + 1 then Buf.corrupt "Logistic: ragged weight row")
    w;
  make_classifier ~n_classes { w; dim }
