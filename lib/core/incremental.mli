(** Incremental learning (paper Sec. 5.4): relabel a small budget of the
    drifting samples PROM flags, fold them back into the training set,
    and retrain (warm-started) — restoring deployment-time accuracy with
    minimal labeling effort. *)

open Prom_linalg
open Prom_ml

type 'label outcome = {
  updated_model : 'label;
  flagged_indices : int list;  (** test indices the committee rejected *)
  relabeled_indices : int list;  (** the subset sent to the oracle *)
  budget : int;
}

(** [classification ?budget_fraction ~detector ~trainer ~train_data
    ~oracle test_inputs] evaluates the detector on every test input,
    picks the [budget_fraction] (default 0.05) of flagged samples with
    the lowest credibility (most drifted first, minimum 1 when anything
    is flagged), queries [oracle] for their true labels, and retrains.
    Returns the updated classifier; the detector itself is not mutated —
    rebuild it with the new model to continue the feedback loop.
    [telemetry] counts flagged inputs, oracle relabels and retraining
    rounds on the bundle's incremental-learning counters. *)
val classification :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Classification.t ->
  trainer:Model.classifier_trainer ->
  train_data:int Dataset.t ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  Model.classifier outcome

(** [classification_admitting] runs the same round as
    {!classification} and additionally folds every relabeled sample
    into the serving detector's calibration store through
    {!Detector.Classification.admit} — the pruned kNN index grows
    incrementally, so the detector keeps serving (with the current
    model) while the retrained [updated_model] is prepared for the
    next swap. Returns the round's outcome and the grown detector. *)
val classification_admitting :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Classification.t ->
  trainer:Model.classifier_trainer ->
  train_data:int Dataset.t ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  Model.classifier outcome * Detector.Classification.t

(** [service_round ?budget_fraction ~stream ~oracle queries] is the
    streaming analogue of {!classification_admitting} for external-model
    deployments: evaluate the (features, probability-vector) batch
    through the stream's {!Service}, rank and budget-clip the rejects
    exactly like {!classification}, relabel the chosen ones through
    [oracle], and {!Stream.admit} each straight into the sliding-window
    calibration store — which republishes the serving engine after
    every admission. No model retrain happens (the host owns the
    model), so [updated_model] is [()]. [monitor] is fed every verdict
    ({!Monitor.observe}); give the stream the same monitor and
    escalating drift shrinks its decay horizon. *)
val service_round :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  ?monitor:Monitor.t ->
  ?pool:Prom_parallel.Pool.t ->
  stream:Stream.t ->
  oracle:(Vec.t -> int) ->
  (Vec.t * Vec.t) array ->
  unit outcome

(** [regression] is the same loop for cost models; [oracle] profiles a
    flagged input and returns its true value. *)
val regression :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Regression.t ->
  trainer:Model.regressor_trainer ->
  train_data:float Dataset.t ->
  oracle:(Vec.t -> float) ->
  Vec.t array ->
  Model.regressor outcome

(** [regression_admitting] — the regression analogue of
    {!classification_admitting}. *)
val regression_admitting :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Regression.t ->
  trainer:Model.regressor_trainer ->
  train_data:float Dataset.t ->
  oracle:(Vec.t -> float) ->
  Vec.t array ->
  Model.regressor outcome * Detector.Regression.t
