(** Incremental learning (paper Sec. 5.4): relabel a small budget of the
    drifting samples PROM flags, fold them back into the training set,
    and retrain (warm-started) — restoring deployment-time accuracy with
    minimal labeling effort. *)

open Prom_linalg
open Prom_ml

type 'label outcome = {
  updated_model : 'label;
  flagged_indices : int list;  (** test indices the committee rejected *)
  relabeled_indices : int list;  (** the subset sent to the oracle *)
  budget : int;
}

(** [classification ?budget_fraction ~detector ~trainer ~train_data
    ~oracle test_inputs] evaluates the detector on every test input,
    picks the [budget_fraction] (default 0.05) of flagged samples with
    the lowest credibility (most drifted first, minimum 1 when anything
    is flagged), queries [oracle] for their true labels, and retrains.
    Returns the updated classifier; the detector itself is not mutated —
    rebuild it with the new model to continue the feedback loop.
    [telemetry] counts flagged inputs, oracle relabels and retraining
    rounds on the bundle's incremental-learning counters. *)
val classification :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Classification.t ->
  trainer:Model.classifier_trainer ->
  train_data:int Dataset.t ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  Model.classifier outcome

(** [classification_admitting] runs the same round as
    {!classification} and additionally folds every relabeled sample
    into the serving detector's calibration store through
    {!Detector.Classification.admit} — the pruned kNN index grows
    incrementally, so the detector keeps serving (with the current
    model) while the retrained [updated_model] is prepared for the
    next swap. Returns the round's outcome and the grown detector. *)
val classification_admitting :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Classification.t ->
  trainer:Model.classifier_trainer ->
  train_data:int Dataset.t ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  Model.classifier outcome * Detector.Classification.t

(** [regression] is the same loop for cost models; [oracle] profiles a
    flagged input and returns its true value. *)
val regression :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Regression.t ->
  trainer:Model.regressor_trainer ->
  train_data:float Dataset.t ->
  oracle:(Vec.t -> float) ->
  Vec.t array ->
  Model.regressor outcome

(** [regression_admitting] — the regression analogue of
    {!classification_admitting}. *)
val regression_admitting :
  ?budget_fraction:float ->
  ?telemetry:Telemetry.t ->
  detector:Detector.Regression.t ->
  trainer:Model.regressor_trainer ->
  train_data:float Dataset.t ->
  oracle:(Vec.t -> float) ->
  Vec.t array ->
  Model.regressor outcome * Detector.Regression.t
