(* Always-on recalibration: a sliding-window calibration store wrapped
   around a serving [Service.t]. Relabeled samples are admitted online
   ([Calibration.append_cls] grows the store and its pruned index
   incrementally), per-entry decay weights are recomputed from admission
   age under the configured [Decay.policy], expired entries are evicted
   by compaction (full LOO rebuild off the serving path), and every
   admission publishes the updated store through [Service.swap] — the
   serving engine is replaced atomically, so live traffic never blocks
   on (or fails during) a recalibration step. *)

let capacity_env = "PROM_STREAM_CAPACITY"
let decay_env = "PROM_STREAM_DECAY"
let compact_env = "PROM_STREAM_COMPACT"
let default_capacity = 4096
let default_compact_fraction = 0.5

let env_capacity () =
  match Sys.getenv_opt capacity_env with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | _ -> default_capacity)
  | None -> default_capacity

let env_policy () =
  match Sys.getenv_opt decay_env with
  | Some s -> (
      match Decay.of_string s with Some p -> p | None -> Decay.Unit_weights)
  | None -> Decay.Unit_weights

let env_compact_fraction () =
  match Sys.getenv_opt compact_env with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 && v <= 1.0 -> v
      | _ -> default_compact_fraction)
  | None -> default_compact_fraction

type t = {
  service : Service.t;
  config : Config.t;
  committee : Nonconformity.cls list;
  monitor : Monitor.t option;
  pool : Prom_parallel.Pool.t option;
  tel : Telemetry.stream option;
  policy : Decay.policy;
  capacity : int;
  compact_fraction : float;
  dim : int;
  n_classes : int;
  mutable cal : Calibration.cls;
  (* Admission sequence of each resident entry, aligned with
     [cal.entries]; strictly increasing under this module's own
     lifecycle (appends push the counter, compaction filters in
     order). *)
  mutable seqs : int array;
  mutable next_seq : int;
  mutable scale : float;
  mutable admitted : int;
  mutable evicted : int;
  mutable compactions : int;
  mutable publishes : int;
  mutable last_rebuild_s : float;
  mutable last_swap_s : float;
}

type stats = {
  resident : int;
  live : int;
  expired : int;
  scale : float;
  admitted : int;
  evicted : int;
  compactions : int;
  publishes : int;
  last_rebuild_s : float;
  last_swap_s : float;
}

(* The monitor escalates drift by shrinking the decay horizon: a
   degrading deployment forgets at twice the configured rate, an ageing
   one at four times. *)
let scale_of_status = function
  | Monitor.Healthy -> 1.0
  | Monitor.Degrading -> 0.5
  | Monitor.Ageing -> 0.25

let weights_of t =
  let last = t.next_seq - 1 in
  Array.map (fun s -> Decay.weight t.policy ~scale:t.scale ~age:(last - s)) t.seqs

let count_expired weights =
  Array.fold_left (fun acc w -> if w = 0.0 then acc + 1 else acc) 0 weights

let state t =
  {
    Decay.ws_policy = t.policy;
    ws_capacity = t.capacity;
    ws_compact_fraction = t.compact_fraction;
    ws_scale = t.scale;
    ws_seqs = Array.copy t.seqs;
    ws_next_seq = t.next_seq;
  }

let snapshot t =
  Snapshot.Cls
    {
      Snapshot.cls_config = t.config;
      cls_committee = t.committee;
      cls_model = None;
      cls_calibration = t.cal;
      cls_monitor = Option.map Monitor.persist t.monitor;
      cls_stream = Some (state t);
    }

(* Publish the current store: build a snapshot around it and hot-swap
   the serving engine. In-flight queries finish against the engine they
   started with ([Service.swap] is atomic), so the only cost live
   traffic can observe is the engine build — which is why it's timed. *)
let publish t =
  let t0 = Prom_obs.now () in
  Service.swap t.service (snapshot t);
  let dt = Prom_obs.now () -. t0 in
  t.last_swap_s <- dt;
  t.publishes <- t.publishes + 1;
  match t.tel with
  | Some tel ->
      Prom_obs.Counter.inc tel.Telemetry.st_publishes;
      Prom_obs.Histogram.observe tel.Telemetry.st_swap_seconds dt
  | None -> ()

let set_gauges t weights =
  match t.tel with
  | None -> ()
  | Some tel ->
      let resident = Array.length weights in
      let expired = count_expired weights in
      Prom_obs.Gauge.set tel.Telemetry.st_window
        (float_of_int t.capacity *. t.scale);
      Prom_obs.Gauge.set tel.Telemetry.st_resident (float_of_int resident);
      Prom_obs.Gauge.set tel.Telemetry.st_live (float_of_int (resident - expired));
      Prom_obs.Gauge.set tel.Telemetry.st_expired (float_of_int expired);
      Prom_obs.Gauge.set tel.Telemetry.st_scale t.scale

(* Compaction: drop weight-zero entries (and, past capacity, the oldest
   live ones), then rebuild the LOO reference and index from the
   survivors with the store's frozen scaler and tau
   ([Calibration.rebuild_cls]). The newest entry has age 0 and hence
   weight 1 under every policy, so at least one survivor always
   remains. *)
let compact t weights =
  let n = Array.length t.seqs in
  let live = ref [] in
  for i = n - 1 downto 0 do
    if weights.(i) > 0.0 then live := i :: !live
  done;
  let live = Array.of_list !live in
  let survivors =
    if Array.length live <= t.capacity then live
    else begin
      (* Keep the newest [capacity] live entries. Sequences are
         increasing in entry order, but sort defensively so a resumed
         state with shuffled sequences still evicts oldest-first. *)
      let by_seq = Array.copy live in
      Array.sort (fun a b -> Stdlib.compare t.seqs.(b) t.seqs.(a)) by_seq;
      let kept = Array.sub by_seq 0 t.capacity in
      Array.sort Stdlib.compare kept;
      kept
    end
  in
  let entries = Array.map (fun i -> t.cal.Calibration.entries.(i)) survivors in
  let t0 = Prom_obs.now () in
  let cal =
    Calibration.rebuild_cls ?pool:t.pool ~config:t.config
      ~scaler:t.cal.Calibration.scaler ~tau:t.cal.Calibration.tau entries
  in
  let dt = Prom_obs.now () -. t0 in
  let dropped = n - Array.length survivors in
  t.cal <- cal;
  t.seqs <- Array.map (fun i -> t.seqs.(i)) survivors;
  t.evicted <- t.evicted + dropped;
  t.compactions <- t.compactions + 1;
  t.last_rebuild_s <- dt;
  match t.tel with
  | Some tel ->
      Prom_obs.Counter.add tel.Telemetry.st_evicted (float_of_int dropped);
      Prom_obs.Counter.inc tel.Telemetry.st_compactions;
      Prom_obs.Histogram.observe tel.Telemetry.st_rebuild_seconds dt
  | None -> ()

(* Fold the current weight vector into the store. Skipped entirely under
   the unit policy: the store then never carries a weight vector, every
   consumer takes the exact pre-existing unweighted code paths, and the
   published verdicts are bit-identical to a batch-calibrated service. *)
let reweight t =
  let weights = weights_of t in
  if not (Decay.is_unit t.policy) then t.cal <- Calibration.reweight_cls t.cal weights;
  weights

let create ?policy ?capacity ?compact_fraction ?monitor ?telemetry ?pool ?state
    service =
  let s =
    match Service.snapshot service with
    | Snapshot.Cls s -> s
    | Snapshot.Reg _ -> assert false
  in
  let cal = s.Snapshot.cls_calibration in
  let n = Array.length cal.Calibration.entries in
  let dim, n_classes = Service.dims service in
  let policy, capacity, compact_fraction, scale, seqs, next_seq =
    match state with
    | Some ws ->
        Decay.validate_window ws;
        if Array.length ws.Decay.ws_seqs <> n then
          invalid_arg
            "Stream.create: window state does not match the calibration store";
        ( ws.Decay.ws_policy,
          ws.Decay.ws_capacity,
          ws.Decay.ws_compact_fraction,
          ws.Decay.ws_scale,
          Array.copy ws.Decay.ws_seqs,
          ws.Decay.ws_next_seq )
    | None ->
        let policy = match policy with Some p -> p | None -> env_policy () in
        let capacity =
          match capacity with Some c -> c | None -> env_capacity ()
        in
        let compact_fraction =
          match compact_fraction with
          | Some f -> f
          | None -> env_compact_fraction ()
        in
        Decay.validate policy;
        if capacity < 1 then invalid_arg "Stream.create: capacity must be positive";
        if not (compact_fraction > 0.0 && compact_fraction <= 1.0) then
          invalid_arg "Stream.create: compact fraction outside (0, 1]";
        (* The seeding batch is treated as arriving in entry order. *)
        (policy, capacity, compact_fraction, 1.0, Array.init n Fun.id, n)
  in
  let tel = Option.map Telemetry.stream_metrics telemetry in
  let t =
    {
      service;
      config = s.Snapshot.cls_config;
      committee = s.Snapshot.cls_committee;
      monitor;
      pool;
      tel;
      policy;
      capacity;
      compact_fraction;
      dim;
      n_classes;
      cal;
      seqs;
      next_seq;
      scale;
      admitted = 0;
      evicted = 0;
      compactions = 0;
      publishes = 0;
      last_rebuild_s = 0.0;
      last_swap_s = 0.0;
    }
  in
  (* Non-unit policies publish once at creation so the serving engine
     starts from the weighted store; the unit policy leaves the
     already-serving (bit-identical) engine untouched. *)
  let weights = reweight t in
  set_gauges t weights;
  if not (Decay.is_unit t.policy) then publish t;
  t

let admit t ~features ~label ~proba =
  if Array.length features <> t.dim then
    invalid_arg "Stream.admit: feature dimension mismatch";
  if Array.length proba <> t.n_classes then
    invalid_arg "Stream.admit: probability vector dimension mismatch";
  if label < 0 || label >= t.n_classes then
    invalid_arg "Stream.admit: label out of range";
  let entry =
    {
      Calibration.features = Calibration.standardize_cls t.cal features;
      label;
      proba = Array.copy proba;
    }
  in
  t.cal <- Calibration.append_cls t.cal [| entry |];
  t.seqs <- Array.append t.seqs [| t.next_seq |];
  t.next_seq <- t.next_seq + 1;
  t.admitted <- t.admitted + 1;
  (match t.tel with
  | Some tel -> Prom_obs.Counter.inc tel.Telemetry.st_admitted
  | None -> ());
  (match t.monitor with
  | Some m -> t.scale <- scale_of_status (Monitor.status m)
  | None -> ());
  let weights = weights_of t in
  let resident = Array.length weights in
  let expired = count_expired weights in
  if
    resident > t.capacity
    || (expired > 0
       && float_of_int expired >= t.compact_fraction *. float_of_int resident)
  then compact t weights;
  let weights = reweight t in
  set_gauges t weights;
  publish t

let service t = t.service

let stats t =
  let weights = weights_of t in
  let resident = Array.length weights in
  let expired = count_expired weights in
  {
    resident;
    live = resident - expired;
    expired;
    scale = t.scale;
    admitted = t.admitted;
    evicted = t.evicted;
    compactions = t.compactions;
    publishes = t.publishes;
    last_rebuild_s = t.last_rebuild_s;
    last_swap_s = t.last_swap_s;
  }
