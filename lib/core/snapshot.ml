open Prom_ml
module Buf = Prom_store.Buf
module Store = Prom_store.Store

(* v1: calibration stores without the kNN index payload. v2 appends an
   optional serialized index to each calibration store, so a hot-swap
   restore adopts the snapshotted index instead of pausing to rebuild
   it. v3 appends the weighted-conformal state: each calibration store
   gains its sorted-LOO permutation and per-entry decay weights, and
   classification payloads gain an optional streaming window state
   ([Decay.window_state]) so the ingestion loop resumes with the exact
   weights it was publishing. Older payloads still decode (v1 rebuilds
   the index by policy; pre-v3 stores restore unweighted with an
   unknown LOO permutation). *)
let codec_version = 3
let min_codec_version = 1
let kind_cls = "detector-cls"
let kind_reg = "detector-reg"

type cls_snapshot = {
  cls_config : Config.t;
  cls_committee : Nonconformity.cls list;
  cls_model : Model.classifier option;
  cls_calibration : Calibration.cls;
  cls_monitor : Monitor.persisted option;
  cls_stream : Decay.window_state option;
}

type reg_snapshot = {
  reg_config : Config.t;
  reg_committee : Nonconformity.reg list;
  reg_model : Model.regressor;
  reg_calibration : Calibration.reg;
  reg_monitor : Monitor.persisted option;
}

type t = Cls of cls_snapshot | Reg of reg_snapshot

(* --- Model dispatch. ---

   Models are stored as (name, payload) with the per-module codecs of
   [Prom_ml]; the name doubles as the dispatch key at decode time. The
   service's "external" pseudo-model is the one nameable model without a
   codec: its probability function lives in the serving process, so the
   snapshot stores no payload and {!Service} rebuilds the closure around
   the restored calibration. *)

let external_model_name = "external"

let cls_codecs :
    (string * ((Buffer.t -> Model.classifier -> unit) * (Buf.reader -> Model.classifier)))
    list =
  [
    ("logistic", (Logistic.to_buf, Logistic.of_buf));
    ("naive-bayes", (Naive_bayes.to_buf, Naive_bayes.of_buf));
    ("knn", (Knn.to_buf, Knn.of_buf));
    ("svm", (Svm.to_buf, Svm.of_buf));
    ("mlp", (Mlp.to_buf, Mlp.of_buf));
    ("decision-tree", (Decision_tree.to_buf, Decision_tree.of_buf));
    ("random-forest", (Random_forest.to_buf, Random_forest.of_buf));
    ("gradient-boosting", (Gradient_boosting.to_buf, Gradient_boosting.of_buf));
  ]

let reg_codecs :
    (string * ((Buffer.t -> Model.regressor -> unit) * (Buf.reader -> Model.regressor)))
    list =
  [
    ("linreg", (Linreg.reg_to_buf, Linreg.reg_of_buf));
    ("knn-reg", (Knn.reg_to_buf, Knn.reg_of_buf));
    ("mlp-reg", (Mlp.reg_to_buf, Mlp.reg_of_buf));
    ("decision-tree-reg", (Decision_tree.reg_to_buf, Decision_tree.reg_of_buf));
    ("random-forest-reg", (Random_forest.reg_to_buf, Random_forest.reg_of_buf));
    ("gradient-boosting-reg", (Gradient_boosting.reg_to_buf, Gradient_boosting.reg_of_buf));
  ]

let blob_of encode v =
  let b = Buffer.create 256 in
  encode b v;
  Buffer.contents b

let w_cls_model b = function
  | None ->
      Buf.w_string b external_model_name;
      Buf.w_string b ""
  | Some (m : Model.classifier) -> (
      match List.assoc_opt m.name cls_codecs with
      | Some (encode, _) ->
          Buf.w_string b m.name;
          Buf.w_string b (blob_of encode m)
      | None ->
          invalid_arg
            (Printf.sprintf "Snapshot: classifier %S has no serializer" m.name))

let r_cls_model r =
  let name = Buf.r_string r in
  let blob = Buf.r_string r in
  if name = external_model_name then None
  else
    match List.assoc_opt name cls_codecs with
    | Some (_, decode) ->
        let br = Buf.reader blob in
        let m = decode br in
        Buf.expect_end br;
        Some m
    | None -> Buf.corrupt "Snapshot: unknown classifier %S" name

let w_reg_model b (m : Model.regressor) =
  match List.assoc_opt m.name reg_codecs with
  | Some (encode, _) ->
      Buf.w_string b m.name;
      Buf.w_string b (blob_of encode m)
  | None ->
      invalid_arg (Printf.sprintf "Snapshot: regressor %S has no serializer" m.name)

let r_reg_model r =
  let name = Buf.r_string r in
  let blob = Buf.r_string r in
  match List.assoc_opt name reg_codecs with
  | Some (_, decode) ->
      let br = Buf.reader blob in
      let m = decode br in
      Buf.expect_end br;
      m
  | None -> Buf.corrupt "Snapshot: unknown regressor %S" name

(* --- Committees (persisted as expert names). --- *)

let w_cls_committee b committee =
  List.iter
    (fun fn ->
      let name = fn.Nonconformity.cls_name in
      if Nonconformity.cls_by_name name = None then
        invalid_arg (Printf.sprintf "Snapshot: expert %S has no registry entry" name))
    committee;
  Buf.w_list Buf.w_string b (List.map (fun fn -> fn.Nonconformity.cls_name) committee)

let r_cls_committee r =
  let names = Buf.r_list Buf.r_string r in
  if names = [] then Buf.corrupt "Snapshot: empty committee";
  List.map
    (fun name ->
      match Nonconformity.cls_by_name name with
      | Some fn -> fn
      | None -> Buf.corrupt "Snapshot: unknown expert %S" name)
    names

let w_reg_committee b committee =
  List.iter
    (fun fn ->
      let name = fn.Nonconformity.reg_name in
      if Nonconformity.reg_by_name name = None then
        invalid_arg (Printf.sprintf "Snapshot: expert %S has no registry entry" name))
    committee;
  Buf.w_list Buf.w_string b (List.map (fun fn -> fn.Nonconformity.reg_name) committee)

let r_reg_committee r =
  let names = Buf.r_list Buf.r_string r in
  if names = [] then Buf.corrupt "Snapshot: empty committee";
  List.map
    (fun name ->
      match Nonconformity.reg_by_name name with
      | Some fn -> fn
      | None -> Buf.corrupt "Snapshot: unknown expert %S" name)
    names

(* --- Config. --- *)

let w_config b (c : Config.t) =
  Buf.w_float b c.epsilon;
  Buf.w_float b c.temperature;
  Buf.w_float b c.select_ratio;
  Buf.w_int b c.select_all_below;
  Buf.w_float b c.gaussian_c;
  Buf.w_int b c.knn_k;
  Buf.w_float b c.vote_fraction;
  Buf.w_u8 b
    (match c.decision_rule with
    | Config.Conjunction -> 0
    | Config.Disjunction -> 1
    | Config.Credibility_only -> 2)

let r_config r : Config.t =
  let epsilon = Buf.r_float r in
  let temperature = Buf.r_float r in
  let select_ratio = Buf.r_float r in
  let select_all_below = Buf.r_int r in
  let gaussian_c = Buf.r_float r in
  let knn_k = Buf.r_int r in
  let vote_fraction = Buf.r_float r in
  let decision_rule =
    match Buf.r_u8 r with
    | 0 -> Config.Conjunction
    | 1 -> Config.Disjunction
    | 2 -> Config.Credibility_only
    | t -> Buf.corrupt "Snapshot: invalid decision rule tag %d" t
  in
  {
    epsilon;
    temperature;
    select_ratio;
    select_all_below;
    gaussian_c;
    knn_k;
    vote_fraction;
    decision_rule;
  }

(* --- Scaler, k-means, monitor. --- *)

let w_scaler b scaler =
  let mu, sigma = Dataset.Scaler.params scaler in
  Buf.w_floats b mu;
  Buf.w_floats b sigma

let r_scaler r =
  let mu = Buf.r_floats r in
  let sigma = Buf.r_floats r in
  if Array.length mu <> Array.length sigma then Buf.corrupt "Snapshot: scaler shape";
  Dataset.Scaler.of_params ~mu ~sigma

let w_kmeans b (k : Kmeans.t) =
  Buf.w_float_rows b k.centroids;
  Buf.w_ints b k.assignments;
  Buf.w_float b k.inertia

let r_kmeans r : Kmeans.t =
  let centroids = Buf.r_float_rows r in
  let assignments = Buf.r_ints r in
  let inertia = Buf.r_float r in
  if Array.length centroids = 0 then Buf.corrupt "Snapshot: no centroids";
  let k = Array.length centroids in
  Array.iter
    (fun a -> if a < 0 || a >= k then Buf.corrupt "Snapshot: cluster assignment out of range")
    assignments;
  { centroids; assignments; inertia }

let w_monitor b (p : Monitor.persisted) =
  Buf.w_int b p.p_window;
  Buf.w_float b p.p_threshold;
  Buf.w_int b p.p_patience;
  Buf.w_bools b p.p_buffer;
  Buf.w_int b p.p_filled;
  Buf.w_int b p.p_head;
  Buf.w_int b p.p_drifted_in_window;
  Buf.w_int b p.p_above_streak;
  Buf.w_int b p.p_consecutive_degrading;
  Buf.w_int b p.p_total;
  Buf.w_u8 b
    (match p.p_status with Monitor.Healthy -> 0 | Monitor.Degrading -> 1 | Monitor.Ageing -> 2)

let r_monitor r : Monitor.persisted =
  let p_window = Buf.r_int r in
  let p_threshold = Buf.r_float r in
  let p_patience = Buf.r_int r in
  let p_buffer = Buf.r_bools r in
  let p_filled = Buf.r_int r in
  let p_head = Buf.r_int r in
  let p_drifted_in_window = Buf.r_int r in
  let p_above_streak = Buf.r_int r in
  let p_consecutive_degrading = Buf.r_int r in
  let p_total = Buf.r_int r in
  let p_status =
    match Buf.r_u8 r with
    | 0 -> Monitor.Healthy
    | 1 -> Monitor.Degrading
    | 2 -> Monitor.Ageing
    | t -> Buf.corrupt "Snapshot: invalid monitor status tag %d" t
  in
  {
    p_window;
    p_threshold;
    p_patience;
    p_buffer;
    p_filled;
    p_head;
    p_drifted_in_window;
    p_above_streak;
    p_consecutive_degrading;
    p_total;
    p_status;
  }

(* --- Pruned kNN index (codec v2+). ---

   The exact structure travels through [Knn_index.export]/[import]:
   centroids and radii as IEEE bit patterns, membership as the grouped
   permutation. [import] revalidates everything structural; the restore
   constructors check the fit against the entries. *)

let w_knn_index b idx =
  let e = Prom_linalg.Knn_index.export idx in
  Buf.w_int b e.Prom_linalg.Knn_index.ex_dim;
  Buf.w_int b e.Prom_linalg.Knn_index.ex_n;
  Buf.w_int b e.Prom_linalg.Knn_index.ex_built_n;
  Buf.w_floats b e.Prom_linalg.Knn_index.ex_centroids;
  Buf.w_floats b e.Prom_linalg.Knn_index.ex_radii;
  Buf.w_ints b e.Prom_linalg.Knn_index.ex_members;
  Buf.w_ints b e.Prom_linalg.Knn_index.ex_offsets

let r_knn_index r =
  let ex_dim = Buf.r_int r in
  let ex_n = Buf.r_int r in
  let ex_built_n = Buf.r_int r in
  let ex_centroids = Buf.r_floats r in
  let ex_radii = Buf.r_floats r in
  let ex_members = Buf.r_ints r in
  let ex_offsets = Buf.r_ints r in
  (* [import] raises [Invalid_argument] on structural corruption, which
     [decode] maps to [Corrupt] like every other invalid-state path. *)
  Prom_linalg.Knn_index.import
    { Prom_linalg.Knn_index.ex_dim; ex_n; ex_built_n; ex_centroids; ex_radii;
      ex_members; ex_offsets }

(* --- Streaming window state (codec v3+). --- *)

let w_decay_policy b = function
  | Decay.Unit_weights ->
      Buf.w_u8 b 0;
      Buf.w_float b 0.0
  | Decay.Exponential { half_life } ->
      Buf.w_u8 b 1;
      Buf.w_float b half_life
  | Decay.Sliding { window } ->
      Buf.w_u8 b 2;
      Buf.w_float b (float_of_int window)

let r_decay_policy r =
  let tag = Buf.r_u8 r in
  let param = Buf.r_float r in
  match tag with
  | 0 -> Decay.Unit_weights
  | 1 -> Decay.Exponential { half_life = param }
  | 2 -> Decay.Sliding { window = int_of_float param }
  | t -> Buf.corrupt "Snapshot: invalid decay policy tag %d" t

let w_window_state b (ws : Decay.window_state) =
  w_decay_policy b ws.Decay.ws_policy;
  Buf.w_int b ws.Decay.ws_capacity;
  Buf.w_float b ws.Decay.ws_compact_fraction;
  Buf.w_float b ws.Decay.ws_scale;
  Buf.w_ints b ws.Decay.ws_seqs;
  Buf.w_int b ws.Decay.ws_next_seq

(* [Decay.validate_window] raises [Invalid_argument] on out-of-range
   fields; [decode] maps that to [Corrupt] like every other invalid
   domain state. *)
let r_window_state r : Decay.window_state =
  let ws_policy = r_decay_policy r in
  let ws_capacity = Buf.r_int r in
  let ws_compact_fraction = Buf.r_float r in
  let ws_scale = Buf.r_float r in
  let ws_seqs = Buf.r_ints r in
  let ws_next_seq = Buf.r_int r in
  let ws =
    { Decay.ws_policy; ws_capacity; ws_compact_fraction; ws_scale; ws_seqs;
      ws_next_seq }
  in
  Decay.validate_window ws;
  ws

(* --- Calibration stores. --- *)

let w_cls_entry b (e : Calibration.cls_entry) =
  Buf.w_floats b e.features;
  Buf.w_int b e.label;
  Buf.w_floats b e.proba

let r_cls_entry r : Calibration.cls_entry =
  let features = Buf.r_floats r in
  let label = Buf.r_int r in
  let proba = Buf.r_floats r in
  if label < 0 || label >= Array.length proba then
    Buf.corrupt "Snapshot: entry label out of range";
  { features; label; proba }

let w_cls_calibration b (c : Calibration.cls) =
  Buf.w_array w_cls_entry b c.entries;
  w_scaler b c.scaler;
  Buf.w_float b c.tau;
  Buf.w_floats b c.loo_distances;
  Buf.w_option w_knn_index b (Calibration.index_of_cls c);
  Buf.w_ints b c.loo_order;
  Buf.w_floats b c.ent_weights

let r_cls_calibration ~version ~config r =
  let entries = Buf.r_array r_cls_entry r in
  let scaler = r_scaler r in
  let tau = Buf.r_float r in
  let loo_distances = Buf.r_floats r in
  let index = if version >= 2 then Buf.r_option r_knn_index r else None in
  let loo_order = if version >= 3 then Buf.r_ints r else [||] in
  let ent_weights = if version >= 3 then Buf.r_floats r else [||] in
  Calibration.restore_cls ?index ~loo_order ~ent_weights ~entries ~config ~scaler ~tau
    ~loo_distances ()

let w_reg_entry b (e : Calibration.reg_entry) =
  Buf.w_floats b e.rfeatures;
  Buf.w_float b e.target;
  Buf.w_float b e.rpred;
  Buf.w_int b e.cluster;
  Buf.w_float b e.rproxy;
  Buf.w_float b e.rspread

let r_reg_entry r : Calibration.reg_entry =
  let rfeatures = Buf.r_floats r in
  let target = Buf.r_float r in
  let rpred = Buf.r_float r in
  let cluster = Buf.r_int r in
  let rproxy = Buf.r_float r in
  let rspread = Buf.r_float r in
  if cluster < 0 then Buf.corrupt "Snapshot: negative cluster label";
  { rfeatures; target; rpred; cluster; rproxy; rspread }

let w_reg_calibration b (c : Calibration.reg) =
  Buf.w_array w_reg_entry b c.rentries;
  w_kmeans b c.clusters;
  Buf.w_int b c.n_clusters;
  w_scaler b c.rscaler;
  Buf.w_float b c.rtau;
  Buf.w_floats b c.rloo_distances;
  Buf.w_option w_knn_index b (Calibration.index_of_reg c);
  Buf.w_ints b c.rloo_order;
  Buf.w_floats b c.rent_weights

let r_reg_calibration ~version ~config r =
  let rentries = Buf.r_array r_reg_entry r in
  let clusters = r_kmeans r in
  let n_clusters = Buf.r_int r in
  let rscaler = r_scaler r in
  let rtau = Buf.r_float r in
  let rloo_distances = Buf.r_floats r in
  let index = if version >= 2 then Buf.r_option r_knn_index r else None in
  let rloo_order = if version >= 3 then Buf.r_ints r else [||] in
  let rent_weights = if version >= 3 then Buf.r_floats r else [||] in
  Array.iter
    (fun (e : Calibration.reg_entry) ->
      if e.cluster >= n_clusters then Buf.corrupt "Snapshot: cluster label out of range")
    rentries;
  Calibration.restore_reg ?index ~rloo_order ~rent_weights ~rentries ~rconfig:config
    ~clusters ~n_clusters ~rscaler ~rtau ~rloo_distances ()

(* --- Top-level payload. --- *)

let encode snapshot =
  let b = Buffer.create 4096 in
  (match snapshot with
  | Cls s ->
      Buf.w_u8 b 0;
      w_config b s.cls_config;
      w_cls_committee b s.cls_committee;
      w_cls_model b s.cls_model;
      w_cls_calibration b s.cls_calibration;
      Buf.w_option w_monitor b s.cls_monitor;
      Buf.w_option w_window_state b s.cls_stream
  | Reg s ->
      Buf.w_u8 b 1;
      w_config b s.reg_config;
      w_reg_committee b s.reg_committee;
      w_reg_model b s.reg_model;
      w_reg_calibration b s.reg_calibration;
      Buf.w_option w_monitor b s.reg_monitor);
  Buffer.contents b

(* Restore constructors raise [Invalid_argument] on inconsistent state;
   from a decode's point of view that is just another corruption mode of
   the payload, so it maps to [Corrupt] (and thus to the generation
   fallback in [load_latest]). *)
let decode ?(version = codec_version) payload =
  if version < min_codec_version || version > codec_version then
    Buf.corrupt "Snapshot: unsupported codec version %d" version;
  let r = Buf.reader payload in
  try
    let t =
      match Buf.r_u8 r with
      | 0 ->
          let cls_config = r_config r in
          let cls_committee = r_cls_committee r in
          let cls_model = r_cls_model r in
          let cls_calibration = r_cls_calibration ~version ~config:cls_config r in
          let cls_monitor = Buf.r_option r_monitor r in
          let cls_stream =
            if version >= 3 then Buf.r_option r_window_state r else None
          in
          Cls
            { cls_config; cls_committee; cls_model; cls_calibration; cls_monitor;
              cls_stream }
      | 1 ->
          let reg_config = r_config r in
          let reg_committee = r_reg_committee r in
          let reg_model = r_reg_model r in
          let reg_calibration = r_reg_calibration ~version ~config:reg_config r in
          let reg_monitor = Buf.r_option r_monitor r in
          Reg { reg_config; reg_committee; reg_model; reg_calibration; reg_monitor }
      | t -> Buf.corrupt "Snapshot: invalid payload tag %d" t
    in
    Buf.expect_end r;
    t
  with Invalid_argument msg -> Buf.corrupt "Snapshot: invalid state (%s)" msg

let kind_of = function Cls _ -> kind_cls | Reg _ -> kind_reg

(* --- Detector bridges. --- *)

let of_cls_detector ?monitor ?stream ?(external_model = false) detector =
  let model = Detector.Classification.model detector in
  Cls
    {
      cls_config = Detector.Classification.config detector;
      cls_committee = Detector.Classification.committee detector;
      cls_model = (if external_model then None else Some model);
      cls_calibration = Detector.Classification.calibration detector;
      cls_monitor = Option.map Monitor.persist monitor;
      cls_stream = stream;
    }

let of_reg_detector ?monitor detector =
  Reg
    {
      reg_config = Detector.Regression.config detector;
      reg_committee = Detector.Regression.committee detector;
      reg_model = Detector.Regression.model detector;
      reg_calibration = Detector.Regression.calibration detector;
      reg_monitor = Option.map Monitor.persist monitor;
    }

let to_cls_detector ?telemetry ?(feature_of = Fun.id) (s : cls_snapshot) =
  match s.cls_model with
  | None ->
      invalid_arg
        "Snapshot.to_cls_detector: snapshot has an external model; restore through \
         Service.of_snapshot"
  | Some model ->
      Detector.Classification.of_calibration ~config:s.cls_config
        ~committee:s.cls_committee ?telemetry ~model ~feature_of s.cls_calibration

let to_reg_detector ?telemetry ?(feature_of = Fun.id) (s : reg_snapshot) =
  Detector.Regression.of_calibration ~config:s.reg_config ~committee:s.reg_committee
    ?telemetry ~model:s.reg_model ~feature_of s.reg_calibration

(* --- Store plumbing. --- *)

let save ?telemetry ~dir snapshot =
  let info =
    Store.save ~dir ~kind:(kind_of snapshot) ~codec_version (encode snapshot)
  in
  (match telemetry with
  | Some tel ->
      Prom_obs.Counter.inc tel.Telemetry.snapshot_saves;
      Prom_obs.Gauge.set tel.Telemetry.snapshot_generation
        (float_of_int info.Store.generation)
  | None -> ());
  info

let check_codec (info : Store.info) =
  let v = info.Store.codec_version in
  if v < min_codec_version || v > codec_version then
    Buf.corrupt "Snapshot: unsupported codec version %d" v

(* Generations whose payload decodes but whose domain state is invalid
   fall back exactly like checksum failures: walk newest-first, skip
   anything that raises. *)
let load_latest ?telemetry ?kind ~dir () =
  let rec try_generations = function
    | [] -> None
    | g :: rest -> (
        match Store.load_generation ?kind ~dir g with
        | None -> try_generations rest
        | Some (info, payload) -> (
            match
              check_codec info;
              decode ~version:info.Store.codec_version payload
            with
            | snapshot ->
                (match telemetry with
                | Some tel ->
                    Prom_obs.Counter.inc tel.Telemetry.snapshot_loads;
                    Prom_obs.Gauge.set tel.Telemetry.snapshot_generation
                      (float_of_int info.Store.generation)
                | None -> ());
                Some (snapshot, info)
            | exception Buf.Corrupt _ -> try_generations rest))
  in
  try_generations (List.rev (Store.generations dir))

let load path =
  let info, payload = Store.load path in
  check_codec info;
  if info.Store.kind <> kind_cls && info.Store.kind <> kind_reg then
    Buf.corrupt "Snapshot: unknown kind %S" info.Store.kind;
  (decode ~version:info.Store.codec_version payload, info)
