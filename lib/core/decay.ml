(* Decay policies for streaming weighted conformal calibration (Barber,
   Candès, Ramdas & Tibshirani, "Conformal prediction beyond
   exchangeability"): each calibration entry carries a weight derived
   from its age — how many admissions ago it entered the window — so
   recent samples dominate the weighted rank sums when the calibration
   distribution itself drifts. Unit weights recover the exchangeable
   (unweighted) p-values exactly. *)

type policy =
  | Unit_weights
  | Exponential of { half_life : float }
  | Sliding of { window : int }

let validate = function
  | Unit_weights -> ()
  | Exponential { half_life } ->
      if not (half_life > 0.0) then
        invalid_arg "Decay: exponential half-life must be positive"
  | Sliding { window } ->
      if window < 1 then invalid_arg "Decay: sliding window must be positive"

(* [scale] shrinks the policy's horizon under escalating drift (the
   monitor drives it: 1.0 healthy, smaller when degrading/ageing); the
   unit policy has no horizon to shrink. Weight of a sample [age]
   admissions old. *)
let weight policy ~scale ~age =
  if age < 0 then invalid_arg "Decay.weight: negative age";
  if not (scale > 0.0 && scale <= 1.0) then
    invalid_arg "Decay.weight: scale outside (0, 1]";
  match policy with
  | Unit_weights -> 1.0
  | Exponential { half_life } -> 0.5 ** (float_of_int age /. (half_life *. scale))
  | Sliding { window } ->
      if float_of_int age < float_of_int window *. scale then 1.0 else 0.0

let is_unit = function Unit_weights -> true | _ -> false

let to_string = function
  | Unit_weights -> "none"
  | Exponential { half_life } -> Printf.sprintf "exp:%g" half_life
  | Sliding { window } -> Printf.sprintf "window:%d" window

let of_string s =
  let s = String.trim s in
  let prefixed p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if s = "none" || s = "unit" then Some Unit_weights
  else if prefixed "exp:" then
    match float_of_string_opt (rest "exp:") with
    | Some h when h > 0.0 -> Some (Exponential { half_life = h })
    | _ -> None
  else if prefixed "window:" then
    match int_of_string_opt (rest "window:") with
    | Some w when w >= 1 -> Some (Sliding { window = w })
    | _ -> None
  else None

(* The streaming store's persisted window state: everything the
   ingestion loop needs to resume after a restart with the exact same
   weights it was publishing — admission sequence numbers of the
   resident entries, the monotonic sequence counter, and the policy
   with its drift-driven scale. Travels in snapshot codec v3 next to
   the per-entry weights. *)
type window_state = {
  ws_policy : policy;
  ws_capacity : int;
  ws_compact_fraction : float;
  ws_scale : float;  (* drift-driven horizon shrink currently applied *)
  ws_seqs : int array;  (* admission sequence of each resident entry *)
  ws_next_seq : int;
}

let validate_window ws =
  validate ws.ws_policy;
  if ws.ws_capacity < 1 then invalid_arg "Decay: window capacity must be positive";
  if not (ws.ws_compact_fraction > 0.0 && ws.ws_compact_fraction <= 1.0) then
    invalid_arg "Decay: compact fraction outside (0, 1]";
  if not (ws.ws_scale > 0.0 && ws.ws_scale <= 1.0) then
    invalid_arg "Decay: window scale outside (0, 1]";
  if ws.ws_next_seq < 0 then invalid_arg "Decay: negative sequence counter";
  Array.iter
    (fun s ->
      if s < 0 || s >= ws.ws_next_seq then
        invalid_arg "Decay: entry sequence outside [0, next_seq)")
    ws.ws_seqs
