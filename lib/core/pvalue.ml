(* Eq. 2 with the adaptive weights applied as sample weights (the
   weighted conformal form): close calibration samples dominate the
   count, so the p-value reflects the local neighbourhood of the test
   input. The +1 terms are the standard split-CP smoothing - the test
   sample counts as its own most extreme calibration point - keeping
   p-values in (0, 1] and uniform under exchangeability. *)
let smoothing smooth at_least_w total_w =
  (* The +1 smoothing (the test sample counts as its own most extreme
     calibration point) keeps the credibility test valid on thin
     calibration sets; prediction-set construction uses the raw ratio so
     labels without any supporting evidence are excluded. *)
  if smooth then (at_least_w +. 1.0) /. (total_w +. 1.0)
  else if total_w <= 0.0 then 0.0
  else at_least_w /. total_w

let classification ?(smooth = true) ~fn ~selected ~proba ~label () =
  let test_score = fn.Nonconformity.cls_score ~proba ~label in
  let total_w = ref 0.0 and at_least_w = ref 0.0 and matching = ref 0 in
  Array.iter
    (fun { Calibration.entry; weight; _ } ->
      if entry.Calibration.label = label then begin
        incr matching;
        total_w := !total_w +. weight;
        let a = fn.Nonconformity.cls_score ~proba:entry.Calibration.proba ~label in
        if a >= test_score then at_least_w := !at_least_w +. weight
      end)
    selected;
  if !matching = 0 then 0.0 else smoothing smooth !at_least_w !total_w

let classification_all ?smooth ~fn ~selected ~proba ~n_classes () =
  Array.init n_classes (fun label -> classification ?smooth ~fn ~selected ~proba ~label ())

(* Hot-path form: a calibration entry only ever contributes to the
   p-value of its own label, so one pass over the selected subset with
   per-label accumulators covers every label at once; and its
   nonconformity score depends only on the entry, so it comes from a
   table precomputed at detector-construction time ([entry_scores],
   indexed like [entry_labels] by position in the calibration entries
   array) instead of a per-query closure call. The selection arrives in
   the packed {!Calibration.selection} form, so the whole scan touches
   only unboxed int/float arrays. The per-label accumulation order
   equals the selected-subset order either way, so the sums - and both
   the smoothed and raw p-values derived from them - are bit-identical
   to {!classification_all}. *)
let classification_all_table ?(packed_scores = [||]) ?(packed_labels = [||]) ~entry_scores
    ~entry_labels ~(selection : Calibration.selection) ~test_scores ~n_classes () =
  let total_w = Array.make n_classes 0.0 in
  let at_least_w = Array.make n_classes 0.0 in
  let matching = Array.make n_classes 0 in
  (* Gather-free dispatch: a packed selection carries each kept entry's
     position in the kNN index's member order, so when the caller also
     precomputed its tables in that order the scan reads them at the
     candidates' cluster-contiguous packed positions. Every packed slot
     holds the same value as its entry-order twin and the iteration
     order is unchanged, so the accumulators — and the p-values — are
     bit-identical; only the memory touched differs. *)
  let use_packed =
    selection.Calibration.sel_packed
    && Array.length packed_scores > 0
    && Array.length packed_labels > 0
  in
  let idxs =
    if use_packed then selection.Calibration.sel_pos else selection.Calibration.sel_idxs
  in
  let entry_scores = if use_packed then packed_scores else entry_scores in
  let entry_labels = if use_packed then packed_labels else entry_labels in
  let weights = selection.Calibration.sel_weights in
  for r = 0 to selection.Calibration.sel_count - 1 do
    let i = Array.unsafe_get idxs r in
    let label = Array.unsafe_get (entry_labels : int array) i in
    if label >= 0 && label < n_classes then begin
      matching.(label) <- matching.(label) + 1;
      let weight = Array.unsafe_get weights r in
      total_w.(label) <- total_w.(label) +. weight;
      if (entry_scores : float array).(i) >= (test_scores : float array).(label) then
        at_least_w.(label) <- at_least_w.(label) +. weight
    end
  done;
  let smoothed = Array.make n_classes 0.0 and raw = Array.make n_classes 0.0 in
  for label = 0 to n_classes - 1 do
    if matching.(label) > 0 then begin
      smoothed.(label) <- smoothing true at_least_w.(label) total_w.(label);
      raw.(label) <- smoothing false at_least_w.(label) total_w.(label)
    end
  done;
  (smoothed, raw)

let regression ?(smooth = true) ~fn ~selected ~spread_of_entry ~cluster ~test_score () =
  let total_w = ref 0.0 and at_least_w = ref 0.0 and matching = ref 0 in
  Array.iter
    (fun { Calibration.entry; weight; _ } ->
      if entry.Calibration.cluster = cluster then begin
        incr matching;
        total_w := !total_w +. weight;
        let a =
          fn.Nonconformity.reg_score ~pred:entry.Calibration.rpred
            ~truth:entry.Calibration.rproxy ~spread:(spread_of_entry entry)
        in
        if a >= test_score then at_least_w := !at_least_w +. weight
      end)
    selected;
  if !matching = 0 then 0.0 else smoothing smooth !at_least_w !total_w

let regression_all ?smooth ~fn ~selected ~spread_of_entry ~n_clusters ~test_score () =
  Array.init n_clusters (fun cluster ->
      regression ?smooth ~fn ~selected ~spread_of_entry ~cluster ~test_score ())

(* Regression analogue of {!classification_all_table}: one pass with
   per-cluster accumulators and table lookups. *)
let regression_all_table ?(packed_scores = [||]) ?(packed_clusters = [||]) ~entry_scores
    ~entry_clusters ~(selection : Calibration.selection) ~n_clusters ~test_score () =
  let total_w = Array.make n_clusters 0.0 in
  let at_least_w = Array.make n_clusters 0.0 in
  let matching = Array.make n_clusters 0 in
  (* See {!classification_all_table}: same gather-free dispatch. *)
  let use_packed =
    selection.Calibration.sel_packed
    && Array.length packed_scores > 0
    && Array.length packed_clusters > 0
  in
  let idxs =
    if use_packed then selection.Calibration.sel_pos else selection.Calibration.sel_idxs
  in
  let entry_scores = if use_packed then packed_scores else entry_scores in
  let entry_clusters = if use_packed then packed_clusters else entry_clusters in
  let weights = selection.Calibration.sel_weights in
  for r = 0 to selection.Calibration.sel_count - 1 do
    let i = Array.unsafe_get idxs r in
    let cluster = Array.unsafe_get (entry_clusters : int array) i in
    if cluster >= 0 && cluster < n_clusters then begin
      matching.(cluster) <- matching.(cluster) + 1;
      let weight = Array.unsafe_get weights r in
      total_w.(cluster) <- total_w.(cluster) +. weight;
      if (entry_scores : float array).(i) >= (test_score : float) then
        at_least_w.(cluster) <- at_least_w.(cluster) +. weight
    end
  done;
  let smoothed = Array.make n_clusters 0.0 and raw = Array.make n_clusters 0.0 in
  for cluster = 0 to n_clusters - 1 do
    if matching.(cluster) > 0 then begin
      smoothed.(cluster) <- smoothing true at_least_w.(cluster) total_w.(cluster);
      raw.(cluster) <- smoothing false at_least_w.(cluster) total_w.(cluster)
    end
  done;
  (smoothed, raw)
