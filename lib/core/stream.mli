(** Always-on recalibration: a sliding-window calibration store over a
    serving {!Service}.

    A [Stream.t] wraps the service a deployment is already answering
    queries from and keeps its calibration store current against a feed
    of freshly relabeled samples. Each {!admit} appends the sample to
    the store ({!Calibration.append_cls} — the pruned kNN index grows
    incrementally), recomputes per-entry decay weights from admission
    age under the configured {!Decay.policy}, compacts the store when
    expired entries pile up or capacity is exceeded (a full LOO rebuild,
    off the serving path), and publishes the result through
    {!Service.swap}. Swaps are atomic engine replacements: in-flight
    queries finish against the engine they started with, so live
    traffic never blocks on — and never fails during — a recalibration
    step.

    Under {!Decay.Unit_weights} (the default) the store never carries a
    weight vector and every consumer takes the exact unweighted code
    paths, so a streamed service's verdicts are bit-identical to a
    batch-calibrated one over the same entries. An attached {!Monitor}
    escalates drift by shrinking the decay horizon (scale 1.0 healthy,
    0.5 degrading, 0.25 ageing).

    Environment knobs, read when the corresponding [create] argument is
    omitted: [PROM_STREAM_CAPACITY] (resident-entry bound, default
    4096), [PROM_STREAM_DECAY] ({!Decay.of_string} syntax, default
    [none]) and [PROM_STREAM_COMPACT] (expired fraction triggering
    compaction, default 0.5). *)

open Prom_linalg

(** Name of the environment variable bounding resident entries
    ([PROM_STREAM_CAPACITY]) — exposed for tests and tooling. *)
val capacity_env : string

(** Name of the decay-policy environment variable
    ([PROM_STREAM_DECAY]). *)
val decay_env : string

(** Name of the compaction-fraction environment variable
    ([PROM_STREAM_COMPACT]). *)
val compact_env : string

(** An always-on recalibration loop over one serving service. *)
type t

(** Point-in-time counters and window occupancy, for benchmarks and
    operational assertions; the same numbers are exported continuously
    through {!Telemetry.stream_metrics} when telemetry is attached. *)
type stats = {
  resident : int;  (** entries resident in the store *)
  live : int;  (** resident entries with positive weight *)
  expired : int;  (** resident entries at weight zero *)
  scale : float;  (** drift-driven horizon scale currently applied *)
  admitted : int;  (** samples admitted over the stream's lifetime *)
  evicted : int;  (** entries dropped by compaction *)
  compactions : int;  (** full LOO rebuilds *)
  publishes : int;  (** service hot-swaps issued *)
  last_rebuild_s : float;  (** duration of the most recent compaction *)
  last_swap_s : float;  (** duration of the most recent publish *)
}

(** [create ?policy ?capacity ?compact_fraction ?monitor ?telemetry
    ?pool ?state service] wraps [service] (which keeps serving
    untouched). [state] resumes a previous stream from its snapshotted
    {!Decay.window_state} — it overrides the policy/capacity/fraction
    arguments and must match the service's current calibration store
    (same entry count); raises [Invalid_argument] otherwise, or on an
    invalid policy, capacity or fraction. Non-unit policies publish
    once immediately so the serving engine starts from the weighted
    store. *)
val create :
  ?policy:Decay.policy ->
  ?capacity:int ->
  ?compact_fraction:float ->
  ?monitor:Monitor.t ->
  ?telemetry:Telemetry.t ->
  ?pool:Prom_parallel.Pool.t ->
  ?state:Decay.window_state ->
  Service.t ->
  t

(** [admit t ~features ~label ~proba] runs one full ingestion step:
    standardize and append the relabeled sample, advance the admission
    counter, refresh the drift scale from the monitor, recompute decay
    weights, compact if the window is over capacity or the expired
    fraction crossed the threshold, and publish the updated store to
    the service. Raises [Invalid_argument] on a shape or label
    mismatch against the serving engine's dimensions. *)
val admit : t -> features:Vec.t -> label:int -> proba:Vec.t -> unit

(** The wrapped service — the handle live traffic keeps querying while
    the stream republishes underneath it. *)
val service : t -> Service.t

(** The stream's current {!Decay.window_state}, as persisted into
    snapshot codec v3; feed it back to [create ?state] to resume. *)
val state : t -> Decay.window_state

(** [snapshot t] is the publishable snapshot of the current store —
    what {!admit} hands to {!Service.swap}, with the model slot marked
    external and the window state attached. *)
val snapshot : t -> Snapshot.t

(** Current counters and occupancy. *)
val stats : t -> stats
