(** Deployment-time ageing monitor. The paper positions PROM as a way to
    "detect ageing models post-deployment": individual rejections are
    noisy, but a rising rejection {i rate} over the recent input stream
    is the operational signal that the model needs retraining. This
    module aggregates per-sample verdicts over a sliding window and
    raises an alert when the drift rate exceeds a threshold for long
    enough. *)

type status =
  | Healthy
  | Degrading  (** drift rate above threshold, but not yet persistent *)
  | Ageing  (** persistent drift: schedule retraining *)

type t

(** [create ?window ?threshold ?patience ?telemetry ()] builds a
    monitor. [window] (default 50) is the number of recent verdicts
    considered; [threshold] (default 0.5) is the drift rate that counts
    as degrading; [patience] (default 3) is how many consecutive
    degrading windows escalate to [Ageing] — counted as
    [patience * window] consecutive observations with the (full-window)
    rate at or above threshold, so escalation does not depend on how
    the drift burst aligns with window boundaries. [telemetry] keeps
    the bundle's drift-rate and status gauges current and counts status
    transitions. Raises [Invalid_argument] on non-positive parameters
    or a threshold outside (0, 1]. *)
val create :
  ?window:int -> ?threshold:float -> ?patience:int -> ?telemetry:Telemetry.t -> unit -> t

(** [observe t ~drifted] records one verdict and returns the updated
    status. The monitor is mutable; feed it every deployment-time
    verdict in arrival order. *)
val observe : t -> drifted:bool -> status

(** Current status without recording anything. *)
val status : t -> status

(** [drift_rate t] is the fraction of drifted verdicts in the current
    window (0 before any observation). *)
val drift_rate : t -> float

(** [observed t] is the total number of verdicts seen. *)
val observed : t -> int

(** [reset t] clears the history — call after retraining the model. *)
val reset : t -> unit

(** ["healthy"], ["degrading"] or ["ageing"] — the values the
    [prom_monitor_status] gauge's help text documents. *)
val status_to_string : status -> string

(** Immutable value of a monitor's full state — configuration, ring
    buffer and escalation counters — for snapshotting. *)
type persisted = {
  p_window : int;
  p_threshold : float;
  p_patience : int;
  p_buffer : bool array;
  p_filled : int;
  p_head : int;
  p_drifted_in_window : int;
  p_above_streak : int;
  p_consecutive_degrading : int;
  p_total : int;
  p_status : status;
}

(** [persist t] copies the monitor's current state out (the copy does
    not alias the live ring buffer). *)
val persist : t -> persisted

(** [restore ?telemetry p] rebuilds a monitor that continues exactly
    where [persist] left off — the next [observe] sees the same window
    contents and escalation counters. Raises [Invalid_argument] on
    inconsistent state (wrong buffer length, counters out of range). *)
val restore : ?telemetry:Telemetry.t -> persisted -> t
