(** Multi-tenant registry: many [(model, calibration)] deployments
    behind one serving surface.

    Each tenant is a {!slot} holding its own {!Service} (its committee,
    calibration store and swap generation are fully independent of
    every other tenant's), an optional snapshot directory with its own
    generation numbering (a subdirectory of the serving root — tenant
    names are valid directory names by construction, see
    {!valid_name}), an optional always-on {!Stream} recalibration loop,
    and a lifecycle state: [Loading] (registered, engine not yet
    available — requests are refused with a retryable error), [Ready]
    (serving), and [Draining] (shutdown ordered — no new work, in-
    flight batches finish).

    Names double as URL path segments ([/t/<name>/predict]) and
    snapshot directory names, so they are validated against the strict
    alphabet [[A-Za-z0-9_-]{1,64}] — no dots, slashes or percent
    signs, which makes path traversal out of the snapshot root
    unrepresentable rather than merely rejected.

    The registry hands each slot a dense registration {!index}; the
    serving layer uses it as the tenant's fair-share batching key and
    as the subscript for per-tenant metric handles. Slot lifecycle
    fields are atomics: the serving hot path reads them lock-free. *)

(** Lifecycle of one tenant slot. *)
type state =
  | Loading  (** registered; engine still being built or restored *)
  | Ready  (** serving traffic *)
  | Draining  (** shutdown ordered; refuses new work *)

(** Lower-case state name, as exposed in diagnostics ([loading] /
    [ready] / [draining]). *)
val state_name : state -> string

(** Upper bound on tenant-name length (64). *)
val max_name_len : int

(** [valid_name s] is [true] iff [s] matches [[A-Za-z0-9_-]{1,64}].
    Every other string — including [.], [..], anything with a slash or
    a percent-escape — is invalid, so a validated name can never
    traverse outside the snapshot root. *)
val valid_name : string -> bool

(** One tenant's serving slot. *)
type slot

(** A tenant registry. *)
type t

(** An empty registry. *)
val create : unit -> t

(** [register ?snapshot_dir ?service t name] adds a tenant. With
    [service] the slot starts [Ready]; without it the slot starts
    [Loading] and must be {!activate}d before it serves.
    [snapshot_dir] is the tenant's own snapshot directory (independent
    generation numbering). Raises [Invalid_argument] when [name] fails
    {!valid_name} or is already registered. *)
val register : ?snapshot_dir:string -> ?service:Service.t -> t -> string -> slot

(** [find t name] is the slot registered under [name], if any. Lookup
    only — never validates or creates; route unknown or invalid names
    to 404 before touching the filesystem. *)
val find : t -> string -> slot option

(** All slots in registration order (so {!index} [i] is element [i]). *)
val slots : t -> slot list

(** Number of registered tenants. *)
val count : t -> int

(** The slot's validated name. *)
val name : slot -> string

(** Dense registration index: 0 for the first tenant registered, 1 for
    the second, … Used as the fair-share batching key. *)
val index : slot -> int

(** The tenant's snapshot directory, when configured. *)
val snapshot_dir : slot -> string option

(** Current lifecycle state. *)
val state : slot -> state

(** The slot's service regardless of lifecycle state ([None] while
    [Loading]); use {!serving} on the request path. *)
val service : slot -> Service.t option

(** The tenant's recalibration loop, when one is attached. *)
val stream : slot -> Stream.t option

(** Attach (or detach) the tenant's recalibration loop. *)
val set_stream : slot -> Stream.t option -> unit

(** Completed hot-swaps on this slot, as counted by {!count_swap} —
    the serving layer's [prom_tenant_swaps_total{tenant}] source. *)
val swaps : slot -> int

(** Record one completed hot-swap. *)
val count_swap : slot -> unit

(** [activate slot service] installs the engine and moves a [Loading]
    slot to [Ready]. A [Draining] slot keeps draining — activation
    never resurrects a tenant the server already stopped. *)
val activate : slot -> Service.t -> unit

(** Order the slot to stop taking new work. *)
val drain : slot -> unit

(** [serving slot] is the service to answer a request with: [Some]
    only when the slot is [Ready] and holds an engine; [None] maps to
    a retryable 503 at the HTTP layer. Lock-free. *)
val serving : slot -> Service.t option
