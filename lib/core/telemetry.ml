module Obs = Prom_obs

type t = {
  registry : Obs.registry;
  queries_total : Obs.Counter.t;
  accepted_total : Obs.Counter.t;
  rejected_total : Obs.Counter.t;
  eval_latency : Obs.Histogram.t;
  batch_size : Obs.Histogram.t;
  collision_rebinds : Obs.Counter.t;
  drift_rate : Obs.Gauge.t;
  monitor_status : Obs.Gauge.t;
  status_transitions : Obs.Counter.t;
  flagged_total : Obs.Counter.t;
  relabeled_total : Obs.Counter.t;
  retrain_total : Obs.Counter.t;
  snapshot_generation : Obs.Gauge.t;
  snapshot_saves : Obs.Counter.t;
  snapshot_loads : Obs.Counter.t;
  service_swaps : Obs.Counter.t;
}

let batch_size_buckets =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0 |]

(* Info-style metric: the value is always 1 and the payload lives in
   the labels, so dashboards can join the active distance-kernel
   backend onto throughput panels. Registered with the bundle because
   the backend is fixed at process startup. *)
let register_kernel_backend registry =
  let g =
    Obs.gauge registry
      ~labels:
        [
          ("backend", Prom_linalg.Kernels.active_name ());
          ("isa", Prom_linalg.Kernels.active_isa ());
        ]
      ~help:"Active native distance-kernel backend (info metric, value is 1)"
      "prom_kernel_backend"
  in
  Obs.Gauge.set g 1.0

let create registry =
  register_kernel_backend registry;
  {
    registry;
    queries_total =
      Obs.counter registry ~help:"Detector queries evaluated" "prom_queries_total";
    accepted_total =
      Obs.counter registry ~help:"Queries the committee accepted" "prom_accepted_total";
    rejected_total =
      Obs.counter registry ~help:"Queries the committee rejected as drifted"
        "prom_rejected_total";
    eval_latency =
      Obs.histogram registry ~help:"Single-query evaluation latency"
        "prom_eval_latency_seconds";
    batch_size =
      Obs.histogram registry ~help:"Service batch sizes" ~buckets:batch_size_buckets
        "prom_service_batch_size";
    collision_rebinds =
      Obs.counter registry
        ~help:"Batch queries rebound into extra rounds due to value-equal features"
        "prom_service_collision_rebinds_total";
    drift_rate =
      Obs.gauge registry ~help:"Drift rate over the monitor window"
        "prom_monitor_drift_rate";
    monitor_status =
      Obs.gauge registry ~help:"Monitor status (0 healthy, 1 degrading, 2 ageing)"
        "prom_monitor_status";
    status_transitions =
      Obs.counter registry ~help:"Monitor status transitions"
        "prom_monitor_transitions_total";
    flagged_total =
      Obs.counter registry ~help:"Inputs flagged during incremental learning"
        "prom_incremental_flagged_total";
    relabeled_total =
      Obs.counter registry ~help:"Flagged inputs sent to the labeling oracle"
        "prom_incremental_relabeled_total";
    retrain_total =
      Obs.counter registry ~help:"Incremental retraining rounds"
        "prom_incremental_retrain_total";
    snapshot_generation =
      Obs.gauge registry ~help:"Generation of the snapshot currently serving"
        "prom_snapshot_generation";
    snapshot_saves =
      Obs.counter registry ~help:"Snapshots written" "prom_snapshot_saves_total";
    snapshot_loads =
      Obs.counter registry ~help:"Snapshots loaded" "prom_snapshot_loads_total";
    service_swaps =
      Obs.counter registry ~help:"Hot-swaps of the serving detector"
        "prom_service_swaps_total";
  }

let registry t = t.registry

(* HTTP serving-layer series. Kept in the bundle module so every
   metric name the stack exports lives in one file; the per-status-code
   counter family is materialized lazily because the set of codes a
   server answers with is only known at runtime. *)
module Http = struct
  type http = {
    hregistry : Obs.registry;
    http_batch_size : Obs.Histogram.t;
    http_queue_depth : Obs.Gauge.t;
    http_request_seconds : Obs.Histogram.t;
    http_open_connections : Obs.Gauge.t;
    http_evloop_seconds : Obs.Histogram.t;
    lock : Mutex.t;
    mutable by_code : ((string * int) * Obs.Counter.t) list;
  }

  (* Per-tenant serving series, resolved once at tenant registration so
     the dispatch path only increments. *)
  type tenant = {
    tn_queue_depth : Obs.Gauge.t;
    tn_batch_share : Obs.Counter.t;
    tn_swaps : Obs.Counter.t;
  }

  (* Event-loop iterations process anywhere from one readiness event to
     hundreds; the interesting signal is the tail (a slow iteration
     stalls every connection on that shard), so the buckets reach down
     to 10 µs. *)
  let evloop_buckets =
    [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0 |]

  let create registry =
    {
      hregistry = registry;
      http_batch_size =
        Obs.histogram registry ~help:"Queries per dispatched inference batch"
          ~buckets:batch_size_buckets "prom_http_batch_size";
      http_queue_depth =
        Obs.gauge registry ~help:"Requests waiting in the micro-batch queue"
          "prom_http_queue_depth";
      http_request_seconds =
        Obs.histogram registry ~help:"HTTP request latency (read to response written)"
          "prom_http_request_seconds";
      http_open_connections =
        Obs.gauge registry ~help:"Connections currently held by the server"
          "prom_http_open_connections";
      http_evloop_seconds =
        Obs.histogram registry
          ~help:"Event-loop iteration processing time (per readiness wakeup)"
          ~buckets:evloop_buckets "prom_http_evloop_iteration_seconds";
      lock = Mutex.create ();
      by_code = [];
    }

  let requests_total ?(tenant = "") t code =
    Mutex.lock t.lock;
    let c =
      match List.assoc_opt (tenant, code) t.by_code with
      | Some c -> c
      | None ->
          (* Endpoints outside any tenant (metrics, healthz, 404s)
             carry no tenant label at all — an empty label value means
             "label absent" to Prometheus, so rendering it would only
             manufacture a second series per code. *)
          let labels =
            ("code", string_of_int code)
            :: (if tenant = "" then [] else [ ("tenant", tenant) ])
          in
          let c =
            Obs.counter t.hregistry ~labels
              ~help:"HTTP requests served, by status code" "prom_http_requests_total"
          in
          t.by_code <- ((tenant, code), c) :: t.by_code;
          c
    in
    Mutex.unlock t.lock;
    c

  let tenant_metrics t name =
    let labels = [ ("tenant", name) ] in
    {
      tn_queue_depth =
        Obs.gauge t.hregistry ~labels
          ~help:"Requests a tenant has waiting in the micro-batch queue"
          "prom_tenant_queue_depth";
      tn_batch_share =
        Obs.counter t.hregistry ~labels
          ~help:"Queries a tenant contributed to shared inference batches"
          "prom_tenant_batch_share";
      tn_swaps =
        Obs.counter t.hregistry ~labels
          ~help:"Completed snapshot hot-swaps on a tenant's slot"
          "prom_tenant_swaps_total";
    }

  let batch_size t = t.http_batch_size
  let queue_depth t = t.http_queue_depth
  let request_seconds t = t.http_request_seconds
  let open_connections t = t.http_open_connections
  let evloop_seconds t = t.http_evloop_seconds
end

(* Pruned-kNN index series. Registration is get-or-create on the
   bundle's registry, so calling this for both the classification and
   regression stores of one deployment shares the same series — the
   counters aggregate across stores by design. *)
let index_metrics t : Calibration.index_metrics =
  {
    Calibration.ix_clusters =
      Obs.gauge t.registry ~help:"Clusters in the pruned kNN calibration index"
        "prom_index_clusters";
    ix_scanned =
      Obs.counter t.registry
        ~help:"Candidate rows exactly reranked by pruned kNN index queries"
        "prom_index_candidates_scanned_total";
    ix_pruned =
      Obs.counter t.registry
        ~help:"Calibration rows skipped via cluster lower bounds in index queries"
        "prom_index_pruned_total";
    ix_rebuilds =
      Obs.counter t.registry ~help:"Pruned kNN index rebuilds after incremental growth"
        "prom_index_rebuilds_total";
  }

(* Streaming calibration series. Like the index bundle: get-or-create
   on the registry, resolved once when the stream store is created so
   the admit path only increments. *)
type stream = {
  st_window : Obs.Gauge.t;
  st_resident : Obs.Gauge.t;
  st_live : Obs.Gauge.t;
  st_expired : Obs.Gauge.t;
  st_scale : Obs.Gauge.t;
  st_admitted : Obs.Counter.t;
  st_evicted : Obs.Counter.t;
  st_compactions : Obs.Counter.t;
  st_publishes : Obs.Counter.t;
  st_rebuild_seconds : Obs.Histogram.t;
  st_swap_seconds : Obs.Histogram.t;
}

(* Compactions and swaps both sit well under a millisecond at smoke
   sizes but grow with the window; buckets span 10 µs to 1 s so both
   regimes land inside the histogram. *)
let stream_seconds_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0 |]

let stream_metrics t : stream =
  {
    st_window =
      Obs.gauge t.registry ~help:"Streaming store effective window (capacity x scale)"
        "prom_stream_window";
    st_resident =
      Obs.gauge t.registry ~help:"Calibration entries resident in the streaming store"
        "prom_stream_resident";
    st_live =
      Obs.gauge t.registry ~help:"Resident entries with positive decay weight"
        "prom_stream_live";
    st_expired =
      Obs.gauge t.registry ~help:"Resident entries at decay weight zero"
        "prom_stream_expired";
    st_scale =
      Obs.gauge t.registry ~help:"Drift-driven horizon scale currently applied"
        "prom_stream_scale";
    st_admitted =
      Obs.counter t.registry ~help:"Samples admitted into the streaming store"
        "prom_stream_admitted_total";
    st_evicted =
      Obs.counter t.registry ~help:"Entries evicted by streaming compaction"
        "prom_stream_evicted_total";
    st_compactions =
      Obs.counter t.registry ~help:"Streaming store compactions (full LOO rebuilds)"
        "prom_stream_compactions_total";
    st_publishes =
      Obs.counter t.registry ~help:"Streaming store publishes (service hot-swaps)"
        "prom_stream_publishes_total";
    st_rebuild_seconds =
      Obs.histogram t.registry ~help:"Streaming compaction rebuild time"
        ~buckets:stream_seconds_buckets "prom_stream_rebuild_seconds";
    st_swap_seconds =
      Obs.histogram t.registry ~help:"Streaming publish swap time (engine build + swap)"
        ~buckets:stream_seconds_buckets "prom_stream_swap_seconds";
  }

let expert_flag_counter t name =
  Obs.counter t.registry
    ~labels:[ ("expert", name) ]
    ~help:"Per-expert drift flags" "prom_expert_flags_total"

let exposition t = Obs.Snapshot.to_prometheus (Obs.Snapshot.take t.registry)
