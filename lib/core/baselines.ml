open Prom_linalg
open Prom_ml

type t = { name : string; flags : Vec.t -> bool }

(* A configuration that disables PROM's adaptive machinery: keep every
   calibration sample and make the exp-distance weights collapse to 1. *)
let flat_config epsilon =
  {
    Config.default with
    Config.epsilon;
    select_ratio = 1.0;
    select_all_below = max_int;
    temperature = 1e18;
  }

let conformal_scores ~config ~calibration ~fn ~feature_of ~model x =
  let proba = model.Model.predict_proba x in
  let predicted = Vec.argmax proba in
  let selected =
    Calibration.select_subset ~featmat:calibration.Calibration.feat_matrix ~config
      calibration.Calibration.entries
      ~feature_of_entry:(fun e -> e.Calibration.features)
      (feature_of x)
  in
  let pvalues =
    Pvalue.classification_all ~fn ~selected ~proba ~n_classes:model.Model.n_classes ()
  in
  (predicted, pvalues)

let second_largest pvalues skip =
  let best = ref 0.0 in
  Array.iteri (fun i p -> if i <> skip && p > !best then best := p) pvalues;
  !best

let naive_cp ?(epsilon = 0.1) ~model ~feature_of data =
  let config = flat_config epsilon in
  let calibration =
    Calibration.prepare_classification ~config ~model ~feature_of data
  in
  {
    name = "naive-cp";
    flags =
      (fun x ->
        let predicted, pvalues =
          conformal_scores ~config ~calibration ~fn:Nonconformity.lac ~feature_of ~model x
        in
        pvalues.(predicted) < epsilon);
  }

let tesseract ?(epsilon = 0.1) ~model ~feature_of data =
  let config = flat_config epsilon in
  let calibration =
    Calibration.prepare_classification ~config ~model ~feature_of data
  in
  {
    name = "tesseract";
    flags =
      (fun x ->
        let predicted, pvalues =
          conformal_scores ~config ~calibration ~fn:Nonconformity.lac ~feature_of ~model x
        in
        let credibility = pvalues.(predicted) in
        let confidence = 1.0 -. second_largest pvalues predicted in
        credibility < epsilon || confidence < 1.0 -. epsilon);
  }

let rise ?(epsilon = 0.1) ~seed ~model ~feature_of data =
  let config = flat_config epsilon in
  let rng = Rng.create seed in
  let shuffled = Dataset.shuffle rng data in
  let cal_part, train_part = Dataset.split_at shuffled ~ratio:0.5 in
  if Dataset.length cal_part = 0 || Dataset.length train_part = 0 then
    invalid_arg "Baselines.rise: calibration dataset too small";
  let calibration =
    Calibration.prepare_classification ~config ~model ~feature_of cal_part
  in
  let score_features x =
    let predicted, pvalues =
      conformal_scores ~config ~calibration ~fn:Nonconformity.lac ~feature_of ~model x
    in
    let credibility = pvalues.(predicted) in
    let confidence = 1.0 -. second_largest pvalues predicted in
    let proba = model.Model.predict_proba x in
    let entropy =
      -.Array.fold_left (fun acc p -> acc +. (p *. log (Stdlib.max p 1e-12))) 0.0 proba
    in
    [| credibility; confidence; entropy |]
  in
  let feats = Array.map score_features train_part.x in
  let labels =
    Array.mapi
      (fun i x -> if Model.predict model x <> train_part.y.(i) then 1 else 0)
      train_part.x
  in
  (* The rejector needs both classes to train; degenerate splits fall
     back to the TESSERACT rule. *)
  let has_both =
    Array.exists (fun l -> l = 1) labels && Array.exists (fun l -> l = 0) labels
  in
  if not has_both then
    let fallback = tesseract ~epsilon ~model ~feature_of data in
    { fallback with name = "rise" }
  else
    let rejector = Logistic.train (Dataset.create feats labels) in
    {
      name = "rise";
      flags = (fun x -> Model.predict rejector (score_features x) = 1);
    }
