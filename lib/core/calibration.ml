open Prom_linalg
open Prom_ml
module Pool = Prom_parallel.Pool

type cls_entry = { features : Vec.t; label : int; proba : Vec.t }

type cls = {
  entries : cls_entry array;
  config : Config.t;
  scaler : Dataset.Scaler.t;
  tau : float;
  loo_distances : float array;
      (* sorted leave-one-out kNN-distance scores of the calibration set *)
  feat_matrix : Featmat.t;
      (* the entries' feature vectors packed row-major, built once so the
         per-query distance scans never rebuild the feature array *)
}

(* Standardize the similarity space with calibration statistics so the
   temperature of Eq. 1 means the same thing across tasks. *)
let fit_scaler feats =
  Dataset.Scaler.fit (Dataset.create feats (Array.map (fun _ -> 0) feats))

(* Self-calibrated temperature: the paper's [temperature] knob is
   interpreted relative to the calibration set's own distance scale, so
   that w = exp (-d^2 / tau) maps "typical in-distribution distance" to
   a weight near 1 regardless of the feature space. [tau_eff =
   temperature / 100 * median pairwise squared distance]; the default
   500 therefore places the e-fold decay at 5x the median. *)
(* Conformal kNN distance scores (Ishimtsev et al., the paper's [36]):
   the nonconformity of a point is its mean distance to its k nearest
   calibration neighbours; calibrated leave-one-out on the calibration
   set itself, this gives an exactly valid out-of-distribution test. *)
let knn_distance_k = 5

let knn_distance_score fm v = Featmat.knn_mean_dist fm v ~k:knn_distance_k

(* The O(n^2) leave-one-out scan, fanned across the pool; each row's
   score is independent, so chunked evaluation is deterministic. *)
let loo_distance_scores ?pool fm =
  let scores =
    Pool.init ?pool ~min_chunk:16 (Featmat.length fm) (fun i ->
        Featmat.knn_mean_dist_rows fm ~row:i ~k:knn_distance_k)
  in
  Array.sort Float.compare scores;
  scores

let distance_pvalue_of loo score =
  let n = Array.length loo in
  if n = 0 then 1.0
  else begin
    (* count of LOO scores >= test score, by binary search on the
       sorted array *)
    let rec first_geq lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if loo.(mid) >= score then first_geq lo mid else first_geq (mid + 1) hi
    in
    let at_least = n - first_geq 0 n in
    let p = float_of_int (at_least + 1) /. float_of_int (n + 1) in
    (* Beyond the calibration tail every score would share the floor
       1/(n+1); extend with an exponential tail so farther points get
       strictly smaller p-values and the significance level keeps
       controlling how far out the rejection boundary sits. *)
    let max_loo = loo.(n - 1) in
    if at_least = 0 && max_loo > 0.0 && score > max_loo then
      p *. exp (-4.0 *. ((score /. max_loo) -. 1.0))
    else p
  end

(* Pairwise-median sampling for the temperature. The sampled pair set is
   defined by the pair's position in the row-major enumeration —
   [offset i + (j - i)] is exactly the counter value the sequential
   double loop would have reached — so the parallel scan samples the
   same pairs the sequential one did. *)
let effective_tau ?pool config fm =
  let n = Featmat.length fm in
  let d2s =
    if n < 2 then [| 1.0 |]
    else begin
      let step = Stdlib.max 1 (n * n / 4000) in
      let offset i = (i * (n - 1)) - (i * (i - 1) / 2) in
      let rows =
        Pool.init ?pool ~min_chunk:64 (n - 1) (fun i ->
            let base = offset i in
            let acc = ref [] in
            for j = i + 1 to n - 1 do
              if (base + j - i) mod step = 0 then
                acc := Featmat.sq_dist_rows fm i j :: !acc
            done;
            Array.of_list !acc)
      in
      match Array.concat (Array.to_list rows) with
      | [||] -> [| 1.0 |]
      | arr -> arr
    end
  in
  let med = Stats.median d2s in
  let med = if med <= 0.0 then 1.0 else med in
  config.Config.temperature /. 100.0 *. med

let prepare_classification ?pool ~config ~model ~feature_of (d : int Dataset.t) =
  Config.validate config;
  if Dataset.length d = 0 then invalid_arg "Calibration: empty calibration dataset";
  let feats = Array.map feature_of d.x in
  let scaler = fit_scaler feats in
  let std_feats = Array.map (Dataset.Scaler.transform scaler) feats in
  let feat_matrix = Featmat.of_rows std_feats in
  let entries =
    Array.mapi
      (fun i x ->
        { features = std_feats.(i); label = d.y.(i); proba = model.Model.predict_proba x })
      d.x
  in
  {
    entries;
    config;
    scaler;
    tau = effective_tau ?pool config feat_matrix;
    loo_distances = loo_distance_scores ?pool feat_matrix;
    feat_matrix;
  }

let standardize_cls t v = Dataset.Scaler.transform t.scaler v

type reg_entry = {
  rfeatures : Vec.t;
  target : float;
  rpred : float;
  cluster : int;
  rproxy : float;
  rspread : float;
}

type reg = {
  rentries : reg_entry array;
  rconfig : Config.t;
  clusters : Kmeans.t;
  n_clusters : int;
  rscaler : Dataset.Scaler.t;
  rtau : float;
  rloo_distances : float array;
  rfeat_matrix : Featmat.t;
}

let prepare_regression ?pool ?n_clusters ~config ~model ~feature_of ~seed
    (d : float Dataset.t) =
  Config.validate config;
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Calibration: empty calibration dataset";
  let scaler = fit_scaler (Array.map feature_of d.x) in
  let feats = Array.map (fun x -> Dataset.Scaler.transform scaler (feature_of x)) d.x in
  let rfeat_matrix = Featmat.of_rows feats in
  let rng = Rng.create seed in
  let k =
    match n_clusters with
    | Some k ->
        if k < 1 || k > n then invalid_arg "Calibration: n_clusters out of range";
        k
    | None ->
        if n < 4 then 1
        else
          let k_max = Stdlib.min 20 (n / 2) in
          (Gap_statistic.select rng feats ~k_min:2 ~k_max).best_k
  in
  let clusters = Kmeans.fit (Rng.split rng) feats ~k in
  (* Leave-one-out k-NN proxy targets and neighbourhood spreads,
     mirroring the test-time ground-truth approximation so both sides of
     Eq. 2 use the same estimator. The O(n^2) scan fans across the
     pool; neighbour targets are accumulated farthest-first, matching
     the order the sequential reference produced. *)
  let loo_proxy i =
    let k = config.Config.knn_k in
    let near = Featmat.nearest ~exclude:i rfeat_matrix feats.(i) ~k in
    match Array.length near with
    | 0 -> (d.y.(i), 0.0)
    | m ->
        let arr = Array.init m (fun r -> d.y.(fst near.(m - 1 - r))) in
        (Stats.mean arr, if m > 1 then Stats.std arr else 0.0)
  in
  let proxies = Pool.init ?pool ~min_chunk:16 n loo_proxy in
  let rentries =
    Array.mapi
      (fun i x ->
        let rproxy, rspread = proxies.(i) in
        {
          rfeatures = feats.(i);
          target = d.y.(i);
          rpred = model.Model.predict x;
          cluster = clusters.assignments.(i);
          rproxy;
          rspread;
        })
      d.x
  in
  {
    rentries;
    rconfig = config;
    clusters;
    n_clusters = k;
    rscaler = scaler;
    rtau = effective_tau ?pool config rfeat_matrix;
    rloo_distances = loo_distance_scores ?pool rfeat_matrix;
    rfeat_matrix;
  }

let standardize_reg t v = Dataset.Scaler.transform t.rscaler v

type 'e selected = { index : int; entry : 'e; weight : float; distance : float }

type selection = { sel_idxs : int array; sel_weights : float array; sel_count : int }

(* Per-domain selection workspace: the distance buffer, the selection's
   permutation arrays and the weight buffer are reused across queries
   (one workspace per domain, so pooled batch evaluation never shares
   one), keeping the per-query hot path free of heap churn. Queries are
   evaluated synchronously within a domain, so reuse is safe. *)
type query_scratch = { sel : Select.scratch; mutable weights : float array }

let query_scratch : query_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { sel = Select.scratch_create (); weights = [||] })

(* Partial top-k selection instead of the former full sort: distances
   are scanned once (from the cached matrix when available) and only the
   kept prefix is ordered, O(n + keep log keep). Selection runs on
   squared distances — the ordering is the same — and the square root is
   taken only for the kept entries, whose weights reproduce the
   exp(-d^2/tau) of the sort-based reference bit for bit. On return the
   workspace prefix holds the ascending (squared distance, index) pairs
   of the kept entries. *)
let select_core scratch ?featmat ~config entries ~feature_of_entry test_features =
  let n = Array.length entries in
  let keep =
    if n < config.Config.select_all_below then n
    else Stdlib.max 1 (int_of_float (config.Config.select_ratio *. float_of_int n))
  in
  let sq = Select.scratch_keys scratch n in
  (match featmat with
  | Some fm ->
      if Featmat.length fm <> n then
        invalid_arg "Calibration.select_subset: matrix/entries size mismatch";
      Featmat.sq_dists_into fm test_features sq
  | None ->
      for i = 0 to n - 1 do
        sq.(i) <- Distance.sq_euclidean (feature_of_entry entries.(i)) test_features
      done);
  Select.select_in_place scratch ~n ~k:keep;
  keep

(* The [?tau] override skips [Config.validate], so guard it here: a
   non-positive (or NaN) tau makes [exp (-d²/tau)] collapse to 0/0 = NaN
   for zero-distance neighbours, and one NaN weight poisons every
   p-value accumulator downstream. *)
let resolve_tau tau config =
  let t = match tau with Some t -> t | None -> config.Config.temperature in
  if not (t > 0.0) then invalid_arg "Calibration.select: tau must be positive";
  t

let select_subset ?tau ?featmat ~config entries ~feature_of_entry test_features =
  let tau = resolve_tau tau config in
  if Array.length entries = 0 then [||]
  else begin
    let scratch = (Domain.DLS.get query_scratch).sel in
    let keep = select_core scratch ?featmat ~config entries ~feature_of_entry test_features in
    let vals = Select.scratch_vals scratch and idxs = Select.scratch_idxs scratch in
    Array.init keep (fun r ->
        let i = idxs.(r) in
        let dist = sqrt vals.(r) in
        let weight = exp (-.(dist *. dist) /. tau) in
        { index = i; entry = entries.(i); weight; distance = dist })
  end

(* Allocation-free variant for the per-query hot path. Materializing the
   [selected] record array costs far more than it looks: at typical
   sizes (hundreds of entries) the pointer array is allocated directly
   on the major heap, and filling it with freshly minted minor-heap
   records drives the write barrier hard enough to force a minor
   collection per call — each of which is a stop-the-world handshake
   every domain must join. The packed form instead reuses a per-domain
   index buffer and weight buffer; the returned view is a few words on
   the minor heap. The buffers are valid until the next selection on the
   same domain, which is exactly the lifetime of one query evaluation. *)
let select_packed ?tau ?featmat ~config entries ~feature_of_entry test_features =
  let tau = resolve_tau tau config in
  if Array.length entries = 0 then { sel_idxs = [||]; sel_weights = [||]; sel_count = 0 }
  else begin
    let qs = Domain.DLS.get query_scratch in
    let keep = select_core qs.sel ?featmat ~config entries ~feature_of_entry test_features in
    let vals = Select.scratch_vals qs.sel in
    if Array.length qs.weights < keep then qs.weights <- Array.make (Array.length vals) 0.0;
    let weights = qs.weights in
    for r = 0 to keep - 1 do
      let dist = sqrt vals.(r) in
      weights.(r) <- exp (-.(dist *. dist) /. tau)
    done;
    { sel_idxs = Select.scratch_idxs qs.sel; sel_weights = weights; sel_count = keep }
  end

let assign_cluster reg v =
  (* Label by the nearest calibration sample's cluster, falling back to
     the nearest centroid when entries are somehow empty. *)
  match Array.length reg.rentries with
  | 0 -> Kmeans.assign reg.clusters v
  | _ -> reg.rentries.(Featmat.argmin_sq reg.rfeat_matrix v).cluster

let knn_truth reg v ~k =
  let idx = Featmat.nearest reg.rfeat_matrix v ~k in
  let targets = Array.map (fun (i, _) -> reg.rentries.(i).target) idx in
  let mean = Stats.mean targets in
  let spread = if Array.length targets > 1 then Stats.std targets else 0.0 in
  (mean, spread)

let distance_pvalue_cls t v =
  distance_pvalue_of t.loo_distances (knn_distance_score t.feat_matrix v)

let distance_pvalue_reg t v =
  distance_pvalue_of t.rloo_distances (knn_distance_score t.rfeat_matrix v)
