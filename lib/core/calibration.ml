open Prom_linalg
open Prom_ml
module Pool = Prom_parallel.Pool

(* --- Pruned-index state. ---

   Above a size threshold the per-query distance scans are answered by a
   cluster-pruned exact kNN index instead of a dense scan. Every
   consumer of a query's distances needs at most [ix_query_k]
   neighbours — the selection's keep count, the conformal test's
   LOO-kNN [k] and the ground-truth proxy's [knn_k] — and the index
   returns exactly the ascending (squared distance, index) prefix the
   dense scan would, so verdicts are bit-identical either way. *)

type index_metrics = {
  ix_clusters : Prom_obs.Gauge.t;
  ix_scanned : Prom_obs.Counter.t;
  ix_pruned : Prom_obs.Counter.t;
  ix_rebuilds : Prom_obs.Counter.t;
}

type index_state = {
  knn : Knn_index.t;
  ix_query_k : int;
  mutable ix_metrics : index_metrics option;
}

type cls_entry = { features : Vec.t; label : int; proba : Vec.t }

type cls = {
  entries : cls_entry array;
  config : Config.t;
  scaler : Dataset.Scaler.t;
  tau : float;
  loo_distances : float array;
      (* sorted leave-one-out kNN-distance scores of the calibration set *)
  loo_order : int array;
      (* loo_order.(r) = the entry whose LOO score sits at sorted
         position r, so per-entry weights can be folded into the
         conformal test as suffix sums over the sorted order. Empty when
         the permutation is unknown (a pre-v3 snapshot restore); the
         distance test then stays unweighted. *)
  ent_weights : float array;
      (* per-entry calibration weights (weighted conformal prediction);
         empty means unit weights — the bit-identical unweighted path *)
  loo_suffix : float array;
      (* suffix sums of [ent_weights] in sorted-LOO order (length n+1,
         [loo_suffix.(n)] = 0): [loo_suffix.(r)] is the total weight of
         LOO scores at or above sorted position r — the weighted rank
         the conformal distance test reads. Empty in unit mode or when
         [loo_order] is unknown. *)
  pk_weights : float array;
      (* [ent_weights] permuted into the kNN index's packed member
         order, so the gather-free selection path scales by weights at
         packed positions. Empty in unit mode or when unindexed. *)
  feat_matrix : Featmat.t;
      (* the entries' feature vectors packed row-major, built once so the
         per-query distance scans never rebuild the feature array *)
  mutable cls_index : index_state option;
      (* pruned exact kNN index over [feat_matrix], present when the
         store crossed the indexing threshold; mutable only for
         attaching telemetry after construction *)
}

(* Standardize the similarity space with calibration statistics so the
   temperature of Eq. 1 means the same thing across tasks. *)
let fit_scaler feats =
  Dataset.Scaler.fit (Dataset.create feats (Array.map (fun _ -> 0) feats))

(* Self-calibrated temperature: the paper's [temperature] knob is
   interpreted relative to the calibration set's own distance scale, so
   that w = exp (-d^2 / tau) maps "typical in-distribution distance" to
   a weight near 1 regardless of the feature space. [tau_eff =
   temperature / 100 * median pairwise squared distance]; the default
   500 therefore places the e-fold decay at 5x the median. *)
(* Conformal kNN distance scores (Ishimtsev et al., the paper's [36]):
   the nonconformity of a point is its mean distance to its k nearest
   calibration neighbours; calibrated leave-one-out on the calibration
   set itself, this gives an exactly valid out-of-distribution test. *)
let knn_distance_k = 5

let knn_distance_score fm v = Featmat.knn_mean_dist fm v ~k:knn_distance_k

(* Partial top-k selection instead of the former full sort (see the
   selection pipeline below): how many entries a query keeps. *)
let keep_count ~config n =
  if n < config.Config.select_all_below then n
  else Stdlib.max 1 (int_of_float (config.Config.select_ratio *. float_of_int n))

let default_index_threshold = 4096
let index_threshold_env = "PROM_INDEX_MIN_N"

(* Read per call so tests and benchmarks can flip the policy without
   rebuilding stores created earlier in the process. *)
let index_threshold () =
  match Sys.getenv_opt index_threshold_env with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ -> default_index_threshold)
  | None -> default_index_threshold

(* The largest neighbour count any distance consumer asks of a query. *)
let query_k ~config n =
  Stdlib.max (keep_count ~config n) (Stdlib.max knn_distance_k config.Config.knn_k)

(* Index only when the calibration set is large enough to pay off: past
   the threshold, and with the per-query neighbour demand small relative
   to n (otherwise the index would rerank most rows anyway). *)
let maybe_index ~config fm =
  let n = Featmat.length fm in
  if n = 0 then None
  else begin
    let k = query_k ~config n in
    if n >= index_threshold () && 4 * k <= n then
      Some { knn = Knn_index.build fm; ix_query_k = k; ix_metrics = None }
    else None
  end

(* Adopt a deserialized index instead of rebuilding: the structure is
   already validated by [Knn_index.import]; here only the fit against
   the restored entries is checked, so a snapshot of one store can never
   silently answer for another. *)
let attach_index ~config fm = function
  | None -> maybe_index ~config fm
  | Some knn ->
      if Knn_index.length knn <> Featmat.length fm || Knn_index.dim knn <> Featmat.dim fm
      then invalid_arg "Calibration: snapshot index does not match the entries";
      Some { knn; ix_query_k = query_k ~config (Featmat.length fm); ix_metrics = None }

(* Row block granted to one pool task in the O(n^2 . d) preparation
   scans: the task computes its rows' distance block with the symmetric
   tiled kernel and derives every row's statistic from the buffer, so
   the matrix is streamed once per block instead of once per row pair. *)
let prep_block = 16

(* Iterate [f row dists_off buf] over all rows, block by block. [buf]
   holds the block's distances query-major; each row's slice is the same
   per-pair kernel the per-row scans used, so derived statistics are
   bit-identical. Results are concatenated in row order regardless of
   pool scheduling. *)
let map_row_blocks ?pool fm f =
  let n = Featmat.length fm in
  let nblocks = (n + prep_block - 1) / prep_block in
  let blocks =
    Pool.init ?pool ~min_chunk:1 nblocks (fun b ->
        let r0 = b * prep_block in
        let r1 = Stdlib.min n (r0 + prep_block) in
        let buf = Array.make ((r1 - r0) * n) 0.0 in
        Featmat.sq_dists_rows_block fm ~r0 ~r1 buf;
        Array.init (r1 - r0) (fun q -> f (r0 + q) (q * n) buf))
  in
  Array.concat (Array.to_list blocks)

(* Leave-one-out kNN mean distance of [row], read from its slice of the
   block buffer: same bounded-heap selection (ascending, ties by index)
   and same ascending square-root summation as
   [Featmat.knn_mean_dist_rows]. *)
let loo_knn_mean fm ~k row off buf =
  let n = Featmat.length fm in
  let h = Select.heap_create (Stdlib.min k (Stdlib.max 0 (n - 1))) in
  for i = 0 to n - 1 do
    if i <> row then Select.offer h (Array.unsafe_get buf (off + i)) i
  done;
  let near = Select.drain_sorted h in
  let m = Array.length near in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun (_, sq) -> acc := !acc +. sqrt sq) near;
    !acc /. float_of_int m
  end

(* Sort LOO scores ascending while tracking which entry produced each
   sorted slot. Ties break by entry id; tied slots hold bit-identical
   values, so the sorted score array is exactly what [Array.sort
   Float.compare] over the bare scores produced before the permutation
   was tracked. *)
let sort_loo_with_order scores =
  let n = Array.length scores in
  let order = Array.init n (fun i -> i) in
  let pairs = Array.map (fun i -> (scores.(i), i)) order in
  Array.sort
    (fun (s1, i1) (s2, i2) ->
      let c = Float.compare s1 s2 in
      if c <> 0 then c else Stdlib.compare i1 i2)
    pairs;
  Array.iteri
    (fun r (s, i) ->
      scores.(r) <- s;
      order.(r) <- i)
    pairs;
  (scores, order)

(* The O(n^2) leave-one-out scan, fanned across the pool in row blocks;
   each block is independent, so chunked evaluation is deterministic.
   Returns the ascending scores plus the sorted-position -> entry
   permutation. *)
let loo_distance_scores ?pool fm =
  sort_loo_with_order (map_row_blocks ?pool fm (loo_knn_mean fm ~k:knn_distance_k))

(* First position in a sorted array whose value is >= [x] ([n] when
   every value is smaller) — an iterative lower-bound loop, shared by
   the dense and index-backed conformal tests (both reach it through
   [distance_pvalue_of]). *)
let first_geq sorted x =
  let lo = ref 0 and hi = ref (Array.length sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sorted.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* The conformal distance p-value, in unweighted or weighted-rank form.
   Unweighted: p = (#{LOO >= score} + 1) / (n + 1). Weighted (Barber et
   al., "beyond exchangeability"): the count is replaced by the total
   weight of the LOO scores at or above the test score, read from
   [suffix] — the weight suffix sums in sorted-LOO order — so
   p = (W_>= + 1) / (W_total + 1); the +1 is the test sample's own unit
   weight. With unit weights the suffix sums are exact small integers,
   so [suffix.(pos) +. 1.0] equals [float_of_int (at_least + 1)] bit
   for bit and the two forms coincide exactly; callers pass an empty
   [suffix] to take the count-based path. *)
let distance_pvalue ?(suffix = [||]) ~loo score =
  let n = Array.length loo in
  if n = 0 then 1.0
  else begin
    let weighted = Array.length suffix > 0 in
    if weighted && Array.length suffix <> n + 1 then
      invalid_arg "Calibration.distance_pvalue: suffix length must be n + 1";
    (* rank of the test score, by binary search on the sorted array *)
    let pos = first_geq loo score in
    let at_least_w = if weighted then suffix.(pos) else float_of_int (n - pos) in
    let total_w = if weighted then suffix.(0) else float_of_int n in
    let p = (at_least_w +. 1.0) /. (total_w +. 1.0) in
    (* Beyond the calibration tail every score would share the floor
       1/(W+1); extend with an exponential tail so farther points get
       strictly smaller p-values and the significance level keeps
       controlling how far out the rejection boundary sits. *)
    let max_loo = loo.(n - 1) in
    if at_least_w = 0.0 && max_loo > 0.0 && score > max_loo then
      p *. exp (-4.0 *. ((score /. max_loo) -. 1.0))
    else p
  end

(* Pairwise-median sampling for the temperature. *)
let effective_tau ?pool config fm =
  let n = Featmat.length fm in
  let d2s =
    if n < 2 then [| 1.0 |]
    else begin
      let step = Stdlib.max 1 (n * n / 4000) in
      if step = 1 then
        (* Every pair is sampled: compute the upper triangle from the
           block buffers instead of one kernel call per pair. The median
           is order-independent, and each cell matches the per-pair
           kernel bit for bit. *)
        map_row_blocks ?pool fm (fun i off buf ->
            Array.init (n - 1 - i) (fun r -> buf.(off + i + 1 + r)))
        |> Array.to_list |> Array.concat
      else begin
        (* Sparse sampling: computing full blocks would do [step] times
           the work, so keep the per-pair scan. The sampled pair set is
           defined by the pair's position in the row-major enumeration —
           [offset i + (j - i)] is exactly the counter value the
           sequential double loop would have reached — so the parallel
           scan samples the same pairs the sequential one did. *)
        let offset i = (i * (n - 1)) - (i * (i - 1) / 2) in
        let rows =
          Pool.init ?pool ~min_chunk:64 (n - 1) (fun i ->
              let base = offset i in
              let acc = ref [] in
              for j = i + 1 to n - 1 do
                if (base + j - i) mod step = 0 then
                  acc := Featmat.sq_dist_rows fm i j :: !acc
              done;
              Array.of_list !acc)
        in
        match Array.concat (Array.to_list rows) with
        | [||] -> [| 1.0 |]
        | arr -> arr
      end
    end
  in
  let med = Stats.median d2s in
  let med = if med <= 0.0 then 1.0 else med in
  config.Config.temperature /. 100.0 *. med

let prepare_classification ?pool ~config ~model ~feature_of (d : int Dataset.t) =
  Config.validate config;
  if Dataset.length d = 0 then invalid_arg "Calibration: empty calibration dataset";
  let feats = Array.map feature_of d.x in
  let scaler = fit_scaler feats in
  let std_feats = Array.map (Dataset.Scaler.transform scaler) feats in
  let feat_matrix = Featmat.of_rows std_feats in
  let entries =
    Array.mapi
      (fun i x ->
        { features = std_feats.(i); label = d.y.(i); proba = model.Model.predict_proba x })
      d.x
  in
  let loo_distances, loo_order = loo_distance_scores ?pool feat_matrix in
  {
    entries;
    config;
    scaler;
    tau = effective_tau ?pool config feat_matrix;
    loo_distances;
    loo_order;
    ent_weights = [||];
    loo_suffix = [||];
    pk_weights = [||];
    feat_matrix;
    cls_index = maybe_index ~config feat_matrix;
  }

let standardize_cls t v = Dataset.Scaler.transform t.scaler v

(* Per-entry calibration weights must be a full, finite, non-negative
   vector — one NaN or negative weight would poison every rank sum
   downstream. *)
let check_weights name n w =
  if Array.length w <> n then
    invalid_arg (name ^ ": one weight per calibration entry required");
  Array.iter
    (fun x ->
      if not (x >= 0.0 && x < infinity) then
        invalid_arg (name ^ ": weights must be finite and non-negative"))
    w

(* A permutation of [0, n): each slot hit exactly once. *)
let check_order name n order =
  if Array.length order <> n then invalid_arg (name ^ ": order length mismatch");
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg (name ^ ": not a permutation");
      seen.(i) <- true)
    order

(* Fold a fresh per-entry weight vector into the store: the suffix sums
   over the sorted-LOO order feed the weighted conformal distance test,
   and the packed twin lets the gather-free selection path scale by
   weights at packed positions. An empty vector resets to unit weights
   (the bit-identical unweighted pipeline). When the store predates the
   LOO permutation (pre-v3 snapshot), the distance test keeps its
   unweighted form — only the committee rank sums and the residual
   quantile see the weights. *)
let reweight_cls t w =
  if Array.length w = 0 then
    { t with ent_weights = [||]; loo_suffix = [||]; pk_weights = [||] }
  else begin
    let n = Array.length t.entries in
    check_weights "Calibration.reweight_cls" n w;
    let w = Array.copy w in
    let loo_suffix =
      if Array.length t.loo_order = n then
        Stats.suffix_sums (Array.map (fun e -> w.(e)) t.loo_order)
      else [||]
    in
    let pk_weights =
      match t.cls_index with
      | None -> [||]
      | Some st -> Array.map (fun i -> w.(i)) (Knn_index.member_order st.knn)
    in
    { t with ent_weights = w; loo_suffix; pk_weights }
  end

(* Snapshot restore: the expensive O(n^2 . d) preparation products (tau,
   LOO distances) are taken as given; only the packed feature matrix is
   rebuilt, a cheap O(n . d) copy of the entries' feature rows. The
   weight derivatives (suffix sums, packed twin) are recomputed from the
   persisted weight vector rather than persisted themselves. *)
let restore_cls ?index ?(loo_order = [||]) ?(ent_weights = [||]) ~entries ~config
    ~scaler ~tau ~loo_distances () =
  Config.validate config;
  if Array.length entries = 0 then invalid_arg "Calibration.restore_cls: no entries";
  if not (tau > 0.0) then invalid_arg "Calibration.restore_cls: tau must be positive";
  if Array.length loo_order > 0 then begin
    if Array.length loo_distances <> Array.length entries then
      invalid_arg "Calibration.restore_cls: LOO permutation without matching scores";
    check_order "Calibration.restore_cls" (Array.length entries) loo_order
  end;
  let feat_matrix = Featmat.of_rows (Array.map (fun e -> e.features) entries) in
  let t =
    {
      entries;
      config;
      scaler;
      tau;
      loo_distances;
      loo_order;
      ent_weights = [||];
      loo_suffix = [||];
      pk_weights = [||];
      feat_matrix;
      cls_index = attach_index ~config feat_matrix index;
    }
  in
  if Array.length ent_weights = 0 then t else reweight_cls t ent_weights

type reg_entry = {
  rfeatures : Vec.t;
  target : float;
  rpred : float;
  cluster : int;
  rproxy : float;
  rspread : float;
}

type reg = {
  rentries : reg_entry array;
  rconfig : Config.t;
  clusters : Kmeans.t;
  n_clusters : int;
  rscaler : Dataset.Scaler.t;
  rtau : float;
  rloo_distances : float array;
  rloo_order : int array;  (* see [cls.loo_order] *)
  rent_weights : float array;  (* see [cls.ent_weights] *)
  rloo_suffix : float array;  (* see [cls.loo_suffix] *)
  rpk_weights : float array;  (* see [cls.pk_weights] *)
  rfeat_matrix : Featmat.t;
  mutable reg_index : index_state option;  (* see [cls_index] *)
  rpk_targets : float array;
  rpk_clusters : int array;
  rpk_resid : float array;
      (* per-entry target / cluster / |rpred - target| tables permuted
         into the index's packed member order ([tbl.(m)] describes entry
         [member_order.(m)]), so the indexed query path reads them at the
         candidates' packed positions — tile-local accesses instead of
         an O(n)-spread gather. Empty when the store is unindexed; the
         index is never replaced within a record (growth builds a new
         record), so the tables cannot go stale. *)
}

(* Build the packed sidecars for a (possibly absent) index. Values are
   copied — and the residual folded — entry by entry in packed order;
   each slot holds the exact floats the entry-order reads produce, so
   consumers switching to these tables change only the memory they
   touch, never a result bit. *)
let reg_packed_tables rentries = function
  | None -> ([||], [||], [||])
  | Some st ->
      let order = Knn_index.member_order st.knn in
      let n = Array.length order in
      let targets = Array.make n 0.0 in
      let clusters = Array.make n 0 in
      let resid = Array.make n 0.0 in
      for m = 0 to n - 1 do
        let e = rentries.(order.(m)) in
        targets.(m) <- e.target;
        clusters.(m) <- e.cluster;
        resid.(m) <- abs_float (e.rpred -. e.target)
      done;
      (targets, clusters, resid)

let prepare_regression ?pool ?n_clusters ~config ~model ~feature_of ~seed
    (d : float Dataset.t) =
  Config.validate config;
  let n = Dataset.length d in
  if n = 0 then invalid_arg "Calibration: empty calibration dataset";
  let scaler = fit_scaler (Array.map feature_of d.x) in
  let feats = Array.map (fun x -> Dataset.Scaler.transform scaler (feature_of x)) d.x in
  let rfeat_matrix = Featmat.of_rows feats in
  let rng = Rng.create seed in
  let k =
    match n_clusters with
    | Some k ->
        if k < 1 || k > n then invalid_arg "Calibration: n_clusters out of range";
        k
    | None ->
        if n < 4 then 1
        else
          let k_max = Stdlib.min 20 (n / 2) in
          (Gap_statistic.select rng feats ~k_min:2 ~k_max).best_k
  in
  let clusters = Kmeans.fit (Rng.split rng) feats ~k in
  (* Leave-one-out k-NN proxy targets and neighbourhood spreads,
     mirroring the test-time ground-truth approximation so both sides of
     Eq. 2 use the same estimator. The O(n^2) scan runs over the same
     row-block distance buffers as [loo_distance_scores]; the heap
     selection matches [Featmat.nearest ~exclude] and neighbour targets
     are accumulated farthest-first, matching the order the sequential
     reference produced. *)
  let loo_proxy row off buf =
    let k = config.Config.knn_k in
    let h = Select.heap_create (Stdlib.min k (Stdlib.max 0 (n - 1))) in
    for i = 0 to n - 1 do
      if i <> row then Select.offer h (Array.unsafe_get buf (off + i)) i
    done;
    let near = Select.drain_sorted h in
    match Array.length near with
    | 0 -> (d.y.(row), 0.0)
    | m ->
        let arr = Array.init m (fun r -> d.y.(fst near.(m - 1 - r))) in
        (Stats.mean arr, if m > 1 then Stats.std arr else 0.0)
  in
  let proxies = map_row_blocks ?pool rfeat_matrix loo_proxy in
  let rentries =
    Array.mapi
      (fun i x ->
        let rproxy, rspread = proxies.(i) in
        {
          rfeatures = feats.(i);
          target = d.y.(i);
          rpred = model.Model.predict x;
          cluster = clusters.assignments.(i);
          rproxy;
          rspread;
        })
      d.x
  in
  let reg_index = maybe_index ~config rfeat_matrix in
  let rpk_targets, rpk_clusters, rpk_resid = reg_packed_tables rentries reg_index in
  let rloo_distances, rloo_order = loo_distance_scores ?pool rfeat_matrix in
  {
    rentries;
    rconfig = config;
    clusters;
    n_clusters = k;
    rscaler = scaler;
    rtau = effective_tau ?pool config rfeat_matrix;
    rloo_distances;
    rloo_order;
    rent_weights = [||];
    rloo_suffix = [||];
    rpk_weights = [||];
    rfeat_matrix;
    reg_index;
    rpk_targets;
    rpk_clusters;
    rpk_resid;
  }

let standardize_reg t v = Dataset.Scaler.transform t.rscaler v

(* See [reweight_cls]. *)
let reweight_reg t w =
  if Array.length w = 0 then
    { t with rent_weights = [||]; rloo_suffix = [||]; rpk_weights = [||] }
  else begin
    let n = Array.length t.rentries in
    check_weights "Calibration.reweight_reg" n w;
    let w = Array.copy w in
    let rloo_suffix =
      if Array.length t.rloo_order = n then
        Stats.suffix_sums (Array.map (fun e -> w.(e)) t.rloo_order)
      else [||]
    in
    let rpk_weights =
      match t.reg_index with
      | None -> [||]
      | Some st -> Array.map (fun i -> w.(i)) (Knn_index.member_order st.knn)
    in
    { t with rent_weights = w; rloo_suffix; rpk_weights }
  end

let restore_reg ?index ?(rloo_order = [||]) ?(rent_weights = [||]) ~rentries ~rconfig
    ~clusters ~n_clusters ~rscaler ~rtau ~rloo_distances () =
  Config.validate rconfig;
  if Array.length rentries = 0 then invalid_arg "Calibration.restore_reg: no entries";
  if not (rtau > 0.0) then invalid_arg "Calibration.restore_reg: tau must be positive";
  if n_clusters < 1 then invalid_arg "Calibration.restore_reg: n_clusters out of range";
  if Array.length rloo_order > 0 then begin
    if Array.length rloo_distances <> Array.length rentries then
      invalid_arg "Calibration.restore_reg: LOO permutation without matching scores";
    check_order "Calibration.restore_reg" (Array.length rentries) rloo_order
  end;
  let rfeat_matrix = Featmat.of_rows (Array.map (fun e -> e.rfeatures) rentries) in
  let reg_index = attach_index ~config:rconfig rfeat_matrix index in
  let rpk_targets, rpk_clusters, rpk_resid = reg_packed_tables rentries reg_index in
  let t =
    {
      rentries;
      rconfig;
      clusters;
      n_clusters;
      rscaler;
      rtau;
      rloo_distances;
      rloo_order;
      rent_weights = [||];
      rloo_suffix = [||];
      rpk_weights = [||];
      rfeat_matrix;
      reg_index;
      rpk_targets;
      rpk_clusters;
      rpk_resid;
    }
  in
  if Array.length rent_weights = 0 then t else reweight_reg t rent_weights

type 'e selected = { index : int; entry : 'e; weight : float; distance : float }

(* [sel_pos]/[sel_packed]: when the selection is the pruned index's
   candidate prefix, [sel_pos.(r)] carries the [r]-th kept entry's
   packed position so table reads can stay in the index's
   cluster-contiguous order; [sel_idxs] still holds entry ids either
   way, so consumers without packed tables ignore the positions. *)
type selection = {
  sel_idxs : int array;
  sel_weights : float array;
  sel_count : int;
  sel_pos : int array;
  sel_packed : bool;
}

(* Per-domain query workspace: the shared distance buffers, the
   selection's permutation arrays, the weight buffer and the kNN heap
   are reused across queries (one workspace per domain, so pooled batch
   evaluation never shares one), keeping the per-query hot path free of
   heap churn. Queries are evaluated synchronously within a domain, so
   reuse is safe. *)
type query_scratch = {
  sel : Select.scratch;
  aux : Select.scratch;
      (* second workspace for sorts that must not clobber a live
         selection (e.g. the interval quantile's residual sort) *)
  mutable weights : float array;
  mutable dists : float array;
      (* the per-query shared squared-distance scan (Eq. 1 distances,
         conformal kNN, cluster argmin all read this one buffer) *)
  mutable block : float array;
      (* tile-sized query-major distance block for batched evaluation *)
  knn_heap : Select.heap;
  mutable knn_idxs : int array;
  mutable knn_vals : float array;
  mutable cand_idxs : int array;
  mutable cand_vals : float array;
      (* the pruned index's candidate prefix(es): one [ix_query_k]-sized
         slice per in-flight query of the current tile *)
  mutable cand_pos : int array;
      (* each candidate's packed position in the index's member order,
         alongside [cand_idxs] — the key into the packed sidecar tables
         the gather-free p-value pass reads *)
  mutable selpos : int array;
      (* the kept prefix of packed positions staged with a pruned
         selection, mirroring the selection workspace's index prefix *)
}

let query_scratch : query_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sel = Select.scratch_create ();
        aux = Select.scratch_create ();
        weights = [||];
        dists = [||];
        block = [||];
        knn_heap = Select.heap_create 0;
        knn_idxs = [||];
        knn_vals = [||];
        cand_idxs = [||];
        cand_vals = [||];
        cand_pos = [||];
        selpos = [||];
      })

(* A query's distances against the calibration entries, in one of two
   equivalent forms. [Dense] is the full squared-distance vector — a
   view into a per-domain buffer, computed once per query. [Pruned] is
   the index's answer: the ascending (squared distance, row) prefix of
   length [ix_query_k] — exactly the prefix every consumer reads from
   the dense form, so the two are interchangeable bit for bit. A pruned
   view keeps the query and matrix so a consumer that (exceptionally)
   needs more neighbours than the prefix holds can fall back to a dense
   scan. Views are valid until the next distance computation on the
   same domain. *)
type dense = { dbuf : float array; doff : int; dlen : int }

type pruned = {
  pidxs : int array;
  pvals : float array;
  ppos : int array;
      (* each candidate's packed position ([Knn_index.member_order]
         index), so consumers can read sidecar tables permuted into
         packed order instead of gathering entry-order tables at random *)
  poff : int;
  pcount : int;
  pn : int;  (* full calibration size, for [keep_count] *)
  pquery : Vec.t;
  pfm : Featmat.t;
}

type dists = Dense of dense | Pruned of pruned

let dense_scan fm v =
  let qs = Domain.DLS.get query_scratch in
  let n = Featmat.length fm in
  if Array.length qs.dists < n then qs.dists <- Array.make (Stdlib.max n 1) 0.0;
  Featmat.sq_dists_into fm v qs.dists;
  { dbuf = qs.dists; doff = 0; dlen = n }

let query_distances_of fm v = Dense (dense_scan fm v)

(* The tile form: one cache-blocked kernel call for the whole query
   tile, returning per-query views into the block buffer. The views
   stay valid while the tile's queries are evaluated (per-query
   consumers use the other scratch buffers), until the next block on
   the same domain. *)
let query_distances_block_of fm queries =
  let qs = Domain.DLS.get query_scratch in
  let n = Featmat.length fm in
  let nq = Array.length queries in
  if Array.length qs.block < nq * n then qs.block <- Array.make (Stdlib.max (nq * n) 1) 0.0;
  Featmat.sq_dists_block fm queries qs.block;
  Array.init nq (fun q -> Dense { dbuf = qs.block; doff = q * n; dlen = n })

(* --- Index-backed query paths. --- *)

let ensure_cand qs cap =
  if Array.length qs.cand_idxs < cap then begin
    qs.cand_idxs <- Array.make cap 0;
    qs.cand_vals <- Array.make cap 0.0;
    qs.cand_pos <- Array.make cap 0
  end

let record_index_metrics st acc =
  match st.ix_metrics with
  | None -> ()
  | Some m ->
      Prom_obs.Counter.add m.ix_scanned (float_of_int acc.Knn_index.ac_scanned);
      Prom_obs.Counter.add m.ix_pruned (float_of_int acc.Knn_index.ac_rows_pruned)

let metrics_acc st =
  match st.ix_metrics with Some _ -> Some (Knn_index.acc_create ()) | None -> None

(* Pruned views only when the prefix is a strict subset of the rows; a
   query_k covering the whole matrix would just be a slower dense
   scan. *)
let index_applies st fm = st.ix_query_k < Featmat.length fm

let query_pruned st fm v =
  let n = Featmat.length fm in
  let k = Stdlib.min st.ix_query_k n in
  let qs = Domain.DLS.get query_scratch in
  ensure_cand qs k;
  let acc = metrics_acc st in
  let m =
    Knn_index.query_into ?stats:acc ~pos:qs.cand_pos st.knn fm v ~k ~idxs:qs.cand_idxs
      ~vals:qs.cand_vals ~off:0
  in
  (match acc with Some a -> record_index_metrics st a | None -> ());
  Pruned
    {
      pidxs = qs.cand_idxs;
      pvals = qs.cand_vals;
      ppos = qs.cand_pos;
      poff = 0;
      pcount = m;
      pn = n;
      pquery = v;
      pfm = fm;
    }

let query_pruned_block st fm queries =
  let n = Featmat.length fm in
  let k = Stdlib.min st.ix_query_k n in
  let nq = Array.length queries in
  let qs = Domain.DLS.get query_scratch in
  ensure_cand qs (nq * k);
  let acc = metrics_acc st in
  let views =
    Array.init nq (fun q ->
        let v = queries.(q) in
        let m =
          Knn_index.query_into ?stats:acc ~pos:qs.cand_pos st.knn fm v ~k
            ~idxs:qs.cand_idxs ~vals:qs.cand_vals ~off:(q * k)
        in
        Pruned
          {
            pidxs = qs.cand_idxs;
            pvals = qs.cand_vals;
            ppos = qs.cand_pos;
            poff = q * k;
            pcount = m;
            pn = n;
            pquery = v;
            pfm = fm;
          })
  in
  (match acc with Some a -> record_index_metrics st a | None -> ());
  views

let query_distances_ix index fm v =
  match index with
  | Some st when index_applies st fm -> query_pruned st fm v
  | _ -> query_distances_of fm v

let query_distances_block_ix index fm queries =
  match index with
  | Some st when index_applies st fm && Array.length queries > 0 ->
      query_pruned_block st fm queries
  | _ -> query_distances_block_of fm queries

(* Bounded kNN selection over the shared buffer: offers in index order
   (the order the matrix scans used) into the reusable per-domain heap
   and drains in place — ascending (squared distance, index), exactly
   [Featmat.nearest]'s ordering, without the per-call pair array. On
   return the first [m] slots of [knn_idxs]/[knn_vals] hold the
   neighbours; [m] is returned. *)
let knn_from_dists qs d ~k =
  let k = Stdlib.min k d.dlen in
  Select.heap_reset qs.knn_heap k;
  for i = 0 to d.dlen - 1 do
    Select.offer qs.knn_heap (Array.unsafe_get d.dbuf (d.doff + i)) i
  done;
  if Array.length qs.knn_idxs < k then begin
    qs.knn_idxs <- Array.make (Stdlib.max k 1) 0;
    qs.knn_vals <- Array.make (Stdlib.max k 1) 0.0
  end;
  Select.drain_into qs.knn_heap ~idxs:qs.knn_idxs ~vals:qs.knn_vals

(* Mean distance to the k nearest entries, from the shared buffer: sums
   the square roots ascending, mirroring [Featmat.knn_mean_dist]. *)
let knn_mean_from_dists qs d ~k =
  let m = knn_from_dists qs d ~k in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for r = 0 to m - 1 do
      acc := !acc +. sqrt qs.knn_vals.(r)
    done;
    !acc /. float_of_int m
  end

(* Partial top-k selection instead of the former full sort: distances
   are scanned once (from the cached matrix when available) and only the
   kept prefix is ordered, O(n + keep log keep). Selection runs on
   squared distances — the ordering is the same — and the square root is
   taken only for the kept entries, whose weights reproduce the
   exp(-d^2/tau) of the sort-based reference bit for bit. On return the
   workspace prefix holds the ascending (squared distance, index) pairs
   of the kept entries. *)
let select_core scratch ?featmat ~config entries ~feature_of_entry test_features =
  let n = Array.length entries in
  let keep = keep_count ~config n in
  let sq = Select.scratch_keys scratch n in
  (match featmat with
  | Some fm ->
      if Featmat.length fm <> n then
        invalid_arg "Calibration.select_subset: matrix/entries size mismatch";
      Featmat.sq_dists_into fm test_features sq
  | None ->
      for i = 0 to n - 1 do
        sq.(i) <- Distance.sq_euclidean (feature_of_entry entries.(i)) test_features
      done);
  Select.select_in_place scratch ~n ~k:keep;
  keep

(* The [?tau] override skips [Config.validate], so guard it here: a
   non-positive (or NaN) tau makes [exp (-d²/tau)] collapse to 0/0 = NaN
   for zero-distance neighbours, and one NaN weight poisons every
   p-value accumulator downstream. *)
let resolve_tau tau config =
  let t = match tau with Some t -> t | None -> config.Config.temperature in
  if not (t > 0.0) then invalid_arg "Calibration.select: tau must be positive";
  t

let select_subset ?tau ?featmat ?(entry_weights = [||]) ~config entries
    ~feature_of_entry test_features =
  let tau = resolve_tau tau config in
  if Array.length entries = 0 then [||]
  else begin
    let scratch = (Domain.DLS.get query_scratch).sel in
    let keep = select_core scratch ?featmat ~config entries ~feature_of_entry test_features in
    let vals = Select.scratch_vals scratch and idxs = Select.scratch_idxs scratch in
    let weighted = Array.length entry_weights > 0 in
    Array.init keep (fun r ->
        let i = idxs.(r) in
        let dist = sqrt vals.(r) in
        let weight = exp (-.(dist *. dist) /. tau) in
        (* Calibration weights multiply into the Eq. 1 weight (weighted
           conformal prediction); the unit path leaves the product
           untaken so unweighted selections stay bit-identical. *)
        let weight = if weighted then weight *. entry_weights.(i) else weight in
        { index = i; entry = entries.(i); weight; distance = dist })
  end

(* Allocation-free variant for the per-query hot path. Materializing the
   [selected] record array costs far more than it looks: at typical
   sizes (hundreds of entries) the pointer array is allocated directly
   on the major heap, and filling it with freshly minted minor-heap
   records drives the write barrier hard enough to force a minor
   collection per call — each of which is a stop-the-world handshake
   every domain must join. The packed form instead reuses a per-domain
   index buffer and weight buffer; the returned view is a few words on
   the minor heap. The buffers are valid until the next selection on the
   same domain, which is exactly the lifetime of one query evaluation. *)
let select_packed ?tau ?featmat ~config entries ~feature_of_entry test_features =
  let tau = resolve_tau tau config in
  if Array.length entries = 0 then { sel_idxs = [||]; sel_weights = [||]; sel_count = 0; sel_pos = [||]; sel_packed = false }
  else begin
    let qs = Domain.DLS.get query_scratch in
    let keep = select_core qs.sel ?featmat ~config entries ~feature_of_entry test_features in
    let vals = Select.scratch_vals qs.sel in
    if Array.length qs.weights < keep then qs.weights <- Array.make (Array.length vals) 0.0;
    let weights = qs.weights in
    for r = 0 to keep - 1 do
      let dist = sqrt vals.(r) in
      weights.(r) <- exp (-.(dist *. dist) /. tau)
    done;
    {
      sel_idxs = Select.scratch_idxs qs.sel;
      sel_weights = weights;
      sel_count = keep;
      sel_pos = [||];
      sel_packed = false;
    }
  end

let assign_cluster reg v =
  (* Label by the nearest calibration sample's cluster, falling back to
     the nearest centroid when entries are somehow empty. *)
  match Array.length reg.rentries with
  | 0 -> Kmeans.assign reg.clusters v
  | _ -> reg.rentries.(Featmat.argmin_sq reg.rfeat_matrix v).cluster

let knn_truth reg v ~k =
  let idx = Featmat.nearest reg.rfeat_matrix v ~k in
  let targets = Array.map (fun (i, _) -> reg.rentries.(i).target) idx in
  let mean = Stats.mean targets in
  let spread = if Array.length targets > 1 then Stats.std targets else 0.0 in
  (mean, spread)

let distance_pvalue_cls t v =
  distance_pvalue ~suffix:t.loo_suffix ~loo:t.loo_distances
    (knn_distance_score t.feat_matrix v)

let distance_pvalue_reg t v =
  distance_pvalue ~suffix:t.rloo_suffix ~loo:t.rloo_distances
    (knn_distance_score t.rfeat_matrix v)

(* --- Shared per-query distance pipeline. ---

   The consumers below all derive their result from one [dists] view —
   the distance vector the independent per-concern scans above each
   recomputed. Every consumer replays its independent counterpart's
   exact arithmetic over the buffer (same selection, same accumulation
   order), so verdicts are bit-identical; only the number of matrix
   scans changes. *)

let query_distances_cls t v = query_distances_ix t.cls_index t.feat_matrix v
let query_distances_reg t v = query_distances_ix t.reg_index t.rfeat_matrix v
let query_distances_block_cls t vs = query_distances_block_ix t.cls_index t.feat_matrix vs
let query_distances_block_reg t vs = query_distances_block_ix t.reg_index t.rfeat_matrix vs

(* [select_packed] fed from the shared buffer instead of its own scan:
   the keys are blitted into the selection workspace (selection
   destroys key order, and the buffer must outlive it for the other
   consumers), then selected and weighted exactly as [select_packed]
   does. *)
let select_packed_dense tau ~entry_weights ~config d =
  let n = d.dlen in
  if n = 0 then { sel_idxs = [||]; sel_weights = [||]; sel_count = 0; sel_pos = [||]; sel_packed = false }
  else begin
    let qs = Domain.DLS.get query_scratch in
    let keep = keep_count ~config n in
    let sq = Select.scratch_keys qs.sel n in
    Array.blit d.dbuf d.doff sq 0 n;
    Select.select_in_place qs.sel ~n ~k:keep;
    let vals = Select.scratch_vals qs.sel in
    if Array.length qs.weights < keep then qs.weights <- Array.make (Array.length vals) 0.0;
    let weights = qs.weights in
    for r = 0 to keep - 1 do
      let dist = sqrt vals.(r) in
      weights.(r) <- exp (-.(dist *. dist) /. tau)
    done;
    (* Calibration weights (weighted conformal mode) fold into the Eq. 1
       weights; the empty vector is unit mode and skips the pass. *)
    if Array.length entry_weights > 0 then
      Select.scale_by ~weights ~idxs:(Select.scratch_idxs qs.sel)
        ~factors:entry_weights ~n:keep;
    {
      sel_idxs = Select.scratch_idxs qs.sel;
      sel_weights = weights;
      sel_count = keep;
      sel_pos = [||];
      sel_packed = false;
    }
  end

(* The pruned form: the index's candidate prefix IS the selection — the
   same ascending (squared distance, index) order the dense path's
   [select_in_place] produces — so the kept slice is staged in the
   selection workspace and weighted with identical arithmetic. A keep
   count exceeding the prefix (a config change after the index was
   sized) falls back to the dense scan; results stay bit-identical
   either way. *)
let select_packed_dists ?tau ?(entry_weights = [||]) ?(packed_weights = [||]) ~config d =
  let tau = resolve_tau tau config in
  match d with
  | Dense d -> select_packed_dense tau ~entry_weights ~config d
  | Pruned p ->
      let keep = keep_count ~config p.pn in
      if keep > p.pcount then
        select_packed_dense tau ~entry_weights ~config (dense_scan p.pfm p.pquery)
      else begin
        let qs = Domain.DLS.get query_scratch in
        ignore (Select.scratch_keys qs.sel keep : float array);
        let vals = Select.scratch_vals qs.sel and idxs = Select.scratch_idxs qs.sel in
        Array.blit p.pvals p.poff vals 0 keep;
        Array.blit p.pidxs p.poff idxs 0 keep;
        if Array.length qs.selpos < keep then qs.selpos <- Array.make (Array.length vals) 0;
        Array.blit p.ppos p.poff qs.selpos 0 keep;
        if Array.length qs.weights < keep then qs.weights <- Array.make (Array.length vals) 0.0;
        let weights = qs.weights in
        for r = 0 to keep - 1 do
          let dist = sqrt vals.(r) in
          weights.(r) <- exp (-.(dist *. dist) /. tau)
        done;
        (* The calibration-weight pass reads the packed twin at packed
           positions when the store carries one (gather-free, same floats
           by construction), the entry-order vector otherwise. *)
        if Array.length entry_weights > 0 then begin
          if Array.length packed_weights > 0 then
            Select.scale_by ~weights ~idxs:qs.selpos ~factors:packed_weights ~n:keep
          else Select.scale_by ~weights ~idxs ~factors:entry_weights ~n:keep
        end;
        {
          sel_idxs = idxs;
          sel_weights = weights;
          sel_count = keep;
          sel_pos = qs.selpos;
          sel_packed = true;
        }
      end

(* Conformal kNN mean distance from either view. The pruned prefix is
   ascending, so summing its first [m] square roots replays the dense
   path's accumulation order exactly. *)
let conformal_mean_of_dists d =
  match d with
  | Dense d ->
      let qs = Domain.DLS.get query_scratch in
      knn_mean_from_dists qs d ~k:knn_distance_k
  | Pruned p ->
      let m = Stdlib.min knn_distance_k p.pn in
      if m > p.pcount then begin
        let qs = Domain.DLS.get query_scratch in
        knn_mean_from_dists qs (dense_scan p.pfm p.pquery) ~k:knn_distance_k
      end
      else if m = 0 then 0.0
      else begin
        let acc = ref 0.0 in
        for r = 0 to m - 1 do
          acc := !acc +. sqrt p.pvals.(p.poff + r)
        done;
        !acc /. float_of_int m
      end

let distance_pvalue_cls_dists t d =
  distance_pvalue ~suffix:t.loo_suffix ~loo:t.loo_distances (conformal_mean_of_dists d)

let distance_pvalue_reg_dists t d =
  distance_pvalue ~suffix:t.rloo_suffix ~loo:t.rloo_distances
    (conformal_mean_of_dists d)

(* [knn_truth] from the buffer: the neighbour set and its ascending
   order match [Featmat.nearest], and the targets array hands mean and
   spread to the same [Stats] calls, so the estimate is bit-identical.
   The targets array is [k] floats on the minor heap — the boxed
   (index, distance) tuple array of the independent path is gone. The
   pruned view reads the same neighbours straight from its prefix. *)
let knn_truth_dists reg d ~k =
  let finish m target_of =
    let targets = Array.init m target_of in
    let mean = Stats.mean targets in
    let spread = if m > 1 then Stats.std targets else 0.0 in
    (mean, spread)
  in
  match d with
  | Dense dd ->
      let qs = Domain.DLS.get query_scratch in
      let m = knn_from_dists qs dd ~k in
      finish m (fun r -> reg.rentries.(qs.knn_idxs.(r)).target)
  | Pruned p ->
      let m = Stdlib.min k p.pn in
      if m > p.pcount then begin
        let qs = Domain.DLS.get query_scratch in
        let m = knn_from_dists qs (dense_scan p.pfm p.pquery) ~k in
        finish m (fun r -> reg.rentries.(qs.knn_idxs.(r)).target)
      end
      else if Array.length reg.rpk_targets > 0 then
        (* Packed sidecar: same floats at the candidates' packed
           positions, read tile-locally instead of gathered across the
           entry array. *)
        finish m (fun r -> reg.rpk_targets.(p.ppos.(p.poff + r)))
      else finish m (fun r -> reg.rentries.(p.pidxs.(p.poff + r)).target)

(* [assign_cluster]'s nearest-neighbour argmin read from the buffer:
   strict [<] with ascending index, first minimum wins, exactly
   [Featmat.argmin_sq]. The pruned prefix leads with exactly that row —
   the least (distance, index) — so its head is the same argmin. *)
let assign_cluster_dists reg d =
  match d with
  | Dense d ->
      if d.dlen = 0 then invalid_arg "Calibration.assign_cluster_dists: empty calibration";
      let best = ref 0 and best_d = ref infinity in
      for i = 0 to d.dlen - 1 do
        let v = Array.unsafe_get d.dbuf (d.doff + i) in
        if v < !best_d then begin
          best := i;
          best_d := v
        end
      done;
      reg.rentries.(!best).cluster
  | Pruned p ->
      if p.pcount = 0 then invalid_arg "Calibration.assign_cluster_dists: empty calibration";
      if Array.length reg.rpk_clusters > 0 then reg.rpk_clusters.(p.ppos.(p.poff))
      else reg.rentries.(p.pidxs.(p.poff)).cluster

(* Weighted (1 - epsilon) quantile of the selected entries' absolute
   residuals — the split-conformal interval half-width. Runs in the
   [aux] workspace so the live selection's buffers survive; replaces
   the per-call (residual, weight) tuple array and sort of the former
   [Detector.Regression.interval] body. Residual ties may sort in a
   different order than the tuple sort used, but the quantile only
   reads the residual value at the crossing, which ties share. *)
let weighted_residual_quantile reg selection ~epsilon =
  let k = selection.sel_count in
  if k = 0 then 0.0
  else begin
    let qs = Domain.DLS.get query_scratch in
    let keys = Select.scratch_keys qs.aux k in
    if selection.sel_packed && Array.length reg.rpk_resid > 0 then
      (* Packed selections read the precomputed |rpred - target| table
         at the kept entries' packed positions — the same fold the
         entry-order branch performs per call, so keys are bit-equal. *)
      for r = 0 to k - 1 do
        keys.(r) <- reg.rpk_resid.(selection.sel_pos.(r))
      done
    else
      for r = 0 to k - 1 do
        let e = reg.rentries.(selection.sel_idxs.(r)) in
        keys.(r) <- abs_float (e.rpred -. e.target)
      done;
    Select.select_in_place qs.aux ~n:k ~k;
    let vals = Select.scratch_vals qs.aux and idxs = Select.scratch_idxs qs.aux in
    let total = ref 0.0 in
    for r = 0 to k - 1 do
      total := !total +. selection.sel_weights.(idxs.(r))
    done;
    let target_mass = (1.0 -. epsilon) *. (!total +. 1.0) in
    let acc = ref 0.0 and res = ref nan in
    for r = 0 to k - 1 do
      if Float.is_nan !res then begin
        acc := !acc +. selection.sel_weights.(idxs.(r));
        if !acc >= target_mass then res := vals.(r)
      end
    done;
    if Float.is_nan !res then vals.(k - 1) else !res
  end

(* --- Index telemetry and incremental growth. --- *)

let set_index_state_metrics st m =
  st.ix_metrics <- Some m;
  Prom_obs.Gauge.set m.ix_clusters (float_of_int (Knn_index.clusters st.knn))

let set_index_metrics_cls t m =
  match t.cls_index with None -> () | Some st -> set_index_state_metrics st m

let set_index_metrics_reg t m =
  match t.reg_index with None -> () | Some st -> set_index_state_metrics st m

let index_of_cls t = Option.map (fun st -> st.knn) t.cls_index
let index_of_reg t = Option.map (fun st -> st.knn) t.reg_index

(* Carry the index across an entry append: batched insert with the
   structure's own rebuild-on-imbalance policy, or a fresh build when
   the append crosses the indexing threshold. Telemetry survives the
   transition. *)
let grow_index ~config index fm ~from_row =
  match index with
  | Some st ->
      let knn, rebuilt = Knn_index.insert_batch st.knn fm ~from_row in
      (match st.ix_metrics with
      | Some m ->
          if rebuilt then Prom_obs.Counter.inc m.ix_rebuilds;
          Prom_obs.Gauge.set m.ix_clusters (float_of_int (Knn_index.clusters knn))
      | None -> ());
      Some
        {
          knn;
          ix_query_k = query_k ~config (Featmat.length fm);
          ix_metrics = st.ix_metrics;
        }
  | None -> maybe_index ~config fm

(* Append the new rows' leave-one-out scores to the sorted reference
   distribution. The existing entries' scores are kept as computed at
   preparation time — recomputing them would cost the full O(n²·d)
   pass the append exists to avoid — so the conformal reference lags
   the grown set slightly until the next full retrain. *)
let grow_loo fm (loo, order) ~from_row =
  let n = Featmat.length fm in
  let added =
    Array.init (n - from_row) (fun i ->
        Featmat.knn_mean_dist_rows fm ~row:(from_row + i) ~k:knn_distance_k)
  in
  if Array.length order = Array.length loo then begin
    (* Merge while tracking each sorted slot's entry: the appended rows'
       scores tag entries [from_row ..]. The sorted score values equal
       the bare [Array.sort Float.compare] merge (ties are bit-equal),
       so the conformal reference is unchanged by the bookkeeping. *)
    let merged = Array.make (Array.length loo + Array.length added) (0.0, 0) in
    Array.iteri (fun r s -> merged.(r) <- (s, order.(r))) loo;
    Array.iteri
      (fun i s -> merged.(Array.length loo + i) <- (s, from_row + i))
      added;
    Array.sort
      (fun (s1, i1) (s2, i2) ->
        let c = Float.compare s1 s2 in
        if c <> 0 then c else Stdlib.compare i1 i2)
      merged;
    (Array.map fst merged, Array.map snd merged)
  end
  else begin
    (* Unknown permutation (pre-v3 restore): keep the plain sorted merge;
       the distance test stays unweighted for this store's lifetime. *)
    let merged = Array.append loo added in
    Array.sort Float.compare merged;
    (merged, [||])
  end

let append_cls t new_entries =
  if Array.length new_entries = 0 then t
  else begin
    let from_row = Featmat.length t.feat_matrix in
    let feat_matrix =
      Featmat.append t.feat_matrix (Array.map (fun e -> e.features) new_entries)
    in
    let loo_distances, loo_order =
      grow_loo feat_matrix (t.loo_distances, t.loo_order) ~from_row
    in
    (* Appends reset to unit weights: the freshly admitted rows have no
       weight yet and a stale vector would mis-weight every rank sum.
       Streaming callers reweight immediately after ([reweight_cls]). *)
    {
      t with
      entries = Array.append t.entries new_entries;
      feat_matrix;
      loo_distances;
      loo_order;
      ent_weights = [||];
      loo_suffix = [||];
      pk_weights = [||];
      cls_index = grow_index ~config:t.config t.cls_index feat_matrix ~from_row;
    }
  end

(* Full rebuild from an explicit entry set with frozen preprocessing —
   the streaming store's compaction step. The scaler and tau are carried
   over from the store the survivors came out of (recomputing them would
   shift every distance and weight for all in-flight comparisons); the
   O(n²·d) leave-one-out reference and the indexing decision are
   recomputed from scratch, off the serving path — the rebuilt store is
   published by hot-swap when done. Weights reset to unit; the caller
   reweights against the new entry order. *)
let rebuild_cls ?pool ~config ~scaler ~tau entries =
  Config.validate config;
  if Array.length entries = 0 then invalid_arg "Calibration.rebuild_cls: no entries";
  if not (tau > 0.0) then invalid_arg "Calibration.rebuild_cls: tau must be positive";
  let feat_matrix = Featmat.of_rows (Array.map (fun e -> e.features) entries) in
  let loo_distances, loo_order = loo_distance_scores ?pool feat_matrix in
  {
    entries;
    config;
    scaler;
    tau;
    loo_distances;
    loo_order;
    ent_weights = [||];
    loo_suffix = [||];
    pk_weights = [||];
    feat_matrix;
    cls_index = maybe_index ~config feat_matrix;
  }

let append_reg t samples =
  if Array.length samples = 0 then t
  else begin
    let from_row = Featmat.length t.rfeat_matrix in
    (* Each admitted sample is labelled against the PRE-append store —
       nearest-neighbour cluster and LOO-kNN proxy exactly as a test
       query would have been scored — so the batch's entries do not
       depend on the order the samples arrive in. *)
    let new_entries =
      Array.map
        (fun (f, y, pred) ->
          let cluster = t.rentries.(Featmat.argmin_sq t.rfeat_matrix f).cluster in
          let rproxy, rspread = knn_truth t f ~k:t.rconfig.Config.knn_k in
          { rfeatures = f; target = y; rpred = pred; cluster; rproxy; rspread })
        samples
    in
    let rfeat_matrix =
      Featmat.append t.rfeat_matrix (Array.map (fun (f, _, _) -> f) samples)
    in
    let rentries = Array.append t.rentries new_entries in
    let reg_index = grow_index ~config:t.rconfig t.reg_index rfeat_matrix ~from_row in
    (* The member permutation changes on every insert (splice or
       rebuild), so the packed sidecars are rebuilt against the grown
       index — never carried over. *)
    let rpk_targets, rpk_clusters, rpk_resid = reg_packed_tables rentries reg_index in
    let rloo_distances, rloo_order =
      grow_loo rfeat_matrix (t.rloo_distances, t.rloo_order) ~from_row
    in
    (* See [append_cls]: appends reset to unit weights. *)
    {
      t with
      rentries;
      rfeat_matrix;
      rloo_distances;
      rloo_order;
      rent_weights = [||];
      rloo_suffix = [||];
      rpk_weights = [||];
      reg_index;
      rpk_targets;
      rpk_clusters;
      rpk_resid;
    }
  end
