open Prom_linalg
open Prom_ml

type t = {
  detector : Detector.Classification.t;
  (* Holds the probability vector of the in-flight query. The wrapped
     "model" reads it when the detector asks for the query's
     probabilities; calibration inputs are served from [known]. *)
  query : (Vec.t * Vec.t) option ref;
  known : (Vec.t, Vec.t) Hashtbl.t;
  tel : Telemetry.t option;
}

let create ?config ?committee ?telemetry triples =
  if triples = [] then invalid_arg "Service.create: empty calibration";
  let dim = match triples with (f, _, _) :: _ -> Array.length f | [] -> 0 in
  let n_classes =
    List.fold_left (fun acc (_, _, p) -> Stdlib.max acc (Array.length p)) 0 triples
  in
  List.iter
    (fun (f, label, p) ->
      if Array.length f <> dim then invalid_arg "Service.create: ragged features";
      if Array.length p <> n_classes then
        invalid_arg "Service.create: ragged probability vectors";
      if label < 0 || label >= n_classes then
        invalid_arg "Service.create: label out of range")
    triples;
  let known = Hashtbl.create (List.length triples) in
  List.iter (fun (f, _, p) -> Hashtbl.replace known f p) triples;
  let query = ref None in
  let predict_proba x =
    match !query with
    | Some (qx, qp) when qx == x -> qp
    | _ -> (
        match Hashtbl.find_opt known x with
        | Some p -> p
        | None -> invalid_arg "Service: unknown input")
  in
  let model =
    { Model.n_classes; predict_proba; name = "external"; state = Model.No_state }
  in
  let calibration =
    Dataset.create
      (Array.of_list (List.map (fun (f, _, _) -> f) triples))
      (Array.of_list (List.map (fun (_, y, _) -> y) triples))
  in
  let detector =
    Detector.Classification.create ?config ?committee ?telemetry ~model
      ~feature_of:Fun.id calibration
  in
  { detector; query; known; tel = telemetry }

let evaluate t ~features ~proba =
  t.query := Some (features, proba);
  Fun.protect
    ~finally:(fun () -> t.query := None)
    (fun () -> Detector.Classification.evaluate t.detector features)

(* Batched entry point. The single-query path smuggles the in-flight
   probability vector through a ref the wrapped model reads — which is
   not domain-safe — so the batch path instead binds each query's
   probabilities in [known] for the duration of its evaluation (the
   table is then only read concurrently) and restores the original
   bindings afterwards.

   Queries whose feature vectors are value-equal would clobber each
   other's bindings, so the batch is split into rounds: the r-th
   occurrence of a feature value goes to round r. Within a round every
   binding is collision-free, so each query is evaluated against its own
   probability vector — exactly what the corresponding single-query
   call would see. Collision-free batches (the overwhelmingly common
   case) run in one round. *)
let evaluate_batch ?pool t queries =
  let n = Array.length queries in
  let occurrence = Hashtbl.create n in
  let rounds =
    Array.map
      (fun (f, _) ->
        let r = match Hashtbl.find_opt occurrence f with Some r -> r | None -> 0 in
        Hashtbl.replace occurrence f (r + 1);
        r)
      queries
  in
  let n_rounds = Array.fold_left (fun acc r -> Stdlib.max acc (r + 1)) 0 rounds in
  (match t.tel with
  | Some tel ->
      Prom_obs.Histogram.observe tel.Telemetry.batch_size (float_of_int n);
      let collisions = n - Hashtbl.length occurrence in
      if collisions > 0 then
        Prom_obs.Counter.add tel.Telemetry.collision_rebinds (float_of_int collisions)
  | None -> ());
  let saved = Array.map (fun (f, _) -> (f, Hashtbl.find_opt t.known f)) queries in
  let results = Array.make n None in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (f, old) ->
          match old with
          | Some p -> Hashtbl.replace t.known f p
          | None -> Hashtbl.remove t.known f)
        saved)
    (fun () ->
      for round = 0 to n_rounds - 1 do
        let idxs = ref [] in
        for i = n - 1 downto 0 do
          if rounds.(i) = round then idxs := i :: !idxs
        done;
        let idxs = Array.of_list !idxs in
        Array.iter
          (fun i ->
            let f, p = queries.(i) in
            Hashtbl.replace t.known f p)
          idxs;
        let verdicts =
          Detector.Classification.evaluate_batch ?pool t.detector
            (Array.map (fun i -> fst queries.(i)) idxs)
        in
        Array.iteri (fun j i -> results.(i) <- Some verdicts.(j)) idxs
      done);
  Array.map (function Some v -> v | None -> assert false) results

let should_accept_batch ?pool t queries =
  Array.map (fun v -> not v.Detector.drifted) (evaluate_batch ?pool t queries)

let should_accept t ~features ~proba =
  not (evaluate t ~features ~proba).Detector.drifted

let scores t ~features ~proba =
  let v = evaluate t ~features ~proba in
  let dist =
    match v.Detector.experts with e :: _ -> e.Scores.distance_pvalue | [] -> 1.0
  in
  (v.Detector.mean_credibility, v.Detector.mean_confidence, dist)
