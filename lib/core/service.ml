open Prom_linalg
open Prom_ml

type t = {
  detector : Detector.Classification.t;
  (* Holds the probability vector of the in-flight query. The wrapped
     "model" reads it when the detector asks for the query's
     probabilities; calibration inputs are served from [known]. *)
  query : (Vec.t * Vec.t) option ref;
  known : (Vec.t, Vec.t) Hashtbl.t;
}

let create ?config ?committee triples =
  if triples = [] then invalid_arg "Service.create: empty calibration";
  let dim = match triples with (f, _, _) :: _ -> Array.length f | [] -> 0 in
  let n_classes =
    List.fold_left (fun acc (_, _, p) -> Stdlib.max acc (Array.length p)) 0 triples
  in
  List.iter
    (fun (f, label, p) ->
      if Array.length f <> dim then invalid_arg "Service.create: ragged features";
      if Array.length p <> n_classes then
        invalid_arg "Service.create: ragged probability vectors";
      if label < 0 || label >= n_classes then
        invalid_arg "Service.create: label out of range")
    triples;
  let known = Hashtbl.create (List.length triples) in
  List.iter (fun (f, _, p) -> Hashtbl.replace known f p) triples;
  let query = ref None in
  let predict_proba x =
    match !query with
    | Some (qx, qp) when qx == x -> qp
    | _ -> (
        match Hashtbl.find_opt known x with
        | Some p -> p
        | None -> invalid_arg "Service: unknown input")
  in
  let model =
    { Model.n_classes; predict_proba; name = "external"; state = Model.No_state }
  in
  let calibration =
    Dataset.create
      (Array.of_list (List.map (fun (f, _, _) -> f) triples))
      (Array.of_list (List.map (fun (_, y, _) -> y) triples))
  in
  let detector =
    Detector.Classification.create ?config ?committee ~model ~feature_of:Fun.id
      calibration
  in
  { detector; query; known }

let evaluate t ~features ~proba =
  t.query := Some (features, proba);
  Fun.protect
    ~finally:(fun () -> t.query := None)
    (fun () -> Detector.Classification.evaluate t.detector features)

(* Batched entry point. The single-query path smuggles the in-flight
   probability vector through a ref the wrapped model reads — which is
   not domain-safe — so the batch path instead binds every query's
   probabilities in [known] for the duration of the batch (the table is
   then only read concurrently) and restores the original bindings
   afterwards. Queries whose feature vectors collide value-wise resolve
   to the last binding, exactly like repeated single-query calls. *)
let evaluate_batch ?pool t queries =
  let saved = Array.map (fun (f, _) -> (f, Hashtbl.find_opt t.known f)) queries in
  Array.iter (fun (f, p) -> Hashtbl.replace t.known f p) queries;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (f, old) ->
          match old with
          | Some p -> Hashtbl.replace t.known f p
          | None -> Hashtbl.remove t.known f)
        saved)
    (fun () ->
      Detector.Classification.evaluate_batch ?pool t.detector
        (Array.map fst queries))

let should_accept_batch ?pool t queries =
  Array.map (fun v -> not v.Detector.drifted) (evaluate_batch ?pool t queries)

let should_accept t ~features ~proba =
  not (evaluate t ~features ~proba).Detector.drifted

let scores t ~features ~proba =
  let v = evaluate t ~features ~proba in
  let dist =
    match v.Detector.experts with e :: _ -> e.Scores.distance_pvalue | [] -> 1.0
  in
  (v.Detector.mean_credibility, v.Detector.mean_confidence, dist)
