open Prom_linalg
open Prom_ml

(* One serving engine: the detector plus the closure state its wrapped
   "model" reads. The engine is immutable once built and published
   through an [Atomic.t], so a background-retrained replacement can be
   hot-swapped between batches: in-flight evaluations keep the engine
   value they fetched and never observe a half-replaced detector. *)
type engine = {
  detector : Detector.Classification.t;
  (* Holds the probability vector of the in-flight query. The wrapped
     "model" reads it when the detector asks for the query's
     probabilities; calibration inputs are served from [known]. *)
  query : (Vec.t * Vec.t) option ref;
  known : (Vec.t, Vec.t) Hashtbl.t;
  (* Feature dimension and class count of this engine's calibration,
     recorded so network front-ends can validate a query's shape before
     enqueueing it. *)
  dim : int;
  n_classes : int;
}

type t = {
  engine : engine Atomic.t;
  (* Serving generation: 0 for the engine [create]/[of_snapshot] built,
     incremented by every successful [swap]. *)
  swaps : int Atomic.t;
  tel : Telemetry.t option;
}

(* The wrapped model: probability vectors come from the in-flight query
   ref (physical identity) or the known-inputs table — never from an
   actual model call. *)
let external_model ~n_classes ~query ~known =
  let predict_proba x =
    match !query with
    | Some (qx, qp) when qx == x -> qp
    | _ -> (
        match Hashtbl.find_opt known x with
        | Some p -> p
        | None -> invalid_arg "Service: unknown input")
  in
  { Model.n_classes; predict_proba; name = "external"; state = Model.No_state }

let create ?config ?committee ?telemetry triples =
  if triples = [] then invalid_arg "Service.create: empty calibration";
  let dim = match triples with (f, _, _) :: _ -> Array.length f | [] -> 0 in
  let n_classes =
    List.fold_left (fun acc (_, _, p) -> Stdlib.max acc (Array.length p)) 0 triples
  in
  List.iter
    (fun (f, label, p) ->
      if Array.length f <> dim then invalid_arg "Service.create: ragged features";
      if Array.length p <> n_classes then
        invalid_arg "Service.create: ragged probability vectors";
      if label < 0 || label >= n_classes then
        invalid_arg "Service.create: label out of range")
    triples;
  let known = Hashtbl.create (List.length triples) in
  List.iter (fun (f, _, p) -> Hashtbl.replace known f p) triples;
  let query = ref None in
  let model = external_model ~n_classes ~query ~known in
  let calibration =
    Dataset.create
      (Array.of_list (List.map (fun (f, _, _) -> f) triples))
      (Array.of_list (List.map (fun (_, y, _) -> y) triples))
  in
  let detector =
    Detector.Classification.create ?config ?committee ?telemetry ~model
      ~feature_of:Fun.id calibration
  in
  {
    engine = Atomic.make { detector; query; known; dim; n_classes };
    swaps = Atomic.make 0;
    tel = telemetry;
  }

(* Build an engine around a restored calibration store. The known-inputs
   table starts empty: it exists to serve calibration probabilities
   during preparation (skipped here — the restored store already carries
   them) and to bind batch queries, which [evaluate_batch] does per
   call. *)
let engine_of_snapshot ?telemetry (s : Snapshot.cls_snapshot) =
  let entries = s.Snapshot.cls_calibration.Calibration.entries in
  let n_classes = Array.length entries.(0).Calibration.proba in
  let dim = Array.length entries.(0).Calibration.features in
  let query = ref None in
  let known = Hashtbl.create 64 in
  let model = external_model ~n_classes ~query ~known in
  let detector =
    Detector.Classification.of_calibration ~config:s.Snapshot.cls_config
      ~committee:s.Snapshot.cls_committee ?telemetry ~model ~feature_of:Fun.id
      s.Snapshot.cls_calibration
  in
  { detector; query; known; dim; n_classes }

let of_snapshot ?telemetry snapshot =
  match snapshot with
  | Snapshot.Reg _ -> invalid_arg "Service.of_snapshot: classification snapshot required"
  | Snapshot.Cls s ->
      {
        engine = Atomic.make (engine_of_snapshot ?telemetry s);
        swaps = Atomic.make 0;
        tel = telemetry;
      }

let swap ?store_generation t snapshot =
  match snapshot with
  | Snapshot.Reg _ -> invalid_arg "Service.swap: classification snapshot required"
  | Snapshot.Cls s ->
      let engine = engine_of_snapshot ?telemetry:t.tel s in
      Atomic.set t.engine engine;
      Atomic.incr t.swaps;
      (match t.tel with
      | Some tel ->
          Prom_obs.Counter.inc tel.Telemetry.service_swaps;
          (match store_generation with
          | Some g ->
              Prom_obs.Gauge.set tel.Telemetry.snapshot_generation (float_of_int g)
          | None -> ())
      | None -> ())

let generation t = Atomic.get t.swaps

let dims t =
  let e = Atomic.get t.engine in
  (e.dim, e.n_classes)

let snapshot t =
  Snapshot.of_cls_detector ~external_model:true (Atomic.get t.engine).detector

let evaluate t ~features ~proba =
  let e = Atomic.get t.engine in
  e.query := Some (features, proba);
  Fun.protect
    ~finally:(fun () -> e.query := None)
    (fun () -> Detector.Classification.evaluate e.detector features)

(* Batched entry point. The single-query path smuggles the in-flight
   probability vector through a ref the wrapped model reads — which is
   not domain-safe — so the batch path instead binds each query's
   probabilities in [known] for the duration of its evaluation (the
   table is then only read concurrently) and restores the original
   bindings afterwards.

   Queries whose feature vectors are value-equal would clobber each
   other's bindings, so the batch is split into rounds: the r-th
   occurrence of a feature value goes to round r. Within a round every
   binding is collision-free, so each query is evaluated against its own
   probability vector — exactly what the corresponding single-query
   call would see. Collision-free batches (the overwhelmingly common
   case) run in one round.

   The engine is fetched once per batch: a concurrent [swap] replaces
   the engine for {e later} batches, while this one keeps binding into
   (and evaluating against) the engine it started with. *)
let evaluate_batch ?pool t queries =
  let e = Atomic.get t.engine in
  let n = Array.length queries in
  let occurrence = Hashtbl.create n in
  let rounds =
    Array.map
      (fun (f, _) ->
        let r = match Hashtbl.find_opt occurrence f with Some r -> r | None -> 0 in
        Hashtbl.replace occurrence f (r + 1);
        r)
      queries
  in
  let n_rounds = Array.fold_left (fun acc r -> Stdlib.max acc (r + 1)) 0 rounds in
  (match t.tel with
  | Some tel ->
      Prom_obs.Histogram.observe tel.Telemetry.batch_size (float_of_int n);
      let collisions = n - Hashtbl.length occurrence in
      if collisions > 0 then
        Prom_obs.Counter.add tel.Telemetry.collision_rebinds (float_of_int collisions)
  | None -> ());
  let saved = Array.map (fun (f, _) -> (f, Hashtbl.find_opt e.known f)) queries in
  let results = Array.make n None in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (f, old) ->
          match old with
          | Some p -> Hashtbl.replace e.known f p
          | None -> Hashtbl.remove e.known f)
        saved)
    (fun () ->
      for round = 0 to n_rounds - 1 do
        let idxs = ref [] in
        for i = n - 1 downto 0 do
          if rounds.(i) = round then idxs := i :: !idxs
        done;
        let idxs = Array.of_list !idxs in
        Array.iter
          (fun i ->
            let f, p = queries.(i) in
            Hashtbl.replace e.known f p)
          idxs;
        let verdicts =
          Detector.Classification.evaluate_batch ?pool e.detector
            (Array.map (fun i -> fst queries.(i)) idxs)
        in
        Array.iteri (fun j i -> results.(i) <- Some verdicts.(j)) idxs
      done);
  Array.map (function Some v -> v | None -> assert false) results

let should_accept_batch ?pool t queries =
  Array.map (fun v -> not v.Detector.drifted) (evaluate_batch ?pool t queries)

let should_accept t ~features ~proba =
  not (evaluate t ~features ~proba).Detector.drifted

let scores t ~features ~proba =
  let v = evaluate t ~features ~proba in
  let dist =
    match v.Detector.experts with e :: _ -> e.Scores.distance_pvalue | [] -> 1.0
  in
  (v.Detector.mean_credibility, v.Detector.mean_confidence, dist)
