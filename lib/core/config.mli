(** Detector configuration — the knobs of PROM's methodology section.
    Defaults follow the paper. *)

(** How an expert combines its credibility and confidence scores into an
    accept/reject vote (Sec. 5.3). [Conjunction] is the paper's wording
    ("flagged as drifting if both scores fall below the significance
    level"); [Disjunction] rejects when either signal is weak
    (aggressive, high recall); [Credibility_only] is the classical
    Transcend-style conformal test. *)
type decision_rule =
  | Conjunction
  | Disjunction
  | Credibility_only

type t = {
  epsilon : float;
      (** significance parameter; the significance level is [1 - epsilon]
          (default 0.1, Sec. 4.1.1) *)
  temperature : float;
      (** [tau] of the adaptive weighting, Eq. 1 (default 500) *)
  select_ratio : float;
      (** fraction of nearest calibration samples used per test input
          (default 0.5, Sec. 5.1.2) *)
  select_all_below : int;
      (** use the whole calibration set when it has fewer samples than
          this (default 200) *)
  gaussian_c : float;
      (** scale of the confidence Gaussian over prediction-set size
          (paper Sec. 5.3 uses 3; we default to 1 so that non-singleton
          prediction sets — the binary-task uncertainty signal — fall
          below the significance level; Fig. 13c sweeps this knob) *)
  knn_k : int;
      (** neighbours used to proxy regression ground truth (default 3,
          Sec. 5.1.1) *)
  vote_fraction : float;
      (** fraction of experts that must flag a sample for the committee
          to reject. The default 0.25 means a single dissenting expert
          of the default four rejects — the experts are individually
          conservative, so this reproduces the paper's high-recall
          operating point; set 0.5 for strict majority voting. *)
  decision_rule : decision_rule;  (** default [Disjunction] *)
}

(** The paper's default operating point (see the field docs above). *)
val default : t

(** [validate t] raises [Invalid_argument] when a field is outside its
    valid range ([epsilon] in (0,1), ratios in (0,1], positive scales). *)
val validate : t -> unit
