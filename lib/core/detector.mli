(** The deployment-time drift detector (paper Fig. 2/3/5): wraps a
    trained model, preprocesses a calibration split offline, and for
    every test input returns the model's prediction together with the
    expert committee's accept/reject verdict. *)

open Prom_linalg
open Prom_ml

(** Committee outcome for one classified test input. *)
type cls_verdict = {
  predicted : int;
  proba : Vec.t;
  experts : Scores.expert_verdict list;
  drifted : bool;  (** majority-vote decision *)
  mean_credibility : float;
  mean_confidence : float;
}

module Classification : sig
  type t

  (** [create ?config ?committee ?telemetry ~model ~feature_of
      calibration] builds a detector around an already-trained
      classifier. [feature_of] defines the feature space used for
      calibration-subset selection (pass the model's embedding for
      neural models, [Fun.id] for tabular features). When [telemetry] is
      given, every evaluation updates the bundle's query/accept/reject
      counters, per-expert flag counters and latency histogram;
      instrumentation never changes verdicts, and without it the query
      path pays a single branch. *)
  val create :
    ?config:Config.t ->
    ?committee:Nonconformity.cls list ->
    ?telemetry:Telemetry.t ->
    model:Model.classifier ->
    feature_of:(Vec.t -> Vec.t) ->
    int Dataset.t ->
    t

  (** [of_calibration ?config ?committee ?telemetry ~model ~feature_of
      calibration] rebuilds a detector around an already-prepared
      calibration store (the snapshot restore path), skipping the
      O(n²·d) preparation: only cheap derived tables are recomputed, so
      a restored detector returns bit-identical verdicts. *)
  val of_calibration :
    ?config:Config.t ->
    ?committee:Nonconformity.cls list ->
    ?telemetry:Telemetry.t ->
    model:Model.classifier ->
    feature_of:(Vec.t -> Vec.t) ->
    Calibration.cls ->
    t

  val config : t -> Config.t
  val model : t -> Model.classifier

  (** [committee t] is the nonconformity committee the detector was
      built with, in evaluation order. *)
  val committee : t -> Nonconformity.cls list

  (** [calibration t] is the prepared calibration store — the state a
      snapshot must carry to rebuild the detector. *)
  val calibration : t -> Calibration.cls

  (** [with_config t config] rebinds the configuration without
      re-running the (expensive) calibration preprocessing. *)
  val with_config : t -> Config.t -> t

  (** [admit t labeled] grows the calibration store with freshly
      labelled samples [(x, label)] without a full retrain: each sample
      is scored exactly as {!create} scores a calibration entry, the
      pruned kNN index is maintained incrementally (batched insert,
      rebuild on imbalance), and the appended rows' leave-one-out
      scores are merged into the conformal reference. The existing
      entries' reference scores are kept as prepared, so the
      distribution lags the grown set slightly until the next full
      retrain. Returns the grown detector; [t] stays valid and
      unchanged. Raises [Invalid_argument] on an out-of-range label. *)
  val admit : t -> (Vec.t * int) array -> t

  (** [evaluate t x] runs the underlying model and the committee. *)
  val evaluate : t -> Vec.t -> cls_verdict

  (** [predict t x] is the paper's deployment interface: the prediction
      plus a drift flag. *)
  val predict : t -> Vec.t -> int * bool

  (** [evaluate_batch ?pool t xs] evaluates independent queries fanned
      across the domain pool (default {!Prom_parallel.Pool.default}) in
      deterministic chunks. The result is element-for-element identical
      to [Array.map (evaluate t) xs]. *)
  val evaluate_batch :
    ?pool:Prom_parallel.Pool.t -> t -> Vec.t array -> cls_verdict array

  (** [predict_batch ?pool t xs] — batched {!predict}. *)
  val predict_batch :
    ?pool:Prom_parallel.Pool.t -> t -> Vec.t array -> (int * bool) array

  (** [prediction_sets t x] exposes each expert's prediction region for
      [x] — the label sets behind the confidence scores. Used by the
      initialization assessment (Eq. 3). *)
  val prediction_sets : t -> Vec.t -> (string * int list) list
end

(** Committee outcome for one regression test input. *)
type reg_verdict = {
  predicted_value : float;
  cluster : int;  (** k-means label assigned to the test input *)
  knn_estimate : float;  (** ground-truth proxy from neighbours *)
  reg_experts : Scores.expert_verdict list;
  reg_drifted : bool;
  reg_mean_credibility : float;
  reg_mean_confidence : float;
}

module Regression : sig
  type t

  (** [create ?config ?committee ?n_clusters ~model ~feature_of ~seed
      calibration] prepares the regression detector, clustering the
      calibration set to obtain CP labels (gap statistic unless
      [n_clusters] is given). *)
  val create :
    ?config:Config.t ->
    ?committee:Nonconformity.reg list ->
    ?n_clusters:int ->
    ?telemetry:Telemetry.t ->
    model:Model.regressor ->
    feature_of:(Vec.t -> Vec.t) ->
    seed:int ->
    float Dataset.t ->
    t

  (** [of_calibration ?config ?committee ?telemetry ~model ~feature_of
      calibration] rebuilds a detector around an already-prepared
      regression calibration store; see
      {!Classification.of_calibration}. *)
  val of_calibration :
    ?config:Config.t ->
    ?committee:Nonconformity.reg list ->
    ?telemetry:Telemetry.t ->
    model:Model.regressor ->
    feature_of:(Vec.t -> Vec.t) ->
    Calibration.reg ->
    t

  val config : t -> Config.t
  val model : t -> Model.regressor
  val n_clusters : t -> int

  (** [committee t] is the regression nonconformity committee, in
      evaluation order. *)
  val committee : t -> Nonconformity.reg list

  (** [calibration t] is the prepared calibration store backing the
      detector. *)
  val calibration : t -> Calibration.reg

  val with_config : t -> Config.t -> t

  (** [admit t samples] grows the calibration store with labelled
      [(x, target)] pairs; see {!Classification.admit}. Each sample is
      clustered and proxy-scored against the {e pre-append} store —
      exactly as a test query would be — so the batch is
      order-independent. *)
  val admit : t -> (Vec.t * float) array -> t

  val evaluate : t -> Vec.t -> reg_verdict
  val predict : t -> Vec.t -> float * bool

  (** Batched evaluation; see {!Classification.evaluate_batch}. *)
  val evaluate_batch :
    ?pool:Prom_parallel.Pool.t -> t -> Vec.t array -> reg_verdict array

  val predict_batch :
    ?pool:Prom_parallel.Pool.t -> t -> Vec.t array -> (float * bool) array

  (** [cluster_sets t x] is each expert's prediction region over the
      k-means cluster labels. *)
  val cluster_sets : t -> Vec.t -> (string * int list) list

  (** [interval t x] is a split-conformal prediction interval
      [(lo, hi)] around the model's point estimate: the weighted
      [1 - epsilon] quantile of the selected calibration samples'
      absolute residuals (against their true targets) on either side.
      This is the classical CP use the paper contrasts itself with
      (Sec. 9, "standard CP libraries estimate where the ground truth
      likely lies") — provided here because a deployed cost model wants
      both the drift verdict and the uncertainty band. *)
  val interval : t -> Vec.t -> float * float
end
