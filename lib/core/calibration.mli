(** The calibration store: the held-out split of the training data,
    preprocessed offline by running the trained model over it
    (paper Sec. 4.1.1, "Process calibration dataset"), plus PROM's
    adaptive subset selection and distance weighting (Sec. 5.1.2,
    Eq. 1). *)

open Prom_linalg
open Prom_ml

(** Telemetry hooks for the pruned kNN index (see {!set_index_metrics_cls}):
    cluster-count gauge, candidate/pruned row counters and the rebuild
    counter, registered by the caller (normally {!Telemetry.index_metrics})
    and updated by the query path. *)
type index_metrics = {
  ix_clusters : Prom_obs.Gauge.t;
  ix_scanned : Prom_obs.Counter.t;
  ix_pruned : Prom_obs.Counter.t;
  ix_rebuilds : Prom_obs.Counter.t;
}

(** The state of a store's cluster-pruned exact kNN index
    ({!Prom_linalg.Knn_index}): present when the calibration set crossed
    the indexing threshold ([PROM_INDEX_MIN_N], default 4096, with the
    per-query neighbour demand at most a quarter of the rows). Opaque;
    reach the underlying index through {!index_of_cls}/{!index_of_reg}. *)
type index_state

(** One preprocessed calibration sample for classification. *)
type cls_entry = {
  features : Vec.t;
      (** feature embedding used for distances, standardized with the
          calibration set's statistics *)
  label : int;  (** ground-truth label *)
  proba : Vec.t;  (** the model's probability vector on this sample *)
}

type cls = private {
  entries : cls_entry array;
  config : Config.t;
  scaler : Dataset.Scaler.t;
      (** feature standardization fitted on the calibration set, so
          Eq. 1 distances are scale-free and [temperature] is
          comparable across tasks *)
  tau : float;
      (** effective Eq. 1 temperature: [config.temperature / 100] times
          the calibration set's median pairwise squared distance, so the
          weighting decays relative to the in-distribution scale *)
  loo_distances : float array;
      (** sorted leave-one-out kNN-distance nonconformity scores of the
          calibration points — the reference distribution of the
          conformal out-of-distribution test *)
  loo_order : int array;
      (** [loo_order.(r)] is the entry whose LOO score occupies sorted
          position [r] — the permutation that lets per-entry weights
          enter the conformal distance test as suffix sums. Empty when
          unknown (a store restored from a pre-v3 snapshot); the
          distance test then stays unweighted even in weighted mode. *)
  ent_weights : float array;
      (** per-entry calibration weights of the weighted conformal mode
          ({!reweight_cls}); empty means unit weights — the
          bit-identical unweighted pipeline *)
  loo_suffix : float array;
      (** suffix sums of [ent_weights] over the sorted-LOO order
          (length n+1, last slot 0): [loo_suffix.(r)] is the total
          weight of LOO scores at or above sorted position [r]. Empty
          in unit mode or when [loo_order] is unknown. *)
  pk_weights : float array;
      (** [ent_weights] permuted into the kNN index's packed member
          order, so weighted selection scales gather-free at packed
          positions. Empty in unit mode or when unindexed. *)
  feat_matrix : Featmat.t;
      (** the entries' feature vectors packed row-major once at
          preparation time, so per-query distance scans never rebuild
          the feature array *)
  mutable cls_index : index_state option;
      (** pruned exact kNN index over [feat_matrix] when the store is
          large enough to index; queries answered through it are
          bit-identical to the dense scan *)
}

(** [standardize_cls t v] maps a raw test feature vector into the
    standardized space the entries live in. *)
val standardize_cls : cls -> Vec.t -> Vec.t

(** [prepare_classification ?pool ~config ~model ~feature_of data] runs
    [model] on every calibration sample and stores features, labels and
    probability vectors. [feature_of] maps a raw model input to the
    feature space used for similarity (often the model's own embedding;
    [Fun.id] for tabular features). *)
val prepare_classification :
  ?pool:Prom_parallel.Pool.t ->
  config:Config.t ->
  model:Model.classifier ->
  feature_of:(Vec.t -> Vec.t) ->
  int Dataset.t ->
  cls

(** [restore_cls ?index ?loo_order ?ent_weights ~entries ~config ~scaler
    ~tau ~loo_distances ()]
    rebuilds a prepared calibration store from serialized state, skipping
    the O(n²·d) preparation scans: the packed feature matrix is repacked
    from [entries] (O(n·d)) and everything else is taken as given, so
    verdicts after restore are bit-identical to the snapshotted store.
    When [index] carries the snapshotted kNN index it is adopted without
    any clustering pass (its row count and dimension must match the
    entries); otherwise the indexing policy decides afresh. [loo_order]
    (codec v3) is the sorted-LOO permutation and [ent_weights] the
    persisted weight vector; the weight derivatives (suffix sums, packed
    twin) are recomputed, not deserialized. Raises [Invalid_argument] on
    an empty entry set, an invalid [config], a non-positive [tau], an
    [index] that does not fit the entries, a [loo_order] that is not a
    permutation of the entries, or invalid weights. *)
val restore_cls :
  ?index:Knn_index.t ->
  ?loo_order:int array ->
  ?ent_weights:float array ->
  entries:cls_entry array ->
  config:Config.t ->
  scaler:Dataset.Scaler.t ->
  tau:float ->
  loo_distances:float array ->
  unit ->
  cls

(** [rebuild_cls ?pool ~config ~scaler ~tau entries] rebuilds a store
    from an explicit entry set with frozen preprocessing — the streaming
    store's compaction step after evicting expired entries. [scaler] and
    [tau] are carried over from the store the entries came out of (so
    distances and Eq. 1 weights keep meaning the same thing across the
    compaction); the O(n²·d) leave-one-out reference and the indexing
    decision are recomputed from scratch — run it off the serving path
    and publish the result by hot-swap. Weights reset to unit; reweight
    against the new entry order afterwards. Raises [Invalid_argument]
    on an empty entry set, an invalid [config] or a non-positive
    [tau]. *)
val rebuild_cls :
  ?pool:Prom_parallel.Pool.t ->
  config:Config.t ->
  scaler:Dataset.Scaler.t ->
  tau:float ->
  cls_entry array ->
  cls

(** {2 Weighted conformal mode}

    "Conformal prediction beyond exchangeability" (Barber, Candès,
    Ramdas & Tibshirani): when the calibration set itself drifts,
    approximate coverage is retained by down-weighting stale calibration
    samples — every conformal count becomes a weighted rank sum. A
    store's weight vector multiplies into the Eq. 1 selection weights
    (committee p-values and the regression residual quantile see it
    through {!selection.sel_weights}) and enters the conformal distance
    test as suffix sums over the sorted leave-one-out order. Unit
    weights — the empty vector — take the exact unweighted code paths,
    so verdicts are bit-identical to a store that never heard of
    weights. *)

(** [reweight_cls t w] is [t] with per-entry weights [w] folded in
    ([w.(i)] weights entry [i]); the empty array resets to unit mode.
    Derived state (LOO suffix sums, the packed twin) is rebuilt here, so
    the query path only reads. Raises [Invalid_argument] unless [w] is
    empty or one finite non-negative weight per entry. On a store whose
    LOO permutation is unknown (pre-v3 restore) the conformal distance
    test stays unweighted; everything else is weighted. *)
val reweight_cls : cls -> float array -> cls

(** [distance_pvalue ?suffix ~loo score] is the conformal p-value of
    [score] against the ascending reference scores [loo]:
    [(W_at_least + 1) / (W_total + 1)], where the weights are unit
    (counts) when [suffix] is empty, and read from [suffix] — the
    weight suffix sums over the sorted order, length [n + 1] with
    [suffix.(n) = 0] — otherwise. Beyond the largest reference score an
    exponential tail keeps farther points strictly less conforming.
    With unit weights in [suffix] the two forms are bit-identical. An
    empty [loo] yields 1. Raises [Invalid_argument] on a non-empty
    [suffix] whose length is not [n + 1]. *)
val distance_pvalue : ?suffix:float array -> loo:float array -> float -> float

(** One preprocessed calibration sample for regression. *)
type reg_entry = {
  rfeatures : Vec.t;
  target : float;  (** ground-truth value *)
  rpred : float;  (** the model's prediction on this sample *)
  cluster : int;  (** cluster label from k-means (Sec. 5.1.2) *)
  rproxy : float;
      (** leave-one-out k-NN estimate of the target. Test-time
          nonconformity must use the k-NN proxy for the unknown ground
          truth (Sec. 5.1.1); scoring calibration samples against the
          same proxy keeps both sides of Eq. 2 on the same scale —
          otherwise a well-fitted model has near-zero calibration
          residuals and every test input looks nonconforming. *)
  rspread : float;
      (** standard deviation of the same leave-one-out neighbourhood's
          targets — the normalizer used by spread-aware nonconformity
          functions, matching the test-time [knn_truth] spread *)
}

type reg = private {
  rentries : reg_entry array;
  rconfig : Config.t;
  clusters : Kmeans.t;  (** fitted clustering for label assignment *)
  n_clusters : int;
  rscaler : Dataset.Scaler.t;
  rtau : float;  (** see {!cls.tau} *)
  rloo_distances : float array;  (** see {!cls.loo_distances} *)
  rloo_order : int array;  (** see {!cls.loo_order} *)
  rent_weights : float array;  (** see {!cls.ent_weights} *)
  rloo_suffix : float array;  (** see {!cls.loo_suffix} *)
  rpk_weights : float array;  (** see {!cls.pk_weights} *)
  rfeat_matrix : Featmat.t;  (** see {!cls.feat_matrix} *)
  mutable reg_index : index_state option;  (** see {!cls.cls_index} *)
  rpk_targets : float array;
      (** the entries' targets permuted into the kNN index's packed
          member order ([rpk_targets.(m)] belongs to entry
          [member_order.(m)]), so the indexed query path reads the
          ground-truth proxy's neighbour targets at the candidates'
          packed positions — tile-local instead of an O(n)-spread
          gather. Empty when the store is unindexed. Rebuilt with every
          index change (appends return a new record). *)
  rpk_clusters : int array;  (** cluster labels, same packed order *)
  rpk_resid : float array;
      (** absolute residuals [|rpred - target|], same packed order —
          the interval quantile's keys *)
}

(** [standardize_reg t v] maps a raw test feature vector into the
    standardized space. *)
val standardize_reg : reg -> Vec.t -> Vec.t

(** [prepare_regression ?pool ?n_clusters ~config ~model ~feature_of
    ~seed data] additionally labels the calibration set with k-means clusters;
    when [n_clusters] is omitted the gap statistic picks it over
    [2 .. 20] (capped by the sample count). *)
val prepare_regression :
  ?pool:Prom_parallel.Pool.t ->
  ?n_clusters:int ->
  config:Config.t ->
  model:Model.regressor ->
  feature_of:(Vec.t -> Vec.t) ->
  seed:int ->
  float Dataset.t ->
  reg

(** [restore_reg ?index ?rloo_order ?rent_weights ~rentries ~rconfig
    ~clusters ~n_clusters ~rscaler ~rtau ~rloo_distances ()] is the
    regression analogue of {!restore_cls}. *)
val restore_reg :
  ?index:Knn_index.t ->
  ?rloo_order:int array ->
  ?rent_weights:float array ->
  rentries:reg_entry array ->
  rconfig:Config.t ->
  clusters:Kmeans.t ->
  n_clusters:int ->
  rscaler:Dataset.Scaler.t ->
  rtau:float ->
  rloo_distances:float array ->
  unit ->
  reg

(** [reweight_reg t w] — {!reweight_cls} for a regression store. *)
val reweight_reg : reg -> float array -> reg

(** A calibration sample selected for a particular test input, carrying
    its adaptive weight [w = exp (-d^2 / tau)]. [index] is the sample's
    position in the entries array it was selected from, so callers can
    look up precomputed per-entry state (e.g. nonconformity score
    tables) without re-deriving it. *)
type 'e selected = { index : int; entry : 'e; weight : float; distance : float }

(** [select_subset ?tau ~config entries ~feature_of_entry
    test_features] implements the adaptive scheme: rank all entries by
    Euclidean distance to the test input, keep the closest
    [select_ratio] (or all when fewer than [select_all_below]), and
    attach Eq. 1 weights computed with temperature [tau] (defaults to
    the raw [config.temperature]; detectors pass the self-calibrated
    {!cls.tau}). When [featmat] (the packed feature matrix of the same
    entries) is given, distances are scanned from it without consulting
    [feature_of_entry]; selection keeps only the top-k via a bounded
    heap instead of sorting the whole set. [entry_weights] (weighted
    conformal mode) multiplies each kept sample's calibration weight
    into its Eq. 1 weight; the empty default skips the product, so
    unweighted selections are bit-identical to stores without weights.
    Raises [Invalid_argument] when the effective tau is not strictly
    positive (a zero tau would give NaN weights for zero-distance
    neighbours). *)
val select_subset :
  ?tau:float ->
  ?featmat:Featmat.t ->
  ?entry_weights:float array ->
  config:Config.t ->
  'e array ->
  feature_of_entry:('e -> Vec.t) ->
  Vec.t ->
  'e selected array

(** The same selection in packed (structure-of-arrays) form:
    [sel_idxs.(r)] is the entries-array index of the [r]-th kept sample
    (ascending by distance, ties by index) and [sel_weights.(r)] its
    Eq. 1 weight, for [r < sel_count]. The arrays are per-domain
    buffers reused by the next selection on the same domain — valid for
    the duration of one query evaluation, which is the only lifetime
    the hot path needs. Unlike {!select_subset} this form allocates no
    per-query record array (at realistic calibration sizes that array
    lands on the major heap and its initializing writes force a minor
    collection — a stop-the-world synchronization — per query). *)
type selection = private {
  sel_idxs : int array;
  sel_weights : float array;
  sel_count : int;
  sel_pos : int array;
      (** when [sel_packed]: the [r]-th kept entry's packed position in
          the kNN index's member order, so per-entry tables permuted
          into that order (see {!Prom_linalg.Knn_index.member_order})
          are read in the candidates' cluster-contiguous layout instead
          of gathered at entry-order random. Empty otherwise. *)
  sel_packed : bool;
      (** true when the selection is the pruned index's candidate
          prefix and [sel_pos] is populated. [sel_idxs] holds entry
          ids in both cases, so consumers without packed tables simply
          ignore the positions — results are identical either way. *)
}

(** [select_packed ?tau ?featmat ~config entries ~feature_of_entry
    test_features] is {!select_subset} without the materialized record
    array; the selected indices, order and weights are bit-identical. *)
val select_packed :
  ?tau:float ->
  ?featmat:Featmat.t ->
  config:Config.t ->
  'e array ->
  feature_of_entry:('e -> Vec.t) ->
  Vec.t ->
  selection

(** [assign_cluster reg v] is the cluster label of a test feature
    vector, by nearest calibration neighbour (paper: "test sample labels
    are assigned based on the nearest neighbour in the feature
    space"). *)
val assign_cluster : reg -> Vec.t -> int

(** [distance_pvalue_cls t v] is the conformal p-value of the test
    input's mean distance to its nearest calibration neighbours,
    calibrated against the calibration set's own leave-one-out
    distances (the conformal kNN anomaly test of the paper's [36]).
    Near 0 means the input sits outside the calibration
    distribution. In weighted mode the rank is the weighted form of
    {!distance_pvalue} (unless the store predates the LOO permutation).
    [v] must already be standardized. *)
val distance_pvalue_cls : cls -> Vec.t -> float

(** [distance_pvalue_reg t v] — the regression analogue. *)
val distance_pvalue_reg : reg -> Vec.t -> float

(** [knn_truth reg v ~k] approximates the ground-truth target of a test
    input as the mean target of its [k] nearest calibration neighbours,
    returning [(estimate, spread)] where [spread] is the standard
    deviation of those neighbours' targets. *)
val knn_truth : reg -> Vec.t -> k:int -> float * float

(** {2 Shared per-query distance pipeline}

    The scans above ({!select_packed}, {!distance_pvalue_cls},
    {!knn_truth}, {!assign_cluster}, …) each walk the calibration matrix
    once per call, so one query evaluation pays two (classification) or
    four (regression) O(n·d) scans against the same point. The pipeline
    below computes the squared-distance vector once into a per-domain
    buffer and derives every per-query statistic from it. Each [_dists]
    consumer replays its independent counterpart's exact arithmetic over
    the buffer (same kernel, same selection and accumulation order), so
    results are bit-identical to the independent scans. *)

(** A query's squared distances to every calibration entry — a view
    into a per-domain scratch buffer. Valid until the next
    {!query_distances_cls}/{!query_distances_reg} (respectively the next
    [query_distances_block_*]) call on the same domain; the [_dists]
    consumers below do not invalidate it, so one view serves a whole
    query evaluation. Never share a view across domains. *)
type dists

(** [query_distances_cls t v] scans the calibration matrix once for the
    (standardized) query [v]. *)
val query_distances_cls : cls -> Vec.t -> dists

val query_distances_reg : reg -> Vec.t -> dists

(** [query_distances_block_cls t vs] computes a whole query tile's
    distances with the cache-blocked kernel ({!Featmat.sq_dists_block}),
    returning one view per query. All views alias the same per-domain
    block buffer: they remain valid while the tile's queries are
    evaluated, until the next block call on the same domain. *)
val query_distances_block_cls : cls -> Vec.t array -> dists array

val query_distances_block_reg : reg -> Vec.t array -> dists array

(** [select_packed_dists ?tau ?entry_weights ?packed_weights ~config d]
    is {!select_packed} fed from the shared buffer instead of its own
    matrix scan — indices, order and weights are bit-identical.
    [entry_weights] folds the store's calibration weights into the kept
    samples' Eq. 1 weights (weighted conformal mode; empty = unit mode,
    untouched arithmetic); when the selection is the pruned index's
    prefix and [packed_weights] carries the same vector permuted into
    packed member order (the store's {!cls.pk_weights}), the pass reads
    it gather-free at packed positions — same floats either way. *)
val select_packed_dists :
  ?tau:float ->
  ?entry_weights:float array ->
  ?packed_weights:float array ->
  config:Config.t ->
  dists ->
  selection

(** [distance_pvalue_cls_dists t d] is {!distance_pvalue_cls} with the
    conformal kNN score read from the shared buffer. *)
val distance_pvalue_cls_dists : cls -> dists -> float

val distance_pvalue_reg_dists : reg -> dists -> float

(** [knn_truth_dists reg d ~k] is {!knn_truth} from the shared buffer,
    draining the neighbour heap into reusable per-domain scratch instead
    of materializing (index, distance) pairs. *)
val knn_truth_dists : reg -> dists -> k:int -> float * float

(** [assign_cluster_dists reg d] is {!assign_cluster} as an argmin over
    the shared buffer. Raises [Invalid_argument] on an empty
    calibration set (the vector form falls back to the centroids). *)
val assign_cluster_dists : reg -> dists -> int

(** [weighted_residual_quantile reg selection ~epsilon] is the weighted
    [1 - epsilon] quantile of the selected entries' absolute residuals
    [|rpred - target|] — the split-conformal interval half-width.
    Sorts in a secondary per-domain workspace, so [selection]'s buffers
    stay live. *)
val weighted_residual_quantile : reg -> selection -> epsilon:float -> float

(** {2 Index telemetry and incremental growth} *)

(** Name of the environment variable overriding the minimum store size
    at which preparation builds the pruned kNN index:
    ["PROM_INDEX_MIN_N"] (default 4096). Read at preparation and append
    time, so tests and benchmarks can force or forbid indexing without
    rebuilding earlier stores. Indexing never changes verdicts — only
    how many rows each query's distance scan touches. *)
val index_threshold_env : string

(** [set_index_metrics_cls t m] attaches telemetry to the store's index
    (no-op when the store is unindexed): sets the cluster gauge and
    makes every subsequent index-backed query add its scanned/pruned row
    counts to the counters. Typically fed by {!Telemetry.index_metrics}. *)
val set_index_metrics_cls : cls -> index_metrics -> unit

val set_index_metrics_reg : reg -> index_metrics -> unit

(** The store's pruned kNN index, when the indexing policy built (or a
    snapshot carried) one. *)
val index_of_cls : cls -> Knn_index.t option

val index_of_reg : reg -> Knn_index.t option

(** [append_cls t new_entries] grows the store in place of a full
    retrain: entries (already standardized with [t]'s scaler) are packed
    after the existing rows, the new rows' leave-one-out kNN scores are
    merged into the conformal reference distribution (existing scores
    are kept as prepared — recomputing them would cost the O(n²·d) pass
    the append avoids), [tau] is kept, and the kNN index absorbs the
    rows by batched insert — rebuilding itself when the growth or
    imbalance policy demands, or being built fresh when the grown store
    first crosses the indexing threshold. Calibration weights reset to
    unit: the admitted rows have no weight yet, so streaming callers
    {!reweight_cls} immediately after. *)
val append_cls : cls -> cls_entry array -> cls

(** [append_reg t samples] — the regression analogue. Each sample is
    [(features, target, prediction)] with [features] already
    standardized; its cluster label and LOO-kNN proxy/spread are scored
    against the pre-append store, exactly as a test query would have
    been, so the batch is independent of arrival order. *)
val append_reg : reg -> (Vec.t * float * float) array -> reg
