(** Pre-registered instrument bundle for the PROM serving path.

    One [Telemetry.t] groups every metric the serving layers emit —
    detector query/accept/reject counters and latency histogram, service
    batch statistics, monitor drift gauges, incremental-learning event
    counters — all registered on a single {!Prom_obs.registry}. The
    bundle is created once at deployment time and threaded (as an
    option) through {!Detector}, {!Service}, {!Monitor}, {!Incremental}
    and {!Framework}; components given [None] skip instrumentation
    entirely, paying one branch per call. *)

type t = {
  registry : Prom_obs.registry;
  queries_total : Prom_obs.Counter.t;  (** [prom_queries_total] *)
  accepted_total : Prom_obs.Counter.t;  (** [prom_accepted_total] *)
  rejected_total : Prom_obs.Counter.t;  (** [prom_rejected_total] *)
  eval_latency : Prom_obs.Histogram.t;  (** [prom_eval_latency_seconds] *)
  batch_size : Prom_obs.Histogram.t;  (** [prom_service_batch_size] *)
  collision_rebinds : Prom_obs.Counter.t;
      (** [prom_service_collision_rebinds_total]: batch queries whose
          feature vector value-collided with an earlier query in the
          same batch and therefore needed an extra evaluation round. *)
  drift_rate : Prom_obs.Gauge.t;  (** [prom_monitor_drift_rate] *)
  monitor_status : Prom_obs.Gauge.t;
      (** [prom_monitor_status]: 0 healthy, 1 degrading, 2 ageing. *)
  status_transitions : Prom_obs.Counter.t;
      (** [prom_monitor_transitions_total] *)
  flagged_total : Prom_obs.Counter.t;  (** [prom_incremental_flagged_total] *)
  relabeled_total : Prom_obs.Counter.t;
      (** [prom_incremental_relabeled_total] *)
  retrain_total : Prom_obs.Counter.t;  (** [prom_incremental_retrain_total] *)
  snapshot_generation : Prom_obs.Gauge.t;
      (** [prom_snapshot_generation]: generation of the snapshot the
          service is currently serving (0 until a save or swap). *)
  snapshot_saves : Prom_obs.Counter.t;  (** [prom_snapshot_saves_total] *)
  snapshot_loads : Prom_obs.Counter.t;  (** [prom_snapshot_loads_total] *)
  service_swaps : Prom_obs.Counter.t;
      (** [prom_service_swaps_total]: atomic hot-swaps of the serving
          detector. *)
}

(** [create registry] registers the full instrument bundle on
    [registry]. Registration is get-or-create, so several bundles on the
    same registry share series. Also registers the
    [prom_kernel_backend{backend,isa}] info gauge (value always 1)
    recording which native distance-kernel backend
    ({!Prom_linalg.Kernels}) this process selected at startup. *)
val create : Prom_obs.registry -> t

(** The registry this bundle was created on. *)
val registry : t -> Prom_obs.registry

(** [index_metrics t] registers (get-or-create) the pruned-kNN index
    series — [prom_index_clusters] gauge plus
    [prom_index_candidates_scanned_total], [prom_index_pruned_total]
    and [prom_index_rebuilds_total] counters — and returns them bundled
    for {!Calibration.set_index_metrics_cls}/[_reg]. Classification and
    regression stores on one registry share the series. *)
val index_metrics : t -> Calibration.index_metrics

(** Streaming-calibration series, resolved once by {!Stream} at store
    creation so the admit path only increments. *)
type stream = {
  st_window : Prom_obs.Gauge.t;
      (** [prom_stream_window]: effective window — capacity times the
          drift-driven scale. *)
  st_resident : Prom_obs.Gauge.t;
      (** [prom_stream_resident]: entries resident in the store
          (including expired ones awaiting compaction). *)
  st_live : Prom_obs.Gauge.t;
      (** [prom_stream_live]: resident entries with positive weight. *)
  st_expired : Prom_obs.Gauge.t;
      (** [prom_stream_expired]: resident entries at weight zero. *)
  st_scale : Prom_obs.Gauge.t;
      (** [prom_stream_scale]: the {!Decay.weight} scale currently
          applied (1.0 healthy, smaller under drift). *)
  st_admitted : Prom_obs.Counter.t;  (** [prom_stream_admitted_total] *)
  st_evicted : Prom_obs.Counter.t;  (** [prom_stream_evicted_total] *)
  st_compactions : Prom_obs.Counter.t;
      (** [prom_stream_compactions_total]: full LOO rebuilds. *)
  st_publishes : Prom_obs.Counter.t;
      (** [prom_stream_publishes_total]: service hot-swaps issued by the
          streaming store. *)
  st_rebuild_seconds : Prom_obs.Histogram.t;
      (** [prom_stream_rebuild_seconds]: compaction rebuild time. *)
  st_swap_seconds : Prom_obs.Histogram.t;
      (** [prom_stream_swap_seconds]: publish time — engine build plus
          the atomic swap. *)
}

(** [stream_metrics t] registers (get-or-create) the streaming series
    on the bundle's registry and returns them for {!Stream.create}. *)
val stream_metrics : t -> stream

(** [expert_flag_counter t name] is the per-expert drift-flag counter
    [prom_expert_flags_total{expert=name}]. Resolved once per committee
    at detector-build time so the query path only increments. *)
val expert_flag_counter : t -> string -> Prom_obs.Counter.t

(** Prometheus text exposition of everything on the bundle's
    registry. *)
val exposition : t -> string

(** Instrument bundle for the HTTP serving layer ({!Prom_server}-side
    series, kept here so every metric name the stack exports is
    declared in one module). *)
module Http : sig
  type http

  (** [create registry] registers the HTTP series
      ([prom_http_batch_size], [prom_http_queue_depth],
      [prom_http_request_seconds]) on [registry]; get-or-create like
      {!create}. *)
  val create : Prom_obs.registry -> http

  (** [requests_total ?tenant t code] is the
      [prom_http_requests_total{code="...",tenant="..."}] counter for
      one (tenant, status code) pair, materialized on first use and
      cached. An empty [tenant] (the default) omits the tenant label —
      the series for endpoints that serve no tenant (metrics, healthz,
      unroutable paths). Safe from any thread. *)
  val requests_total : ?tenant:string -> http -> int -> Prom_obs.Counter.t

  (** Per-tenant serving series, all labeled [{tenant="..."}] and
      resolved once at tenant registration so the dispatch path only
      increments. *)
  type tenant = {
    tn_queue_depth : Prom_obs.Gauge.t;
        (** [prom_tenant_queue_depth]: the tenant's items waiting in
            the shared micro-batch queue. *)
    tn_batch_share : Prom_obs.Counter.t;
        (** [prom_tenant_batch_share]: queries the tenant contributed
            to shared inference batches — the fair-share audit trail
            (rates across tenants compare directly). *)
    tn_swaps : Prom_obs.Counter.t;
        (** [prom_tenant_swaps_total]: completed snapshot hot-swaps on
            the tenant's slot. *)
  }

  (** [tenant_metrics t name] registers (get-or-create) one tenant's
      series under [{tenant=name}]. *)
  val tenant_metrics : http -> string -> tenant

  (** [prom_http_batch_size]: queries per dispatched inference
      batch. *)
  val batch_size : http -> Prom_obs.Histogram.t

  (** [prom_http_queue_depth]: requests waiting in the micro-batch
      queue after the last dispatch. *)
  val queue_depth : http -> Prom_obs.Gauge.t

  (** [prom_http_request_seconds]: request latency from fully-read
      request to fully-written response. *)
  val request_seconds : http -> Prom_obs.Histogram.t

  (** [prom_http_open_connections]: connections currently held by the
      server (accepted and not yet closed, across all shards). *)
  val open_connections : http -> Prom_obs.Gauge.t

  (** [prom_http_evloop_iteration_seconds]: time each event-loop
      iteration spends processing readiness events, completions and
      timers (poll wait excluded) — the shard-stall signal. *)
  val evloop_seconds : http -> Prom_obs.Histogram.t
end
