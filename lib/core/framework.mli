(** High-level workflow glue mirroring the paper's [ModelInterface]
    template (Fig. 4): partition training data, train outside PROM,
    wrap the trained model in a detector, predict with a drift flag,
    and improve the model through the incremental-learning loop. *)

open Prom_linalg
open Prom_ml

(** [data_partitioning ?calibration_ratio ?max_calibration ~seed d]
    splits a training dataset into [(training, calibration)]. Defaults
    follow the paper: 10% held out, capped at 1,000 samples
    (Sec. 4.1.1). *)
val data_partitioning :
  ?calibration_ratio:float ->
  ?max_calibration:int ->
  seed:int ->
  'a Dataset.t ->
  'a Dataset.t * 'a Dataset.t

(** A deployed classification pipeline: the trained model, its
    detector, and everything needed to keep improving it. *)
type deployed = {
  detector : Detector.Classification.t;
  trainer : Model.classifier_trainer;
  training_data : int Dataset.t;
  calibration_data : int Dataset.t;
  feature_of : Vec.t -> Vec.t;
  committee : Nonconformity.cls list;
  telemetry : Telemetry.t option;
  snapshot_dir : string option;
      (** when set, {!deploy} and every {!improve} round checkpoint the
          detector into this directory *)
}

(** [deploy ?config ?committee ?feature_of ?telemetry ?snapshot_dir
    ~trainer ~seed data] runs the whole design phase: partition, train,
    calibrate. [feature_of] defaults to the identity (tabular
    features). [telemetry] instruments the detector (and every detector
    rebuilt by {!improve}); it is kept on the deployment so {!metrics}
    can dump the registry. When [snapshot_dir] is given, the freshly
    calibrated detector is checkpointed into it (and after every
    {!improve} round), so a killed process resumes from the latest
    valid generation. Checkpointing requires a serializable model
    (raises [Invalid_argument] otherwise — see {!Snapshot}). *)
val deploy :
  ?config:Config.t ->
  ?committee:Nonconformity.cls list ->
  ?feature_of:(Vec.t -> Vec.t) ->
  ?telemetry:Telemetry.t ->
  ?snapshot_dir:string ->
  trainer:Model.classifier_trainer ->
  seed:int ->
  int Dataset.t ->
  deployed

(** [checkpoint d] snapshots the current detector into
    [d.snapshot_dir]; [None] when no snapshot directory is
    configured. *)
val checkpoint : deployed -> Prom_store.Store.info option

(** [telemetry d] is the telemetry bundle the deployment was
    instrumented with, if any. *)
val telemetry : deployed -> Telemetry.t option

(** [metrics d] is the Prometheus text exposition of the deployment's
    registry, or [None] when the deployment is uninstrumented. *)
val metrics : deployed -> string option

(** [predict d x] is the deployment-phase call of Fig. 4: the
    underlying model's prediction plus the drift verdict. *)
val predict : deployed -> Vec.t -> int * bool

(** [assess d] runs the initialization assessment on the deployment's
    calibration data. *)
val assess : ?r:int -> ?seed:int -> deployed -> Assessment.report

(** [improve ?budget_fraction d ~oracle inputs] runs one
    incremental-learning round and returns the deployment rebuilt
    around the updated model (fresh calibration preprocessing
    included). *)
val improve :
  ?budget_fraction:float ->
  deployed ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  deployed * Model.classifier Incremental.outcome
