(** High-level workflow glue mirroring the paper's [ModelInterface]
    template (Fig. 4): partition training data, train outside PROM,
    wrap the trained model in a detector, predict with a drift flag,
    and improve the model through the incremental-learning loop. *)

open Prom_linalg
open Prom_ml

(** [data_partitioning ?calibration_ratio ?max_calibration ~seed d]
    splits a training dataset into [(training, calibration)]. Defaults
    follow the paper: 10% held out, capped at 1,000 samples
    (Sec. 4.1.1). *)
val data_partitioning :
  ?calibration_ratio:float ->
  ?max_calibration:int ->
  seed:int ->
  'a Dataset.t ->
  'a Dataset.t * 'a Dataset.t

(** A deployed classification pipeline: the trained model, its
    detector, and everything needed to keep improving it. *)
type deployed = {
  detector : Detector.Classification.t;
  trainer : Model.classifier_trainer;
  training_data : int Dataset.t;
  calibration_data : int Dataset.t;
  feature_of : Vec.t -> Vec.t;
  committee : Nonconformity.cls list;
  telemetry : Telemetry.t option;
}

(** [deploy ?config ?committee ?feature_of ?telemetry ~trainer ~seed
    data] runs the whole design phase: partition, train, calibrate.
    [feature_of] defaults to the identity (tabular features).
    [telemetry] instruments the detector (and every detector rebuilt by
    {!improve}); it is kept on the deployment so {!metrics} can dump
    the registry. *)
val deploy :
  ?config:Config.t ->
  ?committee:Nonconformity.cls list ->
  ?feature_of:(Vec.t -> Vec.t) ->
  ?telemetry:Telemetry.t ->
  trainer:Model.classifier_trainer ->
  seed:int ->
  int Dataset.t ->
  deployed

val telemetry : deployed -> Telemetry.t option

(** [metrics d] is the Prometheus text exposition of the deployment's
    registry, or [None] when the deployment is uninstrumented. *)
val metrics : deployed -> string option

(** [predict d x] is the deployment-phase call of Fig. 4: the
    underlying model's prediction plus the drift verdict. *)
val predict : deployed -> Vec.t -> int * bool

(** [assess d] runs the initialization assessment on the deployment's
    calibration data. *)
val assess : ?r:int -> ?seed:int -> deployed -> Assessment.report

(** [improve ?budget_fraction d ~oracle inputs] runs one
    incremental-learning round and returns the deployment rebuilt
    around the updated model (fresh calibration preprocessing
    included). *)
val improve :
  ?budget_fraction:float ->
  deployed ->
  oracle:(Vec.t -> int) ->
  Vec.t array ->
  deployed * Model.classifier Incremental.outcome
