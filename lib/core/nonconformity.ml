open Prom_linalg

type cls = {
  cls_name : string;
  cls_score : proba:Vec.t -> label:int -> float;
  cls_discrete : bool;
}

let check_label ~proba ~label =
  if label < 0 || label >= Array.length proba then
    invalid_arg "Nonconformity: label out of range"

let lac =
  {
    cls_discrete = false;
    cls_name = "LAC";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        1.0 -. proba.(label));
  }

(* Labels at least as probable as [label], i.e. its rank (0-based).
   Plain loops here and below: these run per (entry, label) in the
   p-value scans, and a closure over a ref would allocate on every
   call. *)
let rank_of ~proba ~label =
  let p = proba.(label) in
  let r = ref 0 in
  for i = 0 to Array.length proba - 1 do
    if i <> label && proba.(i) > p then incr r
  done;
  !r

let topk =
  {
    cls_discrete = true;
    cls_name = "TopK";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        float_of_int (rank_of ~proba ~label));
  }

(* Cumulative mass of labels STRICTLY more probable than [label]. The
   label's own mass is excluded: with it, a highly confident (and
   typically correct) top-label prediction would look maximally strange,
   inverting the credibility test. The exclusive form is conforming (0)
   at the top label and grows with the mass ranked above. *)
let aps_mass ~proba ~label =
  let p = proba.(label) in
  let acc = ref 0.0 in
  for i = 0 to Array.length proba - 1 do
    let q = proba.(i) in
    if i <> label && q > p then acc := !acc +. q
  done;
  !acc

let aps =
  {
    cls_discrete = false;
    cls_name = "APS";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        aps_mass ~proba ~label);
  }

let raps ?(lambda = 0.1) ?(k_reg = 2) () =
  {
    cls_discrete = false;
    cls_name = "RAPS";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        let rank = rank_of ~proba ~label in
        let penalty = lambda *. float_of_int (Stdlib.max 0 (rank + 1 - k_reg)) in
        aps_mass ~proba ~label +. penalty);
  }

let default_committee = [ lac; topk; aps; raps () ]

type reg = {
  reg_name : string;
  reg_score : pred:float -> truth:float -> spread:float -> float;
}

let absolute_residual =
  { reg_name = "AbsRes"; reg_score = (fun ~pred ~truth ~spread:_ -> abs_float (pred -. truth)) }

let squared_residual =
  { reg_name = "SqRes"; reg_score = (fun ~pred ~truth ~spread:_ -> (pred -. truth) ** 2.0) }

let normalized_residual =
  {
    reg_name = "NormRes";
    reg_score = (fun ~pred ~truth ~spread -> abs_float (pred -. truth) /. (spread +. 1e-6));
  }

let log_residual =
  {
    reg_name = "LogRes";
    reg_score = (fun ~pred ~truth ~spread:_ -> log (1.0 +. abs_float (pred -. truth)));
  }

let default_reg_committee =
  [ absolute_residual; squared_residual; normalized_residual; log_residual ]

let top_two proba =
  let top = ref 0 and second = ref (-1) in
  Array.iteri
    (fun i p ->
      if p > proba.(!top) then begin
        second := !top;
        top := i
      end
      else if !second < 0 || p > proba.(!second) then
        if i <> !top then second := i)
    proba;
  (!top, if !second < 0 then !top else !second)

let margin =
  {
    cls_discrete = false;
    cls_name = "Margin";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        let top, second = top_two proba in
        let gap = proba.(top) -. (if top = label then proba.(second) else proba.(label)) in
        if label = top then 1.0 -. gap else 1.0 +. gap);
  }

let entropy =
  {
    cls_discrete = false;
    cls_name = "Entropy";
    cls_score =
      (fun ~proba ~label ->
        check_label ~proba ~label;
        let n = Array.length proba in
        let h =
          -.Array.fold_left (fun acc p -> acc +. (p *. log (Stdlib.max p 1e-12))) 0.0 proba
        in
        let h_norm = if n <= 1 then 0.0 else h /. log (float_of_int n) in
        (* rank offset keeps the per-label ordering well-defined *)
        h_norm +. float_of_int (rank_of ~proba ~label));
  }

let extended_committee = default_committee @ [ margin; entropy ]

(* Name resolution for snapshot restore: committees are persisted as
   expert names, so only the built-in experts (with their default
   parameters) can round-trip. Custom closures cannot. *)
let cls_by_name = function
  | "LAC" -> Some lac
  | "TopK" -> Some topk
  | "APS" -> Some aps
  | "RAPS" -> Some (raps ())
  | "Margin" -> Some margin
  | "Entropy" -> Some entropy
  | _ -> None

let reg_by_name = function
  | "AbsRes" -> Some absolute_residual
  | "SqRes" -> Some squared_residual
  | "NormRes" -> Some normalized_residual
  | "LogRes" -> Some log_residual
  | _ -> None
