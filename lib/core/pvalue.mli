(** Conformal p-values (paper Eq. 2): the weighted fraction of selected
    calibration samples, sharing the candidate label, whose
    nonconformity score is at least the test sample's score. The
    adaptive weights of Eq. 1 enter as sample weights (weighted
    conformal prediction), so nearby calibration samples dominate the
    count; +1 smoothing keeps p-values in (0, 1]. A p-value near 0
    means the test input is stranger than everything seen at design
    time; near 1 means it conforms.

    Because every rank sum here is already weight-aware, the streaming
    weighted-calibration mode (per-entry decay weights for drifting
    calibration sets, "conformal prediction beyond exchangeability")
    needs no changes in this module: {!Calibration.reweight_cls} folds
    the per-entry weights into the selection weights upstream, and unit
    weights leave every sum bit-identical to the unweighted pipeline. *)

open Prom_linalg

(** [classification ?smooth ~fn ~selected ~proba ~label ()] is the
    p-value of assigning [label] to a test input whose model probability
    vector is [proba]. Returns 0 when no selected calibration sample
    carries [label] (the label has no support). [smooth] (default true)
    applies the +1 correction; pass [false] when building prediction
    sets so unsupported labels are excluded. *)
val classification :
  ?smooth:bool ->
  fn:Nonconformity.cls ->
  selected:Calibration.cls_entry Calibration.selected array ->
  proba:Vec.t ->
  label:int ->
  unit ->
  float

(** [classification_all ?smooth ~fn ~selected ~proba ~n_classes ()] is
    the p-value of every candidate label — the input to prediction-set
    construction. *)
val classification_all :
  ?smooth:bool ->
  fn:Nonconformity.cls ->
  selected:Calibration.cls_entry Calibration.selected array ->
  proba:Vec.t ->
  n_classes:int ->
  unit ->
  float array

(** [classification_all_table ~entry_scores ~entry_labels ~selection
    ~test_scores ~n_classes ()] is [(smoothed, raw)] — the smoothed and
    raw p-values of every label from a single allocation-light scan
    over the packed selection. [entry_scores.(i)] must be the
    nonconformity score of calibration entry [i] at its own label and
    [entry_labels.(i)] that entry's label (both precomputed once per
    detector, since neither depends on the test input);
    [test_scores.(l)] is the test input's score at label [l].
    Bit-identical to the pair of {!classification_all} calls with
    [smooth] true and false on the equivalent {!Calibration.selected}
    array: the hot path of {!Detector.Classification.evaluate}.

    When the selection is packed
    ({!Calibration.selection.sel_packed}) and [packed_scores] /
    [packed_labels] carry the same tables permuted into the kNN index's
    member order ([packed.(m) = entry.(member_order.(m))]), the scan
    reads them at the candidates' packed positions — cluster-contiguous
    tile-local accesses instead of an O(n)-spread gather. Each packed
    slot equals its entry-order twin and the iteration order is
    unchanged, so the p-values are bit-identical either way; callers
    without packed tables omit the arguments. *)
val classification_all_table :
  ?packed_scores:float array ->
  ?packed_labels:int array ->
  entry_scores:float array ->
  entry_labels:int array ->
  selection:Calibration.selection ->
  test_scores:float array ->
  n_classes:int ->
  unit ->
  float array * float array

(** [regression ?smooth ~fn ~selected ~spread_of_entry ~cluster
    ~test_score ()] is the regression p-value: the weighted fraction of
    selected calibration samples in [cluster] whose residual-based score
    is at least [test_score]. *)
val regression :
  ?smooth:bool ->
  fn:Nonconformity.reg ->
  selected:Calibration.reg_entry Calibration.selected array ->
  spread_of_entry:(Calibration.reg_entry -> float) ->
  cluster:int ->
  test_score:float ->
  unit ->
  float

(** [regression_all ?smooth ~fn ~selected ~spread_of_entry ~n_clusters
    ~test_score ()] is the p-value of every cluster label. *)
val regression_all :
  ?smooth:bool ->
  fn:Nonconformity.reg ->
  selected:Calibration.reg_entry Calibration.selected array ->
  spread_of_entry:(Calibration.reg_entry -> float) ->
  n_clusters:int ->
  test_score:float ->
  unit ->
  float array

(** [regression_all_table ~entry_scores ~entry_clusters ~selection
    ~n_clusters ~test_score ()] is [(smoothed, raw)] from a single scan
    with precomputed per-entry scores and cluster labels — the
    regression analogue of {!classification_all_table}, including the
    gather-free packed-table dispatch. *)
val regression_all_table :
  ?packed_scores:float array ->
  ?packed_clusters:int array ->
  entry_scores:float array ->
  entry_clusters:int array ->
  selection:Calibration.selection ->
  n_clusters:int ->
  test_score:float ->
  unit ->
  float array * float array
