(** Domain codec between the serving stack's state and the versioned
    container files of {!Prom_store.Store}.

    A snapshot captures everything a deployed detector needs to resume
    with bit-identical verdicts: the configuration, the committee (as
    expert names), the trained model (via the per-module codecs of
    [Prom_ml]), the {e prepared} calibration store — entries, scaler,
    self-calibrated tau and leave-one-out distance table, so the
    O(n²·d) preparation never re-runs on restore — and optionally the
    ageing monitor's window state. Restoring only repacks the feature
    matrix (O(n·d)) and recomputes the cheap per-entry committee score
    tables.

    Two things deliberately do not round-trip: custom nonconformity
    closures (committees are persisted by name; see
    {!Nonconformity.cls_by_name}) and the [feature_of] embedding, which
    is re-supplied at restore time (default [Fun.id]). *)

open Prom_linalg
open Prom_ml

(** Payload codec version written into every container header; bumped
    whenever the layout below changes. v2 appended an optional pruned
    kNN index to each calibration store so index-accelerated detectors
    restore without a rebuild pause. v3 appends the weighted-conformal
    state — the sorted-LOO permutation and per-entry decay weights of
    each calibration store, plus an optional {!Decay.window_state} on
    classification payloads so a streaming ingestion loop resumes with
    the exact weights it was publishing. *)
val codec_version : int

(** Oldest codec version this build still decodes. v1 payloads (no
    index section) restore fine — the index is simply rebuilt by the
    usual size policy. Pre-v3 payloads restore with unit weights and an
    unknown LOO permutation (the weighted distance test degrades to the
    unweighted form until the store is rebuilt). *)
val min_codec_version : int

val kind_cls : string
(** Container kind tag for classification snapshots. *)

val kind_reg : string
(** Container kind tag for regression snapshots. *)

(** Decoded classification snapshot. [cls_model] is [None] when the
    snapshot was taken from a {!Service} over an external model (the
    probability function lives in the serving process and cannot be
    serialized); such snapshots restore through [Service.of_snapshot]
    only. [cls_stream] carries the streaming ingestion loop's window
    state when the snapshot was published by {!Stream} ([None] for
    batch-calibrated detectors and all pre-v3 payloads). *)
type cls_snapshot = {
  cls_config : Config.t;
  cls_committee : Nonconformity.cls list;
  cls_model : Model.classifier option;
  cls_calibration : Calibration.cls;
  cls_monitor : Monitor.persisted option;
  cls_stream : Decay.window_state option;
}

(** Decoded regression snapshot. *)
type reg_snapshot = {
  reg_config : Config.t;
  reg_committee : Nonconformity.reg list;
  reg_model : Model.regressor;
  reg_calibration : Calibration.reg;
  reg_monitor : Monitor.persisted option;
}

type t = Cls of cls_snapshot | Reg of reg_snapshot

(** [of_cls_detector ?monitor ?stream ?external_model d] captures a
    classification detector (and optionally its monitor's window state
    and the streaming store's {!Decay.window_state}). [external_model]
    (default false) records the model slot as external instead of
    serializing it — the {!Service} path. Raises [Invalid_argument]
    when the model or a committee member has no serializer. *)
val of_cls_detector :
  ?monitor:Monitor.t -> ?stream:Decay.window_state -> ?external_model:bool ->
  Detector.Classification.t -> t

(** [of_reg_detector ?monitor d] captures a regression detector. *)
val of_reg_detector : ?monitor:Monitor.t -> Detector.Regression.t -> t

(** [to_cls_detector ?telemetry ?feature_of s] rebuilds the detector;
    verdicts are bit-identical to the snapshotted one. [feature_of]
    defaults to [Fun.id]. Raises [Invalid_argument] when [s] carries an
    external model. *)
val to_cls_detector :
  ?telemetry:Telemetry.t -> ?feature_of:(Vec.t -> Vec.t) -> cls_snapshot ->
  Detector.Classification.t

(** [to_reg_detector ?telemetry ?feature_of s] — the regression
    analogue. *)
val to_reg_detector :
  ?telemetry:Telemetry.t -> ?feature_of:(Vec.t -> Vec.t) -> reg_snapshot ->
  Detector.Regression.t

(** [encode t] is the container payload. Raises [Invalid_argument] when
    the snapshot holds an unserializable model or committee. *)
val encode : t -> string

(** [decode ?version payload] parses a payload produced by {!encode}
    under codec [version] (default the current {!codec_version}; pass
    the container header's version when reading stored generations).
    Raises [Prom_store.Buf.Corrupt] on any malformed, truncated or
    domain-invalid input (never [Invalid_argument]), and on a [version]
    outside [[min_codec_version]; [codec_version]]. *)
val decode : ?version:int -> string -> t

(** [kind_of t] is {!kind_cls} or {!kind_reg}. *)
val kind_of : t -> string

(** [save ?telemetry ~dir t] encodes and writes the next generation
    into [dir] (atomic write; see {!Prom_store.Store.save}), updating
    the bundle's snapshot counters when [telemetry] is given. *)
val save : ?telemetry:Telemetry.t -> dir:string -> t -> Prom_store.Store.info

(** [load_latest ?telemetry ?kind ~dir ()] decodes the newest
    generation that validates end to end — container framing, checksum
    {e and} domain state. Generations failing any of those are skipped
    (the crash-recovery fallback); [None] when nothing in [dir]
    survives. *)
val load_latest :
  ?telemetry:Telemetry.t -> ?kind:string -> dir:string -> unit ->
  (t * Prom_store.Store.info) option

(** [load path] decodes one specific container file; raises
    [Prom_store.Buf.Corrupt] (or [Sys_error]) instead of falling
    back. *)
val load : string -> t * Prom_store.Store.info
