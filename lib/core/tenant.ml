type state = Loading | Ready | Draining

let state_name = function
  | Loading -> "loading"
  | Ready -> "ready"
  | Draining -> "draining"

(* Tenant names double as URL path segments and snapshot-directory
   names, so the alphabet is the strict intersection of what both can
   carry safely: no separators, no dots (".", ".." traversal), no
   percent signs (undecoded escapes), bounded length. *)
let max_name_len = 64

let valid_name s =
  let n = String.length s in
  n >= 1 && n <= max_name_len
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

type slot = {
  name : string;
  index : int;
  snapshot_dir : string option;
  service : Service.t option Atomic.t;
  state : state Atomic.t;
  stream : Stream.t option Atomic.t;
  swaps : int Atomic.t;
}

type t = {
  lock : Mutex.t;
  by_name : (string, slot) Hashtbl.t;
  mutable order : slot list; (* reverse registration order *)
}

let create () = { lock = Mutex.create (); by_name = Hashtbl.create 8; order = [] }

let register ?snapshot_dir ?service t name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Tenant.register: invalid tenant name %S" name);
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if Hashtbl.mem t.by_name name then
        invalid_arg
          (Printf.sprintf "Tenant.register: tenant %S already registered" name);
      let slot =
        {
          name;
          index = Hashtbl.length t.by_name;
          snapshot_dir;
          service = Atomic.make service;
          state =
            Atomic.make (match service with Some _ -> Ready | None -> Loading);
          stream = Atomic.make None;
          swaps = Atomic.make 0;
        }
      in
      Hashtbl.replace t.by_name name slot;
      t.order <- slot :: t.order;
      slot)

let find t name =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.by_name name in
  Mutex.unlock t.lock;
  r

let slots t =
  Mutex.lock t.lock;
  let r = List.rev t.order in
  Mutex.unlock t.lock;
  r

let count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.by_name in
  Mutex.unlock t.lock;
  n

let name slot = slot.name
let index slot = slot.index
let snapshot_dir slot = slot.snapshot_dir
let state slot = Atomic.get slot.state
let service slot = Atomic.get slot.service
let stream slot = Atomic.get slot.stream
let set_stream slot s = Atomic.set slot.stream s
let swaps slot = Atomic.get slot.swaps
let count_swap slot = Atomic.incr slot.swaps

let activate slot service =
  Atomic.set slot.service (Some service);
  (* A draining tenant stays draining: activation must not resurrect a
     slot the server is already refusing traffic for. *)
  ignore (Atomic.compare_and_set slot.state Loading Ready)

let drain slot = Atomic.set slot.state Draining

(* Serving handle: the slot must be Ready and hold a service. Checked
   as two atomics (no lock) — the failure modes of the benign race are
   one request answered 503 just as activation lands, or one request
   served just as draining begins, both of which the lifecycle already
   allows. *)
let serving slot =
  match Atomic.get slot.state with
  | Ready -> Atomic.get slot.service
  | Loading | Draining -> None
