open Prom_linalg
open Prom_ml

let data_partitioning ?(calibration_ratio = 0.1) ?(max_calibration = 1000) ~seed d =
  if calibration_ratio <= 0.0 || calibration_ratio >= 1.0 then
    invalid_arg "Framework.data_partitioning: ratio outside (0,1)";
  let rng = Rng.create seed in
  let shuffled = Dataset.shuffle rng d in
  let n = Dataset.length d in
  let cal_n =
    Stdlib.min max_calibration
      (Stdlib.max 1 (int_of_float (calibration_ratio *. float_of_int n)))
  in
  let calibration = Dataset.subset shuffled (Array.init cal_n Fun.id) in
  let training = Dataset.subset shuffled (Array.init (n - cal_n) (fun i -> i + cal_n)) in
  (training, calibration)

type deployed = {
  detector : Detector.Classification.t;
  trainer : Model.classifier_trainer;
  training_data : int Dataset.t;
  calibration_data : int Dataset.t;
  feature_of : Vec.t -> Vec.t;
  committee : Nonconformity.cls list;
  telemetry : Telemetry.t option;
  snapshot_dir : string option;
}

let checkpoint d =
  match d.snapshot_dir with
  | None -> None
  | Some dir ->
      Some (Snapshot.save ?telemetry:d.telemetry ~dir (Snapshot.of_cls_detector d.detector))

let deploy ?config ?(committee = Nonconformity.default_committee) ?(feature_of = Fun.id)
    ?telemetry ?snapshot_dir ~trainer ~seed data =
  let training_data, calibration_data = data_partitioning ~seed data in
  let model = trainer.Model.train training_data in
  let detector =
    Detector.Classification.create ?config ~committee ?telemetry ~model ~feature_of
      calibration_data
  in
  let d =
    { detector; trainer; training_data; calibration_data; feature_of; committee;
      telemetry; snapshot_dir }
  in
  ignore (checkpoint d : Prom_store.Store.info option);
  d

let telemetry d = d.telemetry

let metrics d = Option.map Telemetry.exposition d.telemetry

let predict d x = Detector.Classification.predict d.detector x

let assess ?r ?seed d =
  let config = Detector.Classification.config d.detector in
  Assessment.classification ?r ?seed ~config ~committee:d.committee
    ~model:(Detector.Classification.model d.detector)
    ~feature_of:d.feature_of d.calibration_data

let improve ?budget_fraction d ~oracle inputs =
  let outcome =
    Incremental.classification ?budget_fraction ?telemetry:d.telemetry
      ~detector:d.detector ~trainer:d.trainer ~train_data:d.training_data ~oracle inputs
  in
  (* The relabeled samples join the calibration set too, so the detector
     adapts to the new region along with the model (paper Sec. 8,
     "the calibration dataset can be updated during incremental
     learning"). *)
  let relabeled =
    let xs =
      Array.of_list (List.map (fun i -> inputs.(i)) outcome.Incremental.relabeled_indices)
    in
    Dataset.create xs (Array.map oracle xs)
  in
  let calibration_data = Dataset.append d.calibration_data relabeled in
  let config = Detector.Classification.config d.detector in
  let detector =
    Detector.Classification.create ~config ~committee:d.committee
      ?telemetry:d.telemetry ~model:outcome.Incremental.updated_model
      ~feature_of:d.feature_of calibration_data
  in
  let d = { d with detector; calibration_data } in
  (* Checkpoint the retrained deployment so a restart resumes from the
     post-retrain state, not the original calibration. *)
  ignore (checkpoint d : Prom_store.Store.info option);
  (d, outcome)
