open Prom_linalg
open Prom_ml
module Pool = Prom_parallel.Pool

type cls_verdict = {
  predicted : int;
  proba : Vec.t;
  experts : Scores.expert_verdict list;
  drifted : bool;
  mean_credibility : float;
  mean_confidence : float;
}

let mean_of f experts = Stats.mean (Array.of_list (List.map f experts))

module Classification = struct
  type t = {
    cfg : Config.t;
    committee : Nonconformity.cls list;
    (* Per committee member, the nonconformity score of each calibration
       entry at its own label. The score depends only on the entry, so
       computing it here (once) instead of inside every query's p-value
       scan removes the dominant per-query cost. *)
    committee_scores : float array list;
    (* entry_labels.(i) = entries.(i).label: an unboxed table so the
       p-value scan never dereferences entry records. *)
    entry_labels : int array;
    model : Model.classifier;
    feature_of : Vec.t -> Vec.t;
    calibration : Calibration.cls;
    tel : Telemetry.t option;
    (* expert_flags.(i) is the flag counter for committee member i —
       resolved at build time so the query path only increments. Empty
       when [tel] is [None]. *)
    expert_flags : Prom_obs.Counter.t array;
  }

  let entry_scores_of committee (calibration : Calibration.cls) =
    List.map
      (fun fn ->
        Array.map
          (fun e ->
            fn.Nonconformity.cls_score ~proba:e.Calibration.proba
              ~label:e.Calibration.label)
          calibration.Calibration.entries)
      committee

  let create ?(config = Config.default) ?(committee = Nonconformity.default_committee)
      ?telemetry ~model ~feature_of calibration =
    Config.validate config;
    if committee = [] then invalid_arg "Detector.Classification.create: empty committee";
    let calibration =
      Calibration.prepare_classification ~config ~model ~feature_of calibration
    in
    let committee_scores = entry_scores_of committee calibration in
    let entry_labels =
      Array.map (fun e -> e.Calibration.label) calibration.Calibration.entries
    in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.cls_name)
               committee)
    in
    { cfg = config; committee; committee_scores; entry_labels; model; feature_of;
      calibration; tel = telemetry; expert_flags }

  let config t = t.cfg
  let model t = t.model
  let with_config t config =
    Config.validate config;
    { t with cfg = config }

  let evaluate_core t x =
    let proba = t.model.Model.predict_proba x in
    let predicted = Vec.argmax proba in
    let feats = Calibration.standardize_cls t.calibration (t.feature_of x) in
    let selection =
      Calibration.select_packed ~tau:t.calibration.Calibration.tau
        ~featmat:t.calibration.Calibration.feat_matrix ~config:t.cfg
        t.calibration.Calibration.entries
        ~feature_of_entry:(fun e -> e.Calibration.features)
        feats
    in
    let n_classes = t.model.Model.n_classes in
    let distance_pvalue = Calibration.distance_pvalue_cls t.calibration feats in
    let experts =
      List.map2
        (fun fn entry_scores ->
          let test_scores =
            Array.init n_classes (fun label -> fn.Nonconformity.cls_score ~proba ~label)
          in
          let pvalues, set_pvalues =
            Pvalue.classification_all_table ~entry_scores ~entry_labels:t.entry_labels
              ~selection ~test_scores ~n_classes ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues
            ~discrete:fn.Nonconformity.cls_discrete ~config:t.cfg
            ~expert:fn.Nonconformity.cls_name ~pvalues ~predicted ())
        t.committee t.committee_scores
    in
    {
      predicted;
      proba;
      experts;
      drifted = Scores.committee_decision ~config:t.cfg experts;
      mean_credibility = mean_of (fun v -> v.Scores.credibility) experts;
      mean_confidence = mean_of (fun v -> v.Scores.confidence) experts;
    }

  (* Instrumentation never changes the verdict: the uninstrumented arm
     is [evaluate_core] itself, and the instrumented arm only reads the
     finished verdict — batch and sequential stay bit-identical. *)
  let evaluate t x =
    match t.tel with
    | None -> evaluate_core t x
    | Some tel ->
        let t0 = Prom_obs.now () in
        let v = evaluate_core t x in
        Prom_obs.Histogram.observe tel.Telemetry.eval_latency (Prom_obs.now () -. t0);
        Prom_obs.Counter.inc tel.Telemetry.queries_total;
        Prom_obs.Counter.inc
          (if v.drifted then tel.Telemetry.rejected_total
           else tel.Telemetry.accepted_total);
        List.iteri
          (fun i e ->
            if e.Scores.flags_drift then Prom_obs.Counter.inc t.expert_flags.(i))
          v.experts;
        v

  let predict t x =
    let v = evaluate t x in
    (v.predicted, v.drifted)

  (* Queries are independent, so a batch fans across the pool in
     deterministic chunks; with the default 1-domain pool this is a
     plain sequential map, and the per-element results are identical
     either way (no RNG or shared mutable state on the query path). *)
  let evaluate_batch ?pool t xs = Pool.map ?pool ~min_chunk:1 (evaluate t) xs

  let predict_batch ?pool t xs =
    Array.map (fun v -> (v.predicted, v.drifted)) (evaluate_batch ?pool t xs)

  let prediction_sets t x =
    let proba = t.model.Model.predict_proba x in
    let feats = Calibration.standardize_cls t.calibration (t.feature_of x) in
    let selected =
      Calibration.select_subset ~tau:t.calibration.Calibration.tau
        ~featmat:t.calibration.Calibration.feat_matrix ~config:t.cfg
        t.calibration.Calibration.entries
        ~feature_of_entry:(fun e -> e.Calibration.features)
        feats
    in
    List.map
      (fun fn ->
        let pvalues =
          Pvalue.classification_all ~smooth:false ~fn ~selected ~proba
            ~n_classes:t.model.Model.n_classes ()
        in
        ( fn.Nonconformity.cls_name,
          Scores.prediction_set ~epsilon:t.cfg.Config.epsilon pvalues ))
      t.committee
end

type reg_verdict = {
  predicted_value : float;
  cluster : int;
  knn_estimate : float;
  reg_experts : Scores.expert_verdict list;
  reg_drifted : bool;
  reg_mean_credibility : float;
  reg_mean_confidence : float;
}

module Regression = struct
  type t = {
    cfg : Config.t;
    committee : Nonconformity.reg list;
    (* Per committee member, each calibration entry's residual score
       (with the same spread floor the evaluate loop applies) —
       precomputed once, see {!Classification.t.committee_scores}. *)
    committee_scores : float array list;
    (* entry_clusters.(i) = rentries.(i).cluster — see
       {!Classification.t.entry_labels}. *)
    entry_clusters : int array;
    model : Model.regressor;
    feature_of : Vec.t -> Vec.t;
    calibration : Calibration.reg;
    tel : Telemetry.t option;
    (* See {!Classification.t.expert_flags}. *)
    expert_flags : Prom_obs.Counter.t array;
  }

  let spread_floor e = Stdlib.max e.Calibration.rspread 1e-6

  let entry_scores_of committee (calibration : Calibration.reg) =
    List.map
      (fun fn ->
        Array.map
          (fun e ->
            fn.Nonconformity.reg_score ~pred:e.Calibration.rpred
              ~truth:e.Calibration.rproxy ~spread:(spread_floor e))
          calibration.Calibration.rentries)
      committee

  let create ?(config = Config.default)
      ?(committee = Nonconformity.default_reg_committee) ?n_clusters ?telemetry ~model
      ~feature_of ~seed calibration =
    Config.validate config;
    if committee = [] then invalid_arg "Detector.Regression.create: empty committee";
    let calibration =
      Calibration.prepare_regression ?n_clusters ~config ~model ~feature_of ~seed
        calibration
    in
    let committee_scores = entry_scores_of committee calibration in
    let entry_clusters =
      Array.map (fun e -> e.Calibration.cluster) calibration.Calibration.rentries
    in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.reg_name)
               committee)
    in
    { cfg = config; committee; committee_scores; entry_clusters; model; feature_of;
      calibration; tel = telemetry; expert_flags }

  let config t = t.cfg
  let model t = t.model
  let n_clusters t = t.calibration.Calibration.n_clusters

  let with_config t config =
    Config.validate config;
    { t with cfg = config }

  let evaluate_core t x =
    let predicted_value = t.model.Model.predict x in
    let feats = Calibration.standardize_reg t.calibration (t.feature_of x) in
    let knn_estimate, knn_spread =
      Calibration.knn_truth t.calibration feats ~k:t.cfg.Config.knn_k
    in
    let cluster = Calibration.assign_cluster t.calibration feats in
    let selection =
      Calibration.select_packed ~tau:t.calibration.Calibration.rtau
        ~featmat:t.calibration.Calibration.rfeat_matrix ~config:t.cfg
        t.calibration.Calibration.rentries
        ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
        feats
    in
    let n_clusters = t.calibration.Calibration.n_clusters in
    let distance_pvalue = Calibration.distance_pvalue_reg t.calibration feats in
    let reg_experts =
      List.map2
        (fun fn entry_scores ->
          let test_score =
            fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
              ~spread:(Stdlib.max knn_spread 1e-6)
          in
          let pvalues, set_pvalues =
            Pvalue.regression_all_table ~entry_scores ~entry_clusters:t.entry_clusters
              ~selection ~n_clusters ~test_score ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues ~use_confidence:false
            ~config:t.cfg ~expert:fn.Nonconformity.reg_name ~pvalues ~predicted:cluster ())
        t.committee t.committee_scores
    in
    {
      predicted_value;
      cluster;
      knn_estimate;
      reg_experts;
      reg_drifted = Scores.committee_decision ~config:t.cfg reg_experts;
      reg_mean_credibility = mean_of (fun v -> v.Scores.credibility) reg_experts;
      reg_mean_confidence = mean_of (fun v -> v.Scores.confidence) reg_experts;
    }

  (* See {!Classification.evaluate}. *)
  let evaluate t x =
    match t.tel with
    | None -> evaluate_core t x
    | Some tel ->
        let t0 = Prom_obs.now () in
        let v = evaluate_core t x in
        Prom_obs.Histogram.observe tel.Telemetry.eval_latency (Prom_obs.now () -. t0);
        Prom_obs.Counter.inc tel.Telemetry.queries_total;
        Prom_obs.Counter.inc
          (if v.reg_drifted then tel.Telemetry.rejected_total
           else tel.Telemetry.accepted_total);
        List.iteri
          (fun i e ->
            if e.Scores.flags_drift then Prom_obs.Counter.inc t.expert_flags.(i))
          v.reg_experts;
        v

  let predict t x =
    let v = evaluate t x in
    (v.predicted_value, v.reg_drifted)

  (* See {!Classification.evaluate_batch}. *)
  let evaluate_batch ?pool t xs = Pool.map ?pool ~min_chunk:1 (evaluate t) xs

  let predict_batch ?pool t xs =
    Array.map (fun v -> (v.predicted_value, v.reg_drifted)) (evaluate_batch ?pool t xs)

  let interval t x =
    let predicted_value = t.model.Model.predict x in
    let feats = Calibration.standardize_reg t.calibration (t.feature_of x) in
    let selected =
      Calibration.select_subset ~tau:t.calibration.Calibration.rtau
        ~featmat:t.calibration.Calibration.rfeat_matrix ~config:t.cfg
        t.calibration.Calibration.rentries
        ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
        feats
    in
    (* Weighted (1 - epsilon) quantile of absolute residuals against the
       true calibration targets. *)
    let scored =
      Array.map
        (fun { Calibration.entry; weight; _ } ->
          (abs_float (entry.Calibration.rpred -. entry.Calibration.target), weight))
        selected
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) scored;
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 scored in
    let target_mass = (1.0 -. t.cfg.Config.epsilon) *. (total +. 1.0) in
    let q =
      let acc = ref 0.0 and res = ref nan in
      Array.iter
        (fun (r, w) ->
          if Float.is_nan !res then begin
            acc := !acc +. w;
            if !acc >= target_mass then res := r
          end)
        scored;
      if Float.is_nan !res then
        (* target mass beyond the calibration set: widest residual *)
        match Array.length scored with
        | 0 -> 0.0
        | n -> fst scored.(n - 1)
      else !res
    in
    (predicted_value -. q, predicted_value +. q)

  let cluster_sets t x =
    let predicted_value = t.model.Model.predict x in
    let feats = Calibration.standardize_reg t.calibration (t.feature_of x) in
    let knn_estimate, knn_spread =
      Calibration.knn_truth t.calibration feats ~k:t.cfg.Config.knn_k
    in
    let selected =
      Calibration.select_subset ~tau:t.calibration.Calibration.rtau
        ~featmat:t.calibration.Calibration.rfeat_matrix ~config:t.cfg
        t.calibration.Calibration.rentries
        ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
        feats
    in
    let spread_of_entry e = Stdlib.max e.Calibration.rspread 1e-6 in
    let n_clusters = t.calibration.Calibration.n_clusters in
    List.map
      (fun fn ->
        let test_score =
          fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
            ~spread:(Stdlib.max knn_spread 1e-6)
        in
        let pvalues =
          Pvalue.regression_all ~smooth:false ~fn ~selected ~spread_of_entry ~n_clusters
            ~test_score ()
        in
        ( fn.Nonconformity.reg_name,
          Scores.prediction_set ~epsilon:t.cfg.Config.epsilon pvalues ))
      t.committee
end
