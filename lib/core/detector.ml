open Prom_linalg
open Prom_ml
module Pool = Prom_parallel.Pool

type cls_verdict = {
  predicted : int;
  proba : Vec.t;
  experts : Scores.expert_verdict list;
  drifted : bool;
  mean_credibility : float;
  mean_confidence : float;
}

(* Committee mean in one pass — [Stats.mean] over [Array.of_list
   (List.map f experts)] built two lists and an array per call; the fold
   adds the same terms in the same order, so the result is unchanged.
   Committees are validated non-empty at construction. *)
let mean_of f experts =
  let rec go acc n = function
    | [] -> acc /. float_of_int n
    | e :: tl -> go (acc +. f e) (n + 1) tl
  in
  go 0.0 0 experts

(* Query tile granted to one pool task in batched evaluation: the
   tile's distance rows are computed by one cache-blocked kernel call
   before the per-query evaluations consume them. *)
let batch_tile = 8

module Classification = struct
  type t = {
    cfg : Config.t;
    committee : Nonconformity.cls list;
    (* Per committee member, the nonconformity score of each calibration
       entry at its own label, paired with — when the store is indexed —
       the same table permuted into the kNN index's packed member order
       ([||] otherwise). The score depends only on the entry, so
       computing it here (once) instead of inside every query's p-value
       scan removes the dominant per-query cost; the packed twin lets an
       indexed query's p-value scan read the table at the candidates'
       cluster-contiguous packed positions instead of gathering the
       entry-order table across O(n) memory. *)
    committee_scores : (float array * float array) list;
    (* entry_labels.(i) = entries.(i).label: an unboxed table so the
       p-value scan never dereferences entry records. [packed_labels] is
       its packed-order twin ([||] when unindexed). *)
    entry_labels : int array;
    packed_labels : int array;
    model : Model.classifier;
    feature_of : Vec.t -> Vec.t;
    calibration : Calibration.cls;
    tel : Telemetry.t option;
    (* expert_flags.(i) is the flag counter for committee member i —
       resolved at build time so the query path only increments. Empty
       when [tel] is [None]. *)
    expert_flags : Prom_obs.Counter.t array;
  }

  let entry_scores_of committee (calibration : Calibration.cls) =
    List.map
      (fun fn ->
        Array.map
          (fun e ->
            fn.Nonconformity.cls_score ~proba:e.Calibration.proba
              ~label:e.Calibration.label)
          calibration.Calibration.entries)
      committee

  (* The per-entry tables plus their packed-order twins. Each packed
     slot copies its entry-order twin ([packed.(m) = tbl.(order.(m))]),
     so the p-value scan's dispatch between the two table sets can never
     change a value — only which memory the selection's reads touch.
     Rebuilt wherever the tables are (create / of_calibration / admit),
     which is also everywhere the index value can change. *)
  let tables_of committee (calibration : Calibration.cls) =
    let entry_scores = entry_scores_of committee calibration in
    let entry_labels =
      Array.map (fun e -> e.Calibration.label) calibration.Calibration.entries
    in
    match Calibration.index_of_cls calibration with
    | None -> (List.map (fun s -> (s, [||])) entry_scores, entry_labels, [||])
    | Some ix ->
        let order = Knn_index.member_order ix in
        ( List.map (fun s -> (s, Array.map (fun i -> s.(i)) order)) entry_scores,
          entry_labels,
          Array.map (fun i -> entry_labels.(i)) order )

  let create ?(config = Config.default) ?(committee = Nonconformity.default_committee)
      ?telemetry ~model ~feature_of calibration =
    Config.validate config;
    if committee = [] then invalid_arg "Detector.Classification.create: empty committee";
    let calibration =
      Calibration.prepare_classification ~config ~model ~feature_of calibration
    in
    let committee_scores, entry_labels, packed_labels = tables_of committee calibration in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.cls_name)
               committee)
    in
    (match telemetry with
    | Some tel -> Calibration.set_index_metrics_cls calibration (Telemetry.index_metrics tel)
    | None -> ());
    { cfg = config; committee; committee_scores; entry_labels; packed_labels; model;
      feature_of; calibration; tel = telemetry; expert_flags }

  (* Rebuild from an already-prepared calibration store (the snapshot
     restore path): only the cheap derived tables — per-entry committee
     scores and the unboxed label table — are recomputed; the O(n^2 . d)
     preparation is skipped because the store already carries its
     products. *)
  let of_calibration ?(config = Config.default)
      ?(committee = Nonconformity.default_committee) ?telemetry ~model ~feature_of
      calibration =
    Config.validate config;
    if committee = [] then
      invalid_arg "Detector.Classification.of_calibration: empty committee";
    let committee_scores, entry_labels, packed_labels = tables_of committee calibration in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.cls_name)
               committee)
    in
    (match telemetry with
    | Some tel -> Calibration.set_index_metrics_cls calibration (Telemetry.index_metrics tel)
    | None -> ());
    { cfg = config; committee; committee_scores; entry_labels; packed_labels; model;
      feature_of; calibration; tel = telemetry; expert_flags }

  let config t = t.cfg
  let model t = t.model
  let committee t = t.committee
  let calibration t = t.calibration
  let with_config t config =
    Config.validate config;
    { t with cfg = config }

  let standardize t x = Calibration.standardize_cls t.calibration (t.feature_of x)

  (* Admit freshly labelled samples into the calibration store without
     a full retrain: entries are scored exactly as [create] scores them
     (standardized features, model probabilities), appended through
     [Calibration.append_cls] (which grows the pruned index
     incrementally), and the cheap derived tables are recomputed. The
     index metrics are re-attached because the append may have built a
     fresh index across the size threshold. *)
  let admit t labeled =
    if Array.length labeled = 0 then t
    else begin
      let n_classes = t.model.Model.n_classes in
      let new_entries =
        Array.map
          (fun (x, label) ->
            if label < 0 || label >= n_classes then
              invalid_arg "Detector.Classification.admit: label out of range";
            {
              Calibration.features = standardize t x;
              label;
              proba = t.model.Model.predict_proba x;
            })
          labeled
      in
      let calibration = Calibration.append_cls t.calibration new_entries in
      (match t.tel with
      | Some tel ->
          Calibration.set_index_metrics_cls calibration (Telemetry.index_metrics tel)
      | None -> ());
      let committee_scores, entry_labels, packed_labels = tables_of t.committee calibration in
      { t with calibration; committee_scores; entry_labels; packed_labels }
    end

  (* Evaluate one query from its shared distance view: the Eq. 1
     selection and the conformal distance test both read the one buffer
     [dists] points at, instead of each scanning the calibration matrix
     (the former [evaluate_core] paid two O(n·d) scans per query). The
     [_dists] consumers replay the independent scans' arithmetic
     exactly, so verdicts are bit-identical. *)
  let evaluate_with_dists t x dists =
    let proba = t.model.Model.predict_proba x in
    let predicted = Vec.argmax proba in
    let selection =
      (* Weighted conformal mode rides in on the store's weight vectors
         (empty in unit mode — the untouched unweighted arithmetic). *)
      Calibration.select_packed_dists ~tau:t.calibration.Calibration.tau
        ~entry_weights:t.calibration.Calibration.ent_weights
        ~packed_weights:t.calibration.Calibration.pk_weights ~config:t.cfg dists
    in
    let n_classes = t.model.Model.n_classes in
    let distance_pvalue = Calibration.distance_pvalue_cls_dists t.calibration dists in
    let experts =
      List.map2
        (fun fn (entry_scores, packed_scores) ->
          let test_scores =
            Array.init n_classes (fun label -> fn.Nonconformity.cls_score ~proba ~label)
          in
          let pvalues, set_pvalues =
            Pvalue.classification_all_table ~packed_scores ~packed_labels:t.packed_labels
              ~entry_scores ~entry_labels:t.entry_labels ~selection ~test_scores
              ~n_classes ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues
            ~discrete:fn.Nonconformity.cls_discrete ~config:t.cfg
            ~expert:fn.Nonconformity.cls_name ~pvalues ~predicted ())
        t.committee t.committee_scores
    in
    {
      predicted;
      proba;
      experts;
      drifted = Scores.committee_decision ~config:t.cfg experts;
      mean_credibility = mean_of (fun v -> v.Scores.credibility) experts;
      mean_confidence = mean_of (fun v -> v.Scores.confidence) experts;
    }

  let evaluate_core t x = evaluate_with_dists t x (Calibration.query_distances_cls t.calibration (standardize t x))

  (* Instrumentation never changes the verdict: the uninstrumented arm
     is [eval] itself, and the instrumented arm only reads the finished
     verdict — batch and sequential stay bit-identical. *)
  let instrumented t eval x =
    match t.tel with
    | None -> eval x
    | Some tel ->
        let t0 = Prom_obs.now () in
        let v = eval x in
        Prom_obs.Histogram.observe tel.Telemetry.eval_latency (Prom_obs.now () -. t0);
        Prom_obs.Counter.inc tel.Telemetry.queries_total;
        Prom_obs.Counter.inc
          (if v.drifted then tel.Telemetry.rejected_total
           else tel.Telemetry.accepted_total);
        List.iteri
          (fun i e ->
            if e.Scores.flags_drift then Prom_obs.Counter.inc t.expert_flags.(i))
          v.experts;
        v

  let evaluate t x = instrumented t (evaluate_core t) x

  let predict t x =
    let v = evaluate t x in
    (v.predicted, v.drifted)

  (* One pool task: distances for the whole tile come from a single
     cache-blocked kernel call, then each query is evaluated from its
     view. Block cells equal the per-query scan's cells bit for bit, so
     the tile's verdicts match sequential evaluation exactly. The tile
     reads its slice of [xs] in place — no per-task [Array.sub]. *)
  let evaluate_tile t xs lo len =
    let feats = Array.init len (fun i -> standardize t xs.(lo + i)) in
    let views = Calibration.query_distances_block_cls t.calibration feats in
    Array.init len (fun i ->
        instrumented t (fun x -> evaluate_with_dists t x views.(i)) xs.(lo + i))

  (* Queries are independent, so a batch fans across the pool in
     deterministic tiles; with the default 1-domain pool this is a
     plain sequential map, and the per-element results are identical
     either way (no RNG or shared mutable state on the query path).
     Tiles blit into one preallocated result instead of the former
     [Array.concat (Array.to_list ...)] flatten. *)
  let evaluate_batch ?pool t xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let ntiles = (n + batch_tile - 1) / batch_tile in
      let tiles =
        Pool.init ?pool ~min_chunk:1 ntiles (fun ti ->
            let lo = ti * batch_tile in
            evaluate_tile t xs lo (Stdlib.min batch_tile (n - lo)))
      in
      let out = Array.make n tiles.(0).(0) in
      Array.iteri
        (fun ti tile -> Array.blit tile 0 out (ti * batch_tile) (Array.length tile))
        tiles;
      out
    end

  let predict_batch ?pool t xs =
    Array.map (fun v -> (v.predicted, v.drifted)) (evaluate_batch ?pool t xs)

  let prediction_sets t x =
    let proba = t.model.Model.predict_proba x in
    let feats = Calibration.standardize_cls t.calibration (t.feature_of x) in
    let selected =
      Calibration.select_subset ~tau:t.calibration.Calibration.tau
        ~featmat:t.calibration.Calibration.feat_matrix
        ~entry_weights:t.calibration.Calibration.ent_weights ~config:t.cfg
        t.calibration.Calibration.entries
        ~feature_of_entry:(fun e -> e.Calibration.features)
        feats
    in
    List.map
      (fun fn ->
        let pvalues =
          Pvalue.classification_all ~smooth:false ~fn ~selected ~proba
            ~n_classes:t.model.Model.n_classes ()
        in
        ( fn.Nonconformity.cls_name,
          Scores.prediction_set ~epsilon:t.cfg.Config.epsilon pvalues ))
      t.committee
end

type reg_verdict = {
  predicted_value : float;
  cluster : int;
  knn_estimate : float;
  reg_experts : Scores.expert_verdict list;
  reg_drifted : bool;
  reg_mean_credibility : float;
  reg_mean_confidence : float;
}

module Regression = struct
  type t = {
    cfg : Config.t;
    committee : Nonconformity.reg list;
    (* Per committee member, each calibration entry's residual score
       (with the same spread floor the evaluate loop applies) paired
       with its packed-order twin — precomputed once, see
       {!Classification.t.committee_scores}. *)
    committee_scores : (float array * float array) list;
    (* entry_clusters.(i) = rentries.(i).cluster, plus the packed-order
       twin — see {!Classification.t.entry_labels}. *)
    entry_clusters : int array;
    packed_clusters : int array;
    model : Model.regressor;
    feature_of : Vec.t -> Vec.t;
    calibration : Calibration.reg;
    tel : Telemetry.t option;
    (* See {!Classification.t.expert_flags}. *)
    expert_flags : Prom_obs.Counter.t array;
  }

  let spread_floor e = Stdlib.max e.Calibration.rspread 1e-6

  let entry_scores_of committee (calibration : Calibration.reg) =
    List.map
      (fun fn ->
        Array.map
          (fun e ->
            fn.Nonconformity.reg_score ~pred:e.Calibration.rpred
              ~truth:e.Calibration.rproxy ~spread:(spread_floor e))
          calibration.Calibration.rentries)
      committee

  (* See {!Classification.tables_of}. The packed cluster table is the
     calibration store's own sidecar (built against the same index
     value), so only the committee scores are permuted here. *)
  let tables_of committee (calibration : Calibration.reg) =
    let entry_scores = entry_scores_of committee calibration in
    let entry_clusters =
      Array.map (fun e -> e.Calibration.cluster) calibration.Calibration.rentries
    in
    match Calibration.index_of_reg calibration with
    | None -> (List.map (fun s -> (s, [||])) entry_scores, entry_clusters, [||])
    | Some ix ->
        let order = Knn_index.member_order ix in
        ( List.map (fun s -> (s, Array.map (fun i -> s.(i)) order)) entry_scores,
          entry_clusters,
          calibration.Calibration.rpk_clusters )

  let create ?(config = Config.default)
      ?(committee = Nonconformity.default_reg_committee) ?n_clusters ?telemetry ~model
      ~feature_of ~seed calibration =
    Config.validate config;
    if committee = [] then invalid_arg "Detector.Regression.create: empty committee";
    let calibration =
      Calibration.prepare_regression ?n_clusters ~config ~model ~feature_of ~seed
        calibration
    in
    let committee_scores, entry_clusters, packed_clusters = tables_of committee calibration in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.reg_name)
               committee)
    in
    (match telemetry with
    | Some tel -> Calibration.set_index_metrics_reg calibration (Telemetry.index_metrics tel)
    | None -> ());
    { cfg = config; committee; committee_scores; entry_clusters; packed_clusters; model;
      feature_of; calibration; tel = telemetry; expert_flags }

  (* See {!Classification.of_calibration}. *)
  let of_calibration ?(config = Config.default)
      ?(committee = Nonconformity.default_reg_committee) ?telemetry ~model ~feature_of
      calibration =
    Config.validate config;
    if committee = [] then
      invalid_arg "Detector.Regression.of_calibration: empty committee";
    let committee_scores, entry_clusters, packed_clusters = tables_of committee calibration in
    let expert_flags =
      match telemetry with
      | None -> [||]
      | Some tel ->
          Array.of_list
            (List.map
               (fun fn -> Telemetry.expert_flag_counter tel fn.Nonconformity.reg_name)
               committee)
    in
    (match telemetry with
    | Some tel -> Calibration.set_index_metrics_reg calibration (Telemetry.index_metrics tel)
    | None -> ());
    { cfg = config; committee; committee_scores; entry_clusters; packed_clusters; model;
      feature_of; calibration; tel = telemetry; expert_flags }

  let config t = t.cfg
  let model t = t.model
  let committee t = t.committee
  let calibration t = t.calibration
  let n_clusters t = t.calibration.Calibration.n_clusters

  let with_config t config =
    Config.validate config;
    { t with cfg = config }

  let standardize t x = Calibration.standardize_reg t.calibration (t.feature_of x)

  (* See {!Classification.admit}: samples are labelled against the
     pre-append store inside [Calibration.append_reg] (nearest-cluster
     and kNN ground-truth proxy exactly as a test query would be), so
     the batch's entries are order-independent. *)
  let admit t samples =
    if Array.length samples = 0 then t
    else begin
      let prepared =
        Array.map (fun (x, y) -> (standardize t x, y, t.model.Model.predict x)) samples
      in
      let calibration = Calibration.append_reg t.calibration prepared in
      (match t.tel with
      | Some tel ->
          Calibration.set_index_metrics_reg calibration (Telemetry.index_metrics tel)
      | None -> ());
      let committee_scores, entry_clusters, packed_clusters = tables_of t.committee calibration in
      { t with calibration; committee_scores; entry_clusters; packed_clusters }
    end

  (* Evaluate one query from its shared distance view. The former
     [evaluate_core] scanned the calibration matrix four times per
     query — kNN ground-truth proxy, cluster argmin, Eq. 1 selection
     and the conformal distance test; all four now read the one buffer
     [dists] points at, with each consumer replaying the independent
     scan's arithmetic exactly, so verdicts are bit-identical. *)
  let evaluate_with_dists t x dists =
    let predicted_value = t.model.Model.predict x in
    let knn_estimate, knn_spread =
      Calibration.knn_truth_dists t.calibration dists ~k:t.cfg.Config.knn_k
    in
    let cluster = Calibration.assign_cluster_dists t.calibration dists in
    let selection =
      Calibration.select_packed_dists ~tau:t.calibration.Calibration.rtau
        ~entry_weights:t.calibration.Calibration.rent_weights
        ~packed_weights:t.calibration.Calibration.rpk_weights ~config:t.cfg dists
    in
    let n_clusters = t.calibration.Calibration.n_clusters in
    let distance_pvalue = Calibration.distance_pvalue_reg_dists t.calibration dists in
    let reg_experts =
      List.map2
        (fun fn (entry_scores, packed_scores) ->
          let test_score =
            fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
              ~spread:(Stdlib.max knn_spread 1e-6)
          in
          let pvalues, set_pvalues =
            Pvalue.regression_all_table ~packed_scores
              ~packed_clusters:t.packed_clusters ~entry_scores
              ~entry_clusters:t.entry_clusters ~selection ~n_clusters ~test_score ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues ~use_confidence:false
            ~config:t.cfg ~expert:fn.Nonconformity.reg_name ~pvalues ~predicted:cluster ())
        t.committee t.committee_scores
    in
    {
      predicted_value;
      cluster;
      knn_estimate;
      reg_experts;
      reg_drifted = Scores.committee_decision ~config:t.cfg reg_experts;
      reg_mean_credibility = mean_of (fun v -> v.Scores.credibility) reg_experts;
      reg_mean_confidence = mean_of (fun v -> v.Scores.confidence) reg_experts;
    }

  let evaluate_core t x =
    evaluate_with_dists t x (Calibration.query_distances_reg t.calibration (standardize t x))

  (* See {!Classification.instrumented}. *)
  let instrumented t eval x =
    match t.tel with
    | None -> eval x
    | Some tel ->
        let t0 = Prom_obs.now () in
        let v = eval x in
        Prom_obs.Histogram.observe tel.Telemetry.eval_latency (Prom_obs.now () -. t0);
        Prom_obs.Counter.inc tel.Telemetry.queries_total;
        Prom_obs.Counter.inc
          (if v.reg_drifted then tel.Telemetry.rejected_total
           else tel.Telemetry.accepted_total);
        List.iteri
          (fun i e ->
            if e.Scores.flags_drift then Prom_obs.Counter.inc t.expert_flags.(i))
          v.reg_experts;
        v

  let evaluate t x = instrumented t (evaluate_core t) x

  let predict t x =
    let v = evaluate t x in
    (v.predicted_value, v.reg_drifted)

  (* See {!Classification.evaluate_tile}. *)
  let evaluate_tile t xs lo len =
    let feats = Array.init len (fun i -> standardize t xs.(lo + i)) in
    let views = Calibration.query_distances_block_reg t.calibration feats in
    Array.init len (fun i ->
        instrumented t (fun x -> evaluate_with_dists t x views.(i)) xs.(lo + i))

  (* See {!Classification.evaluate_batch}. *)
  let evaluate_batch ?pool t xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let ntiles = (n + batch_tile - 1) / batch_tile in
      let tiles =
        Pool.init ?pool ~min_chunk:1 ntiles (fun ti ->
            let lo = ti * batch_tile in
            evaluate_tile t xs lo (Stdlib.min batch_tile (n - lo)))
      in
      let out = Array.make n tiles.(0).(0) in
      Array.iteri
        (fun ti tile -> Array.blit tile 0 out (ti * batch_tile) (Array.length tile))
        tiles;
      out
    end

  let predict_batch ?pool t xs =
    Array.map (fun v -> (v.predicted_value, v.reg_drifted)) (evaluate_batch ?pool t xs)

  let interval t x =
    let predicted_value = t.model.Model.predict x in
    let dists = Calibration.query_distances_reg t.calibration (standardize t x) in
    let selection =
      Calibration.select_packed_dists ~tau:t.calibration.Calibration.rtau
        ~entry_weights:t.calibration.Calibration.rent_weights
        ~packed_weights:t.calibration.Calibration.rpk_weights ~config:t.cfg dists
    in
    (* Weighted (1 - epsilon) quantile of absolute residuals against the
       true calibration targets; the sort and accumulation now run in
       reusable workspace instead of a per-call tuple array. *)
    let q =
      Calibration.weighted_residual_quantile t.calibration selection
        ~epsilon:t.cfg.Config.epsilon
    in
    (predicted_value -. q, predicted_value +. q)

  let cluster_sets t x =
    let predicted_value = t.model.Model.predict x in
    let feats = Calibration.standardize_reg t.calibration (t.feature_of x) in
    let knn_estimate, knn_spread =
      Calibration.knn_truth t.calibration feats ~k:t.cfg.Config.knn_k
    in
    let selected =
      Calibration.select_subset ~tau:t.calibration.Calibration.rtau
        ~featmat:t.calibration.Calibration.rfeat_matrix
        ~entry_weights:t.calibration.Calibration.rent_weights ~config:t.cfg
        t.calibration.Calibration.rentries
        ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
        feats
    in
    let spread_of_entry e = Stdlib.max e.Calibration.rspread 1e-6 in
    let n_clusters = t.calibration.Calibration.n_clusters in
    List.map
      (fun fn ->
        let test_score =
          fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
            ~spread:(Stdlib.max knn_spread 1e-6)
        in
        let pvalues =
          Pvalue.regression_all ~smooth:false ~fn ~selected ~spread_of_entry ~n_clusters
            ~test_score ()
        in
        ( fn.Nonconformity.reg_name,
          Scores.prediction_set ~epsilon:t.cfg.Config.epsilon pvalues ))
      t.committee
end
