open Prom_ml

type 'label outcome = {
  updated_model : 'label;
  flagged_indices : int list;
  relabeled_indices : int list;
  budget : int;
}

(* Rank flagged samples by ascending credibility so the most drifted
   ones are relabeled first, and clip to the budget. *)
(* A handful of relabeled samples would drown in the original training
   set, so each is replicated until it carries roughly 2% of the
   training weight (capped at 10 copies) — simple oversampling, the
   usual trick for low-budget incremental updates. *)
let oversample ~train_size (extra : 'a Dataset.t) =
  let copies = Stdlib.max 1 (Stdlib.min 10 (train_size / 50)) in
  let rec repeat acc k = if k = 0 then acc else repeat (Dataset.append acc extra) (k - 1) in
  repeat extra (copies - 1)

let pick_budget ~budget_fraction flagged =
  let sorted = List.sort (fun (_, c1) (_, c2) -> Float.compare c1 c2) flagged in
  let budget =
    match flagged with
    | [] -> 0
    | _ ->
        Stdlib.max 1
          (int_of_float (budget_fraction *. float_of_int (List.length flagged)))
  in
  (budget, List.filteri (fun i _ -> i < budget) sorted |> List.map fst)

let record_round ~telemetry ~flagged ~chosen =
  match telemetry with
  | None -> ()
  | Some tel ->
      Prom_obs.Counter.add tel.Telemetry.flagged_total
        (float_of_int (List.length flagged));
      Prom_obs.Counter.add tel.Telemetry.relabeled_total
        (float_of_int (List.length chosen));
      if chosen <> [] then Prom_obs.Counter.inc tel.Telemetry.retrain_total

(* One feedback round: flag, pick the budget, relabel, retrain. Also
   surfaces the relabeled pairs so the [_admitting] variants can fold
   them into the serving detector's calibration store. The oracle runs
   only over the chosen samples (none when nothing is flagged). *)
let classification_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data
    ~oracle inputs =
  let flagged = ref [] in
  Array.iteri
    (fun i x ->
      let v = Detector.Classification.evaluate detector x in
      if v.Detector.drifted then begin
        (* Rank by how far out of distribution and how incredible the
           prediction is: the most drifted samples are relabeled first. *)
        let dist_p =
          match v.Detector.experts with
          | e :: _ -> e.Scores.distance_pvalue
          | [] -> 1.0
        in
        flagged := (i, v.Detector.mean_credibility +. dist_p) :: !flagged
      end)
    inputs;
  let flagged = List.rev !flagged in
  let budget, chosen = pick_budget ~budget_fraction flagged in
  record_round ~telemetry ~flagged ~chosen;
  let new_x = Array.of_list (List.map (fun i -> inputs.(i)) chosen) in
  let new_y = Array.map oracle new_x in
  let updated_model =
    match chosen with
    | [] -> Detector.Classification.model detector
    | _ ->
        let augmented =
          Dataset.append train_data
            (oversample ~train_size:(Dataset.length train_data)
               (Dataset.create new_x new_y))
        in
        trainer.Model.train ?init:(Some (Detector.Classification.model detector))
          augmented
  in
  ( {
      updated_model;
      flagged_indices = List.map fst flagged;
      relabeled_indices = chosen;
      budget;
    },
    new_x,
    new_y )

let classification ?(budget_fraction = 0.05) ?telemetry ~detector ~trainer ~train_data
    ~oracle inputs =
  let outcome, _, _ =
    classification_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data
      ~oracle inputs
  in
  outcome

let classification_admitting ?(budget_fraction = 0.05) ?telemetry ~detector ~trainer
    ~train_data ~oracle inputs =
  let outcome, new_x, new_y =
    classification_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data
      ~oracle inputs
  in
  let detector =
    Detector.Classification.admit detector
      (Array.map2 (fun x y -> (x, y)) new_x new_y)
  in
  (outcome, detector)

(* The streaming variant closes the loop without a model retrain: the
   committee's rejects are ranked and budget-clipped exactly like
   [classification_round], but the relabeled samples go straight into
   the stream's sliding-window calibration store ([Stream.admit]), which
   republishes the serving engine after each admission. The host owns
   the model, so [updated_model] is unit. *)
let service_round ?(budget_fraction = 0.05) ?telemetry ?monitor ?pool ~stream ~oracle
    queries =
  let verdicts = Service.evaluate_batch ?pool (Stream.service stream) queries in
  let flagged = ref [] in
  Array.iteri
    (fun i (v : Detector.cls_verdict) ->
      (match monitor with
      | Some m -> ignore (Monitor.observe m ~drifted:v.Detector.drifted)
      | None -> ());
      if v.Detector.drifted then begin
        let dist_p =
          match v.Detector.experts with
          | e :: _ -> e.Scores.distance_pvalue
          | [] -> 1.0
        in
        flagged := (i, v.Detector.mean_credibility +. dist_p) :: !flagged
      end)
    verdicts;
  let flagged = List.rev !flagged in
  let budget, chosen = pick_budget ~budget_fraction flagged in
  record_round ~telemetry ~flagged ~chosen;
  List.iter
    (fun i ->
      let features, proba = queries.(i) in
      Stream.admit stream ~features ~label:(oracle features) ~proba)
    chosen;
  {
    updated_model = ();
    flagged_indices = List.map fst flagged;
    relabeled_indices = chosen;
    budget;
  }

let regression_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data ~oracle
    inputs =
  let flagged = ref [] in
  Array.iteri
    (fun i x ->
      let v = Detector.Regression.evaluate detector x in
      if v.Detector.reg_drifted then begin
        let dist_p =
          match v.Detector.reg_experts with
          | e :: _ -> e.Scores.distance_pvalue
          | [] -> 1.0
        in
        flagged := (i, v.Detector.reg_mean_credibility +. dist_p) :: !flagged
      end)
    inputs;
  let flagged = List.rev !flagged in
  let budget, chosen = pick_budget ~budget_fraction flagged in
  record_round ~telemetry ~flagged ~chosen;
  let new_x = Array.of_list (List.map (fun i -> inputs.(i)) chosen) in
  let new_y = Array.map oracle new_x in
  let updated_model =
    match chosen with
    | [] -> Detector.Regression.model detector
    | _ ->
        let augmented =
          Dataset.append train_data
            (oversample ~train_size:(Dataset.length train_data)
               (Dataset.create new_x new_y))
        in
        trainer.Model.train_reg ?init:(Some (Detector.Regression.model detector))
          augmented
  in
  ( {
      updated_model;
      flagged_indices = List.map fst flagged;
      relabeled_indices = chosen;
      budget;
    },
    new_x,
    new_y )

let regression ?(budget_fraction = 0.05) ?telemetry ~detector ~trainer ~train_data
    ~oracle inputs =
  let outcome, _, _ =
    regression_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data ~oracle
      inputs
  in
  outcome

let regression_admitting ?(budget_fraction = 0.05) ?telemetry ~detector ~trainer
    ~train_data ~oracle inputs =
  let outcome, new_x, new_y =
    regression_round ~budget_fraction ~telemetry ~detector ~trainer ~train_data ~oracle
      inputs
  in
  let detector =
    Detector.Regression.admit detector (Array.map2 (fun x y -> (x, y)) new_x new_y)
  in
  (outcome, detector)
