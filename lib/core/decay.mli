(** Decay policies for streaming weighted conformal calibration.

    Under distribution shift the calibration set itself goes stale;
    "Conformal prediction beyond exchangeability" (Barber, Candès,
    Ramdas & Tibshirani) keeps approximate coverage by down-weighting
    old calibration samples in the conformal rank sums. A policy maps a
    sample's {e age} — how many admissions ago it entered the sliding
    window — to a weight in [0, 1]; the streaming store
    ({!Stream}) recomputes the weight vector on every admission and
    folds it into the calibration store with
    {!Calibration.reweight_cls}. *)

(** The three policies of the streaming store. [Unit_weights] assigns
    every resident entry weight 1 — bit-identical to the unweighted
    pipeline. [Exponential] halves a sample's weight every [half_life]
    admissions. [Sliding] keeps weight 1 inside the last [window]
    admissions and 0 beyond — hard forgetting; expired entries stay
    resident at weight 0 until the store compacts them away. *)
type policy =
  | Unit_weights
  | Exponential of { half_life : float }
  | Sliding of { window : int }

(** [validate p] raises [Invalid_argument] on a non-positive half-life
    or window. *)
val validate : policy -> unit

(** [weight p ~scale ~age] is the weight of a sample [age] admissions
    old. [scale] in (0, 1] shrinks the policy's horizon (half-life or
    window) — the monitor escalates drift by lowering it, so a
    degrading deployment forgets faster without changing policy.
    Raises [Invalid_argument] on a negative age or a scale outside
    (0, 1]. *)
val weight : policy -> scale:float -> age:int -> float

(** [is_unit p] is true for [Unit_weights] — the streaming store skips
    reweighting entirely then, keeping the serving path on the
    unweighted (bit-identical) arithmetic. *)
val is_unit : policy -> bool

(** [to_string p] is the spec syntax [none | exp:H | window:N] —
    inverse of {!of_string}, used by the [PROM_STREAM_DECAY]
    environment knob and the CLI. *)
val to_string : policy -> string

(** [of_string s] parses the spec syntax; [None] on anything
    malformed or non-positive. *)
val of_string : string -> policy option

(** The streaming store's persisted window state: resident admission
    sequences plus the policy and its current drift scale — everything
    needed to resume the ingestion loop with the exact weights it was
    publishing. Serialized in snapshot codec v3. *)
type window_state = {
  ws_policy : policy;
  ws_capacity : int;  (** hard bound on resident entries *)
  ws_compact_fraction : float;
      (** expired fraction that triggers compaction, in (0, 1] *)
  ws_scale : float;  (** drift-driven horizon shrink currently applied *)
  ws_seqs : int array;  (** admission sequence of each resident entry *)
  ws_next_seq : int;  (** next admission sequence to hand out *)
}

(** [validate_window ws] raises [Invalid_argument] on any
    out-of-range field (sequences must sit in [0, ws_next_seq)). *)
val validate_window : window_state -> unit
