type status = Healthy | Degrading | Ageing

type t = {
  window : int;
  threshold : float;
  patience : int;
  buffer : bool array;  (* ring buffer of the last [window] verdicts *)
  mutable filled : int;
  mutable head : int;
  mutable drifted_in_window : int;
  (* Consecutive observations (window full) with the rate at or above
     threshold. Escalation derives window counts from this streak, so it
     cannot depend on how the drift burst aligns with [total]. *)
  mutable above_streak : int;
  mutable consecutive_degrading : int;
  mutable total : int;
  mutable current : status;
  tel : Telemetry.t option;
}

let status_index = function Healthy -> 0.0 | Degrading -> 1.0 | Ageing -> 2.0

let create ?(window = 50) ?(threshold = 0.5) ?(patience = 3) ?telemetry () =
  if window <= 0 then invalid_arg "Monitor.create: window must be positive";
  if threshold <= 0.0 || threshold > 1.0 then
    invalid_arg "Monitor.create: threshold outside (0,1]";
  if patience <= 0 then invalid_arg "Monitor.create: patience must be positive";
  {
    window;
    threshold;
    patience;
    buffer = Array.make window false;
    filled = 0;
    head = 0;
    drifted_in_window = 0;
    above_streak = 0;
    consecutive_degrading = 0;
    total = 0;
    current = Healthy;
    tel = telemetry;
  }

let drift_rate t =
  if t.filled = 0 then 0.0
  else float_of_int t.drifted_in_window /. float_of_int t.filled

let observe t ~drifted =
  (* Ring-buffer update. *)
  if t.filled = t.window then begin
    if t.buffer.(t.head) then t.drifted_in_window <- t.drifted_in_window - 1
  end
  else t.filled <- t.filled + 1;
  t.buffer.(t.head) <- drifted;
  if drifted then t.drifted_in_window <- t.drifted_in_window + 1;
  t.head <- (t.head + 1) mod t.window;
  t.total <- t.total + 1;
  let before = t.current in
  (* Escalation: the window must be full before a rate is trusted, and
     the rate must stay high for [patience] full windows' worth of
     observations. The streak counts observations, not window-aligned
     ticks, so a drift burst starting mid-window escalates after exactly
     [patience * window] persistent samples regardless of phase. *)
  if t.filled = t.window && drift_rate t >= t.threshold then begin
    t.above_streak <- t.above_streak + 1;
    t.consecutive_degrading <- ((t.above_streak - 1) / t.window) + 1;
    t.current <-
      (if t.consecutive_degrading >= t.patience then Ageing else Degrading)
  end
  else if drift_rate t < t.threshold then begin
    t.above_streak <- 0;
    t.consecutive_degrading <- 0;
    if t.current <> Ageing then t.current <- Healthy
  end;
  (match t.tel with
  | Some tel ->
      Prom_obs.Gauge.set tel.Telemetry.drift_rate (drift_rate t);
      Prom_obs.Gauge.set tel.Telemetry.monitor_status (status_index t.current);
      if t.current <> before then
        Prom_obs.Counter.inc tel.Telemetry.status_transitions
  | None -> ());
  t.current

let status t = t.current
let observed t = t.total

let reset t =
  Array.fill t.buffer 0 t.window false;
  t.filled <- 0;
  t.head <- 0;
  t.drifted_in_window <- 0;
  t.above_streak <- 0;
  t.consecutive_degrading <- 0;
  t.total <- 0;
  t.current <- Healthy;
  match t.tel with
  | Some tel ->
      Prom_obs.Gauge.set tel.Telemetry.drift_rate 0.0;
      Prom_obs.Gauge.set tel.Telemetry.monitor_status (status_index Healthy)
  | None -> ()

let status_to_string = function
  | Healthy -> "healthy"
  | Degrading -> "degrading"
  | Ageing -> "ageing"

type persisted = {
  p_window : int;
  p_threshold : float;
  p_patience : int;
  p_buffer : bool array;
  p_filled : int;
  p_head : int;
  p_drifted_in_window : int;
  p_above_streak : int;
  p_consecutive_degrading : int;
  p_total : int;
  p_status : status;
}

let persist t =
  {
    p_window = t.window;
    p_threshold = t.threshold;
    p_patience = t.patience;
    p_buffer = Array.copy t.buffer;
    p_filled = t.filled;
    p_head = t.head;
    p_drifted_in_window = t.drifted_in_window;
    p_above_streak = t.above_streak;
    p_consecutive_degrading = t.consecutive_degrading;
    p_total = t.total;
    p_status = t.current;
  }

let restore ?telemetry p =
  if p.p_window <= 0 then invalid_arg "Monitor.restore: window must be positive";
  if p.p_threshold <= 0.0 || p.p_threshold > 1.0 then
    invalid_arg "Monitor.restore: threshold outside (0,1]";
  if p.p_patience <= 0 then invalid_arg "Monitor.restore: patience must be positive";
  if Array.length p.p_buffer <> p.p_window then
    invalid_arg "Monitor.restore: buffer/window size mismatch";
  if p.p_filled < 0 || p.p_filled > p.p_window then
    invalid_arg "Monitor.restore: filled out of range";
  if p.p_head < 0 || p.p_head >= p.p_window then
    invalid_arg "Monitor.restore: head out of range";
  if p.p_drifted_in_window < 0 || p.p_drifted_in_window > p.p_filled then
    invalid_arg "Monitor.restore: drifted count out of range";
  if p.p_above_streak < 0 || p.p_consecutive_degrading < 0 || p.p_total < 0 then
    invalid_arg "Monitor.restore: negative counter";
  let t =
    {
      window = p.p_window;
      threshold = p.p_threshold;
      patience = p.p_patience;
      buffer = Array.copy p.p_buffer;
      filled = p.p_filled;
      head = p.p_head;
      drifted_in_window = p.p_drifted_in_window;
      above_streak = p.p_above_streak;
      consecutive_degrading = p.p_consecutive_degrading;
      total = p.p_total;
      current = p.p_status;
      tel = telemetry;
    }
  in
  (match telemetry with
  | Some tel ->
      Prom_obs.Gauge.set tel.Telemetry.drift_rate (drift_rate t);
      Prom_obs.Gauge.set tel.Telemetry.monitor_status (status_index t.current)
  | None -> ());
  t
