(** Integration surface for non-OCaml hosts (paper Sec. 8,
    "Integration with non-Python environments"): the paper ships a
    pybind11 entry point that takes a prediction's probability vector
    (plus the input's feature vector) and returns a boolean accept/
    reject. This module is the same idea for embedding PROM into a
    compiler written in another language: the host keeps its own model
    and inference; PROM only sees intermediate results.

    Unlike {!Detector}, a [Service.t] is built from raw calibration
    outputs — (feature vector, label, probability vector) triples — so
    the host never has to expose a callable model. *)

open Prom_linalg

type t

(** [create ?config ?committee ?telemetry calibration] builds the
    service from preprocessed calibration triples. Raises
    [Invalid_argument] on an empty list or inconsistent dimensions.
    [telemetry] instruments the underlying detector and the batch
    entry point (batch sizes, collision rebinds). *)
val create :
  ?config:Config.t ->
  ?committee:Nonconformity.cls list ->
  ?telemetry:Telemetry.t ->
  (Vec.t * int * Vec.t) list ->
  t

(** [of_snapshot ?telemetry s] rebuilds a service from a classification
    snapshot, skipping the expensive calibration preparation; verdicts
    are bit-identical to the service the snapshot was taken from.
    Raises [Invalid_argument] on a regression snapshot. *)
val of_snapshot : ?telemetry:Telemetry.t -> Snapshot.t -> t

(** [swap ?store_generation t s] atomically replaces the serving
    detector with one rebuilt from [s] — the hot-swap a background
    retrain uses. In-flight queries finish against the engine they
    started with; queries arriving after the swap see the new one. No
    query is ever blocked or failed by a swap. [store_generation] (the
    snapshot's {!Prom_store.Store.info.generation}) updates the
    [prom_snapshot_generation] gauge when telemetry is attached.
    Raises [Invalid_argument] on a regression snapshot. *)
val swap : ?store_generation:int -> t -> Snapshot.t -> unit

(** [generation t] counts successful {!swap}s: 0 for the engine the
    service was built with, incremented on every swap. Exported as the
    [prom_service_swaps_total] counter when telemetry is attached. *)
val generation : t -> int

(** [dims t] is [(feature_dim, n_classes)] of the engine currently
    serving — the shape a query's [features] and [proba] vectors must
    have. Network front-ends validate against this before enqueueing,
    so a malformed request is rejected instead of failing a batch. *)
val dims : t -> int * int

(** [snapshot t] captures the current serving state (with the model
    slot marked external — the host owns the real model). Restore with
    {!of_snapshot} or {!swap}. *)
val snapshot : t -> Snapshot.t

(** [evaluate_batch ?pool t queries] evaluates a batch of
    (features, probability vector) pairs, fanned across the domain pool
    in deterministic chunks. Results are element-for-element identical
    to evaluating each query alone — including when several queries
    carry value-equal feature vectors with different probability
    vectors: colliding queries are evaluated in separate rounds, each
    against its own probability vector, matching the single-query path
    (which keys the in-flight query by physical identity). *)
val evaluate_batch :
  ?pool:Prom_parallel.Pool.t ->
  t ->
  (Vec.t * Vec.t) array ->
  Detector.cls_verdict array

(** [should_accept_batch ?pool t queries] — batched
    {!should_accept}. *)
val should_accept_batch :
  ?pool:Prom_parallel.Pool.t -> t -> (Vec.t * Vec.t) array -> bool array

(** [should_accept t ~features ~proba] is [true] when the committee
    accepts the prediction whose probability vector is [proba] for the
    input embedded at [features] — the single boolean the host needs. *)
val should_accept : t -> features:Vec.t -> proba:Vec.t -> bool

(** [scores t ~features ~proba] returns
    [(credibility, confidence, distance_pvalue)] averaged over the
    committee, for hosts that want the raw numbers. *)
val scores : t -> features:Vec.t -> proba:Vec.t -> float * float * float
