(** Nonconformity functions — the "experts" of PROM's committee
    (paper Sec. 5.1.1 and supplemental Table 4).

    A classification nonconformity function maps a model's probability
    vector and a candidate label to a score; {i higher} means the label
    is {i stranger} for that input. PROM ships the four defaults from
    the paper (LAC, TopK, APS, RAPS); new functions are ordinary values
    of {!cls}, so extending the committee needs no new types.

    Regression functions score the deviation between a prediction and a
    (possibly approximated) ground truth. *)

open Prom_linalg

type cls = {
  cls_name : string;
  cls_score : proba:Vec.t -> label:int -> float;
      (** nonconformity of assigning [label] given the model's
          probability vector *)
  cls_discrete : bool;
      (** true when the score takes few distinct values (e.g. TopK's
          integer ranks), which makes small prediction sets too coarse
          to treat as uncertainty evidence *)
}

(** [lac] — least ambiguous set-valued classifier score:
    [1 - p(label)]. *)
val lac : cls

(** [topk] — the rank of [label] when probabilities are sorted
    descending (0 = most probable). *)
val topk : cls

(** [aps] — adaptive prediction sets: cumulative probability mass of
    labels strictly more probable than [label] (0 for the top label, so
    confident predictions conform). *)
val aps : cls

(** [raps ?lambda ?k_reg ()] — regularized APS, penalizing deep ranks
    by [lambda * max 0 (rank + 1 - k_reg)]. Defaults: [lambda = 0.1],
    [k_reg = 2]. *)
val raps : ?lambda:float -> ?k_reg:int -> unit -> cls

(** The paper's default committee: [LAC; TopK; APS; RAPS]. *)
val default_committee : cls list

type reg = {
  reg_name : string;
  reg_score : pred:float -> truth:float -> spread:float -> float;
      (** nonconformity of a prediction against an (approximate) truth;
          [spread] is a scale estimate of the neighbourhood used to
          normalize (1.0 when unavailable) *)
}

(** [absolute_residual] — [|pred - truth|]. *)
val absolute_residual : reg

(** [squared_residual] — [(pred - truth)^2]. *)
val squared_residual : reg

(** [normalized_residual] — [|pred - truth| / (spread + 1e-6)]. *)
val normalized_residual : reg

(** [log_residual] — [log (1 + |pred - truth|)], compressing heavy
    tails. *)
val log_residual : reg

(** The default regression committee (4 experts, mirroring
    classification). *)
val default_reg_committee : reg list

(** {2 Extension functions}

    Beyond the paper's four defaults, these ready-to-use experts can be
    added to a committee (Sec. 5.1.1: "other nonconformity functions can
    be easily incorporated"). *)

(** [margin] — 1 minus the gap between the top two probabilities when
    scoring the top label (ambiguity), 1 plus the gap otherwise. *)
val margin : cls

(** [entropy] — the normalized Shannon entropy of the probability
    vector, independent of the label (a pure uncertainty expert);
    offset by the label's rank so it still orders labels. *)
val entropy : cls

(** [extended_committee] — the default four plus [margin] and
    [entropy]. *)
val extended_committee : cls list

(** {2 Name resolution}

    Snapshots persist committees as expert names; these lookups resolve
    the built-in experts (with default parameters) at restore time.
    Custom experts — arbitrary closures — cannot round-trip through a
    snapshot and yield [None]. *)

(** [cls_by_name name] resolves a built-in classification expert
    ([LAC], [TopK], [APS], [RAPS], [Margin], [Entropy]). *)
val cls_by_name : string -> cls option

(** [reg_by_name name] resolves a built-in regression expert
    ([AbsRes], [SqRes], [NormRes], [LogRes]). *)
val reg_by_name : string -> reg option
