(** A fixed pool of OCaml 5 domains with deterministic, chunked
    data-parallel array operations — the engine behind PROM's batched
    inference path.

    All operations are deterministic: the index range is split into
    chunks computed from the input length alone, each chunk writes its
    own slot, and results are concatenated in chunk order, so output is
    independent of scheduling. Pools of size 1 (and inputs at or below
    [min_chunk]) run sequentially with no synchronization. *)

type t

(** [create n] spawns a pool with total parallelism [n] (the calling
    domain counts as one; [n - 1] worker domains are spawned). Raises
    [Invalid_argument] when [n < 1]. *)
val create : int -> t

(** Total parallelism of the pool (>= 1). *)
val size : t -> int

(** [shutdown t] drains the queue and joins the workers. The pool must
    not be used afterwards. *)
val shutdown : t -> unit

(** [attach_metrics t registry] registers the pool's instruments on
    [registry] — [prom_pool_tasks_total], [prom_pool_chunk_items],
    [prom_pool_busy_seconds_total] (accumulated in per-domain shards by
    whichever domain runs each chunk) and the [prom_pool_domains]
    gauge — and starts recording. Pools without attached metrics pay a
    single branch per chunk. *)
val attach_metrics : t -> Prom_obs.registry -> unit

(** Name of the environment variable controlling the default pool size:
    ["PROM_NUM_DOMAINS"]. *)
val env_var : string

(** Size the default pool would have: [PROM_NUM_DOMAINS] when set to a
    positive integer, otherwise [Domain.recommended_domain_count ()]. *)
val default_size : unit -> int

(** The shared default pool, created on first use with
    [default_size ()]. *)
val default : unit -> t

(** [run_all t tasks] runs every task to completion on the workers plus
    the calling domain; re-raises the first task exception after all
    tasks finish. Low-level building block. *)
val run_all : t -> (unit -> unit) array -> unit

(** [init ?pool ?min_chunk n f] is [Array.init n f] evaluated in
    parallel chunks. [pool] defaults to {!default}; inputs of at most
    [min_chunk] elements (default 32) run sequentially. Dispatch
    parallelism is clamped to [Domain.recommended_domain_count ()] —
    a pool sized past the hardware (oversubscription) degenerates to
    the sequential loop instead of paying queue and scheduling
    contention; results are identical either way. [f] must be safe to
    call from any domain. *)
val init : ?pool:t -> ?min_chunk:int -> int -> (int -> 'a) -> 'a array

(** [map ?pool ?min_chunk f a] is [Array.map f a] in parallel chunks;
    same defaults and contract as {!init}. *)
val map : ?pool:t -> ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi ?pool ?min_chunk f a] is [Array.mapi f a] in parallel
    chunks. *)
val mapi : ?pool:t -> ?min_chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [iter ?pool ?min_chunk f a] is [Array.iter f a] in parallel chunks;
    [f] must tolerate concurrent calls. *)
val iter : ?pool:t -> ?min_chunk:int -> ('a -> unit) -> 'a array -> unit

(** [iteri ?pool ?min_chunk f a] is [Array.iteri f a] in parallel
    chunks. *)
val iteri : ?pool:t -> ?min_chunk:int -> (int -> 'a -> unit) -> 'a array -> unit
