(* A fixed pool of OCaml 5 domains with deterministic, chunked
   data-parallel operations. The pool exists because spawning domains is
   expensive (~ms) while a detector query is sub-millisecond: workers
   are spawned once and block on a shared queue.

   Determinism: [init]/[map]/[iter] split the index range into
   fixed-size chunks computed from the input length alone, each chunk
   writes to its own slot, and results are concatenated in chunk order —
   so the output never depends on scheduling. *)

type metrics = {
  m_tasks : Prom_obs.Counter.t;
  m_chunk_items : Prom_obs.Histogram.t;
  m_busy : Prom_obs.Counter.t;
}

type t = {
  n_domains : int;  (* total parallelism including the calling domain *)
  mutable workers : unit Domain.t array;  (* n_domains - 1 spawned domains *)
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable metrics : metrics option;
}

let size t = t.n_domains

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopped do
    Condition.wait pool.work_available pool.mutex
  done;
  if Queue.is_empty pool.queue then begin
    (* stopped and drained *)
    Mutex.unlock pool.mutex
  end
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create n_domains =
  if n_domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      n_domains;
      workers = [||];
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      metrics = None;
    }
  in
  pool.workers <-
    Array.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

let env_var = "PROM_NUM_DOMAINS"

let default_size () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* The shared default pool, created on first use. Guarded by a mutex so
   concurrent first uses race safely. *)
let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create (default_size ()) in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool

(* Chunk-size buckets: powers of two up to the largest batches the
   inference path sees. *)
let chunk_buckets = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0 |]

let attach_metrics pool registry =
  let m =
    {
      m_tasks =
        Prom_obs.counter registry ~help:"Chunk tasks executed by the pool"
          "prom_pool_tasks_total";
      m_chunk_items =
        Prom_obs.histogram registry ~help:"Items per chunk task"
          ~buckets:chunk_buckets "prom_pool_chunk_items";
      m_busy =
        Prom_obs.counter registry
          ~help:"Seconds spent executing tasks, summed over domains (per-domain \
                 shards internally)"
          "prom_pool_busy_seconds_total";
    }
  in
  Prom_obs.Gauge.set
    (Prom_obs.gauge registry ~help:"Total parallelism of the pool" "prom_pool_domains")
    (float_of_int pool.n_domains);
  pool.metrics <- Some m

(* [record_chunk] and the busy timer run on whichever domain executes
   the chunk, so the counters land in that domain's shard — the merge at
   snapshot time recovers the totals. *)
let record_chunk pool ~items elapsed =
  match pool.metrics with
  | None -> ()
  | Some m ->
      Prom_obs.Counter.inc m.m_tasks;
      Prom_obs.Histogram.observe m.m_chunk_items (float_of_int items);
      Prom_obs.Counter.add m.m_busy elapsed

(* Uninstrumented pools pay exactly one branch per chunk here. *)
let timed pool ~items body =
  match pool.metrics with
  | None -> body ()
  | Some _ ->
      let t0 = Prom_obs.now () in
      let r = body () in
      record_chunk pool ~items (Prom_obs.now () -. t0);
      r

let try_pop pool =
  Mutex.lock pool.mutex;
  let t = if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue) in
  Mutex.unlock pool.mutex;
  t

(* Run every task, using the worker domains plus the calling domain
   (which drains the queue itself, so a 1-domain pool degenerates to a
   sequential loop and nested use cannot deadlock). The first exception
   raised by any task is re-raised after all tasks finish. *)
let run_all pool tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let remaining = Atomic.make n in
    let first_error = Atomic.make None in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let wrap task () =
      (try task ()
       with exn -> ignore (Atomic.compare_and_set first_error None (Some exn)));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task of the batch: wake the caller's completion latch *)
        Mutex.lock done_mutex;
        Condition.signal all_done;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock pool.mutex;
    Array.iter (fun task -> Queue.push (wrap task) pool.queue) tasks;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    let rec help () =
      match try_pop pool with
      | Some task ->
          task ();
          help ()
      | None -> ()
    in
    help ();
    (* Tasks still in flight on workers: block on the latch rather than
       spin, so an oversubscribed machine (more domains than cores) can
       hand the CPU to whoever holds the last chunk. *)
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    match Atomic.get first_error with Some exn -> raise exn | None -> ()
  end

let default_min_chunk = 32

(* Parallelism the hardware can actually deliver. A pool sized past it
   (an explicit [create 2] on a single-core box, or a cgroup-restricted
   container) would only add queue traffic and domain contention, so
   dispatch below clamps to this: the chunks and their results are
   identical either way — chunking is a function of the input length
   alone — only where they execute changes. *)
let hw_parallelism = Domain.recommended_domain_count ()

let effective_parallelism pool = Stdlib.min pool.n_domains hw_parallelism

(* Chunks per batch: a few per effective domain for load balancing
   without drowning in queue traffic. *)
let chunk_size ~parallelism min_chunk n =
  let target_chunks = parallelism * 4 in
  Stdlib.max min_chunk ((n + target_chunks - 1) / target_chunks)

let init ?pool ?(min_chunk = default_min_chunk) n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  let pool = match pool with Some p -> p | None -> default () in
  let parallelism = effective_parallelism pool in
  if n = 0 then [||]
  else if parallelism = 1 || n <= min_chunk then
    timed pool ~items:n (fun () -> Array.init n f)
  else begin
    let chunk = chunk_size ~parallelism min_chunk n in
    let n_chunks = (n + chunk - 1) / chunk in
    let parts = Array.make n_chunks [||] in
    let tasks =
      Array.init n_chunks (fun c () ->
          let off = c * chunk in
          let len = Stdlib.min chunk (n - off) in
          timed pool ~items:len (fun () ->
              parts.(c) <- Array.init len (fun j -> f (off + j))))
    in
    run_all pool tasks;
    Array.concat (Array.to_list parts)
  end

let mapi ?pool ?min_chunk f xs =
  init ?pool ?min_chunk (Array.length xs) (fun i -> f i xs.(i))

let map ?pool ?min_chunk f xs =
  init ?pool ?min_chunk (Array.length xs) (fun i -> f xs.(i))

let iteri ?pool ?(min_chunk = default_min_chunk) f xs =
  let n = Array.length xs in
  let pool = match pool with Some p -> p | None -> default () in
  let parallelism = effective_parallelism pool in
  if n = 0 then ()
  else if parallelism = 1 || n <= min_chunk then
    timed pool ~items:n (fun () -> Array.iteri f xs)
  else begin
    let chunk = chunk_size ~parallelism min_chunk n in
    let n_chunks = (n + chunk - 1) / chunk in
    let tasks =
      Array.init n_chunks (fun c () ->
          let off = c * chunk in
          let stop = Stdlib.min n (off + chunk) in
          timed pool
            ~items:(stop - off)
            (fun () ->
              for i = off to stop - 1 do
                f i xs.(i)
              done))
    in
    run_all pool tasks
  end

let iter ?pool ?min_chunk f xs = iteri ?pool ?min_chunk (fun _ x -> f x) xs
