let rec retry f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry f

let read fd buf pos len = retry (fun () -> Unix.read fd buf pos len)

let write_string fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    let written = retry (fun () -> Unix.write fd b !pos (n - !pos)) in
    pos := !pos + written
  done

let fsync fd = retry (fun () -> Unix.fsync fd)

let fsync_dir dir =
  match retry (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try fsync fd with Unix.Unix_error _ -> ()))

let close_noerr fd = try Unix.close fd with _ -> ()

let ignore_sigpipe () =
  (* Windows has no SIGPIPE; [Sys.set_signal] raises there. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()
