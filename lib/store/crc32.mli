(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) used to
    checksum snapshot payloads. Pure OCaml, table-driven; corrupt or
    truncated snapshot files are detected by comparing the stored
    checksum against the recomputed one before any decoding happens. *)

(** [digest s] is the CRC-32 of the whole string, as an unsigned 32-bit
    value carried in an [int]. *)
val digest : string -> int

(** [digest_sub s ~pos ~len] checksums the byte range
    [\[pos, pos + len)]. Raises [Invalid_argument] on an out-of-bounds
    range. *)
val digest_sub : string -> pos:int -> len:int -> int
