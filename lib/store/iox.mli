(** EINTR-safe [Unix] syscall wrappers shared by the snapshot store and
    the HTTP serving layer.

    Every blocking syscall in the serving stack can be interrupted by a
    signal (OCaml delivers them between runtime safepoints, surfacing
    [Unix.EINTR] from the call in flight); these wrappers restart the
    call instead of leaking the error to callers that would treat it as
    a real failure. *)

(** [retry f] runs [f ()] and restarts it as long as it raises
    [Unix.Unix_error (EINTR, _, _)]. *)
val retry : (unit -> 'a) -> 'a

(** [read fd buf pos len] — [Unix.read] restarted on [EINTR]. *)
val read : Unix.file_descr -> bytes -> int -> int -> int

(** [write_string fd s] writes all of [s], restarting partial writes
    and [EINTR]. Raises the underlying [Unix_error] (e.g. [EPIPE] on a
    closed peer) for anything else — with [SIGPIPE] ignored, a dead
    peer is an exception, never a process kill. *)
val write_string : Unix.file_descr -> string -> unit

(** [fsync fd] — [Unix.fsync] restarted on [EINTR]. *)
val fsync : Unix.file_descr -> unit

(** [fsync_dir dir] opens [dir] read-only and fsyncs it, making a
    just-renamed directory entry durable. Best-effort: filesystems that
    reject directory fsync ([EINVAL]/[EACCES]/...) are silently
    tolerated — the rename itself is still atomic. *)
val fsync_dir : string -> unit

(** [close_noerr fd] closes [fd], swallowing every error (double
    closes included) — the shutdown-path analogue of
    [close_out_noerr]. *)
val close_noerr : Unix.file_descr -> unit

(** [ignore_sigpipe ()] sets [SIGPIPE] to ignore (idempotent), so a
    [write] to a peer that already closed surfaces as [EPIPE] instead
    of killing the process. Called by every store/server entry point
    that writes to sockets or pipes. *)
val ignore_sigpipe : unit -> unit
