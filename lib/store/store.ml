type info = {
  generation : int;
  kind : string;
  codec_version : int;
  payload_bytes : int;
  crc : int;
  path : string;
}

let magic = "PROMSNP1"
let container_version = 1

let snap_path ~dir generation = Filename.concat dir (Printf.sprintf "snap-%06d.snap" generation)

let manifest_path ~dir generation =
  Filename.concat dir (Printf.sprintf "snap-%06d.json" generation)

let generations dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             match Scanf.sscanf_opt name "snap-%06d.snap%!" Fun.id with
             | Some g when g > 0 -> Some g
             | _ -> None)
      |> List.sort_uniq compare

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    (* Another process may have raced the creation; existing is fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let manifest_json info =
  (* Kinds are short identifier-like tags; escape the JSON specials
     anyway so a hostile tag cannot break the manifest. *)
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Printf.sprintf
    "{\n  \"generation\": %d,\n  \"kind\": \"%s\",\n  \"container_version\": %d,\n  \
     \"codec_version\": %d,\n  \"payload_bytes\": %d,\n  \"crc32\": \"%08x\",\n  \
     \"created_unix\": %.0f,\n  \"file\": \"%s\"\n}\n"
    info.generation (escape info.kind) container_version info.codec_version
    info.payload_bytes info.crc (Unix.gettimeofday ())
    (escape (Filename.basename info.path))

let save ~dir ~kind ~codec_version payload =
  ensure_dir dir;
  let generation =
    match List.rev (generations dir) with g :: _ -> g + 1 | [] -> 1
  in
  let crc = Crc32.digest payload in
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b magic;
  Buf.w_int b container_version;
  Buf.w_int b generation;
  Buf.w_int b codec_version;
  Buf.w_string b kind;
  Buf.w_int b (String.length payload);
  Buf.w_int b crc;
  Buffer.add_string b payload;
  let path = snap_path ~dir generation in
  let info =
    { generation; kind; codec_version; payload_bytes = String.length payload; crc; path }
  in
  write_atomic path (Buffer.contents b);
  write_atomic (manifest_path ~dir generation) (manifest_json info);
  info

let load path =
  let content = read_file path in
  if
    String.length content < String.length magic
    || String.sub content 0 (String.length magic) <> magic
  then Buf.corrupt "%s: bad magic" path;
  let r = Buf.reader ~pos:(String.length magic) content in
  let cv = Buf.r_int r in
  if cv <> container_version then Buf.corrupt "%s: unsupported container version %d" path cv;
  let generation = Buf.r_int r in
  if generation <= 0 then Buf.corrupt "%s: invalid generation %d" path generation;
  let codec_version = Buf.r_int r in
  let kind = Buf.r_string r in
  let payload_bytes = Buf.r_int r in
  let crc = Buf.r_int r in
  if payload_bytes < 0 || Buf.remaining r <> payload_bytes then
    Buf.corrupt "%s: payload length %d does not match file size" path payload_bytes;
  let payload_pos = Buf.pos r in
  let actual = Crc32.digest_sub content ~pos:payload_pos ~len:payload_bytes in
  if actual <> crc then Buf.corrupt "%s: checksum mismatch (%08x <> %08x)" path actual crc;
  ( { generation; kind; codec_version; payload_bytes; crc; path },
    String.sub content payload_pos payload_bytes )

let try_load ?kind path =
  match load path with
  | info, payload -> (
      match kind with
      | Some k when k <> info.kind -> None
      | _ -> Some (info, payload))
  | exception (Buf.Corrupt _ | Sys_error _) -> None

let load_latest ?kind ~dir () =
  let rec first = function
    | [] -> None
    | g :: rest -> (
        match try_load ?kind (snap_path ~dir g) with
        | Some r -> Some r
        | None -> first rest)
  in
  first (List.rev (generations dir))

let load_generation ?kind ~dir generation = try_load ?kind (snap_path ~dir generation)
