type info = {
  generation : int;
  kind : string;
  codec_version : int;
  payload_bytes : int;
  crc : int;
  path : string;
}

let magic = "PROMSNP1"
let container_version = 1

let snap_path ~dir generation = Filename.concat dir (Printf.sprintf "snap-%06d.snap" generation)

let manifest_path ~dir generation =
  Filename.concat dir (Printf.sprintf "snap-%06d.json" generation)

let generations dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             match Scanf.sscanf_opt name "snap-%06d.snap%!" Fun.id with
             | Some g when g > 0 -> Some g
             | _ -> None)
      |> List.sort_uniq compare

let subdirs dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun name ->
             match Sys.is_directory (Filename.concat dir name) with
             | is_dir -> is_dir
             | exception Sys_error _ -> false)
      |> List.sort compare

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    (* Another process may have raced the creation; existing is fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

(* A generation is only "published" once its bytes are durable: the
   temp file is fsynced before the rename, and the directory entry is
   fsynced after it, so a crash at any point leaves either the previous
   state or the complete new file under the final name — never a name
   pointing at unflushed data. All syscalls restart on EINTR. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Iox.retry (fun () ->
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644)
  in
  Fun.protect
    ~finally:(fun () -> Iox.close_noerr fd)
    (fun () ->
      Iox.write_string fd content;
      Iox.fsync fd);
  Sys.rename tmp path;
  Iox.fsync_dir (Filename.dirname path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let manifest_json info =
  (* Kinds are short identifier-like tags; the shared writer escapes
     the JSON specials anyway so a hostile tag cannot break the
     manifest. *)
  Prom_jsonx.to_string
    (Prom_jsonx.Obj
       [
         ("generation", Prom_jsonx.Num (float_of_int info.generation));
         ("kind", Prom_jsonx.Str info.kind);
         ("container_version", Prom_jsonx.Num (float_of_int container_version));
         ("codec_version", Prom_jsonx.Num (float_of_int info.codec_version));
         ("payload_bytes", Prom_jsonx.Num (float_of_int info.payload_bytes));
         ("crc32", Prom_jsonx.Str (Printf.sprintf "%08x" info.crc));
         ("created_unix", Prom_jsonx.Num (Float.round (Unix.gettimeofday ())));
         ("file", Prom_jsonx.Str (Filename.basename info.path));
       ])
    ^ "\n"

let save ~dir ~kind ~codec_version payload =
  ensure_dir dir;
  let generation =
    match List.rev (generations dir) with g :: _ -> g + 1 | [] -> 1
  in
  let crc = Crc32.digest payload in
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b magic;
  Buf.w_int b container_version;
  Buf.w_int b generation;
  Buf.w_int b codec_version;
  Buf.w_string b kind;
  Buf.w_int b (String.length payload);
  Buf.w_int b crc;
  Buffer.add_string b payload;
  let path = snap_path ~dir generation in
  let info =
    { generation; kind; codec_version; payload_bytes = String.length payload; crc; path }
  in
  write_atomic path (Buffer.contents b);
  write_atomic (manifest_path ~dir generation) (manifest_json info);
  info

let load path =
  let content = read_file path in
  if
    String.length content < String.length magic
    || String.sub content 0 (String.length magic) <> magic
  then Buf.corrupt "%s: bad magic" path;
  let r = Buf.reader ~pos:(String.length magic) content in
  let cv = Buf.r_int r in
  if cv <> container_version then Buf.corrupt "%s: unsupported container version %d" path cv;
  let generation = Buf.r_int r in
  if generation <= 0 then Buf.corrupt "%s: invalid generation %d" path generation;
  let codec_version = Buf.r_int r in
  let kind = Buf.r_string r in
  let payload_bytes = Buf.r_int r in
  let crc = Buf.r_int r in
  if payload_bytes < 0 || Buf.remaining r <> payload_bytes then
    Buf.corrupt "%s: payload length %d does not match file size" path payload_bytes;
  let payload_pos = Buf.pos r in
  let actual = Crc32.digest_sub content ~pos:payload_pos ~len:payload_bytes in
  if actual <> crc then Buf.corrupt "%s: checksum mismatch (%08x <> %08x)" path actual crc;
  ( { generation; kind; codec_version; payload_bytes; crc; path },
    String.sub content payload_pos payload_bytes )

let try_load ?kind path =
  match load path with
  | info, payload -> (
      match kind with
      | Some k when k <> info.kind -> None
      | _ -> Some (info, payload))
  | exception (Buf.Corrupt _ | Sys_error _) -> None

let load_latest ?kind ~dir () =
  let rec first = function
    | [] -> None
    | g :: rest -> (
        match try_load ?kind (snap_path ~dir g) with
        | Some r -> Some r
        | None -> first rest)
  in
  first (List.rev (generations dir))

let load_generation ?kind ~dir generation = try_load ?kind (snap_path ~dir generation)
