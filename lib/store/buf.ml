exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type reader = { s : string; mutable p : int }

let reader ?(pos = 0) s =
  if pos < 0 || pos > String.length s then corrupt "reader: start offset %d" pos;
  { s; p = pos }

let pos r = r.p
let remaining r = String.length r.s - r.p

let expect_end r =
  if remaining r <> 0 then corrupt "trailing bytes: %d unread" (remaining r)

let need r n =
  if n < 0 || remaining r < n then
    corrupt "truncated input: need %d bytes at offset %d, have %d" n r.p (remaining r)

let w_u8 b v =
  if v < 0 || v > 255 then invalid_arg "Buf.w_u8: byte out of range";
  Buffer.add_uint8 b v

let r_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.s r.p) in
  r.p <- r.p + 1;
  v

let w_int b v = Buffer.add_int64_le b (Int64.of_int v)

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.p) in
  r.p <- r.p + 8;
  v

let r_len r =
  let n = r_int r in
  (* Any length-prefixed run of n elements needs at least n more bytes;
     checking here rejects multi-gigabyte allocations decoded from
     corrupt headers before they happen. *)
  if n < 0 || n > remaining r then corrupt "implausible length %d at offset %d" n r.p;
  n

let w_bool b v = w_u8 b (if v then 1 else 0)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "invalid bool byte %d" v

let w_float b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let r_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.p) in
  r.p <- r.p + 8;
  v

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let r_string r =
  let n = r_len r in
  need r n;
  let s = String.sub r.s r.p n in
  r.p <- r.p + n;
  s

let w_floats b a =
  w_int b (Array.length a);
  Array.iter (w_float b) a

let r_floats r =
  let n = r_len r in
  Array.init n (fun _ -> r_float r)

let w_float_rows b rows =
  w_int b (Array.length rows);
  Array.iter (w_floats b) rows

let r_float_rows r =
  let n = r_len r in
  Array.init n (fun _ -> r_floats r)

let w_ints b a =
  w_int b (Array.length a);
  Array.iter (w_int b) a

let r_ints r =
  let n = r_len r in
  Array.init n (fun _ -> r_int r)

let w_bools b a =
  w_int b (Array.length a);
  Array.iter (w_bool b) a

let r_bools r =
  let n = r_len r in
  Array.init n (fun _ -> r_bool r)

let w_option w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let r_option read r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (read r)
  | v -> corrupt "invalid option byte %d" v

let w_array w b a =
  w_int b (Array.length a);
  Array.iter (w b) a

let r_array read r =
  let n = r_len r in
  Array.init n (fun _ -> read r)

let w_list w b l =
  w_int b (List.length l);
  List.iter (w b) l

let r_list read r =
  let n = r_len r in
  List.init n (fun _ -> read r)
