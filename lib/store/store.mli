(** Versioned, checksummed snapshot store.

    A snapshot directory holds a monotone sequence of generations, one
    pair of files per generation:

    - [snap-NNNNNN.snap] — the binary container: a magic string,
      container version, generation number, caller-supplied codec
      version and kind tag, payload length, CRC-32 of the payload, then
      the payload bytes (see DESIGN.md for the exact layout);
    - [snap-NNNNNN.json] — a small JSON manifest mirroring the header
      fields for humans and external tooling. The manifest is
      informational only: loading validates the binary header and
      checksum, never the JSON.

    Writes are atomic (temp file + [Sys.rename]), so a crash mid-save
    never produces a half-written generation under a valid name.
    {!load_latest} walks generations newest-first and skips any file
    whose magic, framing or checksum fails — a corrupt or truncated
    newest generation silently falls back to the previous one, which is
    the recovery path a restarted serving process takes. *)

(** Everything the container header records about one snapshot. *)
type info = {
  generation : int;  (** monotone per-directory sequence number, from 1 *)
  kind : string;  (** caller-supplied payload tag, e.g. ["detector-cls"] *)
  codec_version : int;  (** caller-supplied payload codec version *)
  payload_bytes : int;  (** length of the payload section *)
  crc : int;  (** CRC-32 of the payload, as stored in the header *)
  path : string;  (** the [.snap] file this header was read from *)
}

(** [save ~dir ~kind ~codec_version payload] writes the next generation
    (1 + the highest generation currently in [dir], corrupt or not) and
    returns its header. Creates [dir] (and parents) when missing. *)
val save : dir:string -> kind:string -> codec_version:int -> string -> info

(** [load path] reads and validates one container file, returning the
    header and payload. Raises {!Buf.Corrupt} when the magic, framing or
    checksum is wrong, and [Sys_error] when the file cannot be read. *)
val load : string -> info * string

(** [load_latest ?kind ~dir ()] is the newest generation in [dir] that
    validates (and matches [kind] when given), or [None] when no
    generation does. Corrupt, truncated or foreign files are skipped. *)
val load_latest : ?kind:string -> dir:string -> unit -> (info * string) option

(** [load_generation ?kind ~dir n] validates and returns generation [n]
    exactly — no fallback. [None] when missing, corrupt or of the wrong
    kind. *)
val load_generation : ?kind:string -> dir:string -> int -> (info * string) option

(** [generations dir] is every generation number with a [.snap] file in
    [dir] (validity not checked), ascending. Empty when the directory
    does not exist. *)
val generations : string -> int list

(** [subdirs dir] is every immediate subdirectory name of [dir],
    sorted. Empty when the directory does not exist. Multi-tenant
    serving roots keep one snapshot directory per tenant as a
    subdirectory of the root; this is the discovery walk. *)
val subdirs : string -> string list

(** [snap_path ~dir generation] is the container path [save] writes for
    [generation] — exposed so tests and tooling can corrupt or inspect
    specific generations. *)
val snap_path : dir:string -> int -> string

(** [manifest_path ~dir generation] is the JSON manifest path for
    [generation]. *)
val manifest_path : dir:string -> int -> string
