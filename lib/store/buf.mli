(** Binary serialization primitives shared by every PROM snapshot codec.

    Writers append to a standard [Buffer.t]; readers consume a [string]
    through a mutable cursor. Every primitive is fixed-width
    little-endian, and floats travel as their IEEE-754 bit patterns
    ([Int64.bits_of_float]), so round-trips are exact for every value —
    including NaN payloads, infinities and signed zeros. Malformed or
    truncated input never returns garbage: every read is bounds-checked
    and raises {!Corrupt}. *)

(** Raised by any read that runs past the end of the input, meets an
    invalid tag, or decodes a structurally impossible value (e.g. a
    negative length). Snapshot loaders treat it as "this snapshot is
    corrupt" and fall back to an older generation. *)
exception Corrupt of string

(** [corrupt fmt] raises {!Corrupt} with a formatted message — the
    helper codecs use to reject invalid tags uniformly. *)
val corrupt : ('a, unit, string, 'b) format4 -> 'a

(** A mutable read cursor over an immutable byte string. *)
type reader

(** [reader ?pos s] starts reading [s] at offset [pos] (default 0). *)
val reader : ?pos:int -> string -> reader

(** [pos r] is the current cursor offset — useful for framing checks. *)
val pos : reader -> int

(** [remaining r] is the number of unread bytes. *)
val remaining : reader -> int

(** [expect_end r] raises {!Corrupt} unless the input is fully
    consumed — decoders call it to reject trailing junk. *)
val expect_end : reader -> unit

(** {2 Scalars} *)

(** [w_u8 b v] writes one byte; [v] must be within [0, 255]. *)
val w_u8 : Buffer.t -> int -> unit

(** Reads the byte {!w_u8} wrote. *)
val r_u8 : reader -> int

(** [w_int b v] writes a 64-bit little-endian signed integer. *)
val w_int : Buffer.t -> int -> unit

(** Reads the integer {!w_int} wrote. *)
val r_int : reader -> int

(** [r_len r] reads an integer and checks it is a plausible length:
    non-negative and no larger than the bytes remaining (an element
    needs at least one byte). Rejects absurd lengths from corrupt input
    before any allocation. *)
val r_len : reader -> int

(** [w_bool b v] writes one byte, 0 or 1. *)
val w_bool : Buffer.t -> bool -> unit

(** Reads a bool; any byte other than 0 or 1 raises {!Corrupt}. *)
val r_bool : reader -> bool

(** [w_float b v] writes the exact IEEE-754 bit pattern of [v]. *)
val w_float : Buffer.t -> float -> unit

(** Reads the float {!w_float} wrote, bit-exactly. *)
val r_float : reader -> float

(** {2 Strings and arrays} *)

(** [w_string b s] writes a length-prefixed byte string. *)
val w_string : Buffer.t -> string -> unit

(** Reads the string {!w_string} wrote. *)
val r_string : reader -> string

(** [w_floats b a] writes a length-prefixed float array. *)
val w_floats : Buffer.t -> float array -> unit

(** Reads the array {!w_floats} wrote. *)
val r_floats : reader -> float array

(** [w_float_rows b rows] writes an array of float arrays (rows may be
    ragged; each row carries its own length). *)
val w_float_rows : Buffer.t -> float array array -> unit

(** Reads the rows {!w_float_rows} wrote. *)
val r_float_rows : reader -> float array array

(** [w_ints b a] writes a length-prefixed int array. *)
val w_ints : Buffer.t -> int array -> unit

(** Reads the array {!w_ints} wrote. *)
val r_ints : reader -> int array

(** [w_bools b a] writes a length-prefixed bool array, one byte each. *)
val w_bools : Buffer.t -> bool array -> unit

(** Reads the array {!w_bools} wrote. *)
val r_bools : reader -> bool array

(** {2 Combinators} *)

(** [w_option w b v] writes an option as a presence byte plus payload. *)
val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

(** [r_option r rd] reads the option {!w_option} wrote. *)
val r_option : (reader -> 'a) -> reader -> 'a option

(** [w_array w b a] writes a length-prefixed array with element writer
    [w]. *)
val w_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit

(** [r_array r rd] reads the array {!w_array} wrote. *)
val r_array : (reader -> 'a) -> reader -> 'a array

(** [w_list w b l] writes a length-prefixed list in order. *)
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

(** [r_list r rd] reads the list {!w_list} wrote. *)
val r_list : (reader -> 'a) -> reader -> 'a list
