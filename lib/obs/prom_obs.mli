(** Deployment-time observability: a lock-cheap, domain-safe metrics
    subsystem for the PROM serving stack.

    Counters and histograms are sharded per domain: an update fetches the
    calling domain's shard through [Domain.DLS] and writes one cell of an
    unboxed float array — no lock, no allocation, no cross-domain
    contention on the hot path. The shards are merged only when a
    {!Snapshot} is taken, so the cost of observability is paid at scrape
    time, not per query.

    All update operations are safe to call from any domain. Snapshot
    reads are best-effort with respect to in-flight updates (a scrape
    concurrent with updates may miss the very latest increments), which
    is the standard contract for Prometheus-style instrumentation. *)

type registry

(** A fresh, empty registry. Registries are independent: metrics
    registered on one never appear in another's snapshots, so a detector
    can run fully uninstrumented next to an instrumented one. *)
val create_registry : unit -> registry

module Counter : sig
  type t

  (** Monotonic increment by 1. Allocation-free after the calling
      domain's first touch of the metric. *)
  val inc : t -> unit

  (** [add t v] increments by [v]. Raises [Invalid_argument] on negative
      or non-finite [v] — counters are monotonic. *)
  val add : t -> float -> unit

  (** Merged value across all domain shards. *)
  val value : t -> float
end

module Gauge : sig
  type t

  (** Gauges are a single shared cell (last write wins, from any
      domain) rather than per-domain shards: they represent
      control-plane state such as a drift rate, where summing shards
      would be meaningless. *)
  val set : t -> float -> unit

  (** Current value of the shared cell. *)
  val value : t -> float
end

module Histogram : sig
  type t

  (** [observe t v] adds [v] to the distribution: the first bucket whose
      upper bound is [>= v] is incremented (Prometheus [le] semantics),
      or the implicit [+Inf] bucket when [v] exceeds every bound. *)
  val observe : t -> float -> unit

  (** Merged observation count across shards. *)
  val count : t -> float

  (** Merged sum of observed values across shards. *)
  val sum : t -> float
end

(** [counter reg ?labels ?help name] registers (or retrieves) the
    counter [name] with the given label set. Registration is
    get-or-create: asking twice for the same [(name, labels)] pair
    returns the same metric, so independent subsystems can share a
    series without coordination. Raises [Invalid_argument] when [name]
    or a label name is not a valid Prometheus identifier, or when [name]
    is already registered as a different metric kind. *)
val counter :
  registry -> ?labels:(string * string) list -> ?help:string -> string -> Counter.t

(** [gauge reg ?labels ?help name] registers (or retrieves) a gauge;
    same get-or-create and validation rules as {!counter}. *)
val gauge :
  registry -> ?labels:(string * string) list -> ?help:string -> string -> Gauge.t

(** [histogram reg ?labels ?help ?buckets name] — [buckets] are the
    upper bounds of the fixed buckets, strictly increasing and finite
    (the [+Inf] overflow bucket is implicit; default
    {!default_latency_buckets}). All series of one histogram family
    share the family's bucket layout; passing different [buckets] for an
    already-registered family raises [Invalid_argument]. *)
val histogram :
  registry ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?buckets:float array ->
  string ->
  Histogram.t

(** Log-spaced latency bounds from 10 microseconds to 10 seconds,
    suitable for sub-millisecond detector queries and multi-second
    batch evaluations alike. *)
val default_latency_buckets : float array

(** Wall-clock seconds, for latency measurements
    ([Unix.gettimeofday]). *)
val now : unit -> float

module Snapshot : sig
  type t

  (** [take reg] merges every metric's per-domain shards into an
      immutable snapshot. Merging sums counter and histogram shards
      cell-wise; since each shard is only ever written by its own
      domain, the result is independent of the order domains first
      touched the metric. *)
  val take : registry -> t

  (** Prometheus text exposition format (version 0.0.4): [# HELP] /
      [# TYPE] headers followed by the samples; histograms render
      cumulative [_bucket{le=...}] samples plus [_sum] and [_count]. *)
  val to_prometheus : t -> string

  (** The same snapshot as a JSON object, for log shippers that do not
      speak the exposition format. *)
  val to_json : t -> string
end

(** [validate_exposition text] checks that [text] is well-formed
    Prometheus text exposition: valid metric and label names, every
    sample preceded by a [# TYPE] declaration of its family, parseable
    sample values, and per-histogram a [+Inf] bucket with cumulative
    (non-decreasing) bucket counts matching [_count]. Returns
    [Error reason] pointing at the offending line otherwise. *)
val validate_exposition : string -> (unit, string) result
