(* Per-domain sharded metrics. Every update goes through Domain.DLS: the
   calling domain owns a private unboxed float array per metric series,
   so the hot path is a DLS lookup plus a plain array store — no lock,
   no atomic RMW, no allocation after the domain's first touch. A shard
   is published to the series' shard list exactly once, when the DLS
   initializer runs on that domain, under the registry mutex; snapshots
   read the shard list under the same mutex and sum cell-wise. Shard
   cells are written without synchronization, which is sound here: a
   64-bit float store is a single word write, and Prometheus-style
   scrapes tolerate missing the last in-flight increments. *)

let now () = Unix.gettimeofday ()

type kind = KCounter | KGauge | KHistogram of float array

type series = {
  labels : (string * string) list;
  mutable shards : float array list;
  dls : float array Domain.DLS.key;
  lock : Mutex.t; (* the owning registry's mutex, for merged reads *)
}

type family = {
  fname : string;
  fhelp : string;
  fkind : kind;
  mutable fseries : series list; (* newest first; reversed at snapshot *)
}

type registry = { rlock : Mutex.t; mutable families : family list (* newest first *) }

let create_registry () = { rlock = Mutex.create (); families = [] }

(* --- name and label validation (Prometheus data model) --- *)

let valid_metric_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

let valid_label_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

let check_name name =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Obs: invalid metric name %S" name)

let check_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Obs: invalid label name %S" k))
    labels

let cell_size = function KCounter | KGauge -> 1 | KHistogram b -> Array.length b + 2

(* A gauge is one shared cell (set semantics: last write wins); counters
   and histograms get one shard per touching domain (sum semantics). *)
let make_series ~lock ~kind labels =
  let size = cell_size kind in
  match kind with
  | KGauge ->
      let cell = Array.make size 0.0 in
      { labels; shards = [ cell ]; dls = Domain.DLS.new_key (fun () -> cell); lock }
  | KCounter | KHistogram _ ->
      let forward = ref None in
      let dls =
        Domain.DLS.new_key (fun () ->
            let cell = Array.make size 0.0 in
            Mutex.lock lock;
            (match !forward with
            | Some s -> s.shards <- cell :: s.shards
            | None -> ());
            Mutex.unlock lock;
            cell)
      in
      let s = { labels; shards = []; dls; lock } in
      forward := Some s;
      s

let kind_name = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | KCounter, KCounter | KGauge, KGauge -> true
  | KHistogram x, KHistogram y -> x = y
  | _ -> false

let normalize_labels labels = List.sort compare labels

let get_or_create reg ~kind ~help ~labels name =
  check_name name;
  check_labels labels;
  let labels = normalize_labels labels in
  Mutex.lock reg.rlock;
  let result =
    try
      let fam =
        match List.find_opt (fun f -> f.fname = name) reg.families with
        | Some f ->
            if not (same_kind f.fkind kind) then
              invalid_arg
                (Printf.sprintf "Obs: %s already registered as a %s with %s" name
                   (kind_name f.fkind)
                   (match f.fkind with
                   | KHistogram _ -> "different buckets or kind"
                   | _ -> "a different kind"));
            f
        | None ->
            let f = { fname = name; fhelp = help; fkind = kind; fseries = [] } in
            reg.families <- f :: reg.families;
            f
      in
      match List.find_opt (fun s -> s.labels = labels) fam.fseries with
      | Some s -> Ok s
      | None ->
          let s = make_series ~lock:reg.rlock ~kind labels in
          fam.fseries <- s :: fam.fseries;
          Ok s
    with exn -> Error exn
  in
  Mutex.unlock reg.rlock;
  match result with Ok s -> s | Error exn -> raise exn

(* [size] is the series' cell size: the shard list may be empty when no
   domain has touched the metric yet, so the width cannot be read off
   the shards themselves. *)
let merged size s =
  Mutex.lock s.lock;
  let shards = s.shards in
  Mutex.unlock s.lock;
  let acc = Array.make size 0.0 in
  List.iter (fun cell -> Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) cell) shards;
  acc

module Counter = struct
  type t = series

  let inc t =
    let c = Domain.DLS.get t.dls in
    c.(0) <- c.(0) +. 1.0

  let add t v =
    if not (v >= 0.0 && Float.is_finite v) then
      invalid_arg "Obs.Counter.add: negative or non-finite increment";
    let c = Domain.DLS.get t.dls in
    c.(0) <- c.(0) +. v

  let value t = (merged 1 t).(0)
end

module Gauge = struct
  type t = series

  let set t v =
    let c = Domain.DLS.get t.dls in
    c.(0) <- v

  let value t = (merged 1 t).(0)
end

module Histogram = struct
  type t = { series : series; buckets : float array }

  let observe t v =
    let c = Domain.DLS.get t.series.dls in
    let n = Array.length t.buckets in
    (* Linear scan: bucket counts are small (<= a few dozen) and the
       bounds array is contiguous, so this beats binary search at the
       sizes latency histograms use. *)
    let rec slot i = if i >= n then n else if v <= t.buckets.(i) then i else slot (i + 1) in
    let i = slot 0 in
    c.(i) <- c.(i) +. 1.0;
    c.(n + 1) <- c.(n + 1) +. v

  let count t =
    let m = merged (Array.length t.buckets + 2) t.series in
    let n = Array.length t.buckets in
    let acc = ref 0.0 in
    for i = 0 to n do
      acc := !acc +. m.(i)
    done;
    !acc

  let sum t = (merged (Array.length t.buckets + 2) t.series).(Array.length t.buckets + 1)
end

let counter reg ?(labels = []) ?(help = "") name =
  get_or_create reg ~kind:KCounter ~help ~labels name

let gauge reg ?(labels = []) ?(help = "") name =
  get_or_create reg ~kind:KGauge ~help ~labels name

let default_latency_buckets =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2;
    0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  |]

let histogram reg ?(labels = []) ?(help = "") ?(buckets = default_latency_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Obs.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then invalid_arg "Obs.histogram: non-finite bucket bound";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Obs.histogram: bucket bounds must be strictly increasing")
    buckets;
  let s = get_or_create reg ~kind:(KHistogram buckets) ~help ~labels name in
  { Histogram.series = s; buckets }

(* --- snapshots and rendering --- *)

module Snapshot = struct
  type svalue =
    | Single of float
    | Hist of { buckets : float array; counts : float array; inf : float; sum : float }

  type smetric = {
    sname : string;
    shelp : string;
    skind : string;
    sseries : ((string * string) list * svalue) list;
  }

  type t = smetric list

  let take reg =
    Mutex.lock reg.rlock;
    let families = List.rev reg.families in
    let snap =
      List.map
        (fun f ->
          let sseries =
            List.rev_map
              (fun s ->
                (* merge inline: we already hold the registry lock *)
                let m =
                  match s.shards with
                  | [] -> Array.make (cell_size f.fkind) 0.0
                  | first :: _ ->
                      let acc = Array.make (Array.length first) 0.0 in
                      List.iter
                        (fun cell -> Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) cell)
                        s.shards;
                      acc
                in
                let v =
                  match f.fkind with
                  | KCounter | KGauge -> Single m.(0)
                  | KHistogram buckets ->
                      let n = Array.length buckets in
                      Hist
                        {
                          buckets;
                          counts = Array.sub m 0 n;
                          inf = m.(n);
                          sum = m.(n + 1);
                        }
                in
                (s.labels, v))
              f.fseries
          in
          { sname = f.fname; shelp = f.fhelp; skind = kind_name f.fkind; sseries })
        families
    in
    Mutex.unlock reg.rlock;
    snap

  let fmt_value v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.12g" v

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let render_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
               labels)
        ^ "}"

  (* [le] carries an extra label slot appended to the series labels. *)
  let render_labels_le labels le =
    render_labels (labels @ [ ("le", le) ])

  let to_prometheus t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun m ->
        if m.shelp <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.sname m.shelp);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.sname m.skind);
        List.iter
          (fun (labels, v) ->
            match v with
            | Single v ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" m.sname (render_labels labels) (fmt_value v))
            | Hist { buckets; counts; inf; sum } ->
                let acc = ref 0.0 in
                Array.iteri
                  (fun i b ->
                    acc := !acc +. counts.(i);
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %s\n" m.sname
                         (render_labels_le labels (fmt_value b))
                         (fmt_value !acc)))
                  buckets;
                let total = !acc +. inf in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %s\n" m.sname
                     (render_labels_le labels "+Inf") (fmt_value total));
                Buffer.add_string buf
                  (Printf.sprintf "%s_sum%s %s\n" m.sname (render_labels labels)
                     (fmt_value sum));
                Buffer.add_string buf
                  (Printf.sprintf "%s_count%s %s\n" m.sname (render_labels labels)
                     (fmt_value total)))
          m.sseries)
      t;
    Buffer.contents buf

  (* JSON exposition built on the shared Prom_jsonx writer (the same
     escaping and number formatting the snapshot-store manifests and
     the HTTP server use). JSON has no NaN/infinity literals, so
     non-finite samples are encoded as their OCaml string forms. *)
  let json_num v =
    if Float.is_finite v then Prom_jsonx.Num v else Prom_jsonx.Str (Float.to_string v)

  let to_json t =
    let labels_json labels =
      Prom_jsonx.Obj (List.map (fun (k, v) -> (k, Prom_jsonx.Str v)) labels)
    in
    let series_json (labels, v) =
      match v with
      | Single v ->
          Prom_jsonx.Obj [ ("labels", labels_json labels); ("value", json_num v) ]
      | Hist { buckets; counts; inf; sum } ->
          let acc = ref 0.0 in
          let bucket_objs =
            Array.to_list
              (Array.mapi
                 (fun i b ->
                   acc := !acc +. counts.(i);
                   Prom_jsonx.Obj
                     [ ("le", json_num b); ("count", Prom_jsonx.Num !acc) ])
                 buckets)
          in
          let total = !acc +. inf in
          let inf_obj =
            Prom_jsonx.Obj
              [ ("le", Prom_jsonx.Str "+Inf"); ("count", Prom_jsonx.Num total) ]
          in
          Prom_jsonx.Obj
            [
              ("labels", labels_json labels);
              ("buckets", Prom_jsonx.Arr (bucket_objs @ [ inf_obj ]));
              ("sum", json_num sum);
              ("count", Prom_jsonx.Num total);
            ]
    in
    let metric_json m =
      Prom_jsonx.Obj
        [
          ("name", Prom_jsonx.Str m.sname);
          ("type", Prom_jsonx.Str m.skind);
          ("help", Prom_jsonx.Str m.shelp);
          ("series", Prom_jsonx.Arr (List.map series_json m.sseries));
        ]
    in
    Prom_jsonx.to_string
      (Prom_jsonx.Obj [ ("metrics", Prom_jsonx.Arr (List.map metric_json t)) ])
end

(* --- exposition validation (used by the bench-smoke CI check) --- *)

let parse_sample_value s =
  match s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | s -> float_of_string_opt s

(* Parse [name{k="v",...}] into (name, labels). Returns [None] on
   malformed label syntax. *)
let parse_series_part part =
  match String.index_opt part '{' with
  | None -> if valid_metric_name part then Some (part, []) else None
  | Some lbrace ->
      let name = String.sub part 0 lbrace in
      if (not (valid_metric_name name)) || part.[String.length part - 1] <> '}' then None
      else begin
        let body = String.sub part (lbrace + 1) (String.length part - lbrace - 2) in
        let n = String.length body in
        let labels = ref [] in
        let pos = ref 0 in
        let ok = ref true in
        while !ok && !pos < n do
          (match String.index_from_opt body !pos '=' with
          | None -> ok := false
          | Some eq ->
              let k = String.sub body !pos (eq - !pos) in
              if (not (valid_label_name k)) || eq + 1 >= n || body.[eq + 1] <> '"' then
                ok := false
              else begin
                (* scan the quoted value, honouring backslash escapes *)
                let i = ref (eq + 2) in
                let buf = Buffer.create 16 in
                let closed = ref false in
                while (not !closed) && !i < n do
                  (match body.[!i] with
                  | '\\' when !i + 1 < n ->
                      Buffer.add_char buf body.[!i + 1];
                      i := !i + 1
                  | '"' -> closed := true
                  | c -> Buffer.add_char buf c);
                  incr i
                done;
                if not !closed then ok := false
                else begin
                  labels := (k, Buffer.contents buf) :: !labels;
                  if !i < n && body.[!i] = ',' then pos := !i + 1
                  else if !i = n then pos := n
                  else ok := false
                end
              end);
          ()
        done;
        if !ok then Some (name, List.rev !labels) else None
      end

let validate_exposition text =
  let declared : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* histogram bookkeeping: (family, non-le labels) -> (le, value) in
     order of appearance, plus the observed _count values *)
  let hist_buckets : (string * (string * string) list, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist_counts : (string * (string * string) list, float) Hashtbl.t =
    Hashtbl.create 16
  in
  let error = ref None in
  let fail lineno msg =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let strip_suffix name suffix =
    if String.length name > String.length suffix
       && String.sub name (String.length name - String.length suffix) (String.length suffix)
          = suffix
    then Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error = None && line <> "" then
        if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
          | [ name; k ] ->
              if not (valid_metric_name name) then
                fail lineno (Printf.sprintf "invalid metric name %S in TYPE" name)
              else if not (List.mem k [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
              then fail lineno (Printf.sprintf "unknown metric type %S" k)
              else if Hashtbl.mem declared name then
                fail lineno (Printf.sprintf "duplicate TYPE for %s" name)
              else Hashtbl.add declared name k
          | _ -> fail lineno "malformed TYPE line"
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match String.index_from_opt line 7 ' ' with
          | Some sp ->
              let name = String.sub line 7 (sp - 7) in
              if not (valid_metric_name name) then
                fail lineno (Printf.sprintf "invalid metric name %S in HELP" name)
          | None ->
              let name = String.sub line 7 (String.length line - 7) in
              if not (valid_metric_name name) then
                fail lineno (Printf.sprintf "invalid metric name %S in HELP" name)
        end
        else if line.[0] = '#' then () (* free-form comment *)
        else begin
          match String.rindex_opt line ' ' with
          | None -> fail lineno "sample line without a value"
          | Some sp -> (
              let series_part = String.sub line 0 sp in
              let value_part = String.sub line (sp + 1) (String.length line - sp - 1) in
              match (parse_series_part series_part, parse_sample_value value_part) with
              | None, _ -> fail lineno (Printf.sprintf "malformed sample %S" series_part)
              | _, None -> fail lineno (Printf.sprintf "unparseable value %S" value_part)
              | Some (name, labels), Some v -> (
                  (* resolve the family: exact, or histogram suffix *)
                  let family =
                    if Hashtbl.mem declared name then Some (name, name)
                    else
                      List.find_map
                        (fun suffix ->
                          match strip_suffix name suffix with
                          | Some base
                            when Hashtbl.find_opt declared base = Some "histogram" ->
                              Some (base, name)
                          | _ -> None)
                        [ "_bucket"; "_sum"; "_count" ]
                  in
                  match family with
                  | None ->
                      fail lineno
                        (Printf.sprintf "sample %s has no preceding TYPE declaration" name)
                  | Some (base, full) ->
                      if Hashtbl.find_opt declared base = Some "histogram" then begin
                        if full = base ^ "_bucket" then begin
                          match List.assoc_opt "le" labels with
                          | None -> fail lineno "_bucket sample without le label"
                          | Some le -> (
                              match parse_sample_value le with
                              | None -> fail lineno (Printf.sprintf "bad le value %S" le)
                              | Some le_v ->
                                  let key = (base, List.remove_assoc "le" labels) in
                                  let cur =
                                    match Hashtbl.find_opt hist_buckets key with
                                    | Some l -> l
                                    | None ->
                                        let l = ref [] in
                                        Hashtbl.add hist_buckets key l;
                                        l
                                  in
                                  cur := (le_v, v) :: !cur)
                        end
                        else if full = base ^ "_count" then
                          Hashtbl.replace hist_counts (base, labels) v
                      end))
        end)
    lines;
  (match !error with
  | Some _ -> ()
  | None ->
      Hashtbl.iter
        (fun (base, labels) buckets ->
          let buckets = List.rev !buckets in
          (match List.rev buckets with
          | (le, last) :: _ ->
              if le <> infinity then
                fail 0 (Printf.sprintf "histogram %s lacks a +Inf bucket" base)
              else begin
                (match Hashtbl.find_opt hist_counts (base, labels) with
                | Some c when c <> last ->
                    fail 0
                      (Printf.sprintf "histogram %s: _count %g <> +Inf bucket %g" base c
                         last)
                | _ -> ());
                let rec check prev = function
                  | [] -> ()
                  | (_, v) :: rest ->
                      if v < prev then
                        fail 0
                          (Printf.sprintf "histogram %s: bucket counts not cumulative" base)
                      else check v rest
                in
                check 0.0 buckets
              end
          | [] -> ());
          ())
        hist_buckets);
  match !error with None -> Ok () | Some e -> Error e
