/* poll(2) binding for the serving event loop.

   Unix.select caps file descriptors at FD_SETSIZE (1024) and silently
   corrupts fd_sets beyond it; a production serving tier holds thousands
   of keep-alive sockets, so every readiness wait in lib/server goes
   through these stubs instead.  The interface is deliberately flat --
   parallel OCaml arrays of descriptors, interest bits and result bits
   -- so one stub call polls the whole registration table without
   per-fd allocation on the OCaml side. */

#include <errno.h>
#include <poll.h>
#include <stdlib.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>
#include <caml/unixsupport.h>

/* Interest / readiness bits shared with evloop.ml. */
#define PROM_EV_READ 1
#define PROM_EV_WRITE 2
#define PROM_EV_ERROR 4

static short events_of_bits(int bits)
{
  short ev = 0;
  if (bits & PROM_EV_READ) ev |= POLLIN;
  if (bits & PROM_EV_WRITE) ev |= POLLOUT;
  return ev;
}

static int bits_of_revents(short rev)
{
  int bits = 0;
  /* POLLHUP surfaces as readable so the caller's read() observes EOF;
     POLLNVAL/POLLERR surface as PROM_EV_ERROR so the fd gets torn
     down instead of spinning. */
  if (rev & (POLLIN | POLLHUP)) bits |= PROM_EV_READ;
  if (rev & POLLOUT) bits |= PROM_EV_WRITE;
  if (rev & (POLLERR | POLLNVAL)) bits |= PROM_EV_ERROR;
  return bits;
}

/* prom_evloop_poll fds events revents n timeout_ms

   Polls fds.(0..n-1) (interest bits events.(i)) for up to timeout_ms
   milliseconds (negative = forever).  Stores readiness bits into
   revents.(i) and returns the number of ready descriptors.  EINTR is
   reported as 0 ready with revents untouched -- callers recompute
   their deadline and re-enter. */
CAMLprim value prom_evloop_poll(value vfds, value vevents, value vrevents,
                                value vn, value vtimeout)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds;
  int i, ret, err;

  if (n < 0 || n > Wosize_val(vfds) || n > Wosize_val(vevents)
      || n > Wosize_val(vrevents))
    caml_invalid_argument("Evloop.poll: inconsistent table sizes");
  pfds = caml_stat_alloc(sizeof(struct pollfd) * (n > 0 ? (size_t)n : 1));
  for (i = 0; i < n; i++) {
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = events_of_bits(Int_val(Field(vevents, i)));
    pfds[i].revents = 0;
  }
  caml_enter_blocking_section();
  ret = poll(pfds, (nfds_t)n, timeout);
  err = errno;
  caml_leave_blocking_section();
  if (ret < 0) {
    caml_stat_free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_unix_error(err, "poll", Nothing);
  }
  for (i = 0; i < n; i++)
    Store_field(vrevents, i, Val_int(bits_of_revents(pfds[i].revents)));
  caml_stat_free(pfds);
  CAMLreturn(Val_int(ret));
}

/* prom_evloop_poll_one fd interest_bits timeout_ms

   Single-descriptor wait (self-pipes, blocking client reads): returns
   the readiness bits, 0 on timeout or EINTR. */
CAMLprim value prom_evloop_poll_one(value vfd, value vevents, value vtimeout)
{
  struct pollfd p;
  int ret, err;

  p.fd = Int_val(vfd);
  p.events = events_of_bits(Int_val(vevents));
  p.revents = 0;
  caml_enter_blocking_section();
  ret = poll(&p, 1, Int_val(vtimeout));
  err = errno;
  caml_leave_blocking_section();
  if (ret < 0) {
    if (err == EINTR) return Val_int(0);
    caml_unix_error(err, "poll", Nothing);
  }
  return Val_int(ret == 0 ? 0 : bits_of_revents(p.revents));
}
