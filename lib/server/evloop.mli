(** Readiness multiplexing for the serving event loop, bound to
    [poll(2)] instead of [Unix.select] — [select] silently breaks once
    descriptor numbers exceed [FD_SETSIZE] (1024), which a serving tier
    holding thousands of keep-alive connections crosses routinely. All
    waits are level-triggered: a descriptor stays ready until its
    condition is consumed, so missing an event is never fatal.

    One {!t} belongs to one thread (no internal locking); cross-thread
    wake-ups are done by registering a self-pipe read end and writing a
    byte to it from the other thread. *)

type t
(** A registration table: descriptors plus the events each one is
    interested in. *)

(** [create ()] is an empty table. *)
val create : unit -> t

(** [registered t] is the number of registered descriptors. *)
val registered : t -> int

(** [set t fd ~read ~write] registers [fd] (or updates its interest)
    for readability and/or writability. An [fd] registered with both
    flags false is still polled for errors/hangup. *)
val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit

(** [remove t fd] forgets [fd]; no-op when it is not registered. *)
val remove : t -> Unix.file_descr -> unit

(** [mem t fd] is true when [fd] is registered. *)
val mem : t -> Unix.file_descr -> bool

(** [wait t ~timeout_ms f] polls every registered descriptor for up to
    [timeout_ms] milliseconds (negative = forever) and calls [f] once
    per ready descriptor with its readiness ([error] covers
    [POLLERR]/[POLLNVAL]; hangup is reported as [readable] so the next
    read observes EOF). Callbacks may freely register/remove
    descriptors, including the one being reported — a descriptor
    removed by an earlier callback of the same batch is not reported.
    Returns the number of ready descriptors (0 on timeout or [EINTR]).
    Raises [Unix.Unix_error] on a real [poll] failure. *)
val wait :
  t ->
  timeout_ms:int ->
  (Unix.file_descr -> readable:bool -> writable:bool -> error:bool -> unit) ->
  int

(** [wait_readable fd ~timeout] waits (seconds; negative = forever) for
    [fd] alone to become readable — the [select]-free replacement for
    single-descriptor waits (self-pipes, blocking client reads).
    [EINTR] reports [`Timeout]; callers recompute their deadline. *)
val wait_readable : Unix.file_descr -> timeout:float -> [ `Ready | `Timeout ]

(** [wait_writable fd ~timeout] is {!wait_readable} for writability. *)
val wait_writable : Unix.file_descr -> timeout:float -> [ `Ready | `Timeout ]
