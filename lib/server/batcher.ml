module Iox = Prom_store.Iox

type error = [ `Overloaded | `Shutdown | `Failed of exn ]

type ('a, 'b) cell = {
  items : 'a array;
  mutable outcome : ('b array, error) result option;
  (* [None] = a blocked submitter waits on [done_cond]; [Some f] = the
     dispatcher calls [f outcome] after the batch, outside the lock
     (event-loop completions re-arming writers via their self-pipe). *)
  notify : (('b array, error) result -> unit) option;
}

(* One fairness key's queue. Keys are small dense integers (the server
   uses the tenant's registration index; the unkeyed API uses key 0).
   [kdeficit] is the key's deficit-round-robin credit in items: each
   dispatcher sweep deposits [quantum] and withdraws the size of every
   group taken, so a key that queues more than its share this round
   carries the debt into the next one. *)
type ('a, 'b) kq = {
  kqueue : ('a, 'b) cell Queue.t;
  mutable kdepth : int;
  mutable kdeficit : int;
}

type ('a, 'b) t = {
  run : 'a array -> 'b array;
  max_batch : int;
  max_wait_s : float;
  capacity : int;
  key_capacity : int;
  quantum : int;
  on_depth : int -> unit;
  on_key_depth : int -> int -> unit;
  on_batch : int -> unit;
  on_share : int -> int -> unit;
  before_batch : unit -> unit;
  lock : Mutex.t;
  done_cond : Condition.t;
  keys : (int, ('a, 'b) kq) Hashtbl.t;
  (* Round-robin ring of keys with a non-empty queue; the dispatcher
     pops from the head and re-appends still-active keys at the tail,
     so every active key is visited once per sweep whatever the
     arrival order. *)
  ring : int Queue.t;
  mutable depth : int;
  mutable stopping : bool;
  mutable joined : bool;
  (* True only while the dispatcher is parked in [wait_for_wake];
     submitters skip the wake-pipe write (a syscall per request under
     load) whenever the dispatcher is awake and will re-check the queue
     under the lock anyway. *)
  mutable waiting : bool;
  (* Self-pipe: OCaml has no [Condition.timedwait], so the dispatcher's
     timed waits are [select] on this pipe; submitters write one byte
     after every enqueue (and [shutdown] after flipping [stopping]). *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable dispatcher : Thread.t option;
}

let wake t =
  (* Non-blocking: if the pipe buffer is full the dispatcher already
     has plenty of pending wake-ups. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | EPIPE), _, _) -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

(* Block (without the lock held) until woken or [timeout] seconds pass;
   negative timeout blocks indefinitely. Poll-backed: the self-pipe's
   descriptor number is unbounded under thousands of connections, which
   would corrupt a select fd_set. *)
let wait_for_wake t timeout =
  match Evloop.wait_readable t.wake_r ~timeout with
  | `Timeout -> ()
  | `Ready -> drain_wake t

let get_kq t key =
  match Hashtbl.find_opt t.keys key with
  | Some kq -> kq
  | None ->
      let kq = { kqueue = Queue.create (); kdepth = 0; kdeficit = 0 } in
      Hashtbl.replace t.keys key kq;
      kq

let run_batch t cells n =
  t.before_batch ();
  t.on_batch n;
  let outcome =
    match t.run (Array.concat (List.map (fun (_, c) -> c.items) cells)) with
    | outputs ->
        if Array.length outputs <> n then
          Error
            (`Failed
              (Invalid_argument
                 (Printf.sprintf "Batcher: run returned %d outputs for %d inputs"
                    (Array.length outputs) n)))
        else Ok outputs
    | exception e -> Error (`Failed e)
  in
  Mutex.lock t.lock;
  (match outcome with
  | Ok outputs ->
      let off = ref 0 in
      List.iter
        (fun (_, c) ->
          let k = Array.length c.items in
          c.outcome <- Some (Ok (Array.sub outputs !off k));
          off := !off + k)
        cells
  | Error _ as e -> List.iter (fun (_, c) -> c.outcome <- Some e) cells);
  Condition.broadcast t.done_cond;
  Mutex.unlock t.lock;
  (* Completion callbacks run on the dispatcher thread with no lock
     held, so a callback may call back into the batcher freely. *)
  List.iter
    (fun (_, c) ->
      match (c.notify, c.outcome) with
      | Some f, Some r -> ( try f r with _ -> ())
      | _ -> ())
    cells

(* Drain one fair batch under the lock: sweep the ring of active keys,
   depositing [quantum] credit per visit and taking whole groups while
   the credit and the batch both have room; sweeps repeat until the
   batch fills or a full sweep makes no progress (every remaining head
   group is out of credit or would overflow the batch). At least one
   group is always taken so an oversized group still runs, alone. *)
let drain_round t =
  let cells = ref [] and n = ref 0 in
  let full = ref false in
  let shares = Hashtbl.create 8 in
  let progress = ref true in
  while (not !full) && !progress && not (Queue.is_empty t.ring) do
    progress := false;
    let visits = Queue.length t.ring in
    let i = ref 0 in
    while (not !full) && !i < visits && not (Queue.is_empty t.ring) do
      incr i;
      let kid = Queue.pop t.ring in
      let kq = Hashtbl.find t.keys kid in
      kq.kdeficit <- kq.kdeficit + t.quantum;
      let take_more = ref true in
      while !take_more && not (Queue.is_empty kq.kqueue) do
        let c = Queue.peek kq.kqueue in
        let k = Array.length c.items in
        if !n > 0 && !n + k > t.max_batch then begin
          full := true;
          take_more := false
        end
        else if k > kq.kdeficit && !n > 0 then take_more := false
        else begin
          ignore (Queue.pop kq.kqueue);
          kq.kdepth <- kq.kdepth - k;
          kq.kdeficit <- Stdlib.max 0 (kq.kdeficit - k);
          cells := (kid, c) :: !cells;
          n := !n + k;
          progress := true;
          let taken =
            match Hashtbl.find_opt shares kid with
            | Some (prev, _) -> prev + k
            | None -> k
          in
          Hashtbl.replace shares kid (taken, kq.kdepth);
          if !n >= t.max_batch then begin
            full := true;
            take_more := false
          end
        end
      done;
      if Queue.is_empty kq.kqueue then kq.kdeficit <- 0
      else Queue.push kid t.ring;
      (match Hashtbl.find_opt shares kid with
      | Some (taken, _) -> Hashtbl.replace shares kid (taken, kq.kdepth)
      | None -> ())
    done
  done;
  t.depth <- t.depth - !n;
  (List.rev !cells, !n, shares)

let dispatcher_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.depth = 0 && not t.stopping do
      t.waiting <- true;
      Mutex.unlock t.lock;
      wait_for_wake t (-1.0);
      Mutex.lock t.lock;
      t.waiting <- false
    done;
    if t.depth = 0 then begin
      (* stopping && drained: exit. [stopping] is checked under the same
         lock [submit_many] takes, so no group can slip in after this. *)
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      (* Adaptive wait: give late arrivals up to [max_wait_s] to join
         this batch, unless it is already full or we are draining. *)
      if t.depth < t.max_batch && not t.stopping && t.max_wait_s > 0.0 then begin
        let deadline = Unix.gettimeofday () +. t.max_wait_s in
        let rec linger () =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining > 0.0 && t.depth < t.max_batch && not t.stopping then begin
            t.waiting <- true;
            Mutex.unlock t.lock;
            wait_for_wake t remaining;
            Mutex.lock t.lock;
            t.waiting <- false;
            linger ()
          end
        in
        linger ()
      end;
      let cells, n, shares = drain_round t in
      let depth_now = t.depth in
      Mutex.unlock t.lock;
      t.on_depth depth_now;
      Hashtbl.iter
        (fun kid (taken, kdepth) ->
          t.on_share kid taken;
          t.on_key_depth kid kdepth)
        shares;
      run_batch t cells n
    end
  done

let create ?(max_batch = 64) ?(max_wait_us = 2000) ?(capacity = 1024)
    ?key_capacity ?quantum ?(on_depth = fun _ -> ())
    ?(on_key_depth = fun _ _ -> ()) ?(on_batch = fun _ -> ())
    ?(on_share = fun _ _ -> ()) ?(before_batch = fun () -> ()) run =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if capacity < 1 then invalid_arg "Batcher.create: capacity < 1";
  let key_capacity = Option.value ~default:capacity key_capacity in
  if key_capacity < 1 then invalid_arg "Batcher.create: key_capacity < 1";
  let quantum = Option.value ~default:(Stdlib.max 1 (max_batch / 2)) quantum in
  if quantum < 1 then invalid_arg "Batcher.create: quantum < 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      run;
      max_batch;
      max_wait_s = float_of_int (Stdlib.max 0 max_wait_us) /. 1e6;
      capacity;
      key_capacity;
      quantum;
      on_depth;
      on_key_depth;
      on_batch;
      on_share;
      before_batch;
      lock = Mutex.create ();
      done_cond = Condition.create ();
      keys = Hashtbl.create 8;
      ring = Queue.create ();
      depth = 0;
      stopping = false;
      joined = false;
      waiting = false;
      wake_r;
      wake_w;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t

(* Validate and enqueue one group under the lock; returns the depths
   after the enqueue so the caller can report them with the lock
   dropped ([on_depth] with the lock held would deadlock any callback
   touching [depth], and the dispatcher already calls it unlocked). *)
let enqueue t ~key cell k =
  if t.stopping then Error `Shutdown
  else if t.depth + k > t.capacity then Error `Overloaded
  else begin
    let kq = get_kq t key in
    if kq.kdepth + k > t.key_capacity then Error `Overloaded
    else begin
      if kq.kdepth = 0 then Queue.push key t.ring;
      Queue.push cell kq.kqueue;
      kq.kdepth <- kq.kdepth + k;
      t.depth <- t.depth + k;
      if t.waiting then wake t;
      Ok (t.depth, kq.kdepth)
    end
  end

let submit_many ?(key = 0) t items =
  let k = Array.length items in
  if k = 0 then Ok [||]
  else begin
    let cell = { items; outcome = None; notify = None } in
    Mutex.lock t.lock;
    match enqueue t ~key cell k with
    | Error _ as e ->
        Mutex.unlock t.lock;
        e
    | Ok (depth_now, kdepth_now) ->
        Mutex.unlock t.lock;
        t.on_depth depth_now;
        t.on_key_depth key kdepth_now;
        Mutex.lock t.lock;
        let rec await () =
          match cell.outcome with
          | Some r -> r
          | None ->
              Condition.wait t.done_cond t.lock;
              await ()
        in
        let r = await () in
        Mutex.unlock t.lock;
        r
  end

let submit_async ?(key = 0) t items ~notify =
  let k = Array.length items in
  if k = 0 then notify (Ok [||])
  else begin
    let cell = { items; outcome = None; notify = Some notify } in
    Mutex.lock t.lock;
    match enqueue t ~key cell k with
    | Error _ as e ->
        Mutex.unlock t.lock;
        (* Rejection is reported synchronously on the caller's thread —
           there is no batch whose completion could carry it. *)
        notify e
    | Ok (depth_now, kdepth_now) ->
        Mutex.unlock t.lock;
        t.on_depth depth_now;
        t.on_key_depth key kdepth_now
  end

let submit ?key t item =
  match submit_many ?key t [| item |] with
  | Ok outputs -> Ok outputs.(0)
  | Error _ as e -> e

let depth t =
  Mutex.lock t.lock;
  let d = t.depth in
  Mutex.unlock t.lock;
  d

let key_depth t key =
  Mutex.lock t.lock;
  let d =
    match Hashtbl.find_opt t.keys key with Some kq -> kq.kdepth | None -> 0
  in
  Mutex.unlock t.lock;
  d

let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    (* Idempotent: wait for the first caller to finish the join. *)
    let rec spin () =
      Mutex.lock t.lock;
      let j = t.joined in
      Mutex.unlock t.lock;
      if not j then begin
        Thread.yield ();
        spin ()
      end
    in
    spin ()
  end
  else begin
    t.stopping <- true;
    wake t;
    Mutex.unlock t.lock;
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    Mutex.lock t.lock;
    t.joined <- true;
    Mutex.unlock t.lock;
    Iox.close_noerr t.wake_r;
    Iox.close_noerr t.wake_w
  end
