module Iox = Prom_store.Iox

type error = [ `Overloaded | `Shutdown | `Failed of exn ]

type ('a, 'b) cell = {
  items : 'a array;
  mutable outcome : ('b array, error) result option;
  (* [None] = a blocked submitter waits on [done_cond]; [Some f] = the
     dispatcher calls [f outcome] after the batch, outside the lock
     (event-loop completions re-arming writers via their self-pipe). *)
  notify : (('b array, error) result -> unit) option;
}

type ('a, 'b) t = {
  run : 'a array -> 'b array;
  max_batch : int;
  max_wait_s : float;
  capacity : int;
  on_depth : int -> unit;
  on_batch : int -> unit;
  before_batch : unit -> unit;
  lock : Mutex.t;
  done_cond : Condition.t;
  queue : ('a, 'b) cell Queue.t;
  mutable depth : int;
  mutable stopping : bool;
  mutable joined : bool;
  (* True only while the dispatcher is parked in [wait_for_wake];
     submitters skip the wake-pipe write (a syscall per request under
     load) whenever the dispatcher is awake and will re-check the queue
     under the lock anyway. *)
  mutable waiting : bool;
  (* Self-pipe: OCaml has no [Condition.timedwait], so the dispatcher's
     timed waits are [select] on this pipe; submitters write one byte
     after every enqueue (and [shutdown] after flipping [stopping]). *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable dispatcher : Thread.t option;
}

let wake t =
  (* Non-blocking: if the pipe buffer is full the dispatcher already
     has plenty of pending wake-ups. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | EPIPE), _, _) -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

(* Block (without the lock held) until woken or [timeout] seconds pass;
   negative timeout blocks indefinitely. Poll-backed: the self-pipe's
   descriptor number is unbounded under thousands of connections, which
   would corrupt a select fd_set. *)
let wait_for_wake t timeout =
  match Evloop.wait_readable t.wake_r ~timeout with
  | `Timeout -> ()
  | `Ready -> drain_wake t

let run_batch t cells n =
  t.before_batch ();
  t.on_batch n;
  let outcome =
    match t.run (Array.concat (List.map (fun c -> c.items) cells)) with
    | outputs ->
        if Array.length outputs <> n then
          Error
            (`Failed
              (Invalid_argument
                 (Printf.sprintf "Batcher: run returned %d outputs for %d inputs"
                    (Array.length outputs) n)))
        else Ok outputs
    | exception e -> Error (`Failed e)
  in
  Mutex.lock t.lock;
  (match outcome with
  | Ok outputs ->
      let off = ref 0 in
      List.iter
        (fun c ->
          let k = Array.length c.items in
          c.outcome <- Some (Ok (Array.sub outputs !off k));
          off := !off + k)
        cells
  | Error _ as e -> List.iter (fun c -> c.outcome <- Some e) cells);
  Condition.broadcast t.done_cond;
  Mutex.unlock t.lock;
  (* Completion callbacks run on the dispatcher thread with no lock
     held, so a callback may call back into the batcher freely. *)
  List.iter
    (fun c ->
      match (c.notify, c.outcome) with
      | Some f, Some r -> ( try f r with _ -> ())
      | _ -> ())
    cells

let dispatcher_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      t.waiting <- true;
      Mutex.unlock t.lock;
      wait_for_wake t (-1.0);
      Mutex.lock t.lock;
      t.waiting <- false
    done;
    if Queue.is_empty t.queue then begin
      (* stopping && drained: exit. [stopping] is checked under the same
         lock [submit_many] takes, so no group can slip in after this. *)
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      (* Adaptive wait: give late arrivals up to [max_wait_s] to join
         this batch, unless it is already full or we are draining. *)
      if t.depth < t.max_batch && not t.stopping && t.max_wait_s > 0.0 then begin
        let deadline = Unix.gettimeofday () +. t.max_wait_s in
        let rec linger () =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining > 0.0 && t.depth < t.max_batch && not t.stopping then begin
            t.waiting <- true;
            Mutex.unlock t.lock;
            wait_for_wake t remaining;
            Mutex.lock t.lock;
            t.waiting <- false;
            linger ()
          end
        in
        linger ()
      end;
      (* Drain whole groups up to [max_batch] items; always take at
         least one group so an oversized batch request still runs. *)
      let cells = ref [] and n = ref 0 in
      let full = ref false in
      while (not !full) && not (Queue.is_empty t.queue) do
        let c = Queue.peek t.queue in
        let k = Array.length c.items in
        if !n > 0 && !n + k > t.max_batch then full := true
        else begin
          ignore (Queue.pop t.queue);
          cells := c :: !cells;
          n := !n + k;
          if !n >= t.max_batch then full := true
        end
      done;
      t.depth <- t.depth - !n;
      let depth_now = t.depth in
      Mutex.unlock t.lock;
      t.on_depth depth_now;
      run_batch t (List.rev !cells) !n
    end
  done

let create ?(max_batch = 64) ?(max_wait_us = 2000) ?(capacity = 1024)
    ?(on_depth = fun _ -> ()) ?(on_batch = fun _ -> ())
    ?(before_batch = fun () -> ()) run =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if capacity < 1 then invalid_arg "Batcher.create: capacity < 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      run;
      max_batch;
      max_wait_s = float_of_int (max 0 max_wait_us) /. 1e6;
      capacity;
      on_depth;
      on_batch;
      before_batch;
      lock = Mutex.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      depth = 0;
      stopping = false;
      joined = false;
      waiting = false;
      wake_r;
      wake_w;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t

(* Validate and enqueue one group under the lock; returns the depth
   after the enqueue so the caller can report it with the lock dropped
   ([on_depth] with the lock held would deadlock any callback touching
   [depth], and the dispatcher already calls it unlocked). *)
let enqueue t cell k =
  if t.stopping then Error `Shutdown
  else if t.depth + k > t.capacity then Error `Overloaded
  else begin
    Queue.push cell t.queue;
    t.depth <- t.depth + k;
    if t.waiting then wake t;
    Ok t.depth
  end

let submit_many t items =
  let k = Array.length items in
  if k = 0 then Ok [||]
  else begin
    let cell = { items; outcome = None; notify = None } in
    Mutex.lock t.lock;
    match enqueue t cell k with
    | Error _ as e ->
        Mutex.unlock t.lock;
        e
    | Ok depth_now ->
        Mutex.unlock t.lock;
        t.on_depth depth_now;
        Mutex.lock t.lock;
        let rec await () =
          match cell.outcome with
          | Some r -> r
          | None ->
              Condition.wait t.done_cond t.lock;
              await ()
        in
        let r = await () in
        Mutex.unlock t.lock;
        r
  end

let submit_async t items ~notify =
  let k = Array.length items in
  if k = 0 then notify (Ok [||])
  else begin
    let cell = { items; outcome = None; notify = Some notify } in
    Mutex.lock t.lock;
    match enqueue t cell k with
    | Error _ as e ->
        Mutex.unlock t.lock;
        (* Rejection is reported synchronously on the caller's thread —
           there is no batch whose completion could carry it. *)
        notify e
    | Ok depth_now ->
        Mutex.unlock t.lock;
        t.on_depth depth_now
  end

let submit t item =
  match submit_many t [| item |] with
  | Ok outputs -> Ok outputs.(0)
  | Error _ as e -> e

let depth t =
  Mutex.lock t.lock;
  let d = t.depth in
  Mutex.unlock t.lock;
  d

let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    (* Idempotent: wait for the first caller to finish the join. *)
    let rec spin () =
      Mutex.lock t.lock;
      let j = t.joined in
      Mutex.unlock t.lock;
      if not j then begin
        Thread.yield ();
        spin ()
      end
    in
    spin ()
  end
  else begin
    t.stopping <- true;
    wake t;
    Mutex.unlock t.lock;
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    Mutex.lock t.lock;
    t.joined <- true;
    Mutex.unlock t.lock;
    Iox.close_noerr t.wake_r;
    Iox.close_noerr t.wake_w
  end
