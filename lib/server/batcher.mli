(** Adaptive micro-batching queue with fair-share scheduling: many
    submitter threads hand in small groups of work items, each tagged
    with a fairness key (one key per tenant; the unkeyed API uses key
    0); one dispatcher thread coalesces groups across keys into batches
    and runs each batch through a single evaluation call.

    The dispatcher drains as soon as either [max_batch] items are
    waiting or the oldest item has waited [max_wait_us] microseconds —
    so a lone request costs at most one micro-wait of latency, while a
    busy queue amortizes per-batch fixed costs (dispatch to the domain
    pool, cache warm-up) across every waiting query.

    Batch composition is deficit round-robin across keys: every key
    with queued work is visited in rotation, earns [quantum] items of
    credit per visit, and contributes whole groups while its credit
    lasts, so a hot key floods only its own queue — a cold key's lone
    request still rides the very next batch instead of waiting behind
    the backlog. Per-key credit carries across batches, which lets a
    group larger than [quantum] through once its key has accumulated
    enough turns (and an oversized group always runs alone rather than
    being split).

    Under load the queue is bounded twice over: submissions that would
    push the total past [capacity] — or the submitting key past
    [key_capacity] — are rejected immediately with [`Overloaded], which
    the HTTP layer maps to [503 Retry-After]; backpressure instead of
    collapse, per tenant before globally.

    Submitter groups are never split across batches (a batch request is
    answered from exactly one evaluation call), and results come back
    in submission order within each group. *)

type ('a, 'b) t
(** A batcher accepting items of type ['a] and producing one ['b] per
    item. *)

(** Why a submission failed: the queue was full ([`Overloaded] — the
    global [capacity] or the submitting key's [key_capacity]), the
    batcher is shutting down ([`Shutdown]), or the evaluation function
    raised ([`Failed] — carries the exception; the batcher itself keeps
    running). *)
type error = [ `Overloaded | `Shutdown | `Failed of exn ]

(** [create ?max_batch ?max_wait_us ?capacity ?key_capacity ?quantum
    ?on_depth ?on_key_depth ?on_batch ?on_share ?before_batch run]
    starts the dispatcher thread. [run] is called with between 1 and
    [max (max_batch) (largest single group)] items and must return
    exactly one output per input, in order; a batch may mix items from
    several keys (the caller's ['a] should carry whatever routing the
    evaluation needs). Hooks, all called with the batcher lock
    released: [on_depth] observes the total queue depth after every
    enqueue/drain, [on_key_depth key depth] the submitting/drained
    key's own depth, [on_batch] the size of every dispatched batch,
    [on_share key taken] how many items each key contributed to the
    batch just drained, [before_batch] runs just before each
    evaluation (test seam for forcing queue buildup). All hooks must be
    fast and must not raise. Defaults: [max_batch = 64],
    [max_wait_us = 2000], [capacity = 1024],
    [key_capacity = capacity], [quantum = max 1 (max_batch / 2)].
    Raises [Invalid_argument] if [max_batch], [capacity],
    [key_capacity] or [quantum] is non-positive. *)
val create :
  ?max_batch:int ->
  ?max_wait_us:int ->
  ?capacity:int ->
  ?key_capacity:int ->
  ?quantum:int ->
  ?on_depth:(int -> unit) ->
  ?on_key_depth:(int -> int -> unit) ->
  ?on_batch:(int -> unit) ->
  ?on_share:(int -> int -> unit) ->
  ?before_batch:(unit -> unit) ->
  ('a array -> 'b array) ->
  ('a, 'b) t

(** [submit_many ?key t items] enqueues [items] as one indivisible
    group under fairness key [key] (default 0) and blocks until the
    dispatcher has evaluated them, returning the outputs in item order.
    An empty array returns [Ok [||]] without touching the queue. A
    group larger than [max_batch] is still accepted (it becomes a
    batch of its own) as long as it fits the remaining capacities. *)
val submit_many : ?key:int -> ('a, 'b) t -> 'a array -> ('b array, error) result

(** [submit ?key t item] is [submit_many ?key t [| item |]]
    unwrapped. *)
val submit : ?key:int -> ('a, 'b) t -> 'a -> ('b, error) result

(** [submit_async ?key t items ~notify] enqueues [items] as one
    indivisible group without blocking — the event-loop submission
    path, where the caller cannot park a thread per request. [notify]
    is called exactly once with the group's outcome: on the dispatcher
    thread (no lock held) after the batch runs, or synchronously on the
    caller's thread when the group is rejected
    ([`Overloaded]/[`Shutdown]) or empty. [notify] must not raise;
    exceptions are swallowed to protect the dispatcher. *)
val submit_async :
  ?key:int ->
  ('a, 'b) t ->
  'a array ->
  notify:(('b array, error) result -> unit) ->
  unit

(** [depth t] is the number of items currently queued across all keys
    (diagnostics). *)
val depth : ('a, 'b) t -> int

(** [key_depth t key] is the number of items [key] currently has
    queued; 0 for a key that never submitted. *)
val key_depth : ('a, 'b) t -> int -> int

(** [shutdown t] stops accepting new work ([`Shutdown] thereafter),
    lets the dispatcher drain and answer everything already queued,
    then joins it. Idempotent; safe to call while submitters are still
    blocked — they all get answers, never hang. *)
val shutdown : ('a, 'b) t -> unit
