(** Adaptive micro-batching queue: many submitter threads hand in small
    groups of work items; one dispatcher thread coalesces them into
    batches and runs each batch through a single evaluation call.

    The dispatcher drains the queue as soon as either [max_batch] items
    are waiting or the oldest item has waited [max_wait_us]
    microseconds — so a lone request costs at most one micro-wait of
    latency, while a busy queue amortizes per-batch fixed costs
    (dispatch to the domain pool, cache warm-up) across every waiting
    query. Under load the queue is bounded: submissions that would push
    the total past [capacity] are rejected immediately with
    [`Overloaded], which the HTTP layer maps to [503 Retry-After] —
    backpressure instead of collapse.

    Submitter groups are never split across batches (a batch request is
    answered from exactly one evaluation call), and results come back
    in submission order within each group. *)

type ('a, 'b) t
(** A batcher accepting items of type ['a] and producing one ['b] per
    item. *)

(** Why a submission failed: the queue was full ([`Overloaded]), the
    batcher is shutting down ([`Shutdown]), or the evaluation function
    raised ([`Failed] — carries the exception; the batcher itself keeps
    running). *)
type error = [ `Overloaded | `Shutdown | `Failed of exn ]

(** [create ?max_batch ?max_wait_us ?capacity ?on_depth ?on_batch
    ?before_batch run] starts the dispatcher thread. [run] is called
    with between 1 and [max (max_batch) (largest single group)] items
    and must return exactly one output per input, in order. Hooks:
    [on_depth] observes the queue depth after every enqueue/drain (for
    a gauge) and is always called with the batcher lock released, so it
    may call back into {!depth}, [on_batch] the size of every
    dispatched batch (for a histogram), [before_batch] runs just before
    each evaluation (test seam for forcing queue buildup). All hooks
    must be fast and must not raise. Defaults: [max_batch = 64], [max_wait_us = 2000],
    [capacity = 1024]. Raises [Invalid_argument] if [max_batch] or
    [capacity] is non-positive. *)
val create :
  ?max_batch:int ->
  ?max_wait_us:int ->
  ?capacity:int ->
  ?on_depth:(int -> unit) ->
  ?on_batch:(int -> unit) ->
  ?before_batch:(unit -> unit) ->
  ('a array -> 'b array) ->
  ('a, 'b) t

(** [submit_many t items] enqueues [items] as one indivisible group and
    blocks until the dispatcher has evaluated them, returning the
    outputs in item order. An empty array returns [Ok [||]] without
    touching the queue. A group larger than [max_batch] is still
    accepted (it becomes a batch of its own) as long as it fits the
    remaining [capacity]. *)
val submit_many : ('a, 'b) t -> 'a array -> ('b array, error) result

(** [submit t item] is [submit_many t [| item |]] unwrapped. *)
val submit : ('a, 'b) t -> 'a -> ('b, error) result

(** [submit_async t items ~notify] enqueues [items] as one indivisible
    group without blocking — the event-loop submission path, where the
    caller cannot park a thread per request. [notify] is called exactly
    once with the group's outcome: on the dispatcher thread (no lock
    held) after the batch runs, or synchronously on the caller's thread
    when the group is rejected ([`Overloaded]/[`Shutdown]) or empty.
    [notify] must not raise; exceptions are swallowed to protect the
    dispatcher. *)
val submit_async :
  ('a, 'b) t -> 'a array -> notify:(('b array, error) result -> unit) -> unit

(** [depth t] is the number of items currently queued (diagnostics). *)
val depth : ('a, 'b) t -> int

(** [shutdown t] stops accepting new work ([`Shutdown] thereafter),
    lets the dispatcher drain and answer everything already queued,
    then joins it. Idempotent; safe to call while submitters are still
    blocked — they all get answers, never hang. *)
val shutdown : ('a, 'b) t -> unit
