module J = Prom_jsonx
module Iox = Prom_store.Iox
module Obs = Prom_obs
module Service = Prom.Service
module Telemetry = Prom.Telemetry
module Snapshot = Prom.Snapshot
module Detector = Prom.Detector

type config = {
  port : int;
  max_batch : int;
  max_wait_us : int;
  queue_capacity : int;
  max_body_bytes : int;
  max_connections : int;
}

let default_config =
  {
    port = 0;
    max_batch = 64;
    max_wait_us = 2000;
    queue_capacity = 1024;
    max_body_bytes = 4 * 1024 * 1024;
    max_connections = 256;
  }

type t = {
  config : config;
  service : Service.t;
  registry : Obs.registry;
  telemetry : Telemetry.t option;
  http : Telemetry.Http.http;
  batcher :
    (Prom_linalg.Vec.t * Prom_linalg.Vec.t, Detector.cls_verdict) Batcher.t;
  snapshot_dir : string option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  lock : Mutex.t;
  conns_done : Condition.t;
  mutable conns : int;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  swap_lock : Mutex.t;
}

let port t = t.bound_port
let service t = t.service

(* ------------------------------------------------------------------ *)
(* Request handling. Handlers return
   (status, content_type, body, extra_headers). *)

exception Reject of int * string

let err_obj msg = J.Obj [ ("error", J.Str msg) ]
let json_body obj = J.to_string obj ^ "\n"

let verdict_json (v : Detector.cls_verdict) =
  J.Obj
    [
      ("verdict", J.Str (if v.Detector.drifted then "reject" else "accept"));
      ("predicted", J.Num (float_of_int v.Detector.predicted));
      ("credibility", J.Num v.Detector.mean_credibility);
      ("confidence", J.Num v.Detector.mean_confidence);
      ("drifted", J.Bool v.Detector.drifted);
    ]

let parse_query ~dim ~n_classes j =
  let field name n =
    match Option.bind (J.member name j) J.float_array with
    | None ->
        raise
          (Reject (422, Printf.sprintf "missing or non-numeric %S array" name))
    | Some a when Array.length a <> n ->
        raise
          (Reject
             ( 422,
               Printf.sprintf "%S must have %d elements, got %d" name n
                 (Array.length a) ))
    | Some a -> a
  in
  (field "features" dim, field "proba" n_classes)

let handle_predict t body =
  try
    let j =
      match J.parse body with
      | Ok j -> j
      | Error m -> raise (Reject (400, "invalid JSON: " ^ m))
    in
    let dim, n_classes = Service.dims t.service in
    let parse_one q = parse_query ~dim ~n_classes q in
    let queries, batched =
      match J.member "queries" j with
      | Some (J.Arr items) ->
          (Array.of_list (List.map parse_one items), true)
      | Some _ -> raise (Reject (422, "\"queries\" must be an array"))
      | None -> ([| parse_one j |], false)
    in
    if Array.length queries = 0 then raise (Reject (422, "empty batch"));
    match Batcher.submit_many t.batcher queries with
    | Ok verdicts ->
        let body =
          if batched then
            J.Obj
              [
                ( "results",
                  J.Arr (Array.to_list (Array.map verdict_json verdicts)) );
              ]
          else verdict_json verdicts.(0)
        in
        (200, "application/json", json_body body, [])
    | Error `Overloaded ->
        ( 503,
          "application/json",
          json_body (err_obj "inference queue full"),
          [ ("Retry-After", "1") ] )
    | Error `Shutdown ->
        ( 503,
          "application/json",
          json_body (err_obj "server shutting down"),
          [ ("Retry-After", "1") ] )
    | Error (`Failed e) ->
        ( 500,
          "application/json",
          json_body (err_obj ("inference failed: " ^ Printexc.to_string e)),
          [] )
  with Reject (status, msg) ->
    (status, "application/json", json_body (err_obj msg), [])

let handle_metrics t =
  let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take t.registry) in
  (200, "text/plain; version=0.0.4", text, [])

let handle_healthz t =
  let dim, n_classes = Service.dims t.service in
  let body =
    J.Obj
      [
        ("status", J.Str "ok");
        ("feature_dim", J.Num (float_of_int dim));
        ("n_classes", J.Num (float_of_int n_classes));
        ("swaps", J.Num (float_of_int (Service.generation t.service)));
      ]
  in
  (200, "application/json", json_body body, [])

let handle_swap t =
  match t.snapshot_dir with
  | None ->
      ( 409,
        "application/json",
        json_body (err_obj "no snapshot directory configured"),
        [] )
  | Some dir ->
      Mutex.lock t.swap_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.swap_lock)
        (fun () ->
          match
            Snapshot.load_latest ?telemetry:t.telemetry ~kind:Snapshot.kind_cls
              ~dir ()
          with
          | None ->
              ( 409,
                "application/json",
                json_body (err_obj ("no loadable snapshot in " ^ dir)),
                [] )
          | Some (snap, info) -> (
              match
                Service.swap
                  ~store_generation:info.Prom_store.Store.generation t.service
                  snap
              with
              | () ->
                  let body =
                    J.Obj
                      [
                        ("swapped", J.Bool true);
                        ( "store_generation",
                          J.Num
                            (float_of_int info.Prom_store.Store.generation) );
                        ( "swaps",
                          J.Num (float_of_int (Service.generation t.service))
                        );
                      ]
                  in
                  (200, "application/json", json_body body, [])
              | exception Invalid_argument m ->
                  (409, "application/json", json_body (err_obj m), [])))

let known_path = function
  | "/predict" | "/metrics" | "/healthz" | "/admin/swap" -> true
  | _ -> false

let handle t (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" -> handle_predict t req.Http.req_body
  | "GET", "/metrics" -> handle_metrics t
  | "GET", "/healthz" -> handle_healthz t
  | "POST", "/admin/swap" -> handle_swap t
  | _, p when known_path p ->
      (405, "application/json", json_body (err_obj "method not allowed"), [])
  | _ -> (404, "application/json", json_body (err_obj "not found"), [])

(* ------------------------------------------------------------------ *)
(* Connection lifecycle. One thread per connection, blocking I/O. *)

let observe t ~t0 status =
  Obs.Counter.inc (Telemetry.Http.requests_total t.http status);
  Obs.Histogram.observe
    (Telemetry.Http.request_seconds t.http)
    (Unix.gettimeofday () -. t0)

let respond t fd ~t0 ~status ?content_type ~keep_alive ~extra body =
  Http.write_response fd ~status ?content_type ~extra_headers:extra ~keep_alive
    body;
  observe t ~t0 status

let conn_loop t fd =
  let reader = Http.reader fd in
  let rec loop () =
    if Atomic.get t.stopping && not (Http.buffered reader) then ()
    else
      match Http.wait_readable reader ~timeout:0.1 with
      | `Timeout -> loop ()
      | `Ready -> (
          let t0 = Unix.gettimeofday () in
          match
            Http.read_request ~max_body:t.config.max_body_bytes reader
          with
          | Error `Eof -> ()
          | Error `Too_large ->
              respond t fd ~t0 ~status:413 ~keep_alive:false ~extra:[]
                (json_body (err_obj "request too large"))
          | Error (`Bad msg) ->
              respond t fd ~t0 ~status:400 ~keep_alive:false ~extra:[]
                (json_body (err_obj msg))
          | Ok req ->
              let status, content_type, body, extra = handle t req in
              let keep = Http.keep_alive req && not (Atomic.get t.stopping) in
              respond t fd ~t0 ~status ~content_type ~keep_alive:keep ~extra
                body;
              if keep then loop ())
  in
  (* A connection thread must never take the server down: broken pipes,
     resets and handler bugs all just drop this one connection. *)
  (try loop () with _ -> ());
  Iox.close_noerr fd;
  Mutex.lock t.lock;
  t.conns <- t.conns - 1;
  if t.conns = 0 then Condition.broadcast t.conns_done;
  Mutex.unlock t.lock

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      (* Poll with a timeout instead of blocking in [accept], so [stop]
         never has to interrupt a blocked accept. *)
      match Iox.retry (fun () -> Unix.select [ t.listen_fd ] [] [] 0.1) with
      | exception _ -> if Atomic.get t.stopping then () else loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Iox.retry (fun () -> Unix.accept ~cloexec:true t.listen_fd) with
          | exception _ ->
              if Atomic.get t.stopping then () else loop ()
          | fd, _addr ->
              Mutex.lock t.lock;
              if t.conns >= t.config.max_connections then begin
                Mutex.unlock t.lock;
                (try
                   Http.write_response fd ~status:503
                     ~extra_headers:[ ("Retry-After", "1") ] ~keep_alive:false
                     (json_body (err_obj "too many connections"))
                 with _ -> ());
                Obs.Counter.inc (Telemetry.Http.requests_total t.http 503);
                Iox.close_noerr fd
              end
              else begin
                t.conns <- t.conns + 1;
                Mutex.unlock t.lock;
                ignore (Thread.create (fun () -> conn_loop t fd) ())
              end;
              loop ())
  in
  loop ()

let start ?(config = default_config) ?telemetry ?pool ?snapshot_dir
    ?before_batch service =
  Iox.ignore_sigpipe ();
  let registry =
    match telemetry with
    | Some tel -> Telemetry.registry tel
    | None -> Obs.create_registry ()
  in
  let http = Telemetry.Http.create registry in
  let batcher =
    Batcher.create ~max_batch:config.max_batch ~max_wait_us:config.max_wait_us
      ~capacity:config.queue_capacity
      ~on_depth:(fun d ->
        Obs.Gauge.set (Telemetry.Http.queue_depth http) (float_of_int d))
      ~on_batch:(fun n ->
        Obs.Histogram.observe (Telemetry.Http.batch_size http) (float_of_int n))
      ?before_batch
      (fun queries -> Service.evaluate_batch ?pool service queries)
  in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
     Unix.listen listen_fd 128
   with e ->
     Iox.close_noerr listen_fd;
     Batcher.shutdown batcher;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      config;
      service;
      registry;
      telemetry;
      http;
      batcher;
      snapshot_dir;
      listen_fd;
      bound_port;
      stopping = Atomic.make false;
      lock = Mutex.create ();
      conns_done = Condition.create ();
      conns = 0;
      stopped = false;
      accept_thread = None;
      swap_lock = Mutex.create ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    Mutex.unlock t.lock;
    Atomic.set t.stopping true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    Iox.close_noerr t.listen_fd;
    Mutex.lock t.lock;
    while t.conns > 0 do
      Condition.wait t.conns_done t.lock
    done;
    Mutex.unlock t.lock;
    Batcher.shutdown t.batcher
  end
