module J = Prom_jsonx
module Iox = Prom_store.Iox
module Obs = Prom_obs
module Service = Prom.Service
module Telemetry = Prom.Telemetry
module Snapshot = Prom.Snapshot
module Detector = Prom.Detector
module Tenant = Prom.Tenant

type config = {
  port : int;
  max_batch : int;
  max_wait_us : int;
  queue_capacity : int;
  tenant_capacity : int;
  quantum : int;
  max_body_bytes : int;
  max_connections : int;
  shards : int;
  idle_timeout_s : float;
}

let default_config =
  {
    port = 0;
    max_batch = 64;
    max_wait_us = 2000;
    queue_capacity = 1024;
    tenant_capacity = 1024;
    quantum = 0;
    max_body_bytes = 4 * 1024 * 1024;
    max_connections = 256;
    shards = 1;
    idle_timeout_s = 30.0;
  }

let default_tenant = "default"
let tenant_capacity_env = "PROM_TENANT_CAPACITY"
let quantum_env = "PROM_TENANT_QUANTUM"

(* Environment overrides for the fair-share batching knobs, applied at
   [start] only to fields left at their [default_config] value — an
   explicit caller setting always wins over the environment. *)
let resolve_env config =
  let pick name current default ~lo =
    if current <> default then current
    else
      match Sys.getenv_opt name with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v >= lo -> v
          | _ -> current)
      | None -> current
  in
  {
    config with
    tenant_capacity =
      pick tenant_capacity_env config.tenant_capacity
        default_config.tenant_capacity ~lo:1;
    quantum = pick quantum_env config.quantum default_config.quantum ~lo:1;
  }

(* Past the soft cap ([max_connections]) new connections are still
   accepted just long enough to read one request and answer 503; past
   the hard cap they are closed unanswered — the descriptor budget is
   the resource actually being protected at that point. *)
let overflow_headroom soft = Stdlib.max 64 (soft / 4)

(* How long a connection mid-request may stall the drain once [stop]
   has been called; idle keep-alive connections are closed immediately. *)
let drain_grace_s = 1.0

(* ------------------------------------------------------------------ *)
(* Per-connection state machine.

   Reading --(full request parsed)--> Inflight (predict) or straight to
   Writing (every other endpoint, and predict parse errors);
   Inflight --(batch completion via the shard's self-pipe)--> Writing;
   Writing --(response flushed)--> Reading (keep-alive) or closed.

   Readiness interest follows the phase: Reading polls readability,
   Writing polls writability once a flush hits EAGAIN, Inflight polls
   nothing (the wake pipe re-arms the writer). *)

type conn_phase = Reading | Inflight | Writing

type conn = {
  cfd : Unix.file_descr;
  creader : Http.reader;
  overflow : bool;
  mutable phase : conn_phase;
  mutable out : string;
  mutable out_off : int;
  mutable out_status : int;
  (* Tenant the request in flight resolved to; "" outside any tenant
     (metrics, healthz, unroutable paths). Labels the request counter
     when the response finishes. *)
  mutable out_tenant : string;
  mutable close_after : bool;
  mutable closed : bool;
  mutable last_active : float;
  (* Wall-clock start of the request currently being read/served;
     negative when no request has started. *)
  mutable req_t0 : float;
}

(* A queued response: everything needed to serialize once the event
   loop picks the completion up. *)
type reply = {
  r_status : int;
  r_ctype : string;
  r_body : string;
  r_extra : (string * string) list;
  r_keep : bool;
}

type shard = {
  sid : int;
  loop : Evloop.t;
  s_listen : Unix.file_descr;
  s_wake_r : Unix.file_descr;
  s_wake_w : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  completions : (conn * reply) Queue.t;
  comp_lock : Mutex.t;
  mutable listen_open : bool;
  mutable last_sweep : float;
  mutable drain_t0 : float;
  mutable thread : Thread.t option;
}

type t = {
  config : config;
  tenants : Tenant.t;
  default : Tenant.slot;
  registry : Obs.registry;
  telemetry : Telemetry.t option;
  http : Telemetry.Http.http;
  (* Per-tenant metric handles, indexed by [Tenant.index] (the same
     dense index the batcher uses as the fairness key). *)
  tenant_metrics : Telemetry.Http.tenant array;
  batcher :
    ( Tenant.slot * (Prom_linalg.Vec.t * Prom_linalg.Vec.t),
      Detector.cls_verdict )
    Batcher.t;
  shards : shard array;
  bound_port : int;
  stopping : bool Atomic.t;
  open_conns : int Atomic.t;
  swap_lock : Mutex.t;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let port t = t.bound_port

let service t =
  match Tenant.service t.default with
  | Some s -> s
  | None -> invalid_arg "Server.service: default tenant has no engine"

let tenants t = t.tenants

(* ------------------------------------------------------------------ *)
(* Request handling. Handlers return
   (status, content_type, body, extra_headers). *)

exception Reject of int * string

let err_obj msg = J.Obj [ ("error", J.Str msg) ]
let json_body obj = J.to_string obj ^ "\n"

let verdict_json (v : Detector.cls_verdict) =
  J.Obj
    [
      ("verdict", J.Str (if v.Detector.drifted then "reject" else "accept"));
      ("predicted", J.Num (float_of_int v.Detector.predicted));
      ("credibility", J.Num v.Detector.mean_credibility);
      ("confidence", J.Num v.Detector.mean_confidence);
      ("drifted", J.Bool v.Detector.drifted);
    ]

let parse_query ~dim ~n_classes j =
  let field name n =
    match Option.bind (J.member name j) J.float_array with
    | None ->
        raise
          (Reject (422, Printf.sprintf "missing or non-numeric %S array" name))
    | Some a when Array.length a <> n ->
        raise
          (Reject
             ( 422,
               Printf.sprintf "%S must have %d elements, got %d" name n
                 (Array.length a) ))
    | Some a -> a
  in
  (field "features" dim, field "proba" n_classes)

(* The JSON-parsing half of /predict; raises [Reject] on client errors.
   Submission happens asynchronously in the event loop. *)
let parse_predict service body =
  let j =
    match J.parse body with
    | Ok j -> j
    | Error m -> raise (Reject (400, "invalid JSON: " ^ m))
  in
  let dim, n_classes = Service.dims service in
  let parse_one q = parse_query ~dim ~n_classes q in
  let queries, batched =
    match J.member "queries" j with
    | Some (J.Arr items) -> (Array.of_list (List.map parse_one items), true)
    | Some _ -> raise (Reject (422, "\"queries\" must be an array"))
    | None -> ([| parse_one j |], false)
  in
  if Array.length queries = 0 then raise (Reject (422, "empty batch"));
  (queries, batched)

let unavailable ~keep msg =
  {
    r_status = 503;
    r_ctype = "application/json";
    r_body = json_body (err_obj msg);
    r_extra = [ ("Retry-After", "1") ];
    r_keep = keep;
  }

let predict_reply ~batched ~keep = function
  | Ok verdicts ->
      let body =
        if batched then
          J.Obj
            [
              ( "results",
                J.Arr (Array.to_list (Array.map verdict_json verdicts)) );
            ]
        else verdict_json verdicts.(0)
      in
      {
        r_status = 200;
        r_ctype = "application/json";
        r_body = json_body body;
        r_extra = [];
        r_keep = keep;
      }
  | Error `Overloaded -> unavailable ~keep "inference queue full"
  | Error `Shutdown -> unavailable ~keep:false "server shutting down"
  | Error (`Failed e) ->
      {
        r_status = 500;
        r_ctype = "application/json";
        r_body = json_body (err_obj ("inference failed: " ^ Printexc.to_string e));
        r_extra = [];
        r_keep = keep;
      }

(* Partition one shared batch round back into per-tenant sub-batches:
   each tenant's queries stay in submission order and run through that
   tenant's current engine, so a verdict is bit-identical to the same
   query evaluated against the tenant's service directly. *)
let run_round ?pool items =
  let n = Array.length items in
  let groups = ref [] in
  (* first-seen tenant order; indices accumulate reversed *)
  Array.iteri
    (fun i (slot, _) ->
      match List.assq_opt slot !groups with
      | Some idxs -> idxs := i :: !idxs
      | None -> groups := (slot, ref [ i ]) :: !groups)
    items;
  let out = Array.make n None in
  List.iter
    (fun (slot, idxs) ->
      let idxs = Array.of_list (List.rev !idxs) in
      let queries = Array.map (fun i -> snd items.(i)) idxs in
      let svc =
        match Tenant.service slot with
        | Some s -> s
        | None ->
            (* Unreachable from dispatch (submission requires a serving
               slot) — fail the round rather than invent a verdict. *)
            invalid_arg
              (Printf.sprintf "tenant %S has no serving engine"
                 (Tenant.name slot))
      in
      let verdicts = Service.evaluate_batch ?pool svc queries in
      Array.iteri (fun j i -> out.(i) <- Some verdicts.(j)) idxs)
    (List.rev !groups);
  Array.map (function Some v -> v | None -> assert false) out

let handle_metrics t =
  let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take t.registry) in
  (200, "text/plain; version=0.0.4", text, [])

let tenant_state_json slot =
  J.Obj
    [
      ("tenant", J.Str (Tenant.name slot));
      ("state", J.Str (Tenant.state_name (Tenant.state slot)));
      ("swaps", J.Num (float_of_int (Tenant.swaps slot)));
      ( "generation",
        J.Num
          (match Tenant.service slot with
          | Some s -> float_of_int (Service.generation s)
          | None -> -1.0) );
    ]

let handle_healthz t =
  let dim, n_classes = Service.dims (service t) in
  let body =
    J.Obj
      [
        ("status", J.Str "ok");
        ("feature_dim", J.Num (float_of_int dim));
        ("n_classes", J.Num (float_of_int n_classes));
        ("swaps", J.Num (float_of_int (Service.generation (service t))));
        ( "tenants",
          J.Arr (List.map tenant_state_json (Tenant.slots t.tenants)) );
      ]
  in
  (200, "application/json", json_body body, [])

let handle_tenant_healthz slot =
  (200, "application/json", json_body (tenant_state_json slot), [])

let retry_after_503 msg =
  (503, "application/json", json_body (err_obj msg), [ ("Retry-After", "1") ])

let handle_swap t slot =
  match Tenant.snapshot_dir slot with
  | None ->
      ( 409,
        "application/json",
        json_body (err_obj "no snapshot directory configured"),
        [] )
  | Some dir ->
      Mutex.lock t.swap_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.swap_lock)
        (fun () ->
          match
            Snapshot.load_latest ?telemetry:t.telemetry ~kind:Snapshot.kind_cls
              ~dir ()
          with
          | None ->
              (* Not a conflict: the directory is configured but holds
                 no loadable generation yet (or every generation is
                 corrupt). The snapshot writer may land one any moment,
                 so this is retryable — 503, distinct from the 409
                 configuration errors. *)
              retry_after_503 ("no loadable snapshot in " ^ dir)
          | Some (snap, info) -> (
              let swapped () =
                Tenant.count_swap slot;
                (match t.tenant_metrics.(Tenant.index slot) with
                | m -> Obs.Counter.inc m.Telemetry.Http.tn_swaps
                | exception Invalid_argument _ -> ());
                let body =
                  J.Obj
                    [
                      ("swapped", J.Bool true);
                      ("tenant", J.Str (Tenant.name slot));
                      ( "store_generation",
                        J.Num (float_of_int info.Prom_store.Store.generation) );
                      ( "swaps",
                        J.Num
                          (match Tenant.service slot with
                          | Some s -> float_of_int (Service.generation s)
                          | None -> 0.0) );
                    ]
                in
                (200, "application/json", json_body body, [])
              in
              match Tenant.service slot with
              | Some svc -> (
                  match
                    Service.swap
                      ~store_generation:info.Prom_store.Store.generation svc
                      snap
                  with
                  | () -> swapped ()
                  | exception Invalid_argument m ->
                      (409, "application/json", json_body (err_obj m), []))
              | None -> (
                  (* First snapshot for a Loading tenant: build the
                     engine and bring the slot Ready. *)
                  match Service.of_snapshot ?telemetry:t.telemetry snap with
                  | svc ->
                      Tenant.activate slot svc;
                      swapped ()
                  | exception Invalid_argument m ->
                      (409, "application/json", json_body (err_obj m), []))))

(* ------------------------------------------------------------------ *)
(* Routing. Tenant-scoped paths are [/t/<name>/...]; the bare segment
   is validated before any registry (let alone filesystem) lookup, so
   [.]/[..]/percent-escapes and every other traversal shape die here
   with 404. Unprefixed routes bind to the default tenant. *)

type route =
  | R_predict of Tenant.slot
  | R_swap of Tenant.slot
  | R_healthz_tenant of Tenant.slot
  | R_metrics
  | R_healthz
  | R_not_found
  | R_bad_method of string (* tenant label for the 405 *)

let split_tenant_path path =
  (* "/t/<seg>/<rest>" -> Some (seg, "/<rest>"); "/t/<seg>" -> Some (seg, "") *)
  let pfx = "/t/" in
  let lp = String.length pfx in
  if String.length path > lp && String.sub path 0 lp = pfx then
    let rest = String.sub path lp (String.length path - lp) in
    match String.index_opt rest '/' with
    | Some i ->
        Some (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    | None -> Some (rest, "")
  else None

let route t meth path =
  match split_tenant_path path with
  | Some (seg, sub) -> (
      if not (Tenant.valid_name seg) then R_not_found
      else
        match Tenant.find t.tenants seg with
        | None -> R_not_found
        | Some slot -> (
            match (meth, sub) with
            | "POST", "/predict" -> R_predict slot
            | "POST", "/admin/swap" -> R_swap slot
            | "GET", "/healthz" -> R_healthz_tenant slot
            | _, ("/predict" | "/admin/swap" | "/healthz") ->
                R_bad_method (Tenant.name slot)
            | _ -> R_not_found))
  | None -> (
      match (meth, path) with
      | "POST", "/predict" -> R_predict t.default
      | "POST", "/admin/swap" -> R_swap t.default
      | "GET", "/metrics" -> R_metrics
      | "GET", "/healthz" -> R_healthz
      | _, ("/predict" | "/admin/swap") -> R_bad_method default_tenant
      | _, ("/metrics" | "/healthz") -> R_bad_method ""
      | _ -> R_not_found)

(* ------------------------------------------------------------------ *)
(* Event loop. One systhread per shard; each shard owns its listener
   (SO_REUSEPORT when sharded), its readiness table, its connection
   table and a self-pipe through which batch completions re-arm
   writers. *)

let set_conn_gauge t =
  Obs.Gauge.set
    (Telemetry.Http.open_connections t.http)
    (float_of_int (Atomic.get t.open_conns))

let observe t ~t0 ~tenant status =
  Obs.Counter.inc (Telemetry.Http.requests_total ~tenant t.http status);
  let dt = if t0 < 0.0 then 0.0 else Unix.gettimeofday () -. t0 in
  Obs.Histogram.observe (Telemetry.Http.request_seconds t.http) dt

let wake sh =
  try ignore (Unix.write sh.s_wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | EPIPE | EBADF), _, _) ->
    ()

let drain_wake sh =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read sh.s_wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let close_conn t sh c =
  if not c.closed then begin
    c.closed <- true;
    Evloop.remove sh.loop c.cfd;
    Hashtbl.remove sh.conns c.cfd;
    Iox.close_noerr c.cfd;
    Atomic.decr t.open_conns;
    set_conn_gauge t
  end

(* Flush as much of the pending response as the socket will take.
   Partial writes arm write interest; completion observes the metrics
   and either resumes reading (keep-alive) or closes. *)
let rec flush_out t sh c =
  let len = String.length c.out - c.out_off in
  if len > 0 then
    match Unix.write_substring c.cfd c.out c.out_off len with
    | n ->
        c.out_off <- c.out_off + n;
        if n = len then finish_response t sh c
        else if n > 0 then flush_out t sh c
        else begin
          c.phase <- Writing;
          Evloop.set sh.loop c.cfd ~read:false ~write:true
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        c.phase <- Writing;
        Evloop.set sh.loop c.cfd ~read:false ~write:true
    | exception Unix.Unix_error (EINTR, _, _) -> flush_out t sh c
    | exception Unix.Unix_error _ ->
        (* Peer is gone (EPIPE/ECONNRESET): drop the connection; the
           response cannot be delivered so it is not observed either. *)
        close_conn t sh c
  else finish_response t sh c

and finish_response t sh c =
  observe t ~t0:c.req_t0 ~tenant:c.out_tenant c.out_status;
  c.req_t0 <- -1.0;
  c.out <- "";
  c.out_off <- 0;
  c.out_tenant <- "";
  if c.close_after || Atomic.get t.stopping then close_conn t sh c
  else begin
    c.phase <- Reading;
    c.last_active <- Unix.gettimeofday ();
    Evloop.set sh.loop c.cfd ~read:true ~write:false;
    (* Pipelined request already buffered: serve it now rather than
       waiting for a readiness event that may never come. *)
    if Http.buffered c.creader then parse_loop t sh c
  end

and respond t sh c (reply : reply) =
  c.out <-
    Http.serialize_response ~status:reply.r_status ~content_type:reply.r_ctype
      ~extra_headers:reply.r_extra ~keep_alive:reply.r_keep reply.r_body;
  c.out_off <- 0;
  c.out_status <- reply.r_status;
  c.close_after <- not reply.r_keep;
  c.phase <- Writing;
  Evloop.set sh.loop c.cfd ~read:false ~write:false;
  flush_out t sh c

and dispatch t sh c (req : Http.request) =
  let keep =
    Http.keep_alive req && (not (Atomic.get t.stopping)) && not c.overflow
  in
  let direct (status, ctype, body, extra) =
    respond t sh c
      {
        r_status = status;
        r_ctype = ctype;
        r_body = body;
        r_extra = extra;
        r_keep = keep;
      }
  in
  if c.overflow then
    (* Admission overflow: the request was still read (so the client's
       write never jams against an unread socket) and the 503 is fully
       accounted — counter and latency histogram both tick. *)
    respond t sh c
      {
        r_status = 503;
        r_ctype = "application/json";
        r_body = json_body (err_obj "too many connections");
        r_extra = [ ("Retry-After", "1") ];
        r_keep = false;
      }
  else
    match route t req.Http.meth req.Http.path with
    | R_predict slot -> (
        c.out_tenant <- Tenant.name slot;
        match Tenant.serving slot with
        | None ->
            let msg =
              match Tenant.state slot with
              | Tenant.Draining -> "tenant draining"
              | Tenant.Loading | Tenant.Ready -> "tenant loading"
            in
            respond t sh c (unavailable ~keep:false msg)
        | Some svc -> (
            match parse_predict svc req.Http.req_body with
            | exception Reject (status, msg) ->
                direct (status, "application/json", json_body (err_obj msg), [])
            | queries, batched ->
                c.phase <- Inflight;
                Evloop.set sh.loop c.cfd ~read:false ~write:false;
                let items = Array.map (fun q -> (slot, q)) queries in
                Batcher.submit_async ~key:(Tenant.index slot) t.batcher items
                  ~notify:(fun res ->
                    let reply = predict_reply ~batched ~keep res in
                    Mutex.lock sh.comp_lock;
                    let was_empty = Queue.is_empty sh.completions in
                    Queue.push (c, reply) sh.completions;
                    Mutex.unlock sh.comp_lock;
                    (* One wake byte per empty->nonempty transition is
                       enough: the shard drains the whole queue after
                       each pipe read, so later pushes ride the same
                       wakeup. *)
                    if was_empty then wake sh)))
    | R_swap slot ->
        c.out_tenant <- Tenant.name slot;
        direct (handle_swap t slot)
    | R_healthz_tenant slot ->
        c.out_tenant <- Tenant.name slot;
        direct (handle_tenant_healthz slot)
    | R_metrics -> direct (handle_metrics t)
    | R_healthz -> direct (handle_healthz t)
    | R_bad_method tenant ->
        c.out_tenant <- tenant;
        direct
          (405, "application/json", json_body (err_obj "method not allowed"), [])
    | R_not_found ->
        direct
          (404, "application/json", json_body (err_obj "not found"), [])

and parse_loop t sh c =
  if c.phase = Reading && not c.closed then begin
    if c.req_t0 < 0.0 && Http.buffered c.creader then
      c.req_t0 <- Unix.gettimeofday ();
    match Http.try_read_request ~max_body:t.config.max_body_bytes c.creader with
    | `Need_more -> ()
    | `Err `Eof -> close_conn t sh c
    | `Err (`Bad msg) ->
        respond t sh c
          {
            r_status = 400;
            r_ctype = "application/json";
            r_body = json_body (err_obj msg);
            r_extra = [];
            r_keep = false;
          }
    | `Err (`Too_large which) ->
        (* 431 when the request *head* overflows, 413 when the declared
           body does — clients can act on the distinction. *)
        let status, what =
          match which with
          | `Head -> (431, "request header fields too large")
          | `Body -> (413, "request body too large")
        in
        respond t sh c
          {
            r_status = status;
            r_ctype = "application/json";
            r_body = json_body (err_obj what);
            r_extra = [];
            r_keep = false;
          }
    | `Req req -> dispatch t sh c req
  end

let conn_readable t sh c =
  c.last_active <- Unix.gettimeofday ();
  match Http.fill_once c.creader with
  | `Again -> ()
  | `Eof | `Data _ -> if c.phase = Reading then parse_loop t sh c

let conn_writable t sh c = if c.phase = Writing then flush_out t sh c

let rec accept_burst t sh =
  if (not (Atomic.get t.stopping)) && sh.listen_open then
    match Unix.accept ~cloexec:true sh.s_listen with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        accept_burst t sh
    | exception Unix.Unix_error _ ->
        (* e.g. EMFILE — retry on the next readiness event rather than
           spinning. *)
        ()
    | fd, _addr ->
        let n = 1 + Atomic.fetch_and_add t.open_conns 1 in
        let soft = t.config.max_connections in
        if n > soft + overflow_headroom soft then begin
          Atomic.decr t.open_conns;
          Iox.close_noerr fd
        end
        else begin
          Unix.set_nonblock fd;
          let c =
            {
              cfd = fd;
              creader = Http.reader fd;
              overflow = n > soft;
              phase = Reading;
              out = "";
              out_off = 0;
              out_status = 0;
              out_tenant = "";
              close_after = false;
              closed = false;
              last_active = Unix.gettimeofday ();
              req_t0 = -1.0;
            }
          in
          Hashtbl.replace sh.conns fd c;
          Evloop.set sh.loop fd ~read:true ~write:false;
          set_conn_gauge t;
          accept_burst t sh
        end

let drain_completions t sh =
  let pending = ref [] in
  Mutex.lock sh.comp_lock;
  while not (Queue.is_empty sh.completions) do
    pending := Queue.pop sh.completions :: !pending
  done;
  Mutex.unlock sh.comp_lock;
  List.iter
    (fun (c, reply) ->
      (* The connection may have died while the batch ran; replies to
         closed (or recycled-descriptor) connections are dropped. *)
      match Hashtbl.find_opt sh.conns c.cfd with
      | Some c' when c' == c && c.phase = Inflight -> respond t sh c reply
      | _ -> ())
    (List.rev !pending)

(* Timers: keep-alive idle timeout in steady state; during drain, close
   idle connections immediately and mid-request ones after a short
   grace. Runs at most once per second. *)
let sweep t sh ~now =
  let victims = ref [] in
  if Atomic.get t.stopping then begin
    if sh.drain_t0 < 0.0 then sh.drain_t0 <- now;
    if sh.listen_open then begin
      Evloop.remove sh.loop sh.s_listen;
      Iox.close_noerr sh.s_listen;
      sh.listen_open <- false
    end;
    Hashtbl.iter
      (fun _ c ->
        if
          c.phase = Reading
          && ((not (Http.buffered c.creader))
             || now -. sh.drain_t0 > drain_grace_s)
        then victims := c :: !victims)
      sh.conns
  end
  else if t.config.idle_timeout_s > 0.0 then
    Hashtbl.iter
      (fun _ c ->
        if c.phase = Reading && now -. c.last_active > t.config.idle_timeout_s
        then victims := c :: !victims)
      sh.conns;
  List.iter (fun c -> close_conn t sh c) !victims

let shard_loop t sh =
  Evloop.set sh.loop sh.s_listen ~read:true ~write:false;
  Evloop.set sh.loop sh.s_wake_r ~read:true ~write:false;
  let events = ref [] in
  let running = ref true in
  while !running do
    events := [];
    let nready =
      Evloop.wait sh.loop ~timeout_ms:100 (fun fd ~readable ~writable ~error ->
          events := (fd, readable, writable, error) :: !events)
    in
    let t_proc = Unix.gettimeofday () in
    List.iter
      (fun (fd, readable, writable, error) ->
        if fd = sh.s_wake_r then begin
          if readable then drain_wake sh
        end
        else if fd = sh.s_listen then begin
          if readable || error then accept_burst t sh
        end
        else
          match Hashtbl.find_opt sh.conns fd with
          | None -> ()
          | Some c -> (
              (* A handler bug must cost one connection, never the
                 shard. *)
              try
                if error then close_conn t sh c
                else begin
                  if writable then conn_writable t sh c;
                  if readable && not c.closed then conn_readable t sh c
                end
              with
              | Reject _ | Unix.Unix_error _ | Failure _ | Invalid_argument _
              ->
                close_conn t sh c))
      (List.rev !events);
    drain_completions t sh;
    let now = Unix.gettimeofday () in
    if Atomic.get t.stopping || now -. sh.last_sweep >= 1.0 then begin
      sh.last_sweep <- now;
      sweep t sh ~now
    end;
    if nready > 0 then
      Obs.Histogram.observe
        (Telemetry.Http.evloop_seconds t.http)
        (Unix.gettimeofday () -. t_proc);
    if Atomic.get t.stopping && Hashtbl.length sh.conns = 0 then
      running := false
  done;
  if sh.listen_open then begin
    Iox.close_noerr sh.s_listen;
    sh.listen_open <- false
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let make_listener ~reuseport ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     if reuseport then Unix.setsockopt fd Unix.SO_REUSEPORT true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 512;
     Unix.set_nonblock fd
   with e ->
     Iox.close_noerr fd;
     raise e);
  fd

let start ?(config = default_config) ?telemetry ?pool ?snapshot_dir ?tenants
    ?before_batch service =
  if config.shards < 1 then invalid_arg "Server.start: shards < 1";
  let config = resolve_env config in
  Iox.ignore_sigpipe ();
  let tenants =
    match tenants with Some r -> r | None -> Tenant.create ()
  in
  let default = Tenant.register ?snapshot_dir ~service tenants default_tenant in
  let registry =
    match telemetry with
    | Some tel -> Telemetry.registry tel
    | None -> Obs.create_registry ()
  in
  let http = Telemetry.Http.create registry in
  let slots = Tenant.slots tenants in
  let tenant_metrics =
    Array.of_list
      (List.map
         (fun slot -> Telemetry.Http.tenant_metrics http (Tenant.name slot))
         slots)
  in
  let batcher =
    Batcher.create ~max_batch:config.max_batch ~max_wait_us:config.max_wait_us
      ~capacity:config.queue_capacity ~key_capacity:config.tenant_capacity
      ?quantum:(if config.quantum > 0 then Some config.quantum else None)
      ~on_depth:(fun d ->
        Obs.Gauge.set (Telemetry.Http.queue_depth http) (float_of_int d))
      ~on_key_depth:(fun key d ->
        if key >= 0 && key < Array.length tenant_metrics then
          Obs.Gauge.set
            tenant_metrics.(key).Telemetry.Http.tn_queue_depth
            (float_of_int d))
      ~on_batch:(fun n ->
        Obs.Histogram.observe (Telemetry.Http.batch_size http) (float_of_int n))
      ~on_share:(fun key taken ->
        if key >= 0 && key < Array.length tenant_metrics then
          Obs.Counter.add
            tenant_metrics.(key).Telemetry.Http.tn_batch_share
            (float_of_int taken))
      ?before_batch
      (fun items -> run_round ?pool items)
  in
  let reuseport = config.shards > 1 in
  let listeners = Array.make config.shards Unix.stdin in
  let bound_port =
    try
      listeners.(0) <- make_listener ~reuseport ~port:config.port;
      let bound =
        match Unix.getsockname listeners.(0) with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      for i = 1 to config.shards - 1 do
        listeners.(i) <- make_listener ~reuseport ~port:bound
      done;
      bound
    with e ->
      Array.iter
        (fun fd -> if fd != Unix.stdin then Iox.close_noerr fd)
        listeners;
      Batcher.shutdown batcher;
      raise e
  in
  let shards =
    Array.mapi
      (fun sid listen_fd ->
        let wake_r, wake_w = Unix.pipe ~cloexec:true () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        {
          sid;
          loop = Evloop.create ();
          s_listen = listen_fd;
          s_wake_r = wake_r;
          s_wake_w = wake_w;
          conns = Hashtbl.create 256;
          completions = Queue.create ();
          comp_lock = Mutex.create ();
          listen_open = true;
          last_sweep = Unix.gettimeofday ();
          drain_t0 = -1.0;
          thread = None;
        })
      listeners
  in
  let t =
    {
      config;
      tenants;
      default;
      registry;
      telemetry;
      http;
      tenant_metrics;
      batcher;
      shards;
      bound_port;
      stopping = Atomic.make false;
      open_conns = Atomic.make 0;
      swap_lock = Mutex.create ();
      stop_lock = Mutex.create ();
      stopped = false;
    }
  in
  Array.iter
    (fun sh -> sh.thread <- Some (Thread.create (fun () -> shard_loop t sh) ()))
    shards;
  t

let stop t =
  Mutex.lock t.stop_lock;
  if t.stopped then Mutex.unlock t.stop_lock
  else begin
    t.stopped <- true;
    Mutex.unlock t.stop_lock;
    Atomic.set t.stopping true;
    (* Drain order: every tenant slot is marked Draining (new tenant
       work refused) before the listeners close and before the batcher
       shuts down, so in-flight batches finish against engines whose
       slots already refuse fresh submissions. *)
    List.iter Tenant.drain (Tenant.slots t.tenants);
    Array.iter wake t.shards;
    (* Shard loops exit once their connection tables drain (in-flight
       requests finish; idle connections are swept). The batcher stays
       up meanwhile so pending completions can land. *)
    Array.iter
      (fun sh -> match sh.thread with Some th -> Thread.join th | None -> ())
      t.shards;
    Batcher.shutdown t.batcher;
    Array.iter
      (fun sh ->
        Iox.close_noerr sh.s_wake_r;
        Iox.close_noerr sh.s_wake_w)
      t.shards
  end
