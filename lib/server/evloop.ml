external poll_table :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "prom_evloop_poll"

external poll_one : Unix.file_descr -> int -> int -> int
  = "prom_evloop_poll_one"

let ev_read = 1
let ev_write = 2
let ev_error = 4

(* Registration table as parallel arrays so one stub call polls
   everything without marshalling: [fds.(i)]/[interest.(i)] describe
   slot [i] for [i < n]; [ready.(i)] receives the readiness bits.
   [slots] maps a descriptor back to its slot for O(1) modify/remove
   (removal swaps the last slot into the hole). *)
type t = {
  mutable fds : Unix.file_descr array;
  mutable interest : int array;
  mutable ready : int array;
  mutable n : int;
  slots : (Unix.file_descr, int) Hashtbl.t;
}

let create () =
  {
    fds = Array.make 16 Unix.stdin;
    interest = Array.make 16 0;
    ready = Array.make 16 0;
    n = 0;
    slots = Hashtbl.create 64;
  }

let registered t = t.n

let grow t =
  let cap = Array.length t.fds * 2 in
  let fds = Array.make cap Unix.stdin in
  let interest = Array.make cap 0 in
  Array.blit t.fds 0 fds 0 t.n;
  Array.blit t.interest 0 interest 0 t.n;
  t.fds <- fds;
  t.interest <- interest;
  t.ready <- Array.make cap 0

let bits ~read ~write =
  (if read then ev_read else 0) lor if write then ev_write else 0

let set t fd ~read ~write =
  match Hashtbl.find_opt t.slots fd with
  | Some i -> t.interest.(i) <- bits ~read ~write
  | None ->
      if t.n = Array.length t.fds then grow t;
      t.fds.(t.n) <- fd;
      t.interest.(t.n) <- bits ~read ~write;
      Hashtbl.replace t.slots fd t.n;
      t.n <- t.n + 1

let remove t fd =
  match Hashtbl.find_opt t.slots fd with
  | None -> ()
  | Some i ->
      Hashtbl.remove t.slots fd;
      let last = t.n - 1 in
      if i < last then begin
        t.fds.(i) <- t.fds.(last);
        t.interest.(i) <- t.interest.(last);
        Hashtbl.replace t.slots t.fds.(i) i
      end;
      t.n <- last

let mem t fd = Hashtbl.mem t.slots fd

let wait t ~timeout_ms f =
  let nready = poll_table t.fds t.interest t.ready t.n timeout_ms in
  if nready > 0 then begin
    (* Snapshot the ready descriptors before dispatching: callbacks may
       register or remove descriptors, which permutes the slot table. *)
    let hits = ref [] in
    for i = t.n - 1 downto 0 do
      if t.ready.(i) <> 0 then hits := (t.fds.(i), t.ready.(i)) :: !hits
    done;
    List.iter
      (fun (fd, bits) ->
        (* A callback earlier in this batch may have removed [fd]. *)
        if Hashtbl.mem t.slots fd then
          f fd
            ~readable:(bits land ev_read <> 0)
            ~writable:(bits land ev_write <> 0)
            ~error:(bits land ev_error <> 0))
      !hits
  end;
  nready

let timeout_ms_of_s s =
  if s < 0.0 then -1 else int_of_float (Float.ceil (s *. 1000.0))

let wait_readable fd ~timeout =
  let bits = poll_one fd ev_read (timeout_ms_of_s timeout) in
  if bits <> 0 then `Ready else `Timeout

let wait_writable fd ~timeout =
  let bits = poll_one fd ev_write (timeout_ms_of_s timeout) in
  if bits <> 0 then `Ready else `Timeout
