module Iox = Prom_store.Iox

type request = {
  meth : string;
  path : string;
  version : string;
  req_headers : (string * string) list;
  req_body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

type read_error = [ `Eof | `Bad of string | `Too_large of [ `Head | `Body ] ]

(* Buffered connection reader: bytes live in [buf.(start .. start+len)];
   the prefix before [start] is already consumed and reclaimed by
   compacting before each refill. *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable len : int;
  mutable eof : bool;
}

let reader fd = { fd; buf = Bytes.create 4096; start = 0; len = 0; eof = false }
let buffered r = r.len > 0

let wait_readable r ~timeout =
  if r.len > 0 || r.eof then `Ready else Evloop.wait_readable r.fd ~timeout

(* Make room for [extra] more bytes past the current content. *)
let reserve r extra =
  if r.start + r.len + extra > Bytes.length r.buf then begin
    if r.start > 0 then begin
      Bytes.blit r.buf r.start r.buf 0 r.len;
      r.start <- 0
    end;
    if r.len + extra > Bytes.length r.buf then begin
      let cap = ref (Bytes.length r.buf * 2) in
      while r.len + extra > !cap do
        cap := !cap * 2
      done;
      let nbuf = Bytes.create !cap in
      Bytes.blit r.buf 0 nbuf 0 r.len;
      r.buf <- nbuf
    end
  end

let refill r =
  if not r.eof then begin
    reserve r 4096;
    let n = Iox.read r.fd r.buf (r.start + r.len) 4096 in
    if n = 0 then r.eof <- true else r.len <- r.len + n
  end

(* One read attempt that never blocks on a nonblocking descriptor: the
   event loop calls this when poll reports readability, then re-parses
   from the buffer. *)
let fill_once r =
  if r.eof then `Eof
  else begin
    reserve r 4096;
    match Unix.read r.fd r.buf (r.start + r.len) 4096 with
    | 0 ->
        r.eof <- true;
        `Eof
    | n ->
        r.len <- r.len + n;
        `Data n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Again
  end

let consume r n =
  r.start <- r.start + n;
  r.len <- r.len - n;
  if r.len = 0 then r.start <- 0

(* Index (relative to [r.start]) just past the first CRLFCRLF, if
   buffered. *)
let head_end r =
  let limit = r.start + r.len - 3 in
  let rec scan i =
    if i >= limit then None
    else if
      Bytes.get r.buf i = '\r'
      && Bytes.get r.buf (i + 1) = '\n'
      && Bytes.get r.buf (i + 2) = '\r'
      && Bytes.get r.buf (i + 3) = '\n'
    then Some (i + 4 - r.start)
    else scan (i + 1)
  in
  scan r.start

let lowercase_ascii_inplace = String.lowercase_ascii

let parse_headers lines =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match String.index_opt line ':' with
        | None -> Error (`Bad (Printf.sprintf "malformed header line %S" line))
        | Some colon ->
            let name = lowercase_ascii_inplace (String.sub line 0 colon) in
            let value =
              String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
            in
            if name = "" then Error (`Bad "empty header name")
            else loop ((name, value) :: acc) rest)
  in
  loop [] lines

let header name headers = List.assoc_opt name headers

let split_crlf s =
  (* [s] ends with the CRLF of its last line. *)
  let lines = ref [] in
  let start = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '\r' && s.[!i + 1] = '\n' then begin
      lines := String.sub s !start (!i - !start) :: !lines;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  List.rev !lines

(* Read up to and including the blank line; returns the header block's
   lines. *)
let read_head ~max_header r =
  let rec loop () =
    match head_end r with
    | Some off ->
        if off > max_header then Error (`Too_large `Head)
        else begin
          let head = Bytes.sub_string r.buf r.start off in
          consume r off;
          (* The blank line terminating the head splits to [""]; drop it. *)
          Ok (List.filter (fun l -> l <> "") (split_crlf head))
        end
    | None ->
        if r.len > max_header then Error (`Too_large `Head)
        else if r.eof then
          if r.len = 0 then Error `Eof else Error (`Bad "truncated message head")
        else begin
          refill r;
          loop ()
        end
  in
  loop ()

(* Declared body length from the header block. Duplicate Content-Length
   headers are rejected outright (even when the copies agree): with a
   first-match lookup, a smuggled second length would silently desync
   this parser from any intermediary that honours the other copy. *)
let body_length ~max_body headers =
  if header "transfer-encoding" headers <> None then
    Error (`Bad "chunked transfer encoding not supported")
  else
    match
      List.filter_map
        (fun (name, v) -> if name = "content-length" then Some v else None)
        headers
    with
    | [] -> Ok 0
    | _ :: _ :: _ -> Error (`Bad "duplicate content-length header")
    | [ v ] -> (
        match int_of_string_opt (String.trim v) with
        | None -> Error (`Bad "unparseable content-length")
        | Some n when n < 0 -> Error (`Bad "negative content-length")
        | Some n when n > max_body -> Error (`Too_large `Body)
        | Some n -> Ok n)

let read_body ~max_body r headers =
  match body_length ~max_body headers with
  | Error _ as e -> e
  | Ok 0 -> Ok ""
  | Ok n ->
      let rec fill () =
        if r.len >= n then begin
          let body = Bytes.sub_string r.buf r.start n in
          consume r n;
          Ok body
        end
        else if r.eof then Error (`Bad "truncated body")
        else begin
          refill r;
          fill ()
        end
      in
      fill ()

let split_on_spaces line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let request_of_head = function
  | [] -> Error (`Bad "empty request head")
  | request_line :: header_lines -> (
      match split_on_spaces request_line with
      | [ meth; path; version ] when version = "HTTP/1.1" || version = "HTTP/1.0"
        -> (
          match parse_headers header_lines with
          | Error _ as e -> e
          | Ok req_headers ->
              Ok
                {
                  meth = String.uppercase_ascii meth;
                  path;
                  version;
                  req_headers;
                  req_body = "";
                })
      | _ -> Error (`Bad (Printf.sprintf "malformed request line %S" request_line)))

(* Resumable parse for the event loop: only looks at bytes already
   buffered, never touches the descriptor. Nothing is consumed until
   the full head+body is present, so an incomplete request leaves the
   reader exactly where it was and the parse restarts cheaply on the
   next readability event. *)
let try_read_request ?(max_header = 16 * 1024) ?(max_body = 4 * 1024 * 1024) r =
  match head_end r with
  | None ->
      if r.len > max_header then `Err (`Too_large `Head)
      else if r.eof then
        if r.len = 0 then `Err `Eof else `Err (`Bad "truncated message head")
      else `Need_more
  | Some off ->
      if off > max_header then `Err (`Too_large `Head)
      else begin
        let head = Bytes.sub_string r.buf r.start off in
        let lines = List.filter (fun l -> l <> "") (split_crlf head) in
        match request_of_head lines with
        | Error e -> `Err e
        | Ok req -> (
            match body_length ~max_body req.req_headers with
            | Error e -> `Err e
            | Ok blen ->
                if r.len >= off + blen then begin
                  consume r off;
                  let req_body = Bytes.sub_string r.buf r.start blen in
                  consume r blen;
                  `Req { req with req_body }
                end
                else if r.eof then `Err (`Bad "truncated body")
                else `Need_more)
      end

let read_request ?max_header ?max_body r =
  let rec loop () =
    match try_read_request ?max_header ?max_body r with
    | `Req req -> Ok req
    | `Err e -> Error e
    | `Need_more ->
        refill r;
        loop ()
  in
  loop ()

let read_response ?(max_header = 16 * 1024) ?(max_body = 64 * 1024 * 1024) r =
  match read_head ~max_header r with
  | Error _ as e -> e
  | Ok [] -> Error (`Bad "empty response head")
  | Ok (status_line :: header_lines) -> (
      match split_on_spaces status_line with
      | version :: code :: reason_words
        when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match int_of_string_opt code with
          | None -> Error (`Bad (Printf.sprintf "malformed status line %S" status_line))
          | Some status -> (
              match parse_headers header_lines with
              | Error _ as e -> e
              | Ok resp_headers -> (
                  match read_body ~max_body r resp_headers with
                  | Error _ as e -> e
                  | Ok resp_body ->
                      Ok
                        {
                          status;
                          reason = String.concat " " reason_words;
                          resp_headers;
                          resp_body;
                        })))
      | _ -> Error (`Bad (Printf.sprintf "malformed status line %S" status_line)))

(* [Connection] is a comma-separated token list ("keep-alive, upgrade"
   is common from proxies); matching the raw value as a single token
   misreads every multi-token header. *)
let connection_tokens req =
  match header "connection" req.req_headers with
  | None -> []
  | Some v ->
      List.filter_map
        (fun tok ->
          match String.trim tok with
          | "" -> None
          | t -> Some (lowercase_ascii_inplace t))
        (String.split_on_char ',' v)

let keep_alive req =
  let tokens = connection_tokens req in
  if List.mem "close" tokens then false
  else if req.version = "HTTP/1.0" then List.mem "keep-alive" tokens
  else true

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let serialize_response ~status ?(content_type = "application/json")
    ?(extra_headers = []) ~keep_alive body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n" else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let write_response fd ~status ?content_type ?extra_headers ~keep_alive body =
  Iox.write_string fd
    (serialize_response ~status ?content_type ?extra_headers ~keep_alive body)

let write_request fd ~meth ~path ?(content_type = "application/json")
    ?(extra_headers = []) body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  Buffer.add_string buf "Host: localhost\r\n";
  if body <> "" || meth = "POST" then begin
    Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
    Buffer.add_string buf
      (Printf.sprintf "Content-Length: %d\r\n" (String.length body))
  end;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Iox.write_string fd (Buffer.contents buf)
