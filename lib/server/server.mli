(** Network front-end for the PROM detector: a dependency-free,
    multi-tenant HTTP/1.1 server (plain [Unix] sockets plus systhreads)
    serving many {!Prom.Service} tenants behind one endpoint:

    - [POST /predict] — single query [{"features":[...],"proba":[...]}]
      or batch [{"queries":[...]}]; replies with the committee verdict,
      credibility and confidence per query. Replies are bit-identical
      to calling {!Prom.Service.evaluate_batch} directly on the
      tenant's service.
    - [POST /t/<tenant>/predict] — the same, against a named tenant's
      engine. Unprefixed routes bind to the reserved [default] tenant.
    - [GET /metrics] — Prometheus text exposition of the attached
      registry, including the serving-layer series
      ([prom_http_requests_total{code,tenant}], [prom_http_batch_size],
      [prom_http_queue_depth], [prom_http_request_seconds],
      [prom_http_open_connections],
      [prom_http_evloop_iteration_seconds]) and the per-tenant series
      ([prom_tenant_queue_depth], [prom_tenant_batch_share],
      [prom_tenant_swaps_total], all labeled [{tenant}]).
    - [GET /healthz] — liveness, the default engine's shape, and every
      tenant's lifecycle state; [GET /t/<tenant>/healthz] for one
      tenant.
    - [POST /admin/swap] and [POST /t/<tenant>/admin/swap] — load the
      newest snapshot from the tenant's own snapshot directory and
      hot-swap it in with zero downtime. 409 when the tenant has no
      snapshot directory (or the snapshot's shape is incompatible);
      [503 Retry-After] when the directory holds no loadable
      generation yet — retryable, a writer may land one any moment.

    Tenant path segments are validated against
    {!Prom.Tenant.valid_name} ([[A-Za-z0-9_-]{1,64}]) before any
    lookup: dots, slashes and percent-escapes all answer 404, so a
    request path can never address a snapshot directory outside the
    serving root. Unknown (but well-formed) tenants are 404 too.

    Connections are multiplexed by a poll(2)-backed event loop — one
    systhread per shard, each with its own [SO_REUSEPORT] listener when
    [shards > 1] — so concurrency is bounded by the process's
    descriptor limit, not by [FD_SETSIZE] or by thread count. Sockets
    are nonblocking; each connection is a small state machine that
    resumes HTTP parsing incrementally on readability and flushes its
    pending response on writability. Inference is funneled through one
    fair-share {!Batcher}: concurrent requests across all tenants
    coalesce into shared batch rounds (partitioned back per tenant, one
    [evaluate_batch] per tenant per round, on the shared domain pool)
    under a deficit round-robin quota, so a hot tenant's backlog cannot
    starve a cold tenant's lone request. Batch completions re-arm the
    waiting connections' writers through the owning shard's self-pipe.
    When the batch queue is full — globally ([queue_capacity]) or for
    the submitting tenant ([tenant_capacity]) — the server answers
    [503 Service Unavailable] with [Retry-After] instead of queueing
    unboundedly; beyond [max_connections] new connections get one
    fully-accounted 503 and are closed; malformed or oversized requests
    get 4xx (431 for oversized request heads, 413 for oversized
    bodies); nothing a client sends can crash the process. *)

(** Tunables for one server instance. *)
type config = {
  port : int;  (** TCP port on 127.0.0.1; [0] picks an ephemeral port *)
  max_batch : int;  (** dispatch a batch once this many queries wait *)
  max_wait_us : int;  (** ... or once the oldest has waited this long *)
  queue_capacity : int;  (** queries queued beyond this are 503'd *)
  tenant_capacity : int;
      (** per-tenant queue cap, layered under [queue_capacity]: one
          tenant's queued queries beyond this are 503'd while other
          tenants keep submitting *)
  quantum : int;
      (** deficit-round-robin credit (items) each tenant earns per
          batching sweep; [<= 0] picks [max 1 (max_batch / 2)] *)
  max_body_bytes : int;  (** request bodies above this are 413'd *)
  max_connections : int;  (** concurrent connections beyond this are 503'd *)
  shards : int;
      (** event-loop shards, each a thread with its own [SO_REUSEPORT]
          listener; 1 = single loop, no [SO_REUSEPORT] needed *)
  idle_timeout_s : float;
      (** close keep-alive connections idle longer than this;
          [<= 0.] disables the sweep *)
}

(** [{ port = 0; max_batch = 64; max_wait_us = 2000; queue_capacity =
    1024; tenant_capacity = 1024; quantum = 0; max_body_bytes = 4 MiB;
    max_connections = 256; shards = 1; idle_timeout_s = 30. }]. *)
val default_config : config

(** The reserved tenant name unprefixed routes bind to
    (["default"]). *)
val default_tenant : string

(** Name of the per-tenant queue-cap environment variable
    ([PROM_TENANT_CAPACITY]). Read at {!start}; applies only when
    [config.tenant_capacity] is left at its default, so an explicit
    caller setting always wins. *)
val tenant_capacity_env : string

(** Name of the deficit-round-robin quantum environment variable
    ([PROM_TENANT_QUANTUM]). Read at {!start}; applies only when
    [config.quantum] is left at its default (auto). *)
val quantum_env : string

type t
(** A running server. *)

(** [start ?config ?telemetry ?pool ?snapshot_dir ?tenants
    ?before_batch service] binds, spawns the shard event-loop and
    dispatcher threads, and returns immediately. [service] becomes the
    engine of the reserved [default] tenant, registered into [tenants]
    (a fresh registry when absent) with [snapshot_dir] as its snapshot
    directory; pre-register additional tenants into [tenants] before
    calling [start] — each slot's snapshot directory backs its own
    [/t/<name>/admin/swap]. [telemetry] supplies the registry scraped
    by [/metrics] (a private registry is created when absent, so the
    HTTP series are always recorded). [pool] is the domain pool used
    for [evaluate_batch] (shared default pool when absent).
    [before_batch] is a test seam forwarded to the {!Batcher}. Raises
    [Unix.Unix_error] when the port cannot be bound,
    [Invalid_argument] when [config.shards < 1] or [tenants] already
    contains a ["default"] tenant. *)
val start :
  ?config:config ->
  ?telemetry:Prom.Telemetry.t ->
  ?pool:Prom_parallel.Pool.t ->
  ?snapshot_dir:string ->
  ?tenants:Prom.Tenant.t ->
  ?before_batch:(unit -> unit) ->
  Prom.Service.t ->
  t

(** [port t] is the bound TCP port — the ephemeral port when
    [config.port = 0]. *)
val port : t -> int

(** [service t] is the default tenant's service (e.g. to compare
    verdicts against the direct path in tests). *)
val service : t -> Prom.Service.t

(** [tenants t] is the server's tenant registry — the default tenant
    plus everything pre-registered before {!start}. *)
val tenants : t -> Prom.Tenant.t

(** [stop t] drains gracefully: mark every tenant slot Draining (in
    registration order), close the listeners, close idle keep-alive
    connections immediately, give connections mid-request a short grace
    to finish reading, let every in-flight request finish and its
    response be written, shut the batcher down, join all threads.
    Idempotent. No request whose bytes were accepted is ever
    dropped. *)
val stop : t -> unit
