(** Network front-end for the PROM detector: a dependency-free
    HTTP/1.1 server (plain [Unix] sockets plus systhreads) that turns a
    {!Prom.Service} into four endpoints:

    - [POST /predict] — single query [{"features":[...],"proba":[...]}]
      or batch [{"queries":[...]}]; replies with the committee verdict,
      credibility and confidence per query. Replies are bit-identical
      to calling {!Prom.Service.evaluate_batch} directly.
    - [GET /metrics] — Prometheus text exposition of the attached
      registry, including the serving-layer series
      ([prom_http_requests_total], [prom_http_batch_size],
      [prom_http_queue_depth], [prom_http_request_seconds],
      [prom_http_open_connections],
      [prom_http_evloop_iteration_seconds]).
    - [GET /healthz] — liveness plus the serving engine's shape.
    - [POST /admin/swap] — load the newest snapshot from the configured
      snapshot directory and hot-swap it in with zero downtime.

    Connections are multiplexed by a poll(2)-backed event loop — one
    systhread per shard, each with its own [SO_REUSEPORT] listener when
    [shards > 1] — so concurrency is bounded by the process's
    descriptor limit, not by [FD_SETSIZE] or by thread count. Sockets
    are nonblocking; each connection is a small state machine that
    resumes HTTP parsing incrementally on readability and flushes its
    pending response on writability. Inference is funneled through one
    adaptive {!Batcher}: concurrent requests coalesce into a single
    [evaluate_batch] call on the shared domain pool, and batch
    completions re-arm the waiting connections' writers through the
    owning shard's self-pipe. When the batch queue is full the server
    answers [503 Service Unavailable] with [Retry-After] instead of
    queueing unboundedly; beyond [max_connections] new connections get
    one fully-accounted 503 and are closed; malformed or oversized
    requests get 4xx (431 for oversized request heads, 413 for
    oversized bodies); nothing a client sends can crash the process. *)

(** Tunables for one server instance. *)
type config = {
  port : int;  (** TCP port on 127.0.0.1; [0] picks an ephemeral port *)
  max_batch : int;  (** dispatch a batch once this many queries wait *)
  max_wait_us : int;  (** ... or once the oldest has waited this long *)
  queue_capacity : int;  (** queries queued beyond this are 503'd *)
  max_body_bytes : int;  (** request bodies above this are 413'd *)
  max_connections : int;  (** concurrent connections beyond this are 503'd *)
  shards : int;
      (** event-loop shards, each a thread with its own [SO_REUSEPORT]
          listener; 1 = single loop, no [SO_REUSEPORT] needed *)
  idle_timeout_s : float;
      (** close keep-alive connections idle longer than this;
          [<= 0.] disables the sweep *)
}

(** [{ port = 0; max_batch = 64; max_wait_us = 2000; queue_capacity =
    1024; max_body_bytes = 4 MiB; max_connections = 256; shards = 1;
    idle_timeout_s = 30. }]. *)
val default_config : config

type t
(** A running server. *)

(** [start ?config ?telemetry ?pool ?snapshot_dir ?before_batch service]
    binds, spawns the shard event-loop and dispatcher threads, and
    returns immediately. [telemetry] supplies the registry scraped by
    [/metrics] (a private registry is created when absent, so the HTTP
    series are always recorded). [pool] is the domain pool used for
    [evaluate_batch] (shared default pool when absent). [snapshot_dir]
    enables [POST /admin/swap]; without it the endpoint answers 409.
    [before_batch] is a test seam forwarded to the {!Batcher}. Raises
    [Unix.Unix_error] when the port cannot be bound and
    [Invalid_argument] when [config.shards < 1]. *)
val start :
  ?config:config ->
  ?telemetry:Prom.Telemetry.t ->
  ?pool:Prom_parallel.Pool.t ->
  ?snapshot_dir:string ->
  ?before_batch:(unit -> unit) ->
  Prom.Service.t ->
  t

(** [port t] is the bound TCP port — the ephemeral port when
    [config.port = 0]. *)
val port : t -> int

(** [service t] is the service being served (e.g. to compare verdicts
    against the direct path in tests). *)
val service : t -> Prom.Service.t

(** [stop t] drains gracefully: close the listeners, close idle
    keep-alive connections immediately, give connections mid-request a
    short grace to finish reading, let every in-flight request finish
    and its response be written, shut the batcher down, join all
    threads. Idempotent. No request whose bytes were accepted is ever
    dropped. *)
val stop : t -> unit
