(** Dependency-free HTTP/1.1 framing over [Unix] file descriptors: a
    buffered request/response reader and a response writer — just
    enough protocol for the PROM serving endpoints (identity bodies
    sized by [Content-Length], persistent connections, no
    chunked-transfer or multiline headers). Both sides of the protocol
    live here so the server, the tests and the bench load generator
    parse wire bytes with the same code. *)

(** One parsed request. Header names are lowercased; values are
    trimmed. [body] is the full [Content-Length]-delimited payload. *)
type request = {
  meth : string;  (** request method, uppercase, e.g. ["POST"] *)
  path : string;  (** request target as sent, e.g. ["/predict"] *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  req_headers : (string * string) list;  (** lowercased name, trimmed value *)
  req_body : string;  (** decoded body ([""] when absent) *)
}

(** One parsed response (the client side of the same framing). *)
type response = {
  status : int;  (** status code, e.g. [200] *)
  reason : string;  (** reason phrase, e.g. ["OK"] *)
  resp_headers : (string * string) list;  (** lowercased name, trimmed value *)
  resp_body : string;  (** decoded body *)
}

(** Why a read failed: the peer closed cleanly before a complete
    message ([`Eof]), the bytes are not valid HTTP ([`Bad]), or a limit
    was exceeded — [`Too_large `Head] when the request line + headers
    overflow [max_header] (respond 431 and close), [`Too_large `Body]
    when the declared [Content-Length] exceeds [max_body] (respond 413
    and close). *)
type read_error = [ `Eof | `Bad of string | `Too_large of [ `Head | `Body ] ]

(** A buffered reader over one connection. Buffering is internal to
    the reader, so interleave {!read_request} calls freely with writes
    on the same descriptor — but create only one reader per
    descriptor. *)
type reader

(** [reader fd] wraps [fd] (no I/O happens until the first read). *)
val reader : Unix.file_descr -> reader

(** [buffered r] is true when bytes already read from the socket are
    waiting in the reader — i.e. the next parse can start without
    touching the descriptor (pipelined request). *)
val buffered : reader -> bool

(** [wait_readable r ~timeout] waits (via {!Evloop.wait_readable}, so
    no [FD_SETSIZE] bound) until the reader can make progress or
    [timeout] seconds elapse. Returns immediately when data is already
    {!buffered}. *)
val wait_readable : reader -> timeout:float -> [ `Ready | `Timeout ]

(** [fill_once r] performs exactly one [read] on the descriptor —
    never blocking when the descriptor is nonblocking: [`Data n] bytes
    were appended to the buffer, [`Eof] the peer closed (sticky), or
    [`Again] the read would block ([EAGAIN]/[EINTR]) — retry after the
    next readiness event. *)
val fill_once : reader -> [ `Data of int | `Eof | `Again ]

(** [try_read_request ?max_header ?max_body r] parses one request from
    bytes already buffered, without touching the descriptor — the
    resumable core of the event loop's per-connection state machine.
    [`Need_more] means the request is incomplete: nothing was consumed,
    call {!fill_once} when the socket is next readable and re-parse.
    Limits and validation match {!read_request}. *)
val try_read_request :
  ?max_header:int ->
  ?max_body:int ->
  reader ->
  [ `Req of request | `Need_more | `Err of read_error ]

(** [read_request ?max_header ?max_body r] reads one full request
    (blocking). [max_header] bounds the request line + headers (default
    16 KiB), [max_body] the declared [Content-Length] (default 4 MiB).
    Requests with duplicate [Content-Length] headers are rejected as
    [`Bad] even when the copies agree (request-smuggling hardening).
    All reads restart on [EINTR]. *)
val read_request :
  ?max_header:int -> ?max_body:int -> reader -> (request, read_error) result

(** [read_response ?max_header ?max_body r] reads one full response —
    the client-side mirror of {!read_request}, used by the tests and
    the bench load generator. *)
val read_response :
  ?max_header:int -> ?max_body:int -> reader -> (response, read_error) result

(** [header name msg_headers] looks up a header by lowercase name. *)
val header : string -> (string * string) list -> string option

(** [keep_alive req] — persistent-connection semantics over the
    [Connection] header parsed as a comma-separated token list
    (case-insensitive, whitespace-trimmed): any [close] token wins;
    HTTP/1.1 otherwise defaults to keep-alive; HTTP/1.0 requires an
    explicit [keep-alive] token (so ["keep-alive, upgrade"] counts). *)
val keep_alive : request -> bool

(** [reason_phrase code] is the standard reason phrase for [code]
    (["Unknown"] for unassigned codes). *)
val reason_phrase : int -> string

(** [write_response fd ~status ?content_type ?extra_headers ~keep_alive
    body] serializes and writes one response, including
    [Content-Length] and [Connection]. Raises [Unix.Unix_error] (e.g.
    [EPIPE]) when the peer is gone — never kills the process, since
    the server ignores [SIGPIPE]. *)
val write_response :
  Unix.file_descr ->
  status:int ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  keep_alive:bool ->
  string ->
  unit

(** [serialize_response ~status ?content_type ?extra_headers
    ~keep_alive body] is the wire form {!write_response} would write —
    the event loop buffers it and flushes incrementally as the socket
    accepts bytes. *)
val serialize_response :
  status:int ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  keep_alive:bool ->
  string ->
  string

(** [write_request fd ~meth ~path ?content_type ?extra_headers body]
    serializes and writes one request (client side; always
    keep-alive). *)
val write_request :
  Unix.file_descr ->
  meth:string ->
  path:string ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  string ->
  unit
