type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Shortest decimal that round-trips: integral magnitudes below 1e15
   are exact in both %.0f and float_of_string, so they take the fast
   path; everything else probes increasing precision. 17 significant
   digits always round-trip an IEEE-754 double. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if not (Float.is_finite v) then "null"
  else begin
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s
    else
      let s = Printf.sprintf "%.16g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s) in
  add_escaped buf s;
  Buffer.contents buf

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number v)
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_json buf v;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of int * string

let err pos msg = raise (Parse_error (pos, msg))

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then
      err !pos (Printf.sprintf "expected %C" c)
    else incr pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else err !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then err !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> err !pos "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then err !pos "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then err !pos "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              incr pos;
              let at = !pos - 6 in
              let c = hex4 () in
              (* a high surrogate must pair with a following \uXXXX low
                 surrogate; anything else is not a Unicode scalar *)
              if c >= 0xD800 && c <= 0xDBFF then begin
                if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                then err at "lone high surrogate";
                pos := !pos + 2;
                let c2 = hex4 () in
                if c2 >= 0xDC00 && c2 <= 0xDFFF then
                  add_utf8 buf (0x10000 + ((c - 0xD800) lsl 10) + (c2 - 0xDC00))
                else err at "invalid surrogate pair"
              end
              else if c >= 0xDC00 && c <= 0xDFFF then
                err at "lone low surrogate"
              else add_utf8 buf c
          | c -> err !pos (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> err !pos "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then err !pos "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> err start "unparseable number"
  in
  let rec parse_value depth =
    if depth > 512 then err !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> err !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; loop ()
            | Some ']' -> incr pos
            | _ -> err !pos "expected ',' or ']'"
          in
          loop ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; loop ()
            | Some '}' -> incr pos
            | _ -> err !pos "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then err !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "byte %d: %s" p msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let float_array = function
  | Arr items ->
      let n = List.length items in
      let out = Array.make n 0.0 in
      let ok = ref true in
      List.iteri
        (fun i v ->
          match v with Num x -> out.(i) <- x | _ -> ok := false)
        items;
      if !ok then Some out else None
  | _ -> None
