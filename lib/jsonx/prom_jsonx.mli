(** Minimal dependency-free JSON: one writer and one parser shared by
    every JSON surface of the serving stack — the {!Prom_obs} snapshot
    exposition, the snapshot-store manifests, and the HTTP server's
    request/response bodies — so string escaping and float formatting
    are implemented (and tested) exactly once. *)

(** A JSON value. Object fields keep their emission order; duplicate
    keys are preserved by the parser (first occurrence wins in
    {!member}). *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [number v] renders a finite float with the fewest digits that
    {!Stdlib.float_of_string} parses back to the identical bit pattern:
    integral magnitudes below [1e15] print as integers, everything else
    probes ["%.15g"], ["%.16g"], ["%.17g"] in turn. Non-finite values
    render as ["null"] — JSON has no NaN/infinity literals; callers that
    need them must encode them as strings. *)
val number : float -> string

(** [escape s] is the JSON string-body escaping of [s] (quotes and
    backslashes escaped, control characters as [\uXXXX], all other
    bytes passed through verbatim) — without the surrounding quotes. *)
val escape : string -> string

(** [add_json buf v] appends the compact (no-whitespace) serialization
    of [v] to [buf]. *)
val add_json : Buffer.t -> t -> unit

(** [to_string v] is the compact serialization of [v]. *)
val to_string : t -> string

(** [parse s] parses one JSON value followed only by whitespace.
    Numbers become [Num] (via [float_of_string], so integers parse
    exactly up to 2^53), [\uXXXX] escapes decode to UTF-8 (surrogate
    pairs included). [Error msg] carries a byte offset for malformed
    input. *)
val parse : string -> (t, string) result

(** [member k v] is the value of field [k] when [v] is an object that
    has one, [None] otherwise. *)
val member : string -> t -> t option

(** [to_float v] extracts a [Num]. *)
val to_float : t -> float option

(** [to_string_opt v] extracts a [Str]. *)
val to_string_opt : t -> string option

(** [to_list v] extracts an [Arr]. *)
val to_list : t -> t list option

(** [to_bool v] extracts a [Bool]. *)
val to_bool : t -> bool option

(** [float_array v] extracts an [Arr] of [Num] as a float array;
    [None] when [v] is not an array or any element is not a number. *)
val float_array : t -> float array option
