let nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean a =
  nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  nonempty "variance" a;
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
  acc /. float_of_int (Array.length a)

let sample_variance a =
  if Array.length a < 2 then invalid_arg "Stats.sample_variance: need >= 2 elements";
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
  acc /. float_of_int (Array.length a - 1)

let std a = sqrt (variance a)

let sorted a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let quantile a q =
  nonempty "quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let b = sorted a in
  let n = Array.length b in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then b.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. b.(lo)) +. (frac *. b.(hi))

let median a = quantile a 0.5

let five_number_summary a =
  nonempty "five_number_summary" a;
  (quantile a 0.0, quantile a 0.25, quantile a 0.5, quantile a 0.75, quantile a 1.0)

let geomean a =
  nonempty "geomean" a;
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value") a;
  let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
  exp (acc /. float_of_int (Array.length a))

let histogram a ~bins =
  nonempty "histogram" a;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = Array.fold_left min a.(0) a in
  let hi = Array.fold_left max a.(0) a in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i =
        if width = 0.0 then 0
        else Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(i) <- counts.(i) + 1)
    a;
  counts

let pearson a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.pearson: length mismatch";
  nonempty "pearson" a;
  let ma = mean a and mb = mean b in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun i x ->
      let xa = x -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a;
  if !da = 0.0 || !db = 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let standardize a =
  nonempty "standardize" a;
  let mu = mean a in
  let sigma = std a in
  let sigma = if sigma = 0.0 then 1.0 else sigma in
  (Array.map (fun x -> (x -. mu) /. sigma) a, mu, sigma)

let describe fmt a =
  nonempty "describe" a;
  let mn, q1, md, q3, mx = five_number_summary a in
  Format.fprintf fmt "n=%d mean=%.4f std=%.4f min=%.4f q1=%.4f median=%.4f q3=%.4f max=%.4f"
    (Array.length a) (mean a) (std a) mn q1 md q3 mx

let suffix_sums a =
  let n = Array.length a in
  let out = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    out.(i) <- a.(i) +. out.(i + 1)
  done;
  out
