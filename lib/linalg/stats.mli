(** Descriptive statistics over [float array]s. Functions that require a
    non-empty input raise [Invalid_argument] on an empty array. *)

val mean : float array -> float

(** [variance a] is the population variance (divide by [n]). *)
val variance : float array -> float

(** [sample_variance a] divides by [n - 1]; requires at least two
    elements. *)
val sample_variance : float array -> float

val std : float array -> float

(** [median a] does not modify [a]. *)
val median : float array -> float

(** [quantile a q] is the linear-interpolation quantile for
    [q] in [0, 1]. Raises [Invalid_argument] if [q] is outside that
    range. *)
val quantile : float array -> float -> float

(** [five_number_summary a] is [(min, q1, median, q3, max)] — the data
    behind a box/violin plot. *)
val five_number_summary : float array -> float * float * float * float * float

val geomean : float array -> float

(** [histogram a ~bins] buckets [a] into [bins] equal-width bins over
    [min a, max a] and returns the per-bin counts. A constant array puts
    everything in the first bin. *)
val histogram : float array -> bins:int -> int array

(** [pearson a b] is the Pearson correlation coefficient; 0 when either
    input has zero variance. *)
val pearson : float array -> float array -> float

(** [standardize a] returns [(z, mu, sigma)] with [z] the z-scored copy
    of [a]; [sigma] is clamped to 1 when zero to avoid division by
    zero. *)
val standardize : float array -> float array * float * float

(** [describe fmt a] pretty-prints a one-line summary (n, mean, std,
    five-number summary). *)
val describe : Format.formatter -> float array -> unit

(** [suffix_sums a] is the length [n + 1] array of right-to-left running
    sums: [s.(i) = a.(i) +. s.(i + 1)], [s.(n) = 0]. Accumulation order
    is fixed (descending index), so results are a deterministic
    function of the input — the weighted conformal distance test binary
    searches these sums for its rank mass. *)
val suffix_sums : float array -> float array
