(* Bounded top-k selection over float keys. The comparisons are
   monomorphic and the tie-break is the element index, so a selection is
   a deterministic function of its input — the property the detectors
   rely on to keep batched and sequential evaluation bit-identical. *)

(* Lexicographic (value, index) order. The type annotations matter: they
   specialize the comparisons to floats/ints at compile time (the
   polymorphic versions are C calls that box every float), and inlining
   keeps the arguments unboxed on the hot path. *)
let[@inline] gt (a : float) (i : int) (b : float) (j : int) =
  a > b || (a = b && i > j)

let[@inline] lt (a : float) (i : int) (b : float) (j : int) =
  a < b || (a = b && i < j)

(* A bounded binary max-heap over (value, index) pairs kept in two
   parallel unboxed arrays; the root is the current worst of the k best
   seen so far. Used directly by streaming callers (distance scans) and
   as the sorting engine for the prefix produced by quickselect. *)
type heap = {
  mutable capacity : int;
  mutable vals : float array;
  mutable idxs : int array;
  mutable size : int;
}

let heap_create capacity =
  if capacity < 0 then invalid_arg "Select: negative k";
  { capacity; vals = Array.make (Stdlib.max capacity 1) 0.0;
    idxs = Array.make (Stdlib.max capacity 1) 0; size = 0 }

(* Reuse a heap with a new bound: grows the backing arrays when needed
   and empties the heap, so hot paths keep one heap per domain instead
   of allocating per call. *)
let heap_reset h capacity =
  if capacity < 0 then invalid_arg "Select: negative k";
  if Array.length h.vals < capacity then begin
    h.vals <- Array.make capacity 0.0;
    h.idxs <- Array.make capacity 0
  end;
  h.capacity <- capacity;
  h.size <- 0

(* Both sifts hold the moved element in locals and write it once at its
   final slot — no swaps, no refs, no allocation on the hot path. *)
let sift_up h j0 =
  let v = Array.unsafe_get h.vals j0 and i = Array.unsafe_get h.idxs j0 in
  let rec climb j =
    if j = 0 then j
    else begin
      let parent = (j - 1) / 2 in
      let pv = Array.unsafe_get h.vals parent and pi = Array.unsafe_get h.idxs parent in
      if gt v i pv pi then begin
        Array.unsafe_set h.vals j pv;
        Array.unsafe_set h.idxs j pi;
        climb parent
      end
      else j
    end
  in
  let j = climb j0 in
  Array.unsafe_set h.vals j v;
  Array.unsafe_set h.idxs j i

let sift_down h j0 =
  let v = Array.unsafe_get h.vals j0 and i = Array.unsafe_get h.idxs j0 in
  let rec descend j =
    let l = (2 * j) + 1 in
    if l >= h.size then j
    else begin
      let r = l + 1 in
      let c =
        if
          r < h.size
          && gt (Array.unsafe_get h.vals r) (Array.unsafe_get h.idxs r)
               (Array.unsafe_get h.vals l) (Array.unsafe_get h.idxs l)
        then r
        else l
      in
      let cv = Array.unsafe_get h.vals c and ci = Array.unsafe_get h.idxs c in
      if gt cv ci v i then begin
        Array.unsafe_set h.vals j cv;
        Array.unsafe_set h.idxs j ci;
        descend c
      end
      else j
    end
  in
  let j = descend j0 in
  Array.unsafe_set h.vals j v;
  Array.unsafe_set h.idxs j i

(* Consider element [i] with key [v] for membership in the k smallest. *)
let offer h v i =
  if h.capacity > 0 then
    if h.size < h.capacity then begin
      h.vals.(h.size) <- v;
      h.idxs.(h.size) <- i;
      h.size <- h.size + 1;
      sift_up h (h.size - 1)
    end
    else if gt h.vals.(0) h.idxs.(0) v i then begin
      h.vals.(0) <- v;
      h.idxs.(0) <- i;
      sift_down h 0
    end

(* Saturation test and current worst kept key — the pair pruning
   callers need: a candidate set can only be skipped once the heap is
   full AND the set's lower bound beats the root. *)
let[@inline] heap_is_full h = h.size >= h.capacity

let heap_worst h =
  if h.size = 0 then invalid_arg "Select.heap_worst: empty heap";
  h.vals.(0)

(* Drain the heap into caller-provided scratch, ascending by
   (value, index); returns the element count. Empties the heap without
   allocating — the in-place form of [drain_sorted] for hot paths that
   reuse their result arrays across queries. *)
let drain_into h ~idxs ~vals =
  let n = h.size in
  if Array.length idxs < n || Array.length vals < n then
    invalid_arg "Select.drain_into: scratch too small";
  for slot = n - 1 downto 0 do
    idxs.(slot) <- h.idxs.(0);
    vals.(slot) <- h.vals.(0);
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.vals.(0) <- h.vals.(h.size);
      h.idxs.(0) <- h.idxs.(h.size);
      sift_down h 0
    end
  done;
  n

(* Drain the heap into (index, value) pairs sorted by ascending
   (value, index). Destroys the heap. *)
let drain_sorted h =
  let n = h.size in
  let out = Array.make n (0, 0.0) in
  for slot = n - 1 downto 0 do
    out.(slot) <- (h.idxs.(0), h.vals.(0));
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.vals.(0) <- h.vals.(h.size);
      h.idxs.(0) <- h.idxs.(h.size);
      sift_down h 0
    end
  done;
  out

(* --- Materialized selection: quickselect + heapsorted prefix. ---

   When the keys already live in an array (the detector's per-query
   distance scan), a bounded heap degrades towards a full sort as k
   approaches n — every offer pays an O(log k) sift. A lexicographic
   Hoare quickselect partitions the k smallest into the prefix in O(n),
   after which only those k elements are heapsorted: O(n + k log k)
   total, and the (value, index) order keeps every step deterministic
   even with duplicate keys. *)

let[@inline] swap2 vals idxs a b =
  let va = Array.unsafe_get vals a and ia = Array.unsafe_get idxs a in
  Array.unsafe_set vals a (Array.unsafe_get vals b);
  Array.unsafe_set idxs a (Array.unsafe_get idxs b);
  Array.unsafe_set vals b va;
  Array.unsafe_set idxs b ia

(* Insertion sort for tiny ranges (also the base case of the select). *)
let insertion_sort vals idxs lo hi =
  for a = lo + 1 to hi - 1 do
    let v = Array.unsafe_get vals a and i = Array.unsafe_get idxs a in
    let j = ref (a - 1) in
    while
      !j >= lo && lt v i (Array.unsafe_get vals !j) (Array.unsafe_get idxs !j)
    do
      Array.unsafe_set vals (!j + 1) (Array.unsafe_get vals !j);
      Array.unsafe_set idxs (!j + 1) (Array.unsafe_get idxs !j);
      decr j
    done;
    Array.unsafe_set vals (!j + 1) v;
    Array.unsafe_set idxs (!j + 1) i
  done

(* Median-of-three Hoare partition of [lo, hi): returns j with
   [lo, j] <= pivot <= (j, hi) and j <= hi - 2 (the pivot is not the
   range maximum). All (value, index) keys are distinct, so the split is
   always strict and both callers' recursions terminate. Requires
   hi - lo > 3. *)
let partition_range vals idxs lo hi =
  let mid = lo + ((hi - lo) / 2) in
  let last = hi - 1 in
  (* median-of-three: sort (lo, mid, last) so the pivot at [mid] is
     neither the minimum nor the maximum of the range *)
  if
    lt (Array.unsafe_get vals mid) (Array.unsafe_get idxs mid)
      (Array.unsafe_get vals lo) (Array.unsafe_get idxs lo)
  then swap2 vals idxs lo mid;
  if
    lt (Array.unsafe_get vals last) (Array.unsafe_get idxs last)
      (Array.unsafe_get vals lo) (Array.unsafe_get idxs lo)
  then swap2 vals idxs lo last;
  if
    lt (Array.unsafe_get vals last) (Array.unsafe_get idxs last)
      (Array.unsafe_get vals mid) (Array.unsafe_get idxs mid)
  then swap2 vals idxs mid last;
  let pv = Array.unsafe_get vals mid and pi = Array.unsafe_get idxs mid in
  let a = ref (lo - 1) and b = ref hi in
  let continue_ = ref true in
  while !continue_ do
    incr a;
    while lt (Array.unsafe_get vals !a) (Array.unsafe_get idxs !a) pv pi do
      incr a
    done;
    decr b;
    while lt pv pi (Array.unsafe_get vals !b) (Array.unsafe_get idxs !b) do
      decr b
    done;
    if !a >= !b then continue_ := false else swap2 vals idxs !a !b
  done;
  !b

(* Arrange [lo, hi) so that positions [lo, k) hold its (k - lo) smallest
   elements, in arbitrary order. Requires lo < k < hi. *)
let rec select_range vals idxs lo hi k =
  if hi - lo <= 3 then insertion_sort vals idxs lo hi
  else begin
    let j = partition_range vals idxs lo hi in
    if k <= j then select_range vals idxs lo (j + 1) k
    else if k > j + 1 then select_range vals idxs (j + 1) hi k
  end

(* Max-heap sift-down over the subarray [lo, lo + size), heap indices
   relative to [lo]; the engine of the introsort's depth-limit
   fallback. *)
let sift_down_range vals idxs lo size j0 =
  let v = Array.unsafe_get vals (lo + j0) and i = Array.unsafe_get idxs (lo + j0) in
  let rec descend j =
    let l = (2 * j) + 1 in
    if l >= size then j
    else begin
      let r = l + 1 in
      let c =
        if
          r < size
          && gt
               (Array.unsafe_get vals (lo + r))
               (Array.unsafe_get idxs (lo + r))
               (Array.unsafe_get vals (lo + l))
               (Array.unsafe_get idxs (lo + l))
        then r
        else l
      in
      let cv = Array.unsafe_get vals (lo + c) and ci = Array.unsafe_get idxs (lo + c) in
      if gt cv ci v i then begin
        Array.unsafe_set vals (lo + j) cv;
        Array.unsafe_set idxs (lo + j) ci;
        descend c
      end
      else j
    end
  in
  let j = descend j0 in
  Array.unsafe_set vals (lo + j) v;
  Array.unsafe_set idxs (lo + j) i

let heapsort_range vals idxs lo hi =
  let size = hi - lo in
  if size > 1 then begin
    for j = (size / 2) - 1 downto 0 do
      sift_down_range vals idxs lo size j
    done;
    for e = size - 1 downto 1 do
      swap2 vals idxs lo (lo + e);
      sift_down_range vals idxs lo e 0
    done
  end

(* Ascending introsort of [lo, hi): quicksort on the shared
   median-of-three partition, insertion sort below 16 elements, heapsort
   once the partition depth budget runs out. The keys are distinct, so
   the ascending order — and therefore the result — is the same
   whichever path runs; the quicksort's sequential partition scans are
   what make the kept-prefix sort cheap (the heapsort this replaces as
   the common case jumps across the range on every sift and dominated
   the per-query selection cost). *)
let rec introsort vals idxs lo hi depth =
  if hi - lo <= 16 then insertion_sort vals idxs lo hi
  else if depth = 0 then heapsort_range vals idxs lo hi
  else begin
    let j = partition_range vals idxs lo hi in
    introsort vals idxs lo (j + 1) (depth - 1);
    introsort vals idxs (j + 1) hi (depth - 1)
  end

(* Ascending in-place sort of the first [k] positions. The depth budget
   is 2 * floor(log2 k): a partition sequence that degenerates past it
   hands the range to heapsort, keeping the worst case O(k log k). *)
let sort_prefix vals idxs k =
  if k > 1 then begin
    let depth = ref 0 and m = ref k in
    while !m > 1 do
      incr depth;
      m := !m lsr 1
    done;
    introsort vals idxs 0 k (2 * !depth)
  end

(* Reusable selection workspace. The per-query scratch arrays are large
   enough to be allocated on the major heap; reusing one workspace per
   domain (callers hold it in domain-local storage) keeps the hot path
   from churning the major heap — major churn paces GC slices, and every
   slice is a stop-the-world point that all domains must join, which is
   expensive when domains outnumber cores. *)
type scratch = {
  mutable svals : float array;
  mutable sidxs : int array;
}

let scratch_create () = { svals = [||]; sidxs = [||] }

let scratch_keys s n =
  if n < 0 then invalid_arg "Select.scratch_keys: negative length";
  if Array.length s.svals < n then begin
    s.svals <- Array.make n 0.0;
    s.sidxs <- Array.make n 0
  end;
  s.svals

let scratch_vals s = s.svals
let scratch_idxs s = s.sidxs

(* Arrange the k smallest (value, index) pairs of the keys in
   [scratch_keys s n] into the prefix, ascending. Destroys the key
   order. *)
let select_in_place s ~n ~k =
  if k < 0 || k > n then invalid_arg "Select.select_in_place: bad k";
  if n > Array.length s.svals then invalid_arg "Select.select_in_place: bad n";
  let idxs = s.sidxs in
  for i = 0 to n - 1 do
    idxs.(i) <- i
  done;
  if k > 0 && k < n then select_range s.svals idxs 0 n k;
  sort_prefix s.svals idxs k

(* Paired-array variants of the selection engine, for callers whose ids
   are not array positions (the pruned kNN index gathers member rows
   from surviving clusters, so its candidate ids are row numbers). The
   comparison is the same (value, id) order, so the selected prefix is
   exactly what a dense position-indexed scan would keep. *)

let partition_pairs ~vals ~ids ~n ~k =
  if k < 0 || k > n then invalid_arg "Select.partition_pairs: bad k";
  if n > Array.length vals || n > Array.length ids then
    invalid_arg "Select.partition_pairs: bad n";
  if k > 0 && k < n then select_range vals ids 0 n k

let sort_pairs_prefix ~vals ~ids ~k =
  if k < 0 || k > Array.length vals || k > Array.length ids then
    invalid_arg "Select.sort_pairs_prefix: bad k";
  sort_prefix vals ids k

(* Triple-array variants: same (value, id) selection with a second int
   payload permuted alongside. The comparisons never look at the
   payload, so the selected prefix and its order are exactly the
   paired variant's — the payload just rides along. The pruned index
   uses it to keep each candidate's packed storage position next to its
   row id, which is what lets the calibration tables be read in the
   cluster-contiguous packed layout instead of gathering O(n) memory. *)

let[@inline] swap3 vals ids aux a b =
  let va = Array.unsafe_get vals a
  and ia = Array.unsafe_get ids a
  and xa = Array.unsafe_get aux a in
  Array.unsafe_set vals a (Array.unsafe_get vals b);
  Array.unsafe_set ids a (Array.unsafe_get ids b);
  Array.unsafe_set aux a (Array.unsafe_get aux b);
  Array.unsafe_set vals b va;
  Array.unsafe_set ids b ia;
  Array.unsafe_set aux b xa

let insertion_sort3 vals ids aux lo hi =
  for a = lo + 1 to hi - 1 do
    let v = Array.unsafe_get vals a
    and i = Array.unsafe_get ids a
    and x = Array.unsafe_get aux a in
    let j = ref (a - 1) in
    while !j >= lo && lt v i (Array.unsafe_get vals !j) (Array.unsafe_get ids !j) do
      Array.unsafe_set vals (!j + 1) (Array.unsafe_get vals !j);
      Array.unsafe_set ids (!j + 1) (Array.unsafe_get ids !j);
      Array.unsafe_set aux (!j + 1) (Array.unsafe_get aux !j);
      decr j
    done;
    Array.unsafe_set vals (!j + 1) v;
    Array.unsafe_set ids (!j + 1) i;
    Array.unsafe_set aux (!j + 1) x
  done

let partition_range3 vals ids aux lo hi =
  let mid = lo + ((hi - lo) / 2) in
  let last = hi - 1 in
  if
    lt (Array.unsafe_get vals mid) (Array.unsafe_get ids mid)
      (Array.unsafe_get vals lo) (Array.unsafe_get ids lo)
  then swap3 vals ids aux lo mid;
  if
    lt (Array.unsafe_get vals last) (Array.unsafe_get ids last)
      (Array.unsafe_get vals lo) (Array.unsafe_get ids lo)
  then swap3 vals ids aux lo last;
  if
    lt (Array.unsafe_get vals last) (Array.unsafe_get ids last)
      (Array.unsafe_get vals mid) (Array.unsafe_get ids mid)
  then swap3 vals ids aux mid last;
  let pv = Array.unsafe_get vals mid and pi = Array.unsafe_get ids mid in
  let a = ref (lo - 1) and b = ref hi in
  let continue_ = ref true in
  while !continue_ do
    incr a;
    while lt (Array.unsafe_get vals !a) (Array.unsafe_get ids !a) pv pi do
      incr a
    done;
    decr b;
    while lt pv pi (Array.unsafe_get vals !b) (Array.unsafe_get ids !b) do
      decr b
    done;
    if !a >= !b then continue_ := false else swap3 vals ids aux !a !b
  done;
  !b

let rec select_range3 vals ids aux lo hi k =
  if hi - lo <= 3 then insertion_sort3 vals ids aux lo hi
  else begin
    let j = partition_range3 vals ids aux lo hi in
    if k <= j then select_range3 vals ids aux lo (j + 1) k
    else if k > j + 1 then select_range3 vals ids aux (j + 1) hi k
  end

let sift_down_range3 vals ids aux lo size j0 =
  let v = Array.unsafe_get vals (lo + j0)
  and i = Array.unsafe_get ids (lo + j0)
  and x = Array.unsafe_get aux (lo + j0) in
  let rec descend j =
    let l = (2 * j) + 1 in
    if l >= size then j
    else begin
      let r = l + 1 in
      let c =
        if
          r < size
          && gt
               (Array.unsafe_get vals (lo + r))
               (Array.unsafe_get ids (lo + r))
               (Array.unsafe_get vals (lo + l))
               (Array.unsafe_get ids (lo + l))
        then r
        else l
      in
      let cv = Array.unsafe_get vals (lo + c) and ci = Array.unsafe_get ids (lo + c) in
      if gt cv ci v i then begin
        Array.unsafe_set vals (lo + j) cv;
        Array.unsafe_set ids (lo + j) ci;
        Array.unsafe_set aux (lo + j) (Array.unsafe_get aux (lo + c));
        descend c
      end
      else j
    end
  in
  let j = descend j0 in
  Array.unsafe_set vals (lo + j) v;
  Array.unsafe_set ids (lo + j) i;
  Array.unsafe_set aux (lo + j) x

let heapsort_range3 vals ids aux lo hi =
  let size = hi - lo in
  if size > 1 then begin
    for j = (size / 2) - 1 downto 0 do
      sift_down_range3 vals ids aux lo size j
    done;
    for e = size - 1 downto 1 do
      swap3 vals ids aux lo (lo + e);
      sift_down_range3 vals ids aux lo e 0
    done
  end

let rec introsort3 vals ids aux lo hi depth =
  if hi - lo <= 16 then insertion_sort3 vals ids aux lo hi
  else if depth = 0 then heapsort_range3 vals ids aux lo hi
  else begin
    let j = partition_range3 vals ids aux lo hi in
    introsort3 vals ids aux lo (j + 1) (depth - 1);
    introsort3 vals ids aux (j + 1) hi (depth - 1)
  end

let partition_trips ~vals ~ids ~aux ~n ~k =
  if k < 0 || k > n then invalid_arg "Select.partition_trips: bad k";
  if n > Array.length vals || n > Array.length ids || n > Array.length aux then
    invalid_arg "Select.partition_trips: bad n";
  if k > 0 && k < n then select_range3 vals ids aux 0 n k

let sort_trips_prefix ~vals ~ids ~aux ~k =
  if k < 0 || k > Array.length vals || k > Array.length ids || k > Array.length aux
  then invalid_arg "Select.sort_trips_prefix: bad k";
  if k > 1 then begin
    let depth = ref 0 and m = ref k in
    while !m > 1 do
      incr depth;
      m := !m lsr 1
    done;
    introsort3 vals ids aux 0 k (2 * !depth)
  end

(* Shared driver: the k smallest of [xs] sorted ascending, left in the
   prefix of the returned (vals, idxs) scratch pair. *)
let select_sorted xs k =
  let n = Array.length xs in
  let s = scratch_create () in
  ignore (scratch_keys s n : float array);
  Array.blit xs 0 s.svals 0 n;
  select_in_place s ~n ~k;
  (s.svals, s.sidxs)

let smallest_k xs k =
  if k < 0 then invalid_arg "Select.smallest_k: negative k";
  let k = Stdlib.min k (Array.length xs) in
  if k = 0 then [||]
  else begin
    let _, idxs = select_sorted xs k in
    Array.sub idxs 0 k
  end

let smallest_k_pairs xs k =
  if k < 0 then invalid_arg "Select.smallest_k_pairs: negative k";
  let k = Stdlib.min k (Array.length xs) in
  if k = 0 then [||]
  else begin
    let vals, idxs = select_sorted xs k in
    Array.init k (fun j -> (idxs.(j), vals.(j)))
  end

(* Weighted-selection support: fold per-entry factors into a selection's
   weight prefix. The factor of slot [r] is read at [idxs.(r)] — entry
   ids for a dense selection, packed member-order positions when the
   caller's factor table is permuted into the kNN index's layout — so
   the same kernel serves both the gathered and the gather-free path. *)
let scale_by ~weights ~idxs ~factors ~n =
  if n < 0 || n > Array.length weights || n > Array.length idxs then
    invalid_arg "Select.scale_by: bad n";
  for r = 0 to n - 1 do
    let i = Array.unsafe_get idxs r in
    Array.unsafe_set weights r (Array.unsafe_get weights r *. Array.unsafe_get factors i)
  done
