(** Distance functions over feature vectors. All binary functions raise
    [Invalid_argument] on dimension mismatch. *)

val euclidean : Vec.t -> Vec.t -> float

(** [sq_euclidean a b] is the squared L2 distance — the quantity used in
    PROM's adaptive weighting (Eq. 1 of the paper). *)
val sq_euclidean : Vec.t -> Vec.t -> float

val manhattan : Vec.t -> Vec.t -> float

(** [cosine a b] is 1 - cosine similarity; 1.0 when either vector is
    zero. *)
val cosine : Vec.t -> Vec.t -> float

val chebyshev : Vec.t -> Vec.t -> float

(** [nearest ~dist xs v k] returns the indices of the [k] elements of
    [xs] closest to [v] under [dist], ordered by increasing distance.
    [k] is clamped to the number of candidates. *)
val nearest : dist:(Vec.t -> Vec.t -> float) -> Vec.t array -> Vec.t -> int -> int array

(** [rank_by_distance ~dist xs v] returns all indices of [xs] sorted by
    increasing distance to [v], paired with the distances. Ties are
    broken by index. *)
val rank_by_distance :
  dist:(Vec.t -> Vec.t -> float) -> Vec.t array -> Vec.t -> (int * float) array

(** [top_k ~dist xs v k] is the first [k] entries of
    [rank_by_distance ~dist xs v], computed in O(n log k) via bounded
    top-k selection instead of a full sort. *)
val top_k :
  dist:(Vec.t -> Vec.t -> float) -> Vec.t array -> Vec.t -> int -> (int * float) array
