(** Flat row-major feature matrix. The calibration set's feature
    vectors are packed once into a single unboxed float array so every
    per-query distance scan reads contiguous memory and allocates
    nothing beyond its (bounded) result. This is the representation the
    detectors cache instead of rebuilding [Vec.t array]s per query. *)

type t

(** [of_rows rows] packs the vectors; raises [Invalid_argument] on
    ragged input. An empty array yields an empty matrix. *)
val of_rows : Vec.t array -> t

val length : t -> int

val dim : t -> int

(** [row t i] extracts row [i] as a fresh vector. *)
val row : t -> int -> Vec.t

(** [gather t ids] packs rows [ids.(0)], [ids.(1)], … of [t] into a
    fresh matrix in that order (repeats allowed). Each gathered row
    holds the same floats as its source, so distances against it are
    bit-identical; only the storage position changes. Raises
    [Invalid_argument] on an out-of-range id. *)
val gather : t -> int array -> t

(** [append t rows] is a new matrix with [rows] packed after the
    existing ones. Existing rows keep their indices and storage layout,
    so distances against them are unchanged bit for bit. Appending to an
    empty matrix adopts the rows' dimension; raises [Invalid_argument]
    on ragged input. *)
val append : t -> Vec.t array -> t

(** [sq_dist_row t i v] is the squared Euclidean distance from row [i]
    to [v]. Raises on dimension mismatch. *)
val sq_dist_row : t -> int -> Vec.t -> float

val dist_row : t -> int -> Vec.t -> float

(** [sq_dist_rows t i j] is the squared distance between two rows. *)
val sq_dist_rows : t -> int -> int -> float

(** [nearest ?exclude t v ~k] is the [k] nearest rows to [v] by
    Euclidean distance as (row, distance) pairs, ascending, ties broken
    by row index; row [exclude] is skipped. *)
val nearest : ?exclude:int -> t -> Vec.t -> k:int -> (int * float) array

(** [knn_mean_dist ?exclude t v ~k] is the mean distance from [v] to
    its [k] nearest rows (0 when the matrix is empty) — the conformal
    kNN nonconformity score. *)
val knn_mean_dist : ?exclude:int -> t -> Vec.t -> k:int -> float

(** [knn_mean_dist_rows t ~row ~k] is the leave-one-out score of row
    [row] against the other rows. *)
val knn_mean_dist_rows : t -> row:int -> k:int -> float

(** [argmin_sq t v] is the row index nearest to [v] (squared distance,
    first minimum wins). Raises on an empty matrix. *)
val argmin_sq : t -> Vec.t -> int

(** [sq_dists_into t v out] fills the first [length t] slots of [out]
    (which may be a larger reusable buffer) with the squared distances
    from every row to [v]. *)
val sq_dists_into : t -> Vec.t -> float array -> unit

(** [sq_dists_range t ~r0 ~r1 v out ~off] fills
    [out.(off) .. out.(off + (r1 - r0) - 1)] with the squared distances
    from rows [r0 <= r < r1] to [v] — {!sq_dists_into} restricted to a
    row range and offset into a shared output buffer. One call reranks
    a contiguous row run (e.g. a surviving cluster of the pruned
    index's packed copy) on the native kernel. *)
val sq_dists_range : t -> r0:int -> r1:int -> Vec.t -> float array -> off:int -> unit

(** [sq_dists_block t qs out] fills [out] query-major —
    [out.(q * length t + i)] is the squared distance from row [i] to
    [qs.(q)] — processing the rows in cache-sized tiles that all
    queries share. Every cell is the same kernel as {!sq_dist_row}, so
    the block is bit-identical to [Array.length qs] independent
    {!sq_dists_into} scans. [out] may be larger than
    [Array.length qs * length t]. *)
val sq_dists_block : t -> Vec.t array -> float array -> unit

(** [sq_dists_cross_block a ~r0 ~r1 b out] fills [out] query-major with
    squared distances from rows [r0 <= r < r1] of [a] to every row of
    [b]: [out.((r - r0) * length b + i)] is the distance between [a]'s
    row [r] and [b]'s row [i], bit-identical to extracting the rows and
    calling {!sq_dist_row}. Used to stream one matrix against another
    (e.g. data rows against a centroid matrix) in cache-sized tiles. *)
val sq_dists_cross_block : t -> r0:int -> r1:int -> t -> float array -> unit

(** [sq_dists_rows_block t ~r0 ~r1 out] is the symmetric variant used by
    the O(n²·d) calibration-preparation scans: [out.((r - r0) * length t
    + i)] is the squared distance between rows [r] (for [r0 <= r < r1])
    and [i], bit-identical to {!sq_dist_rows}. *)
val sq_dists_rows_block : t -> r0:int -> r1:int -> float array -> unit
