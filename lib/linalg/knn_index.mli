(** Cluster-pruned exact k-nearest-neighbour index over {!Featmat} rows.

    The index partitions the rows into coarse k-means-style clusters and
    stores, per cluster, its centroid and the radius of its farthest
    member. A query first measures its distance to every centroid
    (O(√n·d) for the default cluster count), then visits clusters in
    ascending order of the triangle-inequality lower bound
    [max 0 (d(q,c) - r_c)]: every row [x] of cluster [c] satisfies
    [d(q,x) >= d(q,c) - r_c], so once the candidate heap holds [k] rows
    and the next cluster's bound (squared, with a conservative
    floating-point margin) exceeds the heap's worst kept distance, that
    cluster — and every later one — cannot contribute and is skipped
    without touching its rows.

    Surviving rows are reranked {e exactly}: each candidate's squared
    distance is computed by the same {!Featmat.sq_dist_row} kernel the
    dense scan uses, and the bounded heap keeps the [k] smallest
    (value, index) pairs — a canonical set independent of visit order —
    so the result is bit-identical to a full scan followed by top-k
    selection. Pruning only decides which rows are {e not} computed;
    it never alters a kept value.

    The index is immutable; {!insert_batch} returns an updated copy and
    triggers a full deterministic rebuild when the appended rows
    outgrow the build-time structure. Construction is deterministic
    (evenly spaced seeding, fixed Lloyd iteration budget), and
    {!export}/{!import} round-trip the exact structure so a restored
    index answers queries bit-identically without rebuilding. *)

type t

(** [build ?n_clusters fm] clusters the rows of [fm] (default cluster
    count ≈ √n, the classical balance between centroid-scan and
    candidate-scan cost). Lloyd iterations run on an evenly spaced
    sample of at most ~16k rows; the final assignment pass covers every
    row. Deterministic: the same matrix always yields the same index.
    Raises [Invalid_argument] on an empty matrix or a non-positive
    [n_clusters]. *)
val build : ?n_clusters:int -> Featmat.t -> t

(** Number of rows covered by the index. *)
val length : t -> int

(** Feature dimension of the indexed rows. *)
val dim : t -> int

(** Number of (non-empty) clusters. *)
val clusters : t -> int

(** Rows appended by {!insert_batch} since the last (re)build — the
    input to the rebuild policy. *)
val inserted_since_build : t -> int

(** [member_order t] is a copy of the index's member permutation: entry
    [m] is the original row id stored at packed position [m] (rows
    grouped cluster-contiguously, ascending within each cluster).
    Sidecar tables permuted by it ([packed.(m) = table.(order.(m))])
    line up with the positions {!query_into}'s [pos] output reports.
    The permutation changes whenever the index value changes
    ({!insert_batch} both with and without a rebuild), so permuted
    sidecars must be rebuilt against the new index. *)
val member_order : t -> int array

(** Per-query pruning effectiveness, accumulated by the caller: rows
    whose exact distance was computed, rows skipped by the cluster
    bound, and clusters skipped whole. *)
type acc = {
  mutable ac_scanned : int;
  mutable ac_rows_pruned : int;
  mutable ac_clusters_pruned : int;
}

(** A fresh all-zero accumulator. *)
val acc_create : unit -> acc

(** Cumulative counters since the index was built or imported (summed
    over all domains; safe to read concurrently with queries). *)
type stats = {
  st_queries : int;
  st_scanned : int;
  st_rows_pruned : int;
  st_clusters_pruned : int;
}

(** [stats t] reads the cumulative counters — a consistent point-in-time
    sum across domains. *)
val stats : t -> stats

(** [query_into t fm q ~k ~idxs ~vals ~off] writes the [k] nearest rows
    to [q] — ascending by (squared distance, row index), exactly the
    prefix a dense scan plus {!Select.select_in_place} would produce —
    into [idxs.(off..)] / [vals.(off..)] and returns the count
    (min [k] (length t)). [fm] must be the matrix the index was built
    over (same row count and dimension — checked). [q] must be in the
    same feature space as the rows. When [stats] is given the query's
    scan/prune counts are added to it (the cumulative {!stats} counters
    update regardless). Safe to call from multiple domains concurrently
    (per-domain scratch; the output slices must not overlap).

    When [pos] is given, [pos.(off..off+k)] additionally receives each
    selected row's {e packed position} — its index in {!member_order},
    i.e. its row in the cluster-contiguous gathered copy the rerank
    scans. Sidecar tables permuted into that order (see
    {!member_order}) can then be read near-contiguously instead of
    gathering entry-order tables at random, which is what makes the
    calibration p-value pass tile-local. The positions are selection
    payload only: they never enter a comparison, so results with and
    without [pos] are bit-identical.

    Raises [Invalid_argument] on shape mismatch or insufficient output
    capacity. *)
val query_into :
  ?stats:acc ->
  ?pos:int array ->
  t ->
  Featmat.t ->
  Vec.t ->
  k:int ->
  idxs:int array ->
  vals:float array ->
  off:int ->
  int

(** [insert_batch t fm ~from_row] extends the index over the rows
    [from_row .. length fm - 1] of [fm] — the matrix the index was
    built over with new rows appended ([from_row] must equal
    [length t]). Each new row joins its nearest cluster (first minimum
    wins) and grows that cluster's radius as needed, so queries remain
    exact. Returns [(t', rebuilt)]: when the appended rows reach half
    the build-time row count, or some cluster grows past 8× the mean
    cluster size, the index is rebuilt from scratch instead
    ([rebuilt = true]) — incremental inserts never degrade query cost
    unboundedly. *)
val insert_batch : t -> Featmat.t -> from_row:int -> t * bool

(** The exact structure of an index, for persistence: centroids are the
    flat row-major matrix, [ex_members] lists row ids grouped by
    cluster (ascending within each cluster) and [ex_offsets] frames the
    groups. Floats round-trip as IEEE bit patterns, so
    [import (export t)] answers queries bit-identically to [t]. *)
type export = {
  ex_dim : int;
  ex_n : int;
  ex_built_n : int;
  ex_centroids : float array;
  ex_radii : float array;
  ex_members : int array;
  ex_offsets : int array;
}

(** [export t] captures the index's exact structure for the snapshot
    codec. *)
val export : t -> export

(** [import e] revalidates the structure ([ex_members] must be a
    permutation of the row ids, [ex_offsets] monotone and consistent,
    radii finite and non-negative, shapes coherent) and rebuilds the
    index without any clustering pass. Raises [Invalid_argument] on
    inconsistent state. *)
val import : export -> t
