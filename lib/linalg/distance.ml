let check a b =
  if Array.length a <> Array.length b then
    invalid_arg "Distance: dimension mismatch"

(* Reference squared distance in the shared 4-lane accumulation order
   (see kernels.mli): element [i] accumulates into lane [i mod 4] and
   the lanes reduce as (l0 + l2) + (l1 + l3).  Written independently of
   Kernels so the parity properties cross-check two implementations of
   the contract rather than one implementation against itself. *)
let sq_euclidean a b =
  check a b;
  let n = Array.length a in
  let l0 = ref 0.0 and l1 = ref 0.0 and l2 = ref 0.0 and l3 = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    match i land 3 with
    | 0 -> l0 := !l0 +. (d *. d)
    | 1 -> l1 := !l1 +. (d *. d)
    | 2 -> l2 := !l2 +. (d *. d)
    | _ -> l3 := !l3 +. (d *. d)
  done;
  (!l0 +. !l2) +. (!l1 +. !l3)

let euclidean a b = sqrt (sq_euclidean a b)

let manhattan a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. abs_float (a.(i) -. b.(i))
  done;
  !acc

let cosine a b =
  check a b;
  let na = Vec.norm a and nb = Vec.norm b in
  if na = 0.0 || nb = 0.0 then 1.0 else 1.0 -. (Vec.dot a b /. (na *. nb))

let chebyshev a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := Stdlib.max !acc (abs_float (a.(i) -. b.(i)))
  done;
  !acc

(* Monomorphic (distance, index) comparator: Float.compare avoids the
   polymorphic-compare tax and the index tie-break makes rankings a
   deterministic function of the input. *)
let compare_ranked (i1, d1) (i2, d2) =
  let c = Float.compare d1 d2 in
  if c <> 0 then c else Int.compare i1 i2

let rank_by_distance ~dist xs v =
  let ranked = Array.mapi (fun i x -> (i, dist x v)) xs in
  Array.sort compare_ranked ranked;
  ranked

let top_k ~dist xs v k =
  let ds = Array.map (fun x -> dist x v) xs in
  Select.smallest_k_pairs ds k

let nearest ~dist xs v k = Array.map fst (top_k ~dist xs v k)
