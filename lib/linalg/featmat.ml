(* Flat row-major feature matrix: the calibration set's vectors packed
   into one unboxed float array so the per-query distance scans touch
   contiguous memory and allocate nothing. *)

type t = { data : float array; n : int; dim : int }

let length t = t.n
let dim t = t.dim

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then { data = [||]; n = 0; dim = 0 }
  else begin
    let dim = Array.length rows.(0) in
    let data = Array.make (n * dim) 0.0 in
    Array.iteri
      (fun i row ->
        if Array.length row <> dim then invalid_arg "Featmat.of_rows: ragged rows";
        Array.blit row 0 data (i * dim) dim)
      rows;
    { data; n; dim }
  end

let row t i =
  if i < 0 || i >= t.n then invalid_arg "Featmat.row: index out of bounds";
  Array.sub t.data (i * t.dim) t.dim

(* Pack the listed rows, in order, into a fresh matrix: row [j] of the
   result holds the same floats as row [ids.(j)] of [t], so distances
   against it are bit-identical — only the storage position changes.
   Used to re-order rows for locality (e.g. cluster-contiguous copies
   for pruned scans). *)
let gather t ids =
  let n = Array.length ids in
  let data = Array.make (n * t.dim) 0.0 in
  Array.iteri
    (fun j i ->
      if i < 0 || i >= t.n then invalid_arg "Featmat.gather: index out of bounds";
      Array.blit t.data (i * t.dim) data (j * t.dim) t.dim)
    ids;
  { data; n; dim = t.dim }

(* Append copies into a fresh matrix: rows already packed keep their
   storage positions, so every existing row index — and every distance
   computed from it — is unchanged. *)
let append t rows =
  let m = Array.length rows in
  if m = 0 then t
  else if t.n = 0 then of_rows rows
  else begin
    let data = Array.make ((t.n + m) * t.dim) 0.0 in
    Array.blit t.data 0 data 0 (t.n * t.dim);
    Array.iteri
      (fun i r ->
        if Array.length r <> t.dim then invalid_arg "Featmat.append: ragged rows";
        Array.blit r 0 data ((t.n + i) * t.dim) t.dim)
      rows;
    { data; n = t.n + m; dim = t.dim }
  end

let check_query t v =
  if Array.length v <> t.dim then invalid_arg "Featmat: dimension mismatch"

(* Squared distance between [a.(oa .. oa+dim)] and [b.(ob .. ob+dim)]
   on the active kernel backend. Every backend follows the 4-lane
   accumulation-order contract (see kernels.mli) that
   [Distance.sq_euclidean] also implements, so the IEEE result is the
   same bit pattern whichever backend runs. Bounds are fixed by
   construction ([i < n] checked by callers via [check_query]/loop
   bounds), so no per-call checking happens here. *)
let[@inline] sq_dist_segs a oa b ob dim = Kernels.sq_dist_segs a oa b ob dim

let sq_dist_row t i v = sq_dist_segs t.data (i * t.dim) v 0 t.dim

let dist_row t i v = sqrt (sq_dist_row t i v)

let sq_dist_rows t i j = sq_dist_segs t.data (i * t.dim) t.data (j * t.dim) t.dim

(* The k nearest rows by Euclidean distance, ties broken by row index.
   Selection runs on squared distances (same ordering); the returned
   distances take the square root afterwards so they match
   [Distance.euclidean] bit for bit. *)
let nearest ?(exclude = -1) t v ~k =
  check_query t v;
  if k < 0 then invalid_arg "Featmat.nearest: negative k";
  let h = Select.heap_create (Stdlib.min k t.n) in
  for i = 0 to t.n - 1 do
    if i <> exclude then Select.offer h (sq_dist_row t i v) i
  done;
  Array.map (fun (i, sq) -> (i, sqrt sq)) (Select.drain_sorted h)

(* Mean distance to the k nearest rows — the conformal kNN
   nonconformity score. Sums ascending to mirror the sort-based
   reference exactly. *)
let knn_mean_dist ?(exclude = -1) t v ~k =
  let near = nearest ~exclude t v ~k in
  let m = Array.length near in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun (_, d) -> acc := !acc +. d) near;
    !acc /. float_of_int m
  end

(* Leave-one-out variant: score of row [row] against all other rows,
   without extracting the row vector. *)
let knn_mean_dist_rows t ~row ~k =
  if row < 0 || row >= t.n then invalid_arg "Featmat.knn_mean_dist_rows: bad row";
  let h = Select.heap_create (Stdlib.min k (Stdlib.max 0 (t.n - 1))) in
  for i = 0 to t.n - 1 do
    if i <> row then Select.offer h (sq_dist_rows t row i) i
  done;
  let near = Select.drain_sorted h in
  let m = Array.length near in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun (_, sq) -> acc := !acc +. sqrt sq) near;
    !acc /. float_of_int m
  end

let argmin_sq t v =
  check_query t v;
  if t.n = 0 then invalid_arg "Featmat.argmin_sq: empty matrix";
  let best = ref 0 and best_d = ref infinity in
  for i = 0 to t.n - 1 do
    let d = sq_dist_row t i v in
    if d < !best_d then begin
      best := i;
      best_d := d
    end
  done;
  !best

let sq_dists_into t v out =
  check_query t v;
  if Array.length out < t.n then invalid_arg "Featmat.sq_dists_into: output too small";
  Kernels.sq_dists_range ~data:t.data ~dim:t.dim ~r0:0 ~r1:t.n ~q:v ~oq:0 ~out ~off:0

(* Range variant writing into a caller-offset slice: rows [r0, r1)
   against [v]. The pruned index reranks each surviving cluster with
   one call over its contiguous packed rows. *)
let sq_dists_range t ~r0 ~r1 v out ~off =
  check_query t v;
  if r0 < 0 || r1 > t.n || r0 > r1 then invalid_arg "Featmat.sq_dists_range: bad row range";
  if off < 0 || Array.length out < off + (r1 - r0) then
    invalid_arg "Featmat.sq_dists_range: output too small";
  Kernels.sq_dists_range ~data:t.data ~dim:t.dim ~r0 ~r1 ~q:v ~oq:0 ~out ~off

(* Rows per cache tile: ~32 KB of row data, so a tile loaded by the
   first query stays resident while the remaining queries stream over
   it. Tiling only reorders which (query, row) cell is computed when;
   every cell is one [sq_dist_segs] call, so block results are
   bit-identical to independent per-query scans. *)
let rows_per_tile dim = Stdlib.max 16 (4096 / Stdlib.max 1 dim)

let sq_dists_block t qs out =
  let nq = Array.length qs in
  Array.iter (fun q -> check_query t q) qs;
  if Array.length out < nq * t.n then
    invalid_arg "Featmat.sq_dists_block: output too small";
  let tile = rows_per_tile t.dim in
  let i0 = ref 0 in
  while !i0 < t.n do
    let i1 = Stdlib.min t.n (!i0 + tile) in
    for q = 0 to nq - 1 do
      let v = Array.unsafe_get qs q in
      Kernels.sq_dists_range ~data:t.data ~dim:t.dim ~r0:!i0 ~r1:i1 ~q:v ~oq:0 ~out
        ~off:((q * t.n) + !i0)
    done;
    i0 := i1
  done

(* Cross-matrix variant: rows [r0, r1) of [a] against every row of [b],
   query-major. The index builder's assignment passes use it to stream
   sample rows against the (small) centroid matrix tile by tile. *)
let sq_dists_cross_block a ~r0 ~r1 b out =
  if r0 < 0 || r1 > a.n || r0 > r1 then
    invalid_arg "Featmat.sq_dists_cross_block: bad row range";
  if a.dim <> b.dim then invalid_arg "Featmat.sq_dists_cross_block: dimension mismatch";
  let nq = r1 - r0 in
  if Array.length out < nq * b.n then
    invalid_arg "Featmat.sq_dists_cross_block: output too small";
  let tile = rows_per_tile b.dim in
  let i0 = ref 0 in
  while !i0 < b.n do
    let i1 = Stdlib.min b.n (!i0 + tile) in
    for q = 0 to nq - 1 do
      Kernels.sq_dists_range ~data:b.data ~dim:b.dim ~r0:!i0 ~r1:i1 ~q:a.data
        ~oq:((r0 + q) * a.dim) ~out ~off:((q * b.n) + !i0)
    done;
    i0 := i1
  done

(* Symmetric variant for the O(n^2 . d) calibration-preparation scans:
   distances from query rows [r0, r1) to every row, without extracting
   the query vectors. [(a-b)] and [(b-a)] negate exactly, so the
   squared cells match [sq_dist_row] against the extracted row bit for
   bit. *)
let sq_dists_rows_block t ~r0 ~r1 out =
  if r0 < 0 || r1 > t.n || r0 > r1 then
    invalid_arg "Featmat.sq_dists_rows_block: bad row range";
  let nq = r1 - r0 in
  if Array.length out < nq * t.n then
    invalid_arg "Featmat.sq_dists_rows_block: output too small";
  let tile = rows_per_tile t.dim in
  let i0 = ref 0 in
  while !i0 < t.n do
    let i1 = Stdlib.min t.n (!i0 + tile) in
    for q = 0 to nq - 1 do
      Kernels.sq_dists_range ~data:t.data ~dim:t.dim ~r0:!i0 ~r1:i1 ~q:t.data
        ~oq:((r0 + q) * t.dim) ~out ~off:((q * t.n) + !i0)
    done;
    i0 := i1
  done
