(* Flat row-major feature matrix: the calibration set's vectors packed
   into one unboxed float array so the per-query distance scans touch
   contiguous memory and allocate nothing. *)

type t = { data : float array; n : int; dim : int }

let length t = t.n
let dim t = t.dim

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then { data = [||]; n = 0; dim = 0 }
  else begin
    let dim = Array.length rows.(0) in
    let data = Array.make (n * dim) 0.0 in
    Array.iteri
      (fun i row ->
        if Array.length row <> dim then invalid_arg "Featmat.of_rows: ragged rows";
        Array.blit row 0 data (i * dim) dim)
      rows;
    { data; n; dim }
  end

let row t i =
  if i < 0 || i >= t.n then invalid_arg "Featmat.row: index out of bounds";
  Array.sub t.data (i * t.dim) t.dim

let check_query t v =
  if Array.length v <> t.dim then invalid_arg "Featmat: dimension mismatch"

let sq_dist_row t i v =
  (* Bounds are fixed by construction ([i < n] checked by callers via
     [check_query]/loop bounds), so the inner loop uses unsafe reads. *)
  let off = i * t.dim in
  let acc = ref 0.0 in
  for j = 0 to t.dim - 1 do
    let d = Array.unsafe_get t.data (off + j) -. Array.unsafe_get v j in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist_row t i v = sqrt (sq_dist_row t i v)

let sq_dist_rows t i j =
  let oi = i * t.dim and oj = j * t.dim in
  let acc = ref 0.0 in
  for c = 0 to t.dim - 1 do
    let d = Array.unsafe_get t.data (oi + c) -. Array.unsafe_get t.data (oj + c) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* The k nearest rows by Euclidean distance, ties broken by row index.
   Selection runs on squared distances (same ordering); the returned
   distances take the square root afterwards so they match
   [Distance.euclidean] bit for bit. *)
let nearest ?(exclude = -1) t v ~k =
  check_query t v;
  if k < 0 then invalid_arg "Featmat.nearest: negative k";
  let h = Select.heap_create (Stdlib.min k t.n) in
  for i = 0 to t.n - 1 do
    if i <> exclude then Select.offer h (sq_dist_row t i v) i
  done;
  Array.map (fun (i, sq) -> (i, sqrt sq)) (Select.drain_sorted h)

(* Mean distance to the k nearest rows — the conformal kNN
   nonconformity score. Sums ascending to mirror the sort-based
   reference exactly. *)
let knn_mean_dist ?(exclude = -1) t v ~k =
  let near = nearest ~exclude t v ~k in
  let m = Array.length near in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun (_, d) -> acc := !acc +. d) near;
    !acc /. float_of_int m
  end

(* Leave-one-out variant: score of row [row] against all other rows,
   without extracting the row vector. *)
let knn_mean_dist_rows t ~row ~k =
  if row < 0 || row >= t.n then invalid_arg "Featmat.knn_mean_dist_rows: bad row";
  let h = Select.heap_create (Stdlib.min k (Stdlib.max 0 (t.n - 1))) in
  for i = 0 to t.n - 1 do
    if i <> row then Select.offer h (sq_dist_rows t row i) i
  done;
  let near = Select.drain_sorted h in
  let m = Array.length near in
  if m = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun (_, sq) -> acc := !acc +. sqrt sq) near;
    !acc /. float_of_int m
  end

let argmin_sq t v =
  check_query t v;
  if t.n = 0 then invalid_arg "Featmat.argmin_sq: empty matrix";
  let best = ref 0 and best_d = ref infinity in
  for i = 0 to t.n - 1 do
    let d = sq_dist_row t i v in
    if d < !best_d then begin
      best := i;
      best_d := d
    end
  done;
  !best

let sq_dists_into t v out =
  check_query t v;
  if Array.length out < t.n then invalid_arg "Featmat.sq_dists_into: output too small";
  for i = 0 to t.n - 1 do
    out.(i) <- sq_dist_row t i v
  done
