(* Cluster-pruned exact kNN over Featmat rows. Pruning uses the
   triangle inequality d(q,x) >= d(q,c) - r_c per cluster; surviving
   rows are reranked with the same sq_dist kernel the dense scan uses
   and selected with the same (value, index) quickselect — so the
   returned top-k is bit-identical to a full scan, pruning only skips
   rows that provably cannot enter it. *)

type t = {
  dim : int;
  n : int;
  built_n : int;  (* rows at the last (re)build; drives the rebuild policy *)
  cents : Featmat.t;  (* cluster centroids, one row each *)
  radii : float array;  (* Euclidean distance to the farthest member *)
  members : int array;  (* row ids grouped by cluster, ascending within *)
  offsets : int array;  (* cluster c owns members.(offsets.(c) .. offsets.(c+1) - 1) *)
  (* Cluster-contiguous copy of the rows (position m holds row
     members.(m)), built lazily from the query matrix: a cluster's
     members are scattered across the row matrix, and at calibration
     sizes the resulting gather is memory-latency-bound — ~3x the cost
     of streaming the same rows sequentially. The copy trades one extra
     n*dim float array for sequential rerank scans; distances are
     bit-identical (same floats, same kernel). The benign first-query
     race just builds the same immutable value twice. *)
  packed : Featmat.t option Atomic.t;
  (* cumulative query counters, sharded nowhere: queries are short, so
     plain atomics cost a few ns each and stay exact across domains *)
  q_queries : int Atomic.t;
  q_scanned : int Atomic.t;
  q_rows_pruned : int Atomic.t;
  q_clusters_pruned : int Atomic.t;
}

let length t = t.n
let dim t = t.dim
let clusters t = Array.length t.radii
let inserted_since_build t = t.n - t.built_n
let member_order t = Array.copy t.members

type acc = {
  mutable ac_scanned : int;
  mutable ac_rows_pruned : int;
  mutable ac_clusters_pruned : int;
}

let acc_create () = { ac_scanned = 0; ac_rows_pruned = 0; ac_clusters_pruned = 0 }

type stats = {
  st_queries : int;
  st_scanned : int;
  st_rows_pruned : int;
  st_clusters_pruned : int;
}

let stats t =
  {
    st_queries = Atomic.get t.q_queries;
    st_scanned = Atomic.get t.q_scanned;
    st_rows_pruned = Atomic.get t.q_rows_pruned;
    st_clusters_pruned = Atomic.get t.q_clusters_pruned;
  }

let fresh_counters () =
  (Atomic.make 0, Atomic.make 0, Atomic.make 0, Atomic.make 0)

(* --- Construction. --- *)

(* Lloyd iterations run on at most this many evenly spaced rows; the
   final assignment pass always covers every row. Centroid quality only
   affects pruning efficiency, never correctness, so a bounded sample
   keeps builds O(n) in the row count. *)
let lloyd_sample_cap = 16384
let lloyd_iters = 6
let max_clusters = 4096

let default_n_clusters n =
  Stdlib.max 1 (Stdlib.min (Stdlib.min n max_clusters)
                  (int_of_float (Float.round (sqrt (float_of_int n)))))

(* Rows per cross-distance block during assignment: bounds the block
   buffer at ~64 KB regardless of cluster count. *)
let assign_block nc = Stdlib.max 1 (8192 / Stdlib.max 1 nc)

(* Assign rows [0, n) of [fm] to their nearest centroid (strict <,
   first minimum wins), writing cluster ids into [assign] and, when
   [maxsq] is given, folding each row's squared distance into its
   cluster's running maximum. *)
let assign_all fm cents assign maxsq =
  let n = Featmat.length fm in
  let nc = Featmat.length cents in
  let block = assign_block nc in
  let buf = Array.make (block * nc) 0.0 in
  let r0 = ref 0 in
  while !r0 < n do
    let r1 = Stdlib.min n (!r0 + block) in
    Featmat.sq_dists_cross_block fm ~r0:!r0 ~r1 cents buf;
    for r = !r0 to r1 - 1 do
      let base = (r - !r0) * nc in
      let best = ref 0 and best_d = ref (Array.unsafe_get buf base) in
      for c = 1 to nc - 1 do
        let d = Array.unsafe_get buf (base + c) in
        if d < !best_d then begin
          best := c;
          best_d := d
        end
      done;
      assign.(r) <- !best;
      match maxsq with
      | None -> ()
      | Some m -> if !best_d > m.(!best) then m.(!best) <- !best_d
    done;
    r0 := r1
  done

(* Group rows by cluster id: counting sort, so members stay ascending
   within each cluster. Returns (members, offsets). *)
let group_members assign n nc =
  let counts = Array.make nc 0 in
  for i = 0 to n - 1 do
    counts.(assign.(i)) <- counts.(assign.(i)) + 1
  done;
  let offsets = Array.make (nc + 1) 0 in
  for c = 0 to nc - 1 do
    offsets.(c + 1) <- offsets.(c) + counts.(c)
  done;
  let members = Array.make n 0 in
  let cursor = Array.copy offsets in
  for i = 0 to n - 1 do
    let c = assign.(i) in
    members.(cursor.(c)) <- i;
    cursor.(c) <- cursor.(c) + 1
  done;
  (members, offsets)

let build ?n_clusters fm =
  let n = Featmat.length fm in
  if n = 0 then invalid_arg "Knn_index.build: empty matrix";
  let dim = Featmat.dim fm in
  let nc =
    match n_clusters with
    | None -> default_n_clusters n
    | Some k ->
        if k < 1 then invalid_arg "Knn_index.build: non-positive n_clusters";
        Stdlib.min k n
  in
  (* Evenly spaced seeding: deterministic, and with rows in storage
     order it spreads the seeds across the set. *)
  let centroids = Array.init nc (fun j -> Featmat.row fm (j * n / nc)) in
  (* Lloyd on an evenly spaced sample, packed once so each iteration
     streams contiguous memory. *)
  let stride = (n + lloyd_sample_cap - 1) / lloyd_sample_cap in
  let sample_n = (n + stride - 1) / stride in
  let sfm =
    if stride = 1 then fm
    else Featmat.of_rows (Array.init sample_n (fun i -> Featmat.row fm (i * stride)))
  in
  let sn = Featmat.length sfm in
  let sassign = Array.make sn (-1) in
  let iter = ref 0 and changed = ref true in
  while !iter < lloyd_iters && !changed do
    let cents = Featmat.of_rows centroids in
    let prev = Array.copy sassign in
    assign_all sfm cents sassign None;
    changed := sassign <> prev;
    if !changed then begin
      (* New centroid = mean of assigned sample rows, accumulated in
         ascending row order (deterministic); empty clusters keep their
         previous centroid. *)
      let sums = Array.make_matrix nc dim 0.0 in
      let counts = Array.make nc 0 in
      for i = 0 to sn - 1 do
        let c = sassign.(i) in
        counts.(c) <- counts.(c) + 1;
        let s = sums.(c) in
        let r = Featmat.row sfm i in
        for j = 0 to dim - 1 do
          s.(j) <- s.(j) +. r.(j)
        done
      done;
      for c = 0 to nc - 1 do
        if counts.(c) > 0 then begin
          let inv = 1.0 /. float_of_int counts.(c) in
          centroids.(c) <- Array.map (fun s -> s *. inv) sums.(c)
        end
      done
    end;
    incr iter
  done;
  (* Final exact pass over every row: assignment, radii, membership. *)
  let cents = Featmat.of_rows centroids in
  let assign = Array.make n 0 in
  let maxsq = Array.make nc 0.0 in
  assign_all fm cents assign (Some maxsq);
  (* Compact away empty clusters so the query loop never wastes a bound
     check on them. *)
  let occupied = Array.make nc false in
  Array.iter (fun c -> occupied.(c) <- true) assign;
  let remap = Array.make nc (-1) in
  let live = ref 0 in
  for c = 0 to nc - 1 do
    if occupied.(c) then begin
      remap.(c) <- !live;
      incr live
    end
  done;
  let nc' = !live in
  let centroids' = Array.make nc' [||] in
  let radii = Array.make nc' 0.0 in
  for c = 0 to nc - 1 do
    if occupied.(c) then begin
      centroids'.(remap.(c)) <- centroids.(c);
      radii.(remap.(c)) <- sqrt maxsq.(c)
    end
  done;
  for i = 0 to n - 1 do
    assign.(i) <- remap.(assign.(i))
  done;
  let members, offsets = group_members assign n nc' in
  let q_queries, q_scanned, q_rows_pruned, q_clusters_pruned = fresh_counters () in
  {
    dim;
    n;
    built_n = n;
    cents = Featmat.of_rows centroids';
    radii;
    members;
    offsets;
    packed = Atomic.make None;
    q_queries;
    q_scanned;
    q_rows_pruned;
    q_clusters_pruned;
  }

(* --- Queries. --- *)

(* Per-domain query workspace: centroid distances, the cluster ordering
   scratch and the gathered-candidate arrays are reused across
   queries. *)
type qscratch = {
  csel : Select.scratch;
  mutable cdists : float array;
  mutable cand_vals : float array;
  mutable cand_ids : int array;
  mutable cand_pos : int array;
}

let qscratch : qscratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        csel = Select.scratch_create ();
        cdists = [||];
        cand_vals = [||];
        cand_ids = [||];
        cand_pos = [||];
      })

let ensure_cand qs ~gathered need =
  if Array.length qs.cand_vals < need then begin
    let cap = Stdlib.max need (Stdlib.max 1024 (2 * Array.length qs.cand_vals)) in
    let nv = Array.make cap 0.0 and ni = Array.make cap 0 and np = Array.make cap 0 in
    Array.blit qs.cand_vals 0 nv 0 gathered;
    Array.blit qs.cand_ids 0 ni 0 gathered;
    Array.blit qs.cand_pos 0 np 0 gathered;
    qs.cand_vals <- nv;
    qs.cand_ids <- ni;
    qs.cand_pos <- np
  end

(* A cluster is skipped only when its squared lower bound clears the
   k-th smallest candidate distance seen so far by a relative margin far
   wider than the kernel's accumulated rounding (~dim * 2^-53 relative),
   so a row whose computed distance lands epsilon below its true value
   can still never displace a kept candidate. Equality is never pruned:
   a row tying the k-th distance could win the index tie-break. *)
let prune_slack = 1.0 -. 1e-9

let query_into ?stats ?pos t fm q ~k ~idxs ~vals ~off =
  if Featmat.length fm <> t.n || Featmat.dim fm <> t.dim then
    invalid_arg "Knn_index.query_into: matrix does not match the index";
  if k < 0 then invalid_arg "Knn_index.query_into: negative k";
  let k = Stdlib.min k t.n in
  if k = 0 then 0
  else begin
    if Array.length idxs < off + k || Array.length vals < off + k then
      invalid_arg "Knn_index.query_into: output too small";
    (match pos with
    | Some p when Array.length p < off + k ->
        invalid_arg "Knn_index.query_into: pos output too small"
    | _ -> ());
    let qs = Domain.DLS.get qscratch in
    let nc = Array.length t.radii in
    if Array.length qs.cdists < nc then qs.cdists <- Array.make nc 0.0;
    Featmat.sq_dists_into t.cents q qs.cdists;
    (* Order clusters by ascending squared lower bound; the bound is
       monotone along that order, so pruning is a single cut point. *)
    let keys = Select.scratch_keys qs.csel nc in
    for c = 0 to nc - 1 do
      let lb = sqrt (Array.unsafe_get qs.cdists c) -. Array.unsafe_get t.radii c in
      keys.(c) <- (if lb > 0.0 then lb *. lb else 0.0)
    done;
    Select.select_in_place qs.csel ~n:nc ~k:nc;
    let cvals = Select.scratch_vals qs.csel and cidx = Select.scratch_idxs qs.csel in
    let packed =
      match Atomic.get t.packed with
      | Some p -> p
      | None ->
          let p = Featmat.gather fm t.members in
          Atomic.set t.packed (Some p);
          p
    in
    (* Gather surviving rows as flat (distance, row) candidates and
       quickselect the k smallest, instead of streaming every row
       through a bounded heap: candidates arrive from the nearest
       clusters first, so with a heap nearly every offer paid an
       O(log k) sift — at the calibration keep sizes (k ~ n/100) that
       dominated the whole query. Re-selection after a cluster visit
       re-tightens the prune threshold; the geometric schedule keeps
       total selection work linear in the gathered count even when
       pruning never fires. A stale threshold between re-selections is
       only ever too large, so it prunes less, never wrongly. *)
    let gathered = ref 0 and visited = ref 0 in
    let worst = ref infinity and have_worst = ref false in
    let next_select = ref k in
    let ci = ref 0 and stop = ref false in
    while (not !stop) && !ci < nc do
      let lb2 = Array.unsafe_get cvals !ci in
      if !have_worst && lb2 *. prune_slack > !worst then stop := true
      else begin
        let c = Array.unsafe_get cidx !ci in
        let m0 = Array.unsafe_get t.offsets c
        and m1 = Array.unsafe_get t.offsets (c + 1) in
        ensure_cand qs ~gathered:!gathered (!gathered + (m1 - m0));
        let cv = qs.cand_vals and cids = qs.cand_ids and cpos = qs.cand_pos in
        (* One range-kernel call reranks the whole cluster (its packed
           rows are contiguous); ids and packed positions follow in a
           second, branch-free pass. *)
        Featmat.sq_dists_range packed ~r0:m0 ~r1:m1 q cv ~off:!gathered;
        let g = ref !gathered in
        for m = m0 to m1 - 1 do
          Array.unsafe_set cids !g (Array.unsafe_get t.members m);
          Array.unsafe_set cpos !g m;
          incr g
        done;
        gathered := !g;
        incr visited;
        incr ci;
        if !gathered >= k && !gathered >= !next_select then begin
          Select.partition_trips ~vals:cv ~ids:cids ~aux:cpos ~n:!gathered ~k;
          let w = ref (Array.unsafe_get cv 0) in
          for j = 1 to k - 1 do
            let v = Array.unsafe_get cv j in
            if v > !w then w := v
          done;
          worst := !w;
          have_worst := true;
          next_select := 2 * !gathered
        end
      end
    done;
    let scanned = gathered in
    let clusters_pruned = nc - !visited in
    let rows_pruned = t.n - !scanned in
    Atomic.incr t.q_queries;
    ignore (Atomic.fetch_and_add t.q_scanned !scanned : int);
    ignore (Atomic.fetch_and_add t.q_rows_pruned rows_pruned : int);
    ignore (Atomic.fetch_and_add t.q_clusters_pruned clusters_pruned : int);
    (match stats with
    | None -> ()
    | Some a ->
        a.ac_scanned <- a.ac_scanned + !scanned;
        a.ac_rows_pruned <- a.ac_rows_pruned + rows_pruned;
        a.ac_clusters_pruned <- a.ac_clusters_pruned + clusters_pruned);
    (* Either pruning stopped (so at least k candidates were gathered)
       or every cluster was visited (so all n >= k rows were): the
       ascending k-prefix is the exact top-k. The packed positions ride
       along as selection payload — they never enter a comparison, so
       the kept prefix is identical to the pairs-only selection. *)
    Select.partition_trips ~vals:qs.cand_vals ~ids:qs.cand_ids ~aux:qs.cand_pos
      ~n:!gathered ~k;
    Select.sort_trips_prefix ~vals:qs.cand_vals ~ids:qs.cand_ids ~aux:qs.cand_pos ~k;
    Array.blit qs.cand_ids 0 idxs off k;
    Array.blit qs.cand_vals 0 vals off k;
    (match pos with Some p -> Array.blit qs.cand_pos 0 p off k | None -> ());
    k
  end

(* --- Incremental maintenance. --- *)

(* Rebuild once appends reach half the build-time size or a cluster
   grows past 8x the mean: inserts only ever widen radii (weakening
   bounds), so unbounded drift would erode pruning without ever
   breaking exactness. *)
let rebuild_due t =
  let inserted = t.n - t.built_n in
  if 2 * inserted >= t.built_n then true
  else begin
    let nc = Array.length t.radii in
    let mean = t.n / Stdlib.max 1 nc in
    let worst = ref 0 in
    for c = 0 to nc - 1 do
      let size = t.offsets.(c + 1) - t.offsets.(c) in
      if size > !worst then worst := size
    done;
    !worst > 8 * Stdlib.max 1 mean
  end

let insert_batch t fm ~from_row =
  if from_row <> t.n then invalid_arg "Knn_index.insert_batch: from_row mismatch";
  if Featmat.dim fm <> t.dim then invalid_arg "Knn_index.insert_batch: dimension mismatch";
  let n' = Featmat.length fm in
  if n' < t.n then invalid_arg "Knn_index.insert_batch: matrix shrank";
  if n' = t.n then (t, false)
  else begin
    let nc = Array.length t.radii in
    let added = n' - t.n in
    let assign = Array.make added 0 in
    let radii = Array.copy t.radii in
    let cd = Array.make nc 0.0 in
    for a = 0 to added - 1 do
      let v = Featmat.row fm (t.n + a) in
      Featmat.sq_dists_into t.cents v cd;
      let best = ref 0 and best_d = ref cd.(0) in
      for c = 1 to nc - 1 do
        if cd.(c) < !best_d then begin
          best := c;
          best_d := cd.(c)
        end
      done;
      assign.(a) <- !best;
      let r = sqrt !best_d in
      if r > radii.(!best) then radii.(!best) <- r
    done;
    (* Splice the new rows into their clusters; fresh ids are the
       largest, so appending at each group's end keeps members
       ascending within every cluster. *)
    let extra = Array.make nc 0 in
    Array.iter (fun c -> extra.(c) <- extra.(c) + 1) assign;
    let offsets = Array.make (nc + 1) 0 in
    for c = 0 to nc - 1 do
      offsets.(c + 1) <- offsets.(c) + (t.offsets.(c + 1) - t.offsets.(c)) + extra.(c)
    done;
    let members = Array.make n' 0 in
    let cursor = Array.make nc 0 in
    for c = 0 to nc - 1 do
      let old_size = t.offsets.(c + 1) - t.offsets.(c) in
      Array.blit t.members t.offsets.(c) members offsets.(c) old_size;
      cursor.(c) <- offsets.(c) + old_size
    done;
    for a = 0 to added - 1 do
      let c = assign.(a) in
      members.(cursor.(c)) <- t.n + a;
      cursor.(c) <- cursor.(c) + 1
    done;
    let t' =
      { t with n = n'; radii; members; offsets; packed = Atomic.make None }
    in
    if rebuild_due t' then (build ~n_clusters:(default_n_clusters n') fm, true)
    else (t', false)
  end

(* --- Persistence. --- *)

type export = {
  ex_dim : int;
  ex_n : int;
  ex_built_n : int;
  ex_centroids : float array;
  ex_radii : float array;
  ex_members : int array;
  ex_offsets : int array;
}

let export t =
  let nc = Array.length t.radii in
  let flat = Array.make (nc * t.dim) 0.0 in
  for c = 0 to nc - 1 do
    Array.blit (Featmat.row t.cents c) 0 flat (c * t.dim) t.dim
  done;
  {
    ex_dim = t.dim;
    ex_n = t.n;
    ex_built_n = t.built_n;
    ex_centroids = flat;
    ex_radii = Array.copy t.radii;
    ex_members = Array.copy t.members;
    ex_offsets = Array.copy t.offsets;
  }

let import e =
  let fail msg = invalid_arg ("Knn_index.import: " ^ msg) in
  let nc = Array.length e.ex_radii in
  if e.ex_dim < 0 then fail "negative dimension";
  if e.ex_n < 1 then fail "no rows";
  if e.ex_built_n < 1 || e.ex_built_n > e.ex_n then fail "bad build size";
  if nc < 1 then fail "no clusters";
  if Array.length e.ex_centroids <> nc * e.ex_dim then fail "centroid shape";
  if Array.length e.ex_offsets <> nc + 1 then fail "offsets shape";
  if Array.length e.ex_members <> e.ex_n then fail "members shape";
  if e.ex_offsets.(0) <> 0 || e.ex_offsets.(nc) <> e.ex_n then fail "offsets range";
  for c = 0 to nc - 1 do
    if e.ex_offsets.(c + 1) < e.ex_offsets.(c) then fail "offsets not monotone";
    let r = e.ex_radii.(c) in
    if not (r >= 0.0) || not (Float.is_finite r) then fail "invalid radius"
  done;
  let seen = Array.make e.ex_n false in
  Array.iter
    (fun m ->
      if m < 0 || m >= e.ex_n || seen.(m) then fail "members not a permutation";
      seen.(m) <- true)
    e.ex_members;
  let centroids =
    Array.init nc (fun c -> Array.sub e.ex_centroids (c * e.ex_dim) e.ex_dim)
  in
  let q_queries, q_scanned, q_rows_pruned, q_clusters_pruned = fresh_counters () in
  {
    dim = e.ex_dim;
    n = e.ex_n;
    built_n = e.ex_built_n;
    cents = Featmat.of_rows centroids;
    radii = Array.copy e.ex_radii;
    members = Array.copy e.ex_members;
    offsets = Array.copy e.ex_offsets;
    packed = Atomic.make None;
    q_queries;
    q_scanned;
    q_rows_pruned;
    q_clusters_pruned;
  }
