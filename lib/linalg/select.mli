(** Top-k selection over float keys, replacing the full O(n log n)
    sorts on the detector hot path: materialized selection runs a
    lexicographic quickselect plus a heapsort of the k-prefix
    (O(n + k log k)); streaming callers use a bounded max-heap
    (O(n log k)). Ties are broken by element index, so results are a
    deterministic function of the input. *)

(** [smallest_k xs k] is the indices of the [k] smallest elements of
    [xs], ordered by ascending (value, index). [k] is clamped to the
    array length; raises [Invalid_argument] when negative. *)
val smallest_k : float array -> int -> int array

(** [smallest_k_pairs xs k] additionally pairs each index with its
    value, in the same order. *)
val smallest_k_pairs : float array -> int -> (int * float) array

(** {2 Reusable workspace}

    A selection workspace whose arrays are reused across calls. Hot
    paths hold one per domain (e.g. via [Domain.DLS]) so repeated
    selections do not churn the major heap with fresh scratch arrays —
    major-heap churn paces stop-the-world GC slices, which are costly
    when domains share cores. Not safe to share between concurrent
    queries. *)
type scratch

val scratch_create : unit -> scratch

(** [scratch_keys s n] grows the workspace to hold at least [n] keys and
    returns the key buffer; the caller fills positions [0..n-1]. *)
val scratch_keys : scratch -> int -> float array

(** [select_in_place s ~n ~k] arranges the [k] smallest (value, index)
    pairs of the first [n] keys into the prefix of the workspace,
    ascending by (value, index) — read them back with {!scratch_vals}
    and {!scratch_idxs}. Destroys the key order. *)
val select_in_place : scratch -> n:int -> k:int -> unit

val scratch_vals : scratch -> float array
val scratch_idxs : scratch -> int array

(** {2 Paired-array selection}

    The quickselect engine over caller-owned parallel (value, id)
    arrays, for candidate sets whose ids are not positions — e.g. the
    pruned kNN index reranking member rows gathered from surviving
    clusters. The (value, id) order matches {!select_in_place}, so the
    selected prefix is identical to what a dense position-indexed scan
    keeps. *)

(** [partition_pairs ~vals ~ids ~n ~k] arranges the [k] smallest
    (value, id) pairs of the first [n] entries into positions
    [0..k-1], in arbitrary order within the prefix. O(n). *)
val partition_pairs : vals:float array -> ids:int array -> n:int -> k:int -> unit

(** [sort_pairs_prefix ~vals ~ids ~k] sorts positions [0..k-1]
    ascending by (value, id). O(k log k). *)
val sort_pairs_prefix : vals:float array -> ids:int array -> k:int -> unit

(** {2 Triple-array selection}

    {!partition_pairs}/{!sort_pairs_prefix} with a second int payload
    [aux] permuted alongside. The comparisons still order by
    (value, id) only, so the selected prefix — and its order — is
    bit-identical to the paired variant; [aux] is opaque cargo. The
    pruned kNN index threads each candidate's packed storage position
    through selection this way, letting the p-value tables be read in
    cluster-contiguous packed order. *)

(** Like {!partition_pairs}, permuting [aux] alongside. *)
val partition_trips :
  vals:float array -> ids:int array -> aux:int array -> n:int -> k:int -> unit

(** Like {!sort_pairs_prefix}, permuting [aux] alongside. *)
val sort_trips_prefix : vals:float array -> ids:int array -> aux:int array -> k:int -> unit

(** {2 Streaming heap}

    A reusable bounded max-heap for callers that stream keys instead of
    materializing a full array (e.g. distance scans over a feature
    matrix). *)
type heap

(** [heap_create k] allocates a heap retaining the [k] smallest offered
    elements. *)
val heap_create : int -> heap

(** [heap_reset h k] empties [h] and rebounds it to retain the [k]
    smallest elements, growing the backing arrays when needed — so a
    per-domain heap can be reused across queries without allocating. *)
val heap_reset : heap -> int -> unit

(** [offer h v i] considers element [i] with key [v]. *)
val offer : heap -> float -> int -> unit

(** [heap_is_full h] is true once the heap holds its bound of elements —
    from then on only offers beating {!heap_worst} are admitted. *)
val heap_is_full : heap -> bool

(** [heap_worst h] is the largest (value, index) key currently kept —
    the admission threshold pruning callers compare lower bounds
    against. Raises [Invalid_argument] on an empty heap. *)
val heap_worst : heap -> float

(** [drain_into h ~idxs ~vals] empties the heap into the prefixes of the
    caller's scratch arrays, ascending by (value, index), and returns the
    element count. The allocation-free form of {!drain_sorted}; the heap
    is reusable afterwards via {!heap_reset}. *)
val drain_into : heap -> idxs:int array -> vals:float array -> int

(** [drain_sorted h] empties the heap, returning (index, value) pairs by
    ascending (value, index). The heap must not be reused afterwards. *)
val drain_sorted : heap -> (int * float) array

(** {2 Weighted selection}

    Support kernel for weighted conformal calibration: a selection's
    Eq. 1 weight prefix is multiplied in place by per-entry decay
    factors. *)

(** [scale_by ~weights ~idxs ~factors ~n] sets
    [weights.(r) <- weights.(r) *. factors.(idxs.(r))] for [r < n].
    [idxs] may hold entry ids (dense selections, [factors] in entry
    order) or packed member-order positions (pruned selections,
    [factors] permuted into the index's packed layout), so the factor
    reads stay tile-local on the gather-free path. Raises
    [Invalid_argument] when [n] exceeds either prefix; factor indices
    are trusted like the selection buffers they come from. *)
val scale_by : weights:float array -> idxs:int array -> factors:float array -> n:int -> unit
