(** Squared-distance kernel backends.

    The distance scans under every hot path ({!Featmat}, {!Knn_index},
    the calibration pipeline) bottom out in two primitives — a
    pair-of-segments squared distance and a row-range scan — with three
    interchangeable implementations: a pure-OCaml reference, a portable
    scalar C build, and a SIMD build (SSE2/AVX2, chosen by a runtime
    CPU probe; no [-march] is baked into the artifact).

    {2 The 4-lane accumulation-order contract}

    All backends compute [sum_j (a_j - b_j)^2] with four independent
    accumulator lanes: element [j] adds its squared difference into
    lane [j mod 4], and the lanes reduce as [(l0 + l2) + (l1 + l3)] —
    the order a two-register vertical add followed by a horizontal add
    produces on 128-bit SIMD.  IEEE-754 [+.] and [*.] are exact
    functions of their operand bits, so three implementations that
    perform the identical operations in the identical order return
    bit-identical results on every input, NaN and infinity included.
    That makes the backend choice purely a performance knob: verdicts,
    snapshots and parity gates are unaffected.

    One caveat: when {e both} operands of an accumulator add are NaN
    (a NaN input element and an [inf - inf] difference landing in the
    same lane), IEEE-754 does not specify which payload survives — the
    hardware keeps the first operand's, and a C compiler may commute
    the add, so the payload bits of such a NaN result are not pinned
    across backends.  NaN-ness and NaN positions are still exact; the
    parity gates therefore treat any NaN as equal to any NaN while
    requiring full bit equality for every non-NaN result.

    The backend is fixed at startup: [PROM_KERNELS=simd|c|ocaml]
    overrides, otherwise the best available backend is used ([simd]
    where the probe finds SSE2/AVX2, [c] elsewhere).  Requesting [simd]
    on a host without SIMD degrades to [c]; an unknown value raises
    [Invalid_argument] on first kernel use. *)

(** The three implementations. [Simd] means the best probed ISA level
    (AVX2 where supported, SSE2 otherwise on x86-64). *)
type backend = Ocaml | C | Simd

(** [available b] is whether backend [b] can run on this host. [Ocaml]
    and [C] always can; [Simd] requires a successful CPU probe. *)
val available : backend -> bool

(** Stable lowercase name: ["ocaml"], ["c"], ["simd"]. *)
val backend_name : backend -> string

(** ISA detail for a backend: ["ocaml"], ["scalar"], ["sse2"] or
    ["avx2"] (what [Simd] resolved to on this host). *)
val isa_name : backend -> string

(** The backend every implicit-backend entry point dispatches to,
    resolved once from [PROM_KERNELS] / the CPU probe. *)
val active : unit -> backend

(** [backend_name (active ())]. *)
val active_name : unit -> string

(** [isa_name (active ())]. *)
val active_isa : unit -> string

(** [sq_dist_segs a oa b ob dim] is the squared Euclidean distance
    between [a.(oa .. oa+dim)] and [b.(ob .. ob+dim)] on the active
    backend.  Unsafe: bounds are the caller's responsibility. *)
val sq_dist_segs : float array -> int -> float array -> int -> int -> float

(** [sq_dist_segs] on an explicit backend (cross-backend checks and
    benchmarks). *)
val sq_dist_segs_with : backend -> float array -> int -> float array -> int -> int -> float

(** [sq_dists_range ~data ~dim ~r0 ~r1 ~q ~oq ~out ~off] writes
    [out.(off + i - r0) <- sqdist(row i of data, q.(oq..))] for each
    [i] in [[r0, r1)], where [data] packs rows of width [dim]
    row-major.  One call scans a whole row range, amortizing dispatch
    over the tile; native backends chunk internally so long scans keep
    hitting GC safepoints.  Raises [Invalid_argument] if the range,
    query segment or output slice is out of bounds. *)
val sq_dists_range :
  data:float array ->
  dim:int ->
  r0:int ->
  r1:int ->
  q:float array ->
  oq:int ->
  out:float array ->
  off:int ->
  unit

(** [sq_dists_range] on an explicit backend. *)
val sq_dists_range_with :
  backend ->
  data:float array ->
  dim:int ->
  r0:int ->
  r1:int ->
  q:float array ->
  oq:int ->
  out:float array ->
  off:int ->
  unit
