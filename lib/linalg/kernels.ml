(* Backend selection and dispatch for the squared-distance kernels.

   Three interchangeable implementations of one numeric contract: a
   pure-OCaml reference, a portable scalar C build and a SIMD build
   (SSE2/AVX2, picked by runtime CPU probe).  All follow the 4-lane
   accumulation order documented in kernels.mli, so their outputs are
   bit-identical and the backend choice is invisible to every consumer
   except the clock. *)

type backend = Ocaml | C | Simd

let backend_name = function Ocaml -> "ocaml" | C -> "c" | Simd -> "simd"

(* Implementation levels shared with featmat_stubs.c. *)
let impl_scalar = 0

external probe_stub : unit -> (int[@untagged]) = "prom_kernels_probe_byte" "prom_kernels_probe"
[@@noalloc]

(* Best SIMD level the host can run: 0 none, 1 SSE2, 2 AVX2.  Probed
   once; the CPU does not change under us. *)
let simd_level = probe_stub ()

let available = function Ocaml | C -> true | Simd -> simd_level > impl_scalar

let isa_name = function
  | Ocaml -> "ocaml"
  | C -> "scalar"
  | Simd -> if simd_level >= 2 then "avx2" else if simd_level >= 1 then "sse2" else "none"

(* Startup selection: PROM_KERNELS={simd,c,ocaml} overrides; the
   default is the best available backend.  [simd] on a host without
   SIMD support degrades to the scalar C build (same results). *)
let active_backend =
  lazy
    (match Sys.getenv_opt "PROM_KERNELS" with
    | Some "ocaml" -> Ocaml
    | Some "c" -> C
    | Some "simd" -> if available Simd then Simd else C
    | Some other -> invalid_arg ("PROM_KERNELS: unknown backend " ^ other)
    | None -> if available Simd then Simd else C)

let active () = Lazy.force active_backend
let active_name () = backend_name (active ())
let active_isa () = isa_name (active ())

external sq_dist_seg_stub :
  float array ->
  (int[@untagged]) ->
  float array ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) = "prom_sq_dist_seg_byte" "prom_sq_dist_seg"
[@@noalloc]

external sq_dists_range_stub :
  float array ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  float array ->
  (int[@untagged]) ->
  float array ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  unit = "prom_sq_dists_range_byte" "prom_sq_dists_range"
[@@noalloc]

let impl_of = function
  | Ocaml -> invalid_arg "Kernels.impl_of: ocaml backend has no C impl"
  | C -> impl_scalar
  | Simd -> if simd_level > impl_scalar then simd_level else impl_scalar

(* Pure-OCaml reference kernel.  Element [j] accumulates into lane
   [j mod 4]; the unrolled body peels four lanes per iteration and the
   tail continues the same lane pattern, so the accumulation sequence
   is identical to the C and SIMD builds.  The final reduction is
   (l0 + l2) + (l1 + l3) — the order a 2x128-bit vertical add followed
   by a horizontal add produces.  Bounds are the caller's
   responsibility, so the reads are unsafe. *)
let sq_dist_segs_ocaml a oa b ob dim =
  let l0 = ref 0.0 and l1 = ref 0.0 and l2 = ref 0.0 and l3 = ref 0.0 in
  let j = ref 0 in
  while !j + 4 <= dim do
    let j0 = !j in
    let d0 = Array.unsafe_get a (oa + j0) -. Array.unsafe_get b (ob + j0) in
    let d1 = Array.unsafe_get a (oa + j0 + 1) -. Array.unsafe_get b (ob + j0 + 1) in
    let d2 = Array.unsafe_get a (oa + j0 + 2) -. Array.unsafe_get b (ob + j0 + 2) in
    let d3 = Array.unsafe_get a (oa + j0 + 3) -. Array.unsafe_get b (ob + j0 + 3) in
    l0 := !l0 +. (d0 *. d0);
    l1 := !l1 +. (d1 *. d1);
    l2 := !l2 +. (d2 *. d2);
    l3 := !l3 +. (d3 *. d3);
    j := j0 + 4
  done;
  while !j < dim do
    let j0 = !j in
    let d = Array.unsafe_get a (oa + j0) -. Array.unsafe_get b (ob + j0) in
    (match j0 land 3 with
    | 0 -> l0 := !l0 +. (d *. d)
    | 1 -> l1 := !l1 +. (d *. d)
    | 2 -> l2 := !l2 +. (d *. d)
    | _ -> l3 := !l3 +. (d *. d));
    incr j
  done;
  (!l0 +. !l2) +. (!l1 +. !l3)

let sq_dist_segs_with backend a oa b ob dim =
  match backend with
  | Ocaml -> sq_dist_segs_ocaml a oa b ob dim
  | C -> sq_dist_seg_stub a oa b ob dim impl_scalar
  | Simd -> sq_dist_seg_stub a oa b ob dim (impl_of Simd)

(* Rows per native range call: caps one FFI call at ~256 KB of row data
   so a long scan still reaches OCaml safepoints often enough for other
   domains' stop-the-world GC handshakes. *)
let rows_per_call dim = Stdlib.max 1 (32768 / Stdlib.max 1 dim)

let sq_dists_range_with backend ~data ~dim ~r0 ~r1 ~q ~oq ~out ~off =
  if dim < 0 || r0 < 0 || r1 < r0 then invalid_arg "Kernels.sq_dists_range: bad range";
  if r1 * dim > Array.length data then invalid_arg "Kernels.sq_dists_range: data too small";
  if oq < 0 || oq + dim > Array.length q then invalid_arg "Kernels.sq_dists_range: bad query";
  if off < 0 || off + (r1 - r0) > Array.length out then
    invalid_arg "Kernels.sq_dists_range: output too small";
  match backend with
  | Ocaml ->
      for i = r0 to r1 - 1 do
        Array.unsafe_set out (off + i - r0) (sq_dist_segs_ocaml data (i * dim) q oq dim)
      done
  | C | Simd ->
      let impl = impl_of backend in
      let chunk = rows_per_call dim in
      let i0 = ref r0 in
      while !i0 < r1 do
        let i1 = Stdlib.min r1 (!i0 + chunk) in
        sq_dists_range_stub data dim !i0 i1 q oq out (off + !i0 - r0) impl;
        i0 := i1
      done

let sq_dist_segs a oa b ob dim = sq_dist_segs_with (active ()) a oa b ob dim

let sq_dists_range ~data ~dim ~r0 ~r1 ~q ~oq ~out ~off =
  sq_dists_range_with (active ()) ~data ~dim ~r0 ~r1 ~q ~oq ~out ~off
