/* Native squared-distance kernels for Featmat scans.

   Every kernel implements the same 4-lane accumulation contract as the
   OCaml reference (Kernels.sq_dist_segs_ocaml / Distance.sq_euclidean):
   element j accumulates d*d into lane (j mod 4) and the lanes reduce as
   (l0 + l2) + (l1 + l3).  SSE2 keeps the lanes in two __m128d
   registers, AVX2 in one __m256d; the scalar build keeps them in four
   doubles.  Because IEEE-754 addition and multiplication are exact
   functions of their operands and every variant performs the identical
   operations in the identical order, all backends return bit-identical
   results -- the property the repo's parity gates assert.  (Exception:
   when both operands of an accumulator add are NaN, which payload
   survives depends on operand order the compiler may commute; the
   gates treat any NaN as equal to any NaN.)

   The range kernels additionally pipeline several rows per iteration
   (4 for AVX2, 2 for SSE2).  A single row is one add dependency chain
   under the lane contract, so a one-row-at-a-time scan is bound by
   add latency, not ISA width; independent per-row chains fill those
   latency slots.  No row's operations or their order change, so the
   multi-row variants are bit-identical to the single-row kernels by
   the same argument.

   The stubs run with the runtime lock held: they read directly into
   OCaml float-array heap blocks (Double_array_tag data is flat), never
   allocate, and never raise.  Long scans are chunked on the OCaml side
   so a single call stays short enough not to delay stop-the-world GC
   handshakes from other domains.

   No -march is baked in: AVX2 code is compiled behind a function-level
   target attribute and selected at startup via __builtin_cpu_supports,
   so one artifact runs on any x86-64 (SSE2 is baseline) and the scalar
   path covers every other architecture. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#if defined(__x86_64__) || defined(_M_X64)
#define PROM_KERNELS_X86_64 1
#include <emmintrin.h>
#if defined(__GNUC__) || defined(__clang__)
#define PROM_KERNELS_AVX2 1
#include <immintrin.h>
#endif
#endif

/* Implementation levels, shared with kernels.ml. */
#define PROM_IMPL_SCALAR 0
#define PROM_IMPL_SSE2 1
#define PROM_IMPL_AVX2 2

static double prom_sq_dist_scalar(const double *a, const double *b, long dim)
{
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  long j = 0;
  for (; j + 4 <= dim; j += 4) {
    double d0 = a[j] - b[j];
    double d1 = a[j + 1] - b[j + 1];
    double d2 = a[j + 2] - b[j + 2];
    double d3 = a[j + 3] - b[j + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  for (; j < dim; j++) {
    double d = a[j] - b[j];
    switch (j & 3) {
    case 0: l0 += d * d; break;
    case 1: l1 += d * d; break;
    case 2: l2 += d * d; break;
    default: l3 += d * d; break;
    }
  }
  return (l0 + l2) + (l1 + l3);
}

#ifdef PROM_KERNELS_X86_64

/* SSE2: lanes 0-1 in one register, lanes 2-3 in the other.  The tail
   spills the lanes to memory and continues scalar accumulation at
   index (j mod 4), exactly like the reference. */
static double prom_sq_dist_sse2(const double *a, const double *b, long dim)
{
  __m128d s01 = _mm_setzero_pd();
  __m128d s23 = _mm_setzero_pd();
  long j = 0;
  for (; j + 4 <= dim; j += 4) {
    __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j));
    __m128d d23 = _mm_sub_pd(_mm_loadu_pd(a + j + 2), _mm_loadu_pd(b + j + 2));
    s01 = _mm_add_pd(s01, _mm_mul_pd(d01, d01));
    s23 = _mm_add_pd(s23, _mm_mul_pd(d23, d23));
  }
  double l[4];
  _mm_storeu_pd(l, s01);
  _mm_storeu_pd(l + 2, s23);
  for (; j < dim; j++) {
    double d = a[j] - b[j];
    l[j & 3] += d * d;
  }
  return (l[0] + l[2]) + (l[1] + l[3]);
}

/* Range variant: two rows in flight.  Each row keeps the exact
   accumulator chains of prom_sq_dist_sse2 -- pipelining across rows
   adds no operation and reorders nothing within a row, so results
   stay bit-identical; it exists purely to break the add-latency
   dependency chain that caps one-row-at-a-time scans. */
static void prom_sq_dists_range_sse2(const double *data, long dim, long r0,
                                     long r1, const double *q, double *out)
{
  long i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double *a0 = data + i * dim;
    const double *a1 = a0 + dim;
    __m128d s0a = _mm_setzero_pd(), s0b = _mm_setzero_pd();
    __m128d s1a = _mm_setzero_pd(), s1b = _mm_setzero_pd();
    long j = 0;
    for (; j + 4 <= dim; j += 4) {
      __m128d qa = _mm_loadu_pd(q + j);
      __m128d qb = _mm_loadu_pd(q + j + 2);
      __m128d d0a = _mm_sub_pd(_mm_loadu_pd(a0 + j), qa);
      __m128d d0b = _mm_sub_pd(_mm_loadu_pd(a0 + j + 2), qb);
      __m128d d1a = _mm_sub_pd(_mm_loadu_pd(a1 + j), qa);
      __m128d d1b = _mm_sub_pd(_mm_loadu_pd(a1 + j + 2), qb);
      s0a = _mm_add_pd(s0a, _mm_mul_pd(d0a, d0a));
      s0b = _mm_add_pd(s0b, _mm_mul_pd(d0b, d0b));
      s1a = _mm_add_pd(s1a, _mm_mul_pd(d1a, d1a));
      s1b = _mm_add_pd(s1b, _mm_mul_pd(d1b, d1b));
    }
    double l0[4], l1[4];
    _mm_storeu_pd(l0, s0a);
    _mm_storeu_pd(l0 + 2, s0b);
    _mm_storeu_pd(l1, s1a);
    _mm_storeu_pd(l1 + 2, s1b);
    for (long t = j; t < dim; t++) {
      double d0 = a0[t] - q[t];
      double d1 = a1[t] - q[t];
      l0[t & 3] += d0 * d0;
      l1[t & 3] += d1 * d1;
    }
    out[i - r0] = (l0[0] + l0[2]) + (l0[1] + l0[3]);
    out[i - r0 + 1] = (l1[0] + l1[2]) + (l1[1] + l1[3]);
  }
  for (; i < r1; i++)
    out[i - r0] = prom_sq_dist_sse2(data + i * dim, q, dim);
}

#ifdef PROM_KERNELS_AVX2
/* AVX2: all four lanes in one register.  No FMA -- a fused
   multiply-add rounds once instead of twice and would break
   bit-identity with the other backends. */
__attribute__((target("avx2")))
static double prom_sq_dist_avx2(const double *a, const double *b, long dim)
{
  __m256d s = _mm256_setzero_pd();
  long j = 0;
  for (; j + 4 <= dim; j += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    s = _mm256_add_pd(s, _mm256_mul_pd(d, d));
  }
  double l[4];
  _mm256_storeu_pd(l, s);
  for (; j < dim; j++) {
    double d = a[j] - b[j];
    l[j & 3] += d * d;
  }
  return (l[0] + l[2]) + (l[1] + l[3]);
}

/* Range variant: four rows in flight, one shared query load per
   4-element group.  The single-row kernel is one vaddpd dependency
   chain, so a scan is add-latency-bound regardless of ISA width; four
   independent per-row chains fill those latency slots.  Within each
   row the operations and their order are exactly prom_sq_dist_avx2's,
   so results stay bit-identical. */
__attribute__((target("avx2")))
static void prom_sq_dists_range_avx2(const double *data, long dim, long r0,
                                     long r1, const double *q, double *out)
{
  long i = r0;
  for (; i + 4 <= r1; i += 4) {
    const double *a0 = data + i * dim;
    const double *a1 = a0 + dim;
    const double *a2 = a1 + dim;
    const double *a3 = a2 + dim;
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    long j = 0;
    for (; j + 4 <= dim; j += 4) {
      __m256d qv = _mm256_loadu_pd(q + j);
      __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a0 + j), qv);
      __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a1 + j), qv);
      __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(a2 + j), qv);
      __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(a3 + j), qv);
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(d0, d0));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(d1, d1));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(d2, d2));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(d3, d3));
    }
    double l0[4], l1[4], l2[4], l3[4];
    _mm256_storeu_pd(l0, s0);
    _mm256_storeu_pd(l1, s1);
    _mm256_storeu_pd(l2, s2);
    _mm256_storeu_pd(l3, s3);
    for (long t = j; t < dim; t++) {
      double d0 = a0[t] - q[t];
      double d1 = a1[t] - q[t];
      double d2 = a2[t] - q[t];
      double d3 = a3[t] - q[t];
      l0[t & 3] += d0 * d0;
      l1[t & 3] += d1 * d1;
      l2[t & 3] += d2 * d2;
      l3[t & 3] += d3 * d3;
    }
    out[i - r0] = (l0[0] + l0[2]) + (l0[1] + l0[3]);
    out[i - r0 + 1] = (l1[0] + l1[2]) + (l1[1] + l1[3]);
    out[i - r0 + 2] = (l2[0] + l2[2]) + (l2[1] + l2[3]);
    out[i - r0 + 3] = (l3[0] + l3[2]) + (l3[1] + l3[3]);
  }
  for (; i < r1; i++)
    out[i - r0] = prom_sq_dist_avx2(data + i * dim, q, dim);
}
#endif /* PROM_KERNELS_AVX2 */
#endif /* PROM_KERNELS_X86_64 */

typedef double (*prom_sq_dist_fn)(const double *, const double *, long);

static prom_sq_dist_fn prom_fn_of_impl(long impl)
{
#ifdef PROM_KERNELS_X86_64
#ifdef PROM_KERNELS_AVX2
  if (impl >= PROM_IMPL_AVX2) return prom_sq_dist_avx2;
#endif
  if (impl >= PROM_IMPL_SSE2) return prom_sq_dist_sse2;
#endif
  (void)impl;
  return prom_sq_dist_scalar;
}

/* Best implementation level this process can run, probed once at
   startup from kernels.ml. */
intnat prom_kernels_probe(value unit)
{
  (void)unit;
#ifdef PROM_KERNELS_X86_64
#ifdef PROM_KERNELS_AVX2
  if (__builtin_cpu_supports("avx2")) return PROM_IMPL_AVX2;
#endif
  return PROM_IMPL_SSE2;
#else
  return PROM_IMPL_SCALAR;
#endif
}

value prom_kernels_probe_byte(value unit)
{
  return Val_long(prom_kernels_probe(unit));
}

/* Squared distance between a[oa .. oa+dim) and b[ob .. ob+dim).
   Bounds are the caller's responsibility (kernels.ml validates). */
double prom_sq_dist_seg(value va, intnat oa, value vb, intnat ob, intnat dim,
                        intnat impl)
{
  const double *a = (const double *)va;
  const double *b = (const double *)vb;
  return prom_fn_of_impl(impl)(a + oa, b + ob, dim);
}

value prom_sq_dist_seg_byte(value *argv, int argn)
{
  (void)argn;
  return caml_copy_double(prom_sq_dist_seg(argv[0], Long_val(argv[1]), argv[2],
                                           Long_val(argv[3]), Long_val(argv[4]),
                                           Long_val(argv[5])));
}

/* Range kernel: out[off + (i - r0)] <- sqdist(data row i, q[oq..)) for
   i in [r0, r1).  One call covers a whole row tile so the per-call
   FFI cost amortizes across rows. */
void prom_sq_dists_range(value vdata, intnat dim, intnat r0, intnat r1,
                         value vq, intnat oq, value vout, intnat off,
                         intnat impl)
{
  const double *data = (const double *)vdata;
  const double *q = (const double *)vq + oq;
  double *out = (double *)vout + off;
#ifdef PROM_KERNELS_X86_64
#ifdef PROM_KERNELS_AVX2
  if (impl >= PROM_IMPL_AVX2) {
    prom_sq_dists_range_avx2(data, dim, r0, r1, q, out);
    return;
  }
#endif
  if (impl >= PROM_IMPL_SSE2) {
    prom_sq_dists_range_sse2(data, dim, r0, r1, q, out);
    return;
  }
#endif
  (void)impl;
  for (intnat i = r0; i < r1; i++)
    out[i - r0] = prom_sq_dist_scalar(data + i * dim, q, dim);
}

value prom_sq_dists_range_byte(value *argv, int argn)
{
  (void)argn;
  prom_sq_dists_range(argv[0], Long_val(argv[1]), Long_val(argv[2]),
                      Long_val(argv[3]), argv[4], Long_val(argv[5]), argv[6],
                      Long_val(argv[7]), Long_val(argv[8]));
  return Val_unit;
}
