(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 2-3, Figures 7-13) on the synthetic substrate, and
   closes with bechamel microbenchmarks of PROM's runtime overhead
   (paper Sec. 7.6). Run everything with [dune exec bench/main.exe];
   pass section names (e.g. [table2 fig8 overhead]) to run a subset. *)

open Prom
open Prom_tasks

let seed = 2025
let section_header title = Printf.printf "\n=== %s ===\n%!" title

let print_violin label samples =
  Format.printf "  %-24s %a@." label Metrics.pp_violin (Metrics.violin_of samples)

let print_metrics label (m : Detection_metrics.t) =
  Format.printf "  %-24s %a@." label Detection_metrics.pp m

(* The full suite is expensive; run it once and share across sections. *)
let suite = lazy (Suite.run ~scale:Suite.Full ~seed ())

let by_case results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Case_study.result) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r.case) in
      Hashtbl.replace tbl r.case (r :: cur))
    results;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [])

let table2 () =
  section_header "Table 2: summary of main evaluation results";
  let s = Lazy.force suite in
  let design, deploy, prom, detection = s.Suite.table2 in
  Printf.printf
    "  Perf-to-oracle: training %.3f | deployment %.3f | PROM-assisted %.3f\n" design
    deploy prom;
  Format.printf "  PROM detection (avg over C1-C4 x models): %a@." Detection_metrics.pp
    detection;
  Printf.printf
    "  (paper: 0.836 | 0.544 | 0.807; detection acc 86.8%% prec 86.0%% recall 96.2%% f1 90.8%%)\n"

let table3 () =
  section_header "Table 3: C5 DNN code generation - perf-to-oracle by BERT variant";
  let s = Lazy.force suite in
  Format.printf "%a@." Dnn_codegen.pp_result s.Suite.c5;
  Printf.printf
    "  (paper native: base 0.845 tiny 0.224 medium 0.668 large 0.703; PROM: 0.794/0.810/0.808)\n"

let fig7 () =
  section_header "Figure 7: design vs deployment performance distributions";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) ->
          print_violin (r.model_name ^ " design") r.design_perf;
          print_violin (r.model_name ^ " deploy") r.deploy_perf)
        results)
    (by_case (Lazy.force suite).Suite.classification_results);
  ignore s

let fig8 () =
  section_header "Figure 8: PROM drift-detection performance per case study and model";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) -> print_metrics r.model_name r.detection)
        results)
    (by_case s.Suite.classification_results)

let fig9 () =
  section_header "Figure 9: incremental learning restores deployment performance";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      List.iter
        (fun (r : Case_study.result) ->
          print_violin (r.model_name ^ " native") r.deploy_perf;
          print_violin (r.model_name ^ " +PROM") r.prom_perf;
          Printf.printf "      (relabeled %d of %d flagged)\n" r.relabeled
            (int_of_float
               (r.flagged_fraction *. float_of_int (Array.length r.deploy_perf))))
        results)
    (by_case s.Suite.classification_results)

let geomean_f1 results pick =
  let f1s =
    List.filter_map
      (fun (r : Case_study.result) ->
        match pick r with
        | Some (m : Detection_metrics.t) ->
            Some (Stdlib.max 0.01 m.Detection_metrics.f1)
        | None -> None)
      results
  in
  Prom_linalg.Stats.geomean (Array.of_list f1s)

let fig10 () =
  section_header "Figure 10: geomean F1 vs baseline CP methods (C1-C4)";
  let s = Lazy.force suite in
  let results = s.Suite.classification_results in
  let prom_f1 = geomean_f1 results (fun r -> Some r.detection) in
  Printf.printf "  %-12s %.3f\n" "PROM" prom_f1;
  List.iter
    (fun name ->
      let f1 = geomean_f1 results (fun r -> List.assoc_opt name r.baseline_metrics) in
      Printf.printf "  %-12s %.3f\n" name f1)
    [ "tesseract"; "rise"; "naive-cp" ];
  Printf.printf "  (paper: PROM > TESSERACT (+17.6%%) > RISE > naive CP)\n"

let fig11 () =
  section_header "Figure 11: individual nonconformity functions vs the ensemble";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      Printf.printf "  -- %s --\n" case;
      let avg name pick =
        let vals = List.map pick results in
        Printf.printf "    %-8s f1=%.3f\n" name
          (Prom_linalg.Stats.mean (Array.of_list vals))
      in
      avg "ensemble" (fun (r : Case_study.result) -> r.detection.Detection_metrics.f1);
      List.iter
        (fun fn_name ->
          avg fn_name (fun r ->
              match List.assoc_opt fn_name r.per_function with
              | Some m -> m.Detection_metrics.f1
              | None -> 0.0))
        [ "LAC"; "TopK"; "APS"; "RAPS" ])
    (by_case s.Suite.classification_results)

let fig12 () =
  section_header "Figure 12: training vs incremental-learning overhead (seconds)";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      let mean f =
        Prom_linalg.Stats.mean
          (Array.of_list (List.map f results))
      in
      Printf.printf "  %-28s initial %.2fs | incremental %.2fs\n" case
        (mean (fun (r : Case_study.result) -> r.train_time))
        (mean (fun r -> r.retrain_time)))
    (by_case s.Suite.classification_results);
  Printf.printf "  (paper: initial training hours-to-a-day; incremental < 1 hour)\n"

(* Sensitivity analyses (Figure 13) train one model per sweep and vary
   only the detector configuration. *)

let sensitivity_setup () =
  let scenario = Loop_vectorization.scenario ~loops_per_family:40 ~seed () in
  let spec = List.nth Loop_vectorization.models 2 (* MLP *) in
  let open Prom_ml in
  let raw = Array.map spec.Case_study.encode scenario.Case_study.train_w in
  let scaler = Dataset.Scaler.fit (Dataset.create raw scenario.Case_study.train_y) in
  let encode w = Dataset.Scaler.transform scaler (spec.Case_study.encode w) in
  let pool =
    Dataset.create (Array.map (Dataset.Scaler.transform scaler) raw)
      scenario.Case_study.train_y
  in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.25 ~seed pool in
  let model = spec.Case_study.trainer.Model.train train in
  let drift_x = Array.map encode scenario.Case_study.drift_w in
  let mispredicted =
    Array.mapi
      (fun i x ->
        Metrics.mispredicted
          ~perf:(scenario.Case_study.perf scenario.Case_study.drift_w.(i)
                   (Model.predict model x)))
      drift_x
  in
  (model, calibration, drift_x, mispredicted)

let metrics_for detector drift_x mispredicted =
  let flagged =
    Array.map (fun x -> snd (Detector.Classification.predict detector x)) drift_x
  in
  Detection_metrics.compute ~flagged ~mispredicted

let fig13a () =
  section_header "Figure 13a: sensitivity to the significance threshold (C2, MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  List.iter
    (fun epsilon ->
      let config = { Config.default with Config.epsilon } in
      let det =
        Detector.Classification.create ~config ~model ~feature_of:Fun.id calibration
      in
      let m = metrics_for det drift_x mispredicted in
      Format.printf "  epsilon=%.2f %a@." epsilon Detection_metrics.pp m)
    [ 0.02; 0.05; 0.1; 0.2; 0.3; 0.5 ]

let fig13c () =
  section_header "Figure 13c: sensitivity to the Gaussian scale parameter (C2, MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  List.iter
    (fun gaussian_c ->
      let config = { Config.default with Config.gaussian_c } in
      let det =
        Detector.Classification.create ~config ~model ~feature_of:Fun.id calibration
      in
      let m = metrics_for det drift_x mispredicted in
      Format.printf "  c=%.1f %a@." gaussian_c Detection_metrics.pp m)
    [ 0.5; 1.0; 2.0; 3.0; 4.0; 6.0 ]

let fig13b () =
  section_header "Figure 13b: sensitivity to the cluster count (C5 regression)";
  (* Rebuild the C5 detector with forced cluster counts and measure
     detection on BERT-medium samples. *)
  let open Prom_ml in
  let open Prom_synth in
  let rng = Prom_linalg.Rng.create seed in
  let pairs net n =
    Array.init n (fun _ ->
        let w = Schedule.sample_workload rng net in
        (w, Schedule.random_schedule rng))
  in
  let base = pairs Schedule.Bert_base 360 in
  let feats = Array.map (fun (w, s) -> Schedule.feature_vector w s) base in
  let scaler = Dataset.Scaler.fit (Dataset.create feats (Array.map (fun _ -> 0.0) base)) in
  let encode (w, s) =
    let z = Dataset.Scaler.transform scaler (Schedule.feature_vector w s) in
    let tokens =
      Array.mapi
        (fun i v ->
          let b = Stdlib.max 0 (Stdlib.min 7 (int_of_float ((v +. 2.0) *. 2.0))) in
          1 + (i * 8) + b)
        z
    in
    Prom_nn.Encoding.Seq.encode { Prom_nn.Encoding.Seq.max_len = 13; vocab = 1 + (13 * 8) } tokens
  in
  let target (w, s) = log (Schedule.throughput w s) in
  let data = Dataset.create (Array.map encode base) (Array.map target base) in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.2 ~seed data in
  let model = Gradient_boosting.train_regressor train in
  let test = pairs Schedule.Bert_medium 120 in
  let test_x = Array.map encode test in
  let mispredicted =
    Array.mapi
      (fun i x ->
        abs_float (model.Model.predict x -. target test.(i)) > log 1.2)
      test_x
  in
  List.iter
    (fun k ->
      let det =
        Detector.Regression.create ~n_clusters:k ~model ~feature_of:Fun.id ~seed
          calibration
      in
      let flagged = Array.map (fun x -> snd (Detector.Regression.predict det x)) test_x in
      let m = Detection_metrics.compute ~flagged ~mispredicted in
      Format.printf "  k=%-2d %a@." k Detection_metrics.pp m)
    [ 2; 4; 6; 8; 10; 12 ]

let fig13d () =
  section_header "Figure 13d: coverage deviation across case studies";
  let s = Lazy.force suite in
  List.iter
    (fun (case, results) ->
      let devs =
        List.map
          (fun (r : Case_study.result) -> r.coverage.Assessment.deviation)
          results
      in
      let arr = Array.of_list devs in
      Printf.printf "  %-28s mean dev %.3f (min %.3f max %.3f)\n" case
        (Prom_linalg.Stats.mean arr)
        (Array.fold_left min arr.(0) arr)
        (Array.fold_left max arr.(0) arr))
    (by_case s.Suite.classification_results);
  Printf.printf "  C5 (regression)               dev %.3f\n"
    (Lazy.force suite).Suite.c5.Dnn_codegen.coverage.Assessment.deviation;
  Printf.printf "  (paper: geomean 2.5%%, thread coarsening 4.4%%)\n"

(* Runtime overhead (paper Sec. 7.6): bechamel microbenchmarks of the
   per-sample detection cost. *)
let overhead () =
  section_header "Runtime overhead: bechamel microbenchmarks (Sec. 7.6)";
  let open Prom_ml in
  let scenario = Thread_coarsening.scenario ~kernels_per_suite:110 ~seed () in
  let spec = List.nth Thread_coarsening.models 0 in
  let raw = Array.map spec.Case_study.encode scenario.Case_study.train_w in
  let scaler = Dataset.Scaler.fit (Dataset.create raw scenario.Case_study.train_y) in
  let pool =
    Dataset.create (Array.map (Dataset.Scaler.transform scaler) raw)
      scenario.Case_study.train_y
  in
  let train, calibration = Framework.data_partitioning ~calibration_ratio:0.25 ~seed pool in
  let model = spec.Case_study.trainer.Model.train train in
  let det = Detector.Classification.create ~model ~feature_of:Fun.id calibration in
  let sample =
    Dataset.Scaler.transform scaler (spec.Case_study.encode scenario.Case_study.drift_w.(0))
  in
  let open Bechamel in
  let test_eval =
    Test.make ~name:"detector-evaluate" (Staged.stage (fun () ->
        ignore (Detector.Classification.evaluate det sample)))
  in
  let test_predict =
    Test.make ~name:"model-predict-proba" (Staged.stage (fun () ->
        ignore (model.Model.predict_proba sample)))
  in
  let test_sets =
    Test.make ~name:"prediction-sets" (Staged.stage (fun () ->
        ignore (Detector.Classification.prediction_sets det sample)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-24s %.1f ns/call\n" name est
        | _ -> Printf.printf "  %-24s (no estimate)\n" name)
      results
  in
  List.iter benchmark [ test_eval; test_predict; test_sets ];
  Printf.printf "  (paper: scores < 10 ms, drift detection < 2 ms on a low-end laptop)\n"

(* Inference-engine head-to-head: the seed's sort-based sequential hot
   path vs the batched top-k engine, on a synthetic detector with a
   large calibration set. Emits queries/sec to a JSON file so future
   PRs can track the trajectory. *)

module Seed_path = struct
  (* The seed implementation of the per-query hot path, kept verbatim
     for the comparison: full O(n log n) sorts with polymorphic
     compare, list-building kNN scores, and per-query rebuilds of the
     calibration feature array. *)
  open Prom_linalg
  open Prom_ml

  let knn_distance_score feats v =
    let ds = ref [] in
    Array.iteri (fun _ f -> ds := Distance.euclidean f v :: !ds) feats;
    let ds = Array.of_list !ds in
    Array.sort compare ds;
    let k = Stdlib.min 5 (Array.length ds) in
    if k = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. ds.(i)
      done;
      !acc /. float_of_int k
    end

  let distance_pvalue_of loo score =
    let n = Array.length loo in
    if n = 0 then 1.0
    else begin
      let rec first_geq lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if loo.(mid) >= score then first_geq lo mid else first_geq (mid + 1) hi
      in
      let at_least = n - first_geq 0 n in
      let p = float_of_int (at_least + 1) /. float_of_int (n + 1) in
      let max_loo = loo.(n - 1) in
      if at_least = 0 && max_loo > 0.0 && score > max_loo then
        p *. exp (-4.0 *. ((score /. max_loo) -. 1.0))
      else p
    end

  let select_subset ~tau ~config entries ~feature_of_entry test_features =
    let n = Array.length entries in
    if n = 0 then [||]
    else begin
      let ranked =
        Array.mapi
          (fun i e -> (i, Distance.euclidean (feature_of_entry e) test_features))
          entries
      in
      Array.sort (fun (_, d1) (_, d2) -> compare d1 d2) ranked;
      let keep =
        if n < config.Config.select_all_below then n
        else Stdlib.max 1 (int_of_float (config.Config.select_ratio *. float_of_int n))
      in
      Array.init keep (fun r ->
          let i, dist = ranked.(r) in
          let weight = exp (-.(dist *. dist) /. tau) in
          { Calibration.index = i; entry = entries.(i); weight; distance = dist })
    end

  let evaluate ~config ~committee ~(model : Model.classifier)
      (calibration : Calibration.cls) x =
    let proba = model.Model.predict_proba x in
    let predicted = Vec.argmax proba in
    let feats = Calibration.standardize_cls calibration x in
    let selected =
      select_subset ~tau:calibration.Calibration.tau ~config
        calibration.Calibration.entries
        ~feature_of_entry:(fun e -> e.Calibration.features)
        feats
    in
    let n_classes = model.Model.n_classes in
    let distance_pvalue =
      distance_pvalue_of calibration.Calibration.loo_distances
        (knn_distance_score
           (Array.map (fun e -> e.Calibration.features) calibration.Calibration.entries)
           feats)
    in
    let experts =
      List.map
        (fun fn ->
          let pvalues = Pvalue.classification_all ~fn ~selected ~proba ~n_classes () in
          let set_pvalues =
            Pvalue.classification_all ~smooth:false ~fn ~selected ~proba ~n_classes ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues
            ~discrete:fn.Nonconformity.cls_discrete ~config
            ~expert:fn.Nonconformity.cls_name ~pvalues ~predicted ())
        committee
    in
    let mean_of f = Prom_linalg.Stats.mean (Array.of_list (List.map f experts)) in
    {
      Detector.predicted;
      proba;
      experts;
      drifted = Scores.committee_decision ~config experts;
      mean_credibility = mean_of (fun v -> v.Scores.credibility);
      mean_confidence = mean_of (fun v -> v.Scores.confidence);
    }
end

module Indep_path = struct
  (* The pre-pipeline hot path, reconstructed from the still-public
     independent per-scan APIs: every per-query statistic walks the
     calibration matrix itself (two scans per classification query,
     four per regression query). The shared-scan engine must beat this
     arm while producing bit-identical verdicts. *)
  open Prom_linalg
  open Prom_ml

  let evaluate_cls ~config ~committee ~committee_scores ~entry_labels
      ~(model : Model.classifier) (cal : Calibration.cls) x =
    let proba = model.Model.predict_proba x in
    let predicted = Vec.argmax proba in
    let feats = Calibration.standardize_cls cal x in
    let selection =
      Calibration.select_packed ~tau:cal.Calibration.tau
        ~featmat:cal.Calibration.feat_matrix ~config cal.Calibration.entries
        ~feature_of_entry:(fun e -> e.Calibration.features)
        feats
    in
    let n_classes = model.Model.n_classes in
    let distance_pvalue = Calibration.distance_pvalue_cls cal feats in
    let experts =
      List.map2
        (fun fn entry_scores ->
          let test_scores =
            Array.init n_classes (fun label -> fn.Nonconformity.cls_score ~proba ~label)
          in
          let pvalues, set_pvalues =
            Pvalue.classification_all_table ~entry_scores ~entry_labels ~selection
              ~test_scores ~n_classes ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues
            ~discrete:fn.Nonconformity.cls_discrete ~config
            ~expert:fn.Nonconformity.cls_name ~pvalues ~predicted ())
        committee committee_scores
    in
    let mean_of f = Stats.mean (Array.of_list (List.map f experts)) in
    {
      Detector.predicted;
      proba;
      experts;
      drifted = Scores.committee_decision ~config experts;
      mean_credibility = mean_of (fun v -> v.Scores.credibility);
      mean_confidence = mean_of (fun v -> v.Scores.confidence);
    }

  let evaluate_reg ~config ~committee ~committee_scores ~entry_clusters
      ~(model : Model.regressor) (cal : Calibration.reg) x =
    let predicted_value = model.Model.predict x in
    let feats = Calibration.standardize_reg cal x in
    let knn_estimate, knn_spread =
      Calibration.knn_truth cal feats ~k:config.Config.knn_k
    in
    let cluster = Calibration.assign_cluster cal feats in
    let selection =
      Calibration.select_packed ~tau:cal.Calibration.rtau
        ~featmat:cal.Calibration.rfeat_matrix ~config cal.Calibration.rentries
        ~feature_of_entry:(fun e -> e.Calibration.rfeatures)
        feats
    in
    let n_clusters = cal.Calibration.n_clusters in
    let distance_pvalue = Calibration.distance_pvalue_reg cal feats in
    let reg_experts =
      List.map2
        (fun fn entry_scores ->
          let test_score =
            fn.Nonconformity.reg_score ~pred:predicted_value ~truth:knn_estimate
              ~spread:(Stdlib.max knn_spread 1e-6)
          in
          let pvalues, set_pvalues =
            Pvalue.regression_all_table ~entry_scores ~entry_clusters ~selection
              ~n_clusters ~test_score ()
          in
          Scores.expert_verdict ~distance_pvalue ~set_pvalues ~use_confidence:false
            ~config ~expert:fn.Nonconformity.reg_name ~pvalues ~predicted:cluster ())
        committee committee_scores
    in
    let mean_of f = Stats.mean (Array.of_list (List.map f reg_experts)) in
    {
      Detector.predicted_value;
      cluster;
      knn_estimate;
      reg_experts;
      reg_drifted = Scores.committee_decision ~config reg_experts;
      reg_mean_credibility = mean_of (fun v -> v.Scores.credibility);
      reg_mean_confidence = mean_of (fun v -> v.Scores.confidence);
    }

  let cls_tables ~committee (cal : Calibration.cls) =
    ( List.map
        (fun fn ->
          Array.map
            (fun e ->
              fn.Nonconformity.cls_score ~proba:e.Calibration.proba
                ~label:e.Calibration.label)
            cal.Calibration.entries)
        committee,
      Array.map (fun e -> e.Calibration.label) cal.Calibration.entries )

  let reg_tables ~committee (cal : Calibration.reg) =
    ( List.map
        (fun fn ->
          Array.map
            (fun e ->
              fn.Nonconformity.reg_score ~pred:e.Calibration.rpred
                ~truth:e.Calibration.rproxy
                ~spread:(Stdlib.max e.Calibration.rspread 1e-6))
            cal.Calibration.rentries)
        committee,
      Array.map (fun e -> e.Calibration.cluster) cal.Calibration.rentries )
end

let ns_per_call ~quota test =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let est = ref nan in
  Hashtbl.iter
    (fun _ r -> match Analyze.OLS.estimates r with Some [ e ] -> est := e | _ -> ())
    results;
  !est

(* Interleaved min-of-rounds measurement for head-to-head comparisons:
   every round measures each variant once, in a fixed order, and each
   variant reports its fastest round. Sequential one-shot measurement
   biases whichever variant runs when the machine happens to be quiet
   (or after the major heap has grown); interleaving spreads that drift
   across all variants, and the min discards noise spikes, which only
   ever add time. *)
let ns_interleaved ~quota ~rounds tests =
  let best = Array.make (Array.length tests) infinity in
  for _ = 1 to rounds do
    Array.iteri
      (fun i (name, thunk) ->
        let ns =
          ns_per_call ~quota (Bechamel.Test.make ~name (Bechamel.Staged.stage thunk))
        in
        if ns < best.(i) then best.(i) <- ns)
      tests
  done;
  best

let inference_world ~n_cal ~n_queries =
  let open Prom_ml in
  let rng = Prom_linalg.Rng.create seed in
  let dim = 16 and n_classes = 4 in
  (* Class-dependent Gaussian blobs; the model is a fixed linear scorer
     so the benchmark isolates the detector overhead, mirroring the
     external-host setting where inference is cheap and PROM is the
     added cost. *)
  let weights =
    Array.init n_classes (fun _ ->
        Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let predict_proba x =
    let scores = Array.map (fun w -> Prom_linalg.Vec.dot w x) weights in
    let m = Array.fold_left Stdlib.max neg_infinity scores in
    let exps = Array.map (fun s -> exp (s -. m)) scores in
    let z = Prom_linalg.Vec.sum exps in
    Prom_linalg.Vec.scale (1.0 /. z) exps
  in
  let model =
    { Model.n_classes; predict_proba; name = "linear-softmax"; state = Model.No_state }
  in
  let sample_x label =
    Array.init dim (fun j ->
        float_of_int (label * (1 + (j mod 3)))
        +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.5)
  in
  let labels = Array.init n_cal (fun i -> i mod n_classes) in
  let xs = Array.map sample_x labels in
  let calibration = Dataset.create xs labels in
  let queries = Array.init n_queries (fun i -> sample_x (i mod n_classes)) in
  (model, calibration, queries)

(* Regression-shaped workload: a cheap linear model over the same blob
   features, so the measurement isolates the detector. The regression
   hot path is where the shared scan pays most — four independent
   matrix scans per query collapse into one. *)
let reg_inference_world ~n_cal ~n_queries =
  let open Prom_ml in
  let rng = Prom_linalg.Rng.create (seed + 7) in
  let dim = 16 in
  let true_w = Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let model =
    {
      Model.predict = (fun x -> Prom_linalg.Vec.dot true_w x);
      name = "linear";
      reg_state = Model.No_state;
    }
  in
  let sample_x () =
    Array.init dim (fun _ -> Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:2.0)
  in
  let xs = Array.init n_cal (fun _ -> sample_x ()) in
  let ys =
    Array.map
      (fun x -> Prom_linalg.Vec.dot true_w x +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:0.1)
      xs
  in
  let calibration = Dataset.create xs ys in
  let queries = Array.init n_queries (fun _ -> sample_x ()) in
  (model, calibration, queries)

let inference_section ~n_cal ~n_queries ~quota ~json_path () =
  section_header
    (Printf.sprintf "Inference engine: batched top-k vs seed sequential (n=%d)" n_cal);
  let model, calibration, queries = inference_world ~n_cal ~n_queries in
  let config = Config.default in
  let committee = Nonconformity.default_committee in
  let det = Detector.Classification.create ~config ~committee ~model ~feature_of:Fun.id calibration in
  (* The same detector with a live metrics registry, to price the
     observability layer on the hot path. *)
  let registry = Prom_obs.create_registry () in
  let telemetry = Telemetry.create registry in
  let det_inst =
    Detector.Classification.create ~config ~committee ~telemetry ~model
      ~feature_of:Fun.id calibration
  in
  let cal = Calibration.prepare_classification ~config ~model ~feature_of:Fun.id calibration in
  let n_domains = Stdlib.max 2 (Prom_parallel.Pool.default_size ()) in
  let pool = Prom_parallel.Pool.create n_domains in
  (* Cross-check: batch results must equal the sequential map, and the
     seed path should agree with the new kernels on tie-free inputs. *)
  let seq = Array.map (Detector.Classification.evaluate det) queries in
  let batch = Detector.Classification.evaluate_batch ~pool det queries in
  let identical = seq = batch in
  Printf.printf "  batch = sequential (bit-identical): %b\n" identical;
  if not identical then failwith "inference bench: batch diverged from sequential";
  let inst = Array.map (Detector.Classification.evaluate det_inst) queries in
  Printf.printf "  instrumented = uninstrumented (bit-identical): %b\n" (inst = seq);
  if inst <> seq then failwith "inference bench: instrumentation changed verdicts";
  let seed_agree =
    let agree = ref 0 in
    Array.iteri
      (fun i q ->
        let v = Seed_path.evaluate ~config ~committee ~model cal q in
        if v = seq.(i) then incr agree)
      queries;
    !agree
  in
  Printf.printf "  seed path agrees on %d/%d queries\n" seed_agree (Array.length queries);
  (* The shared-scan engine against the independent per-scan arm: the
     verdicts must be bit-identical — only the number of matrix scans
     differs. *)
  let committee_scores, entry_labels = Indep_path.cls_tables ~committee cal in
  let indep =
    Array.map
      (Indep_path.evaluate_cls ~config ~committee ~committee_scores ~entry_labels ~model
         cal)
      queries
  in
  Printf.printf "  shared scan = independent scans (bit-identical): %b\n" (indep = seq);
  if indep <> seq then failwith "inference bench: shared scan diverged from independent scans";
  (* Regression-shaped workload: the shared scan replaces four
     independent matrix walks per query. *)
  let rmodel, rcal_data, rqueries = reg_inference_world ~n_cal ~n_queries in
  let rcommittee = Nonconformity.default_reg_committee in
  let rdet =
    Detector.Regression.create ~config ~committee:rcommittee ~n_clusters:4 ~model:rmodel
      ~feature_of:Fun.id ~seed:1 rcal_data
  in
  let rcal =
    Calibration.prepare_regression ~n_clusters:4 ~config ~model:rmodel ~feature_of:Fun.id
      ~seed:1 rcal_data
  in
  let rcommittee_scores, entry_clusters = Indep_path.reg_tables ~committee:rcommittee rcal in
  let rseq = Array.map (Detector.Regression.evaluate rdet) rqueries in
  let rindep =
    Array.map
      (Indep_path.evaluate_reg ~config ~committee:rcommittee
         ~committee_scores:rcommittee_scores ~entry_clusters ~model:rmodel rcal)
      rqueries
  in
  Printf.printf "  regression shared scan = independent scans (bit-identical): %b\n"
    (rindep = rseq);
  if rindep <> rseq then
    failwith "inference bench: regression shared scan diverged from independent scans";
  let rbatch = Detector.Regression.evaluate_batch ~pool rdet rqueries in
  if rbatch <> rseq then failwith "inference bench: regression batch diverged";
  (* All variants measured interleaved so machine drift cannot favour
     whichever arm happens to run last; [select-*] is the kernel-level
     head-to-head on one query. *)
  let q0 = queries.(0) in
  let rq0 = rqueries.(0) in
  let entries = cal.Calibration.entries in
  let feats = Calibration.standardize_cls cal q0 in
  let ns =
    ns_interleaved ~quota:(quota /. 2.0) ~rounds:3
      [|
        ( "seed-sequential",
          fun () -> ignore (Seed_path.evaluate ~config ~committee ~model cal q0) );
        ( "indep-sequential",
          fun () ->
            ignore
              (Indep_path.evaluate_cls ~config ~committee ~committee_scores
                 ~entry_labels ~model cal q0) );
        ("new-sequential", fun () -> ignore (Detector.Classification.evaluate det q0));
        ( "instrumented-sequential",
          fun () -> ignore (Detector.Classification.evaluate det_inst q0) );
        ( "new-batch",
          fun () -> ignore (Detector.Classification.evaluate_batch ~pool det queries) );
        ( "reg-indep-sequential",
          fun () ->
            ignore
              (Indep_path.evaluate_reg ~config ~committee:rcommittee
                 ~committee_scores:rcommittee_scores ~entry_clusters ~model:rmodel rcal
                 rq0) );
        ("reg-new-sequential", fun () -> ignore (Detector.Regression.evaluate rdet rq0));
        ( "reg-new-batch",
          fun () -> ignore (Detector.Regression.evaluate_batch ~pool rdet rqueries) );
        ( "select-sort",
          fun () ->
            ignore
              (Seed_path.select_subset ~tau:cal.Calibration.tau ~config entries
                 ~feature_of_entry:(fun e -> e.Calibration.features)
                 feats) );
        ( "select-topk",
          fun () ->
            ignore
              (Calibration.select_subset ~tau:cal.Calibration.tau
                 ~featmat:cal.Calibration.feat_matrix ~config entries
                 ~feature_of_entry:(fun e -> e.Calibration.features)
                 feats) );
      |]
  in
  let nqf = float_of_int (Array.length queries) in
  let seed_ns = ns.(0) and indep_ns = ns.(1) and new_ns = ns.(2) and inst_ns = ns.(3) in
  let batch_ns = ns.(4) /. nqf in
  let reg_indep_ns = ns.(5) and reg_new_ns = ns.(6) in
  let reg_batch_ns = ns.(7) /. nqf in
  let select_seed_ns = ns.(8) and select_new_ns = ns.(9) in
  let qps ns = 1e9 /. ns in
  Printf.printf "  seed sequential   %10.0f ns/query  (%8.0f queries/sec)\n" seed_ns
    (qps seed_ns);
  Printf.printf "  indep sequential  %10.0f ns/query  (%8.0f queries/sec)\n" indep_ns
    (qps indep_ns);
  Printf.printf "  new sequential    %10.0f ns/query  (%8.0f queries/sec)\n" new_ns
    (qps new_ns);
  let overhead_pct = (inst_ns -. new_ns) /. new_ns *. 100.0 in
  Printf.printf "  live registry     %10.0f ns/query  (%8.0f queries/sec, %+.1f%%)\n"
    inst_ns (qps inst_ns) overhead_pct;
  Printf.printf "  new batch (%d dom) %9.0f ns/query  (%8.0f queries/sec)\n" n_domains
    batch_ns (qps batch_ns);
  Printf.printf "  reg indep seq     %10.0f ns/query  (%8.0f queries/sec)\n" reg_indep_ns
    (qps reg_indep_ns);
  Printf.printf "  reg shared seq    %10.0f ns/query  (%8.0f queries/sec)\n" reg_new_ns
    (qps reg_new_ns);
  Printf.printf "  reg shared batch  %10.0f ns/query  (%8.0f queries/sec)\n" reg_batch_ns
    (qps reg_batch_ns);
  Printf.printf "  select_subset     sort %8.0f ns -> top-k %8.0f ns (%.1fx)\n"
    select_seed_ns select_new_ns (select_seed_ns /. select_new_ns);
  Printf.printf "  speedup: sequential %.2fx | batch %.2fx\n" (seed_ns /. new_ns)
    (seed_ns /. batch_ns);
  Printf.printf "  shared-scan speedup: classification %.2fx | regression %.2fx\n"
    (indep_ns /. new_ns) (reg_indep_ns /. reg_new_ns);
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{
  "calibration_entries": %d,
  "batch_queries": %d,
  "num_domains": %d,
  "ns_per_query": {
    "seed_sequential": %.1f,
    "indep_sequential": %.1f,
    "new_sequential": %.1f,
    "instrumented_sequential": %.1f,
    "new_batch": %.1f,
    "reg_indep_sequential": %.1f,
    "reg_new_sequential": %.1f,
    "reg_new_batch": %.1f
  },
  "queries_per_sec": {
    "seed_sequential": %.1f,
    "new_sequential": %.1f,
    "instrumented_sequential": %.1f,
    "new_batch": %.1f
  },
  "speedup_vs_seed": {
    "new_sequential": %.3f,
    "new_batch": %.3f
  },
  "shared_scan_speedup": {
    "classification": %.3f,
    "regression": %.3f
  },
  "telemetry_overhead_pct": %.2f,
  "kernels_ns": {
    "select_subset_sort": %.1f,
    "select_subset_topk": %.1f
  }
}
|}
    n_cal (Array.length queries) n_domains seed_ns indep_ns new_ns inst_ns batch_ns
    reg_indep_ns reg_new_ns reg_batch_ns (qps seed_ns) (qps new_ns) (qps inst_ns)
    (qps batch_ns) (seed_ns /. new_ns) (seed_ns /. batch_ns) (indep_ns /. new_ns)
    (reg_indep_ns /. reg_new_ns) overhead_pct select_seed_ns select_new_ns;
  close_out oc;
  Printf.printf "  wrote %s\n" json_path;
  Prom_parallel.Pool.shutdown pool

let inference () =
  inference_section ~n_cal:1200 ~n_queries:64 ~quota:1.0
    ~json_path:"BENCH_inference.json" ()

(* Tiny-scale variant so CI (the [bench-smoke] alias) can exercise the
   whole harness in seconds. *)
let inference_smoke () =
  inference_section ~n_cal:250 ~n_queries:16 ~quota:0.05
    ~json_path:"BENCH_inference_smoke.json" ()

(* Calibration-preparation benchmark: the O(n^2 . d) prep scans (LOO
   conformal scores, pairwise-median temperature, regression LOO
   proxies) now stream the matrix through the symmetric tiled kernel in
   row blocks. Emits build times and kernel micro-benchmarks to JSON. *)
let prep_section ~n_cal ~quota ~json_path () =
  section_header
    (Printf.sprintf "Calibration preparation: tiled O(n^2.d) scans (n=%d)" n_cal);
  (* Kernel parity on random matrices before any timing is trusted: the
     tiled kernels promise exact equality with the scalar reference. *)
  let rng = Prom_linalg.Rng.create (seed + 13) in
  List.iter
    (fun (n, dim, nq) ->
      let rand_vec () =
        Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-10.0) ~hi:10.0)
      in
      let rows = Array.init n (fun _ -> rand_vec ()) in
      let fm = Prom_linalg.Featmat.of_rows rows in
      let qs = Array.init nq (fun _ -> rand_vec ()) in
      let out = Array.make (nq * n) nan in
      Prom_linalg.Featmat.sq_dists_block fm qs out;
      for q = 0 to nq - 1 do
        for i = 0 to n - 1 do
          if out.((q * n) + i) <> Prom_linalg.Distance.sq_euclidean rows.(i) qs.(q) then
            failwith "prep bench: sq_dists_block diverged from the scalar kernel"
        done
      done;
      let sout = Array.make (n * n) nan in
      Prom_linalg.Featmat.sq_dists_rows_block fm ~r0:0 ~r1:n sout;
      for r = 0 to n - 1 do
        for i = 0 to n - 1 do
          if sout.((r * n) + i) <> Prom_linalg.Distance.sq_euclidean rows.(r) rows.(i)
          then failwith "prep bench: sq_dists_rows_block diverged from the scalar kernel"
        done
      done)
    [ (60, 16, 8); (33, 13, 5); (17, 3, 2) ];
  Printf.printf "  kernel parity (block vs scalar): ok\n";
  let config = Config.default in
  let model, calibration, _ = inference_world ~n_cal ~n_queries:1 in
  let rmodel, rcalibration, _ = reg_inference_world ~n_cal ~n_queries:1 in
  (* Kernel micro-benchmark inputs: a query tile and a symmetric row
     block over the prepared matrix, each as independent row scans vs
     one blocked call. *)
  let cal =
    Calibration.prepare_classification ~config ~model ~feature_of:Fun.id calibration
  in
  let fm = cal.Calibration.feat_matrix in
  let n = Prom_linalg.Featmat.length fm in
  let dim = Prom_linalg.Featmat.dim fm in
  let qrng = Prom_linalg.Rng.create (seed + 17) in
  let tile_queries =
    Array.init 8 (fun _ ->
        Array.init dim (fun _ -> Prom_linalg.Rng.gaussian qrng ~mu:0.0 ~sigma:2.0))
  in
  let out = Array.make (8 * n) 0.0 in
  let rows16 = Stdlib.min 16 n in
  let sym_out = Array.make (rows16 * n) 0.0 in
  (* Interleaved min-of-rounds, same rationale as the inference section;
     the regression build fixes the cluster count because the gap
     statistic's own k-means sweep would otherwise dominate the build
     and hide the distance-scan cost. *)
  let ns =
    ns_interleaved ~quota:(quota /. 2.0) ~rounds:3
      [|
        ( "prepare-classification",
          fun () ->
            ignore
              (Calibration.prepare_classification ~config ~model ~feature_of:Fun.id
                 calibration) );
        ( "prepare-regression",
          fun () ->
            ignore
              (Calibration.prepare_regression ~n_clusters:4 ~config ~model:rmodel
                 ~feature_of:Fun.id ~seed:1 rcalibration) );
        ( "query8-row-scans",
          fun () ->
            Array.iter (fun q -> Prom_linalg.Featmat.sq_dists_into fm q out) tile_queries
        );
        ( "query8-block",
          fun () -> Prom_linalg.Featmat.sq_dists_block fm tile_queries out );
        ( "sym16-row-scans",
          fun () ->
            for r = 0 to rows16 - 1 do
              for i = 0 to n - 1 do
                sym_out.((r * n) + i) <- Prom_linalg.Featmat.sq_dist_rows fm r i
              done
            done );
        ( "sym16-block",
          fun () -> Prom_linalg.Featmat.sq_dists_rows_block fm ~r0:0 ~r1:rows16 sym_out
        );
      |]
  in
  let cls_prep_ns = ns.(0) and reg_prep_ns = ns.(1) in
  let query_rows_ns = ns.(2) and query_block_ns = ns.(3) in
  let sym_rows_ns = ns.(4) and sym_block_ns = ns.(5) in
  let ms ns = ns /. 1e6 in
  Printf.printf "  prepare_classification  %10.2f ms\n" (ms cls_prep_ns);
  Printf.printf "  prepare_regression      %10.2f ms (k-means k=4 included)\n"
    (ms reg_prep_ns);
  Printf.printf "  query tile (8 x %d)    row scans %8.0f ns -> block %8.0f ns (%.2fx)\n"
    n query_rows_ns query_block_ns
    (query_rows_ns /. query_block_ns);
  Printf.printf "  sym block  (%d x %d)  row scans %8.0f ns -> block %8.0f ns (%.2fx)\n"
    rows16 n sym_rows_ns sym_block_ns
    (sym_rows_ns /. sym_block_ns);
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{
  "calibration_entries": %d,
  "dim": %d,
  "prep_ns": {
    "prepare_classification": %.1f,
    "prepare_regression_k4": %.1f
  },
  "kernels_ns": {
    "query8_row_scans": %.1f,
    "query8_block": %.1f,
    "sym16_row_scans": %.1f,
    "sym16_block": %.1f
  },
  "block_kernel_speedup": {
    "query_tile": %.3f,
    "symmetric_tile": %.3f
  }
}
|}
    n_cal dim cls_prep_ns reg_prep_ns query_rows_ns query_block_ns sym_rows_ns
    sym_block_ns
    (query_rows_ns /. query_block_ns)
    (sym_rows_ns /. sym_block_ns);
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let prep () = prep_section ~n_cal:1200 ~quota:1.0 ~json_path:"BENCH_prep.json" ()

let prep_smoke () =
  prep_section ~n_cal:250 ~quota:0.05 ~json_path:"BENCH_prep_smoke.json" ()

(* Snapshot store benchmark: how long a checkpoint takes to encode,
   write, and restore — the costs a deployment pays per retrain round
   and per crash recovery. The section also verifies that the reloaded
   detector reproduces the live one's verdicts bit for bit, so the
   [snapshot-smoke] variant doubles as the CI smoke check of the whole
   save -> load -> serve pipeline. *)
let snapshot_section ~n_cal ~repeats ~json_path () =
  section_header (Printf.sprintf "Snapshot store: save/load round trips (n=%d)" n_cal);
  let open Prom_ml in
  let rng = Prom_linalg.Rng.create seed in
  let dim = 16 in
  let xs =
    Array.init n_cal (fun i ->
        let mu = if i mod 2 = 0 then 0.0 else 2.5 in
        Array.init dim (fun _ -> Prom_linalg.Rng.gaussian rng ~mu ~sigma:1.0))
  in
  let data = Dataset.create xs (Array.init n_cal (fun i -> i mod 2)) in
  let model = Logistic.train data in
  let det = Detector.Classification.create ~model ~feature_of:Fun.id data in
  let snap = Snapshot.of_cls_detector det in
  let payload = Snapshot.encode snap in
  let dir = Filename.temp_dir "prom-bench-snap" "" in
  ignore (Snapshot.save ~dir snap : Prom_store.Store.info);
  let queries =
    Array.init 32 (fun _ ->
        Array.init dim (fun _ -> Prom_linalg.Rng.gaussian rng ~mu:1.0 ~sigma:2.0))
  in
  (match Snapshot.load_latest ~dir () with
  | Some (Snapshot.Cls s, _) ->
      let det' = Snapshot.to_cls_detector s in
      Array.iter
        (fun x ->
          let v = Detector.Classification.evaluate det x in
          let v' = Detector.Classification.evaluate det' x in
          if
            v.Detector.drifted <> v'.Detector.drifted
            || Int64.bits_of_float v.Detector.mean_credibility
               <> Int64.bits_of_float v'.Detector.mean_credibility
            || Int64.bits_of_float v.Detector.mean_confidence
               <> Int64.bits_of_float v'.Detector.mean_confidence
          then failwith "snapshot reload is not bit-identical")
        queries;
      Printf.printf "  reload bit-identical on %d queries: true\n" (Array.length queries)
  | _ -> failwith "snapshot reload failed");
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int repeats
  in
  let encode_ms = time_ms (fun () -> ignore (Snapshot.encode snap : string)) in
  let decode_ms = time_ms (fun () -> ignore (Snapshot.decode payload : Snapshot.t)) in
  let save_ms =
    time_ms (fun () -> ignore (Snapshot.save ~dir snap : Prom_store.Store.info))
  in
  let restore_ms =
    time_ms (fun () ->
        match Snapshot.load_latest ~dir () with
        | Some (Snapshot.Cls s, _) ->
            ignore (Snapshot.to_cls_detector s : Detector.Classification.t)
        | _ -> failwith "snapshot reload failed")
  in
  Printf.printf "  payload           %10d bytes (%d calibration entries)\n"
    (String.length payload) n_cal;
  Printf.printf "  encode            %10.3f ms\n" encode_ms;
  Printf.printf "  decode            %10.3f ms\n" decode_ms;
  Printf.printf "  save (disk)       %10.3f ms\n" save_ms;
  Printf.printf "  load + restore    %10.3f ms\n" restore_ms;
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{
  "calibration_entries": %d,
  "payload_bytes": %d,
  "repeats": %d,
  "ms": {
    "encode": %.3f,
    "decode": %.3f,
    "save_disk": %.3f,
    "load_restore": %.3f
  }
}
|}
    n_cal (String.length payload) repeats encode_ms decode_ms save_ms restore_ms;
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let snapshot () =
  snapshot_section ~n_cal:1200 ~repeats:50 ~json_path:"BENCH_snapshot.json" ()

let snapshot_smoke () =
  snapshot_section ~n_cal:250 ~repeats:5 ~json_path:"BENCH_snapshot_smoke.json" ()

(* --- Pruned kNN index: sublinear calibration queries. ---

   Scan-vs-index head to head over synthetic clustered worlds, built
   through the restore constructors so the O(n²·d) preparation never
   runs (tau and the LOO reference are synthetic — both arms share
   them, so verdict parity is unaffected). The two arms are the same
   entries restored under different PROM_INDEX_MIN_N values, and every
   size first proves bit-identical verdicts (sequential and batched,
   classification at every size and regression at the largest) before
   anything is timed. *)

(* Gaussian blobs around fixed centers: the clustered geometry the
   coarse index exploits; queries come from the same distribution. *)
let index_blob_sampler rng ~dim =
  let n_blobs = 32 in
  let centers =
    Array.init n_blobs (fun _ ->
        Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-8.0) ~hi:8.0))
  in
  fun i ->
    let c = centers.(i mod n_blobs) in
    Array.init dim (fun j ->
        c.(j) +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:0.7)

(* A selective Eq. 1 policy (keep 1% past tiny sets): the regime the
   index targets — per-query neighbour demand small relative to n. *)
let index_config =
  { Config.default with Config.select_ratio = 0.005; select_all_below = 32 }

let with_index_threshold v f =
  Unix.putenv "PROM_INDEX_MIN_N" v;
  (* An empty value parses as invalid and falls back to the compiled
     default, so later sections see the stock policy. *)
  Fun.protect ~finally:(fun () -> Unix.putenv "PROM_INDEX_MIN_N" "") f

let index_identity_scaler ~dim =
  Prom_ml.Dataset.Scaler.of_params ~mu:(Array.make dim 0.0)
    ~sigma:(Array.make dim 1.0)

let index_synthetic_loo = Array.init 512 (fun i -> 0.05 *. float_of_int i)

let index_cls_world ~rng ~n ~dim =
  let open Prom_ml in
  let sample = index_blob_sampler rng ~dim in
  let feats = Array.init n sample in
  let w = Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let predict_proba x =
    let p = 1.0 /. (1.0 +. exp (-.(Prom_linalg.Vec.dot w x))) in
    [| 1.0 -. p; p |]
  in
  let model =
    { Model.n_classes = 2; predict_proba; name = "linear-sigmoid"; state = Model.No_state }
  in
  let entries =
    Array.mapi
      (fun i f -> { Calibration.features = f; label = i land 1; proba = predict_proba f })
      feats
  in
  let restore () =
    Calibration.restore_cls ~entries ~config:index_config
      ~scaler:(index_identity_scaler ~dim) ~tau:1.0 ~loo_distances:index_synthetic_loo ()
  in
  let cal_scan = with_index_threshold "1000000000" restore in
  let cal_ix = with_index_threshold "1" restore in
  (model, cal_scan, cal_ix, sample)

let index_reg_world ~rng ~n ~dim =
  let open Prom_ml in
  let sample = index_blob_sampler rng ~dim in
  let feats = Array.init n sample in
  let w = Array.init dim (fun _ -> Prom_linalg.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let model =
    { Model.predict = (fun x -> Prom_linalg.Vec.dot w x); name = "linear";
      reg_state = Model.No_state }
  in
  let n_clusters = 4 in
  let clusters =
    {
      Kmeans.centroids =
        Array.init n_clusters (fun c ->
            Array.init dim (fun j -> float_of_int (c + j)));
      assignments = Array.init n (fun i -> i mod n_clusters);
      inertia = 0.0;
    }
  in
  let rentries =
    Array.mapi
      (fun i f ->
        let pred = Prom_linalg.Vec.dot w f in
        { Calibration.rfeatures = f; target = pred +. 0.1; rpred = pred;
          cluster = i mod n_clusters; rproxy = pred; rspread = 0.5 })
      feats
  in
  let restore () =
    Calibration.restore_reg ~rentries ~rconfig:index_config ~clusters ~n_clusters
      ~rscaler:(index_identity_scaler ~dim) ~rtau:1.0
      ~rloo_distances:index_synthetic_loo ()
  in
  let cal_scan = with_index_threshold "1000000000" restore in
  let cal_ix = with_index_threshold "1" restore in
  (model, cal_scan, cal_ix, sample)

let index_section ~sizes ~n_queries ~quota ~json_path () =
  section_header "Pruned kNN index: calibration query scaling";
  let rng = Prom_linalg.Rng.create (seed + 31) in
  let dim = 12 in
  let committee = Nonconformity.default_committee in
  let largest = sizes.(Array.length sizes - 1) in
  let rows =
    Array.map
      (fun n ->
        let model, cal_scan, cal_ix, sample = index_cls_world ~rng ~n ~dim in
        (match Calibration.index_of_cls cal_scan with
        | Some _ -> failwith "index bench: scan arm unexpectedly indexed"
        | None -> ());
        let idx =
          match Calibration.index_of_cls cal_ix with
          | Some i -> i
          | None -> failwith "index bench: index arm carries no index"
        in
        let t0 = Unix.gettimeofday () in
        ignore (Prom_linalg.Knn_index.build cal_ix.Calibration.feat_matrix);
        let build_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        let det_scan =
          Detector.Classification.of_calibration ~config:index_config ~committee ~model
            ~feature_of:Fun.id cal_scan
        in
        let det_ix =
          Detector.Classification.of_calibration ~config:index_config ~committee ~model
            ~feature_of:Fun.id cal_ix
        in
        let queries = Array.init n_queries (fun i -> sample (5 * i)) in
        (* Bit-identity gate: verdicts must match the dense scan exactly,
           sequentially and batched, before anything is timed. *)
        let vs = Array.map (Detector.Classification.evaluate det_scan) queries in
        let vi = Array.map (Detector.Classification.evaluate det_ix) queries in
        if vs <> vi then failwith "index bench: indexed verdicts diverged from scan";
        let vb = Detector.Classification.evaluate_batch det_ix queries in
        if vb <> vs then failwith "index bench: indexed batch verdicts diverged";
        if n = largest then begin
          let rmodel, rcal_scan, rcal_ix, rsample = index_reg_world ~rng ~n ~dim in
          let rcommittee = Nonconformity.default_reg_committee in
          let rdet_scan =
            Detector.Regression.of_calibration ~config:index_config
              ~committee:rcommittee ~model:rmodel ~feature_of:Fun.id rcal_scan
          in
          let rdet_ix =
            Detector.Regression.of_calibration ~config:index_config
              ~committee:rcommittee ~model:rmodel ~feature_of:Fun.id rcal_ix
          in
          let rqueries = Array.init n_queries (fun i -> rsample (3 * i)) in
          let rs = Array.map (Detector.Regression.evaluate rdet_scan) rqueries in
          let ri = Array.map (Detector.Regression.evaluate rdet_ix) rqueries in
          if rs <> ri then
            failwith "index bench: regression indexed verdicts diverged from scan";
          let rb = Detector.Regression.evaluate_batch rdet_ix rqueries in
          if rb <> rs then
            failwith "index bench: regression indexed batch verdicts diverged";
          Printf.printf "  regression verdicts bit-identical at n=%d: true\n" n
        end;
        let before = Prom_linalg.Knn_index.stats idx in
        let qi = ref 0 in
        let pick () =
          let q = queries.(!qi) in
          qi := (!qi + 1) mod n_queries;
          q
        in
        let ns =
          ns_interleaved ~quota ~rounds:3
            [|
              ( Printf.sprintf "scan-%d" n,
                fun () -> ignore (Detector.Classification.evaluate det_scan (pick ())) );
              ( Printf.sprintf "index-%d" n,
                fun () -> ignore (Detector.Classification.evaluate det_ix (pick ())) );
            |]
        in
        let after = Prom_linalg.Knn_index.stats idx in
        let scan_ns = ns.(0) and index_ns = ns.(1) in
        let scanned = after.st_scanned - before.st_scanned in
        let pruned = after.st_rows_pruned - before.st_rows_pruned in
        let cpruned = after.st_clusters_pruned - before.st_clusters_pruned in
        let tq = after.st_queries - before.st_queries in
        let prune_frac =
          if scanned + pruned = 0 then 0.0
          else float_of_int pruned /. float_of_int (scanned + pruned)
        in
        let qps ns = 1e9 /. ns in
        Printf.printf
          "  n=%-7d scan %9.0f ns/q (%8.0f q/s) | index %9.0f ns/q (%8.0f q/s) | \
           %5.1fx | clusters %4d | rows pruned %5.1f%% | build %7.1f ms\n"
          n scan_ns (qps scan_ns) index_ns (qps index_ns) (scan_ns /. index_ns)
          (Prom_linalg.Knn_index.clusters idx)
          (100.0 *. prune_frac) build_ms;
        ( n, scan_ns, index_ns, Prom_linalg.Knn_index.clusters idx, tq, scanned, pruned,
          cpruned, prune_frac, build_ms ))
      sizes
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"dim\": %d,\n  \"select_ratio\": %.3f,\n  \"batch_queries\": %d,\n  \"sizes\": [\n"
    dim index_config.Config.select_ratio n_queries;
  Array.iteri
    (fun i (n, scan_ns, index_ns, clusters, tq, scanned, pruned, cpruned, frac, build_ms) ->
      Printf.fprintf oc
        "    {\"n\": %d, \"scan_ns_per_query\": %.1f, \"index_ns_per_query\": %.1f,\n\
        \     \"scan_queries_per_sec\": %.1f, \"index_queries_per_sec\": %.1f,\n\
        \     \"speedup\": %.3f, \"clusters\": %d, \"build_ms\": %.2f,\n\
        \     \"prune\": {\"queries\": %d, \"rows_scanned\": %d, \"rows_pruned\": %d,\n\
        \               \"clusters_pruned\": %d, \"rows_pruned_frac\": %.4f}}%s\n"
        n scan_ns index_ns (1e9 /. scan_ns) (1e9 /. index_ns) (scan_ns /. index_ns)
        clusters build_ms tq scanned pruned cpruned frac
        (if i = Array.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let index_bench () =
  index_section ~sizes:[| 1_000; 10_000; 100_000 |] ~n_queries:64 ~quota:0.5
    ~json_path:"BENCH_index.json" ()

let index_smoke () =
  index_section ~sizes:[| 1_000; 4_000 |] ~n_queries:16 ~quota:0.05
    ~json_path:"BENCH_index_smoke.json" ()

(* Serving-layer benchmark: closed-loop load generation against the
   in-process HTTP server — throughput and latency percentiles at
   several keep-alive concurrency levels, a wire-identity check against
   the direct [Service.evaluate_batch] path, and the adaptive-batching
   speedup over a max_batch=1 server. The [serve-smoke] variant also
   drives a spawned `prom_cli serve` process end to end when the
   bench-smoke alias provides the binary path via PROM_CLI. *)

module Http = Prom_server.Http
module Server = Prom_server.Server
module Jx = Prom_jsonx

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(Stdlib.min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let connect_loopback port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let query_body (features, proba) =
  let vec v = Jx.Arr (Array.to_list (Array.map (fun x -> Jx.Num x) v)) in
  Jx.to_string (Jx.Obj [ ("features", vec features); ("proba", vec proba) ])

(* One closed-loop level: [concurrency] keep-alive connections, each
   firing [requests] single-query POSTs back to back. Up to 64
   connections each level runs one client thread per connection; past
   that each thread multiplexes a block of connections (write the whole
   block, then collect the whole block of responses) so the generator
   itself is not serialized by hundreds of runnable systhreads fighting
   over one runtime lock — at c=512 a thread-per-connection client
   measures its own scheduler, not the server. *)
let run_level ~port ~bodies ~concurrency ~requests =
  let per_thread =
    if concurrency <= 64 then 1
    else if concurrency mod 32 = 0 then 32
    else 1
  in
  let nthreads = concurrency / per_thread in
  let nbodies = Array.length bodies in
  let failures = Atomic.make 0 in
  let lat = Array.make (concurrency * requests) 0.0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.init nthreads (fun c ->
        Thread.create
          (fun () ->
            try
              let fds = Array.init per_thread (fun _ -> connect_loopback port) in
              let readers = Array.map Http.reader fds in
              let sent = Array.make per_thread 0.0 in
              for k = 0 to requests - 1 do
                for j = 0 to per_thread - 1 do
                  let conn = (c * per_thread) + j in
                  let body = bodies.((conn + k) mod nbodies) in
                  sent.(j) <- Unix.gettimeofday ();
                  Http.write_request fds.(j) ~meth:"POST" ~path:"/predict" body
                done;
                for j = 0 to per_thread - 1 do
                  let conn = (c * per_thread) + j in
                  (match Http.read_response readers.(j) with
                  | Ok r when r.Http.status = 200 -> ()
                  | _ -> Atomic.incr failures);
                  lat.((conn * requests) + k) <- Unix.gettimeofday () -. sent.(j)
                done
              done;
              Array.iter Unix.close fds
            with _ -> Atomic.incr failures)
          ())
  in
  Array.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let total = concurrency * requests in
  (total, Atomic.get failures, wall, float_of_int total /. wall, sorted)

let scrape_metric text name =
  List.find_map
    (fun line ->
      let n = String.length name in
      if String.length line > n + 1 && String.sub line 0 n = name && line.[n] = ' '
      then float_of_string_opt (String.sub line (n + 1) (String.length line - n - 1))
      else None)
    (String.split_on_char '\n' text)

let http_get ~port path =
  let fd = connect_loopback port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Http.write_request fd ~meth:"GET" ~path "";
      match Http.read_response (Http.reader fd) with
      | Ok r -> r
      | Error _ -> failwith "serve bench: GET failed")

let serve_section ~n_cal ~levels ~requests ~json_path () =
  section_header
    (Printf.sprintf "HTTP serving: closed-loop load generator (n_cal=%d)" n_cal);
  let open Prom_ml in
  let model, calibration, _ = inference_world ~n_cal ~n_queries:1 in
  let triples =
    List.init (Dataset.length calibration) (fun i ->
        let x, y = Dataset.get calibration i in
        (x, y, model.Model.predict_proba x))
  in
  let service = Service.create triples in
  let rng = Prom_linalg.Rng.create (seed + 99) in
  let queries =
    Array.init 64 (fun i ->
        let x =
          Array.init 16 (fun j ->
              float_of_int ((i mod 4) * (1 + (j mod 3)))
              +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.5)
        in
        (x, model.Model.predict_proba x))
  in
  let bodies = Array.map query_body queries in
  let n_domains = Stdlib.max 2 (Prom_parallel.Pool.default_size ()) in
  let pool = Prom_parallel.Pool.create n_domains in
  Fun.protect
    ~finally:(fun () -> Prom_parallel.Pool.shutdown pool)
    (fun () ->
      let direct = Service.evaluate_batch ~pool service queries in
      (* Inference ceiling: what raw [evaluate_batch] sustains on this
         machine with no HTTP in the way. The closed-loop levels below
         share the same cores with the load generator, so this bounds
         every throughput number in the file. *)
      let ceiling_qps =
        let iters = 8 in
        let t_inf = Unix.gettimeofday () in
        for _ = 1 to iters do
          ignore (Service.evaluate_batch ~pool service queries)
        done;
        float_of_int (iters * Array.length queries)
        /. (Unix.gettimeofday () -. t_inf)
      in
      Printf.printf "  inference ceiling (batch=%d, no HTTP): %.0f q/s\n"
        (Array.length queries) ceiling_qps;
      let top = List.fold_left Stdlib.max 1 levels in
      (* Headroom above the highest closed-loop level so admission
         control never 503s the load generator itself. *)
      let config =
        {
          Server.default_config with
          Server.max_connections =
            Stdlib.max Server.default_config.Server.max_connections (2 * top);
        }
      in
      let server = Server.start ~config ~pool service in
      let port = Server.port server in
      (* Wire identity: every served verdict must bit-match the direct
         evaluate_batch path, JSON round trip included. *)
      let fd = connect_loopback port in
      let reader = Http.reader fd in
      Array.iteri
        (fun i body ->
          Http.write_request fd ~meth:"POST" ~path:"/predict" body;
          match Http.read_response reader with
          | Ok r when r.Http.status = 200 -> (
              match Jx.parse r.Http.resp_body with
              | Ok v ->
                  let cred = Option.bind (Jx.member "credibility" v) Jx.to_float in
                  let conf = Option.bind (Jx.member "confidence" v) Jx.to_float in
                  if
                    cred <> Some direct.(i).Detector.mean_credibility
                    || conf <> Some direct.(i).Detector.mean_confidence
                  then failwith "serve bench: served verdict diverged from direct path"
              | Error e -> failwith ("serve bench: bad response JSON: " ^ e))
          | _ -> failwith "serve bench: identity check request failed")
        bodies;
      Unix.close fd;
      Printf.printf
        "  served = direct evaluate_batch (bit-identical): true (%d queries)\n"
        (Array.length queries);
      let level_rows =
        List.map
          (fun concurrency ->
            let total, failures, wall, rps, sorted =
              run_level ~port ~bodies ~concurrency ~requests
            in
            if failures > 0 then
              failwith
                (Printf.sprintf "serve bench: %d failures at concurrency %d"
                   failures concurrency);
            let ms p = percentile sorted p *. 1000.0 in
            Printf.printf
              "  c=%-3d  %6d reqs  %8.0f req/s   p50 %7.3f ms  p90 %7.3f ms  \
               p99 %7.3f ms  (0 failures)\n"
              concurrency total rps (ms 0.5) (ms 0.9) (ms 0.99);
            (concurrency, total, wall, rps, ms 0.5, ms 0.9, ms 0.99))
          levels
      in
      let metrics_text = (http_get ~port "/metrics").Http.resp_body in
      (match Prom_obs.validate_exposition metrics_text with
      | Ok () -> ()
      | Error e -> failwith ("serve bench: invalid /metrics exposition: " ^ e));
      let mean_batch =
        match
          ( scrape_metric metrics_text "prom_http_batch_size_sum",
            scrape_metric metrics_text "prom_http_batch_size_count" )
        with
        | Some s, Some c when c > 0.0 -> s /. c
        | _ -> 0.0
      in
      Printf.printf "  mean dispatched batch size: %.2f\n" mean_batch;
      Server.stop server;
      (* Adaptive batching vs a max_batch=1 server at the highest level. *)
      let unbatched_config =
        { config with Server.max_batch = 1; max_wait_us = 0 }
      in
      let server1 = Server.start ~config:unbatched_config ~pool service in
      let _, failures1, _, rps1, _ =
        run_level ~port:(Server.port server1) ~bodies ~concurrency:top ~requests
      in
      Server.stop server1;
      if failures1 > 0 then failwith "serve bench: failures on unbatched server";
      let batched_rps =
        List.fold_left
          (fun acc (c, _, _, rps, _, _, _) -> if c = top then rps else acc)
          0.0 level_rows
      in
      Printf.printf
        "  adaptive batching vs max_batch=1 at c=%d: %.0f vs %.0f req/s (%.2fx)\n"
        top batched_rps rps1
        (if rps1 > 0.0 then batched_rps /. rps1 else 0.0);
      let row_json (c, total, wall, rps, p50, p90, p99) =
        Jx.Obj
          [
            ("concurrency", Jx.Num (float_of_int c));
            ("requests", Jx.Num (float_of_int total));
            ("failures", Jx.Num 0.0);
            ("wall_s", Jx.Num wall);
            ("throughput_rps", Jx.Num rps);
            ( "latency_ms",
              Jx.Obj
                [ ("p50", Jx.Num p50); ("p90", Jx.Num p90); ("p99", Jx.Num p99) ]
            );
          ]
      in
      let doc =
        Jx.Obj
          [
            ("calibration_entries", Jx.Num (float_of_int n_cal));
            ("requests_per_connection", Jx.Num (float_of_int requests));
            ("inference_ceiling_qps", Jx.Num ceiling_qps);
            ("mean_batch_size", Jx.Num mean_batch);
            ("levels", Jx.Arr (List.map row_json level_rows));
            ( "unbatched_comparison",
              Jx.Obj
                [
                  ("concurrency", Jx.Num (float_of_int top));
                  ("batched_rps", Jx.Num batched_rps);
                  ("unbatched_rps", Jx.Num rps1);
                  ( "speedup",
                    Jx.Num (if rps1 > 0.0 then batched_rps /. rps1 else 0.0) );
                ] );
          ]
      in
      let oc = open_out json_path in
      output_string oc (Jx.to_string doc ^ "\n");
      close_out oc;
      Printf.printf "  wrote %s\n" json_path)

(* Lifecycle smoke of the spawned CLI server: start `prom_cli serve
   --listen 0`, scrape the announced port, hit every endpoint, hot-swap,
   then SIGTERM and require a clean (drained) exit 0. *)
let serve_lifecycle_smoke () =
  section_header "Serve lifecycle: spawned prom_cli serve";
  match Sys.getenv_opt "PROM_CLI" with
  | None -> Printf.printf "  skipped (PROM_CLI not set)\n"
  | Some cli ->
      let dir = Filename.temp_dir "prom-bench-serve-cli" "" in
      let r_out, w_out = Unix.pipe () in
      let pid =
        Unix.create_process cli
          [| cli; "serve"; "--quick"; "--listen"; "0"; "--snapshot-dir"; dir |]
          Unix.stdin w_out Unix.stderr
      in
      Unix.close w_out;
      let ic = Unix.in_channel_of_descr r_out in
      let port =
        let prefix = "listening on http://127.0.0.1:" in
        let plen = String.length prefix in
        let rec scan () =
          let line = input_line ic in
          if String.length line > plen && String.sub line 0 plen = prefix then
            int_of_string (String.sub line plen (String.length line - plen))
          else scan ()
        in
        try scan ()
        with End_of_file -> failwith "serve lifecycle: server never announced a port"
      in
      let fd = connect_loopback port in
      let reader = Http.reader fd in
      let req meth path body =
        Http.write_request fd ~meth ~path body;
        match Http.read_response reader with
        | Ok r -> r
        | Error _ -> failwith "serve lifecycle: unreadable response"
      in
      let expect name status (r : Http.response) =
        if r.Http.status <> status then
          failwith
            (Printf.sprintf "serve lifecycle: %s answered %d, wanted %d" name
               r.Http.status status)
      in
      let h = req "GET" "/healthz" "" in
      expect "healthz" 200 h;
      let dim, n_classes =
        match Jx.parse h.Http.resp_body with
        | Ok v -> (
            let geti name =
              match Option.bind (Jx.member name v) Jx.to_float with
              | Some f -> int_of_float f
              | None -> failwith "serve lifecycle: healthz missing engine dims"
            in
            (geti "feature_dim", geti "n_classes"))
        | Error e -> failwith ("serve lifecycle: healthz body: " ^ e)
      in
      let body =
        query_body
          (Array.make dim 0.5, Array.make n_classes (1.0 /. float_of_int n_classes))
      in
      expect "predict" 200 (req "POST" "/predict" body);
      let m = req "GET" "/metrics" "" in
      expect "metrics" 200 m;
      (match Prom_obs.validate_exposition m.Http.resp_body with
      | Ok () -> ()
      | Error e -> failwith ("serve lifecycle: invalid exposition: " ^ e));
      expect "swap" 200 (req "POST" "/admin/swap" "");
      Unix.close fd;
      Unix.kill pid Sys.sigterm;
      (match
         Prom_store.Iox.retry (fun () -> Unix.waitpid [] pid)
       with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith "serve lifecycle: prom_cli serve did not exit 0");
      close_in ic;
      Printf.printf "  spawn -> healthz/predict/metrics/swap -> SIGTERM -> exit 0: ok\n"

let serve_bench () =
  serve_section ~n_cal:600 ~levels:[ 1; 8; 64; 512 ] ~requests:100
    ~json_path:"BENCH_serve.json" ()

let serve_bench_smoke () =
  serve_section ~n_cal:120 ~levels:[ 1; 4; 128 ] ~requests:10
    ~json_path:"BENCH_serve_smoke.json" ();
  serve_lifecycle_smoke ()

(* Multi-tenant serving benchmark: two tenants with independent
   deployments behind one server, a per-tenant wire-identity check,
   solo per-tenant baselines, then a mixed 80/20-skewed closed loop —
   and the starvation gate: deficit-round-robin batching must keep the
   cold tenant's p99 within 3x its solo p99 while the hot tenant keeps
   the shared queue saturated. *)

(* [plan.(c)] is connection [c]'s (path, bodies): tenant routing is per
   connection, so per-tenant latencies partition by plan row. *)
let run_tenant_level ~port ~plan ~requests =
  let n = Array.length plan in
  let failures = Atomic.make 0 in
  let lat = Array.make_matrix n requests 0.0 in
  let threads =
    Array.init n (fun c ->
        Thread.create
          (fun () ->
            try
              let path, bodies = plan.(c) in
              let nb = Array.length bodies in
              let fd = connect_loopback port in
              let reader = Http.reader fd in
              for k = 0 to requests - 1 do
                let t0 = Unix.gettimeofday () in
                Http.write_request fd ~meth:"POST" ~path bodies.((c + k) mod nb);
                (match Http.read_response reader with
                | Ok r when r.Http.status = 200 -> ()
                | _ -> Atomic.incr failures);
                lat.(c).(k) <- Unix.gettimeofday () -. t0
              done;
              Unix.close fd
            with _ -> Atomic.incr failures)
          ())
  in
  Array.iter Thread.join threads;
  (Atomic.get failures, lat)

let tenant_percentile_ms rows p =
  let all = Array.concat (Array.to_list rows) in
  Array.sort compare all;
  percentile all p *. 1000.0

let tenants_section ~n_cal ~hot_conns ~cold_conns ~requests ~json_path () =
  section_header
    (Printf.sprintf "Multi-tenant serving: %d/%d skewed closed loop (n_cal=%d)"
       hot_conns cold_conns n_cal);
  let open Prom_ml in
  let model, calibration, _ = inference_world ~n_cal ~n_queries:1 in
  let triples len =
    List.init len (fun i ->
        let x, y = Dataset.get calibration i in
        (x, y, model.Model.predict_proba x))
  in
  let n = Dataset.length calibration in
  (* Deliberately different calibration stores, so the tenants'
     committees (and verdicts) differ and the per-tenant wire-identity
     check below is meaningful. *)
  let svc_hot = Service.create (triples n) in
  let svc_cold = Service.create (triples (Stdlib.max 16 (n / 2))) in
  let rng = Prom_linalg.Rng.create (seed + 41) in
  let queries =
    Array.init 64 (fun i ->
        let x =
          Array.init 16 (fun j ->
              float_of_int ((i mod 4) * (1 + (j mod 3)))
              +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.5)
        in
        (x, model.Model.predict_proba x))
  in
  let bodies = Array.map query_body queries in
  let pool =
    Prom_parallel.Pool.create (Stdlib.max 2 (Prom_parallel.Pool.default_size ()))
  in
  Fun.protect
    ~finally:(fun () -> Prom_parallel.Pool.shutdown pool)
    (fun () ->
      let tenants = Tenant.create () in
      ignore (Tenant.register ~service:svc_hot tenants "hot");
      ignore (Tenant.register ~service:svc_cold tenants "cold");
      let conns = hot_conns + cold_conns in
      let config =
        {
          Server.default_config with
          Server.max_connections =
            Stdlib.max Server.default_config.Server.max_connections (2 * conns);
        }
      in
      let server = Server.start ~config ~pool ~tenants svc_hot in
      let port = Server.port server in
      (* Per-tenant wire identity: what /t/<name>/predict serves must
         bit-match that tenant's own direct evaluate_batch. *)
      List.iter
        (fun (tname, svc) ->
          let direct = Service.evaluate_batch ~pool svc queries in
          let fd = connect_loopback port in
          let reader = Http.reader fd in
          Array.iteri
            (fun i body ->
              Http.write_request fd ~meth:"POST"
                ~path:("/t/" ^ tname ^ "/predict")
                body;
              match Http.read_response reader with
              | Ok r when r.Http.status = 200 -> (
                  match Jx.parse r.Http.resp_body with
                  | Ok v ->
                      let cred =
                        Option.bind (Jx.member "credibility" v) Jx.to_float
                      in
                      let conf =
                        Option.bind (Jx.member "confidence" v) Jx.to_float
                      in
                      if
                        cred <> Some direct.(i).Detector.mean_credibility
                        || conf <> Some direct.(i).Detector.mean_confidence
                      then
                        failwith
                          (Printf.sprintf
                             "tenants bench: tenant %s diverged from its direct \
                              path"
                             tname)
                  | Error e -> failwith ("tenants bench: bad response JSON: " ^ e))
              | _ -> failwith "tenants bench: identity request failed")
            bodies;
          Unix.close fd)
        [ ("hot", svc_hot); ("cold", svc_cold) ];
      Printf.printf
        "  per-tenant served = direct evaluate_batch (bit-identical): true (%d \
         queries x 2 tenants)\n"
        (Array.length queries);
      (* Solo baselines: each tenant alone on the shared server, at the
         connection count it will hold in the mixed phase. *)
      let solo tname nconns =
        let plan = Array.make nconns ("/t/" ^ tname ^ "/predict", bodies) in
        let failures, lat = run_tenant_level ~port ~plan ~requests in
        if failures > 0 then failwith "tenants bench: failures in solo phase";
        tenant_percentile_ms lat 0.99
      in
      let hot_solo_p99 = solo "hot" hot_conns in
      let cold_solo_p99 = solo "cold" cold_conns in
      (* Mixed phase: the 80/20 skew, one shared server and batcher. *)
      let plan =
        Array.init conns (fun c ->
            if c < hot_conns then ("/t/hot/predict", bodies)
            else ("/t/cold/predict", bodies))
      in
      let t0 = Unix.gettimeofday () in
      let failures, lat = run_tenant_level ~port ~plan ~requests in
      let wall = Unix.gettimeofday () -. t0 in
      if failures > 0 then failwith "tenants bench: failures in mixed phase";
      let hot_rows = Array.sub lat 0 hot_conns in
      let cold_rows = Array.sub lat hot_conns cold_conns in
      let hot_p50 = tenant_percentile_ms hot_rows 0.5 in
      let hot_p99 = tenant_percentile_ms hot_rows 0.99 in
      let cold_p50 = tenant_percentile_ms cold_rows 0.5 in
      let cold_p99 = tenant_percentile_ms cold_rows 0.99 in
      let metrics_text = (http_get ~port "/metrics").Http.resp_body in
      (match Prom_obs.validate_exposition metrics_text with
      | Ok () -> ()
      | Error e -> failwith ("tenants bench: invalid /metrics exposition: " ^ e));
      let share tname =
        Option.value ~default:0.0
          (scrape_metric metrics_text
             (Printf.sprintf "prom_tenant_batch_share{tenant=%S}" tname))
      in
      let hot_share = share "hot" and cold_share = share "cold" in
      Server.stop server;
      let rps = float_of_int (conns * requests) /. wall in
      Printf.printf
        "  mixed %d/%d: %7.0f req/s   hot p50 %7.3f p99 %7.3f ms   cold p50 \
         %7.3f p99 %7.3f ms\n"
        hot_conns cold_conns rps hot_p50 hot_p99 cold_p50 cold_p99;
      Printf.printf "  batch share: hot %.0f queries, cold %.0f queries\n"
        hot_share cold_share;
      (* Starvation gate: fair-share batching must keep the cold
         tenant's p99 within 3x its solo p99; the 5 ms additive
         allowance absorbs scheduler jitter at smoke scale without
         masking real starvation (which shows up as 10-100x). *)
      let limit = (3.0 *. cold_solo_p99) +. 5.0 in
      let pass = cold_p99 <= limit in
      Printf.printf
        "  starvation gate: cold mixed p99 %.3f ms <= 3 x solo p99 %.3f ms + 5 \
         ms: %s\n"
        cold_p99 cold_solo_p99
        (if pass then "pass" else "FAIL");
      let tenant_json name nconns solo_p99 p50 p99 share_q =
        Jx.Obj
          [
            ("tenant", Jx.Str name);
            ("connections", Jx.Num (float_of_int nconns));
            ("solo_p99_ms", Jx.Num solo_p99);
            ("mixed_p50_ms", Jx.Num p50);
            ("mixed_p99_ms", Jx.Num p99);
            ("batch_share_queries", Jx.Num share_q);
          ]
      in
      let doc =
        Jx.Obj
          [
            ("calibration_entries", Jx.Num (float_of_int n_cal));
            ("requests_per_connection", Jx.Num (float_of_int requests));
            ("throughput_rps", Jx.Num rps);
            ( "tenants",
              Jx.Arr
                [
                  tenant_json "hot" hot_conns hot_solo_p99 hot_p50 hot_p99
                    hot_share;
                  tenant_json "cold" cold_conns cold_solo_p99 cold_p50 cold_p99
                    cold_share;
                ] );
            ( "starvation_gate",
              Jx.Obj
                [
                  ("cold_mixed_p99_ms", Jx.Num cold_p99);
                  ("cold_solo_p99_ms", Jx.Num cold_solo_p99);
                  ("limit_ms", Jx.Num limit);
                  ("pass", Jx.Bool pass);
                ] );
          ]
      in
      let oc = open_out json_path in
      output_string oc (Jx.to_string doc ^ "\n");
      close_out oc;
      Printf.printf "  wrote %s\n" json_path;
      if not pass then failwith "tenants bench: starvation gate failed")

(* Lifecycle smoke of the spawned multi-tenant CLI server: a serving
   root with two tenant subdirectories, `prom_cli serve --tenants`,
   predictions on both tenants, a hot-swap of one, a traversal 404,
   then SIGTERM and a clean drained exit 0. *)
let tenants_lifecycle_smoke () =
  section_header "Tenants lifecycle: spawned prom_cli serve --tenants";
  match Sys.getenv_opt "PROM_CLI" with
  | None -> Printf.printf "  skipped (PROM_CLI not set)\n"
  | Some cli ->
      let root = Filename.temp_dir "prom-bench-tenants-cli" "" in
      Unix.mkdir (Filename.concat root "a") 0o755;
      Unix.mkdir (Filename.concat root "b") 0o755;
      let r_out, w_out = Unix.pipe () in
      let pid =
        Unix.create_process cli
          [| cli; "serve"; "--quick"; "--listen"; "0"; "--tenants"; root |]
          Unix.stdin w_out Unix.stderr
      in
      Unix.close w_out;
      let ic = Unix.in_channel_of_descr r_out in
      let port =
        let prefix = "listening on http://127.0.0.1:" in
        let plen = String.length prefix in
        let rec scan () =
          let line = input_line ic in
          if String.length line > plen && String.sub line 0 plen = prefix then
            int_of_string (String.sub line plen (String.length line - plen))
          else scan ()
        in
        try scan ()
        with End_of_file ->
          failwith "tenants lifecycle: server never announced a port"
      in
      let fd = connect_loopback port in
      let reader = Http.reader fd in
      let req meth path body =
        Http.write_request fd ~meth ~path body;
        match Http.read_response reader with
        | Ok r -> r
        | Error _ -> failwith "tenants lifecycle: unreadable response"
      in
      let expect name status (r : Http.response) =
        if r.Http.status <> status then
          failwith
            (Printf.sprintf "tenants lifecycle: %s answered %d, wanted %d" name
               r.Http.status status)
      in
      let h = req "GET" "/healthz" "" in
      expect "healthz" 200 h;
      let dim, n_classes =
        match Jx.parse h.Http.resp_body with
        | Ok v -> (
            let geti name =
              match Option.bind (Jx.member name v) Jx.to_float with
              | Some f -> int_of_float f
              | None -> failwith "tenants lifecycle: healthz missing engine dims"
            in
            (geti "feature_dim", geti "n_classes"))
        | Error e -> failwith ("tenants lifecycle: healthz body: " ^ e)
      in
      let body =
        query_body
          (Array.make dim 0.5, Array.make n_classes (1.0 /. float_of_int n_classes))
      in
      expect "predict /t/a" 200 (req "POST" "/t/a/predict" body);
      expect "predict /t/b" 200 (req "POST" "/t/b/predict" body);
      expect "swap /t/a" 200 (req "POST" "/t/a/admin/swap" "");
      expect "tenant healthz" 200 (req "GET" "/t/b/healthz" "");
      expect "traversal 404" 404 (req "POST" "/t/a.b/predict" body);
      Unix.close fd;
      Unix.kill pid Sys.sigterm;
      (match Prom_store.Iox.retry (fun () -> Unix.waitpid [] pid) with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith "tenants lifecycle: prom_cli serve did not exit 0");
      close_in ic;
      Printf.printf
        "  spawn -> /t/{a,b}/predict -> swap a -> SIGTERM -> exit 0: ok\n"

let tenants_bench () =
  tenants_section ~n_cal:600 ~hot_conns:16 ~cold_conns:4 ~requests:100
    ~json_path:"BENCH_tenants.json" ()

let tenants_bench_smoke () =
  tenants_section ~n_cal:120 ~hot_conns:8 ~cold_conns:2 ~requests:25
    ~json_path:"BENCH_tenants_smoke.json" ();
  tenants_lifecycle_smoke ()

(* The paper's motivating study (Fig. 1a): a binary vulnerability
   detector trained on 2012-2014 samples, evaluated on successive future
   time windows. Half of each window's programs carry an injected bug. *)
let fig1 () =
  section_header "Figure 1a: data drift degrades a vulnerability detector over time";
  let open Prom_ml in
  let open Prom_synth in
  let open Prom_nn in
  let spec = Prom_tasks.Encoders.seq_spec ~max_len:64 ~extra:0 in
  let rng = Prom_linalg.Rng.create seed in
  let sample era =
    let style = Generator.style_of_era rng era in
    let base = Generator.generate rng style in
    if Prom_linalg.Rng.bool rng then
      let cwe = Prom_linalg.Rng.choice rng (Array.of_list Bug_inject.all) in
      (Prom_tasks.Encoders.pack_program spec ~prefix:[] (Bug_inject.inject rng ~era cwe base), 1)
    else
      (* Benign samples carry decoy helpers using the same APIs, so the
         detector must recognize patterns rather than vocabulary. *)
      let n = 1 + Prom_linalg.Rng.int rng 2 in
      ( Prom_tasks.Encoders.pack_program spec ~prefix:[]
          (Bug_inject.add_decoys rng ~era ~count:n base),
        0 )
  in
  let window eras n =
    let samples = Array.init n (fun i -> sample (List.nth eras (i mod List.length eras))) in
    Dataset.create (Array.map fst samples) (Array.map snd samples)
  in
  let train = window [ 2012; 2013; 2014 ] 360 in
  let params =
    { (Seq_model.default_params spec) with Seq_model.arch = Attention; epochs = 25;
      hidden = 16; learning_rate = 0.005 }
  in
  let model = Seq_model.train ~params train in
  let f1_on d =
    let tp = ref 0 and fp = ref 0 and fn = ref 0 in
    Array.iteri
      (fun i x ->
        match (Model.predict model x, d.Dataset.y.(i)) with
        | 1, 1 -> incr tp
        | 1, 0 -> incr fp
        | 0, 1 -> incr fn
        | _ -> ())
      d.Dataset.x;
    let p = float_of_int !tp /. float_of_int (Stdlib.max 1 (!tp + !fp)) in
    let r = float_of_int !tp /. float_of_int (Stdlib.max 1 (!tp + !fn)) in
    if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
  in
  List.iter
    (fun (label, eras) ->
      Printf.printf "  %-12s F1 = %.3f
" label (f1_on (window eras 120)))
    [
      ("2012-2014", [ 2012; 2013; 2014 ]);
      ("2015-2016", [ 2015; 2016 ]);
      ("2017-2018", [ 2017; 2018 ]);
      ("2019-2020", [ 2019; 2020 ]);
      ("2021-2023", [ 2021; 2022; 2023 ]);
    ];
  Printf.printf "  (paper: F1 > 0.8 in-window, < 0.3 on future windows)\n"

(* Ablation of the design choices DESIGN.md calls out, on the C2/MLP
   setup: each variant removes one component of the detector. *)
let ablation () =
  section_header "Ablation: PROM components on C2 (MLP)";
  let model, calibration, drift_x, mispredicted = sensitivity_setup () in
  let run label config committee =
    let det =
      Detector.Classification.create ~config ~committee ~model ~feature_of:Fun.id
        calibration
    in
    let m = metrics_for det drift_x mispredicted in
    Format.printf "  %-34s %a@." label Detection_metrics.pp m
  in
  let default_committee = Nonconformity.default_committee in
  run "full detector (default)" Config.default default_committee;
  run "no distance test, credibility only"
    { Config.default with Config.decision_rule = Config.Credibility_only }
    default_committee;
  run "no adaptive weighting (w = 1)"
    { Config.default with Config.temperature = 1e12 }
    default_committee;
  run "full calibration set (no subset)"
    { Config.default with Config.select_ratio = 1.0; select_all_below = max_int }
    default_committee;
  run "strict majority voting"
    { Config.default with Config.vote_fraction = 0.5 }
    default_committee;
  run "single expert (LAC)" Config.default [ Nonconformity.lac ];
  run "extended committee (+Margin,+Entropy)" Config.default
    Nonconformity.extended_committee

(* Native distance-kernel backends: bit-identity gate plus per-kernel
   latency and effective bandwidth for the OCaml reference, the
   portable C build and the SIMD build. The gate runs first — on
   matrices covering every unroll remainder plus NaN/inf values — and
   fails the whole bench run on any diverging bit, since the 4-lane
   accumulation-order contract promises exact equality. *)
let kernels_section ~shapes ~quota ~json_path () =
  let module K = Prom_linalg.Kernels in
  section_header
    (Printf.sprintf "Distance kernels: backend parity and throughput (%s)"
       (String.concat ", "
          (List.map (fun (n, dim) -> Printf.sprintf "n=%d dim=%d" n dim) shapes)));
  let backends = List.filter K.available [ K.Ocaml; K.C; K.Simd ] in
  (* Any NaN matches any NaN: with two NaN add operands (a NaN element
     and an inf-inf difference in one lane) the surviving payload
     depends on operand order the C compiler may commute; everything
     non-NaN must match bit for bit. *)
  let bit_eq x y =
    Int64.bits_of_float x = Int64.bits_of_float y || (x <> x && y <> y)
  in
  let rng = Prom_linalg.Rng.create (seed + 29) in
  List.iter
    (fun (pn, pdim) ->
      let specials = [| nan; infinity; neg_infinity; 0.0; -0.0; 1e300 |] in
      let value i =
        if i mod 17 = 0 then specials.(i mod Array.length specials)
        else Prom_linalg.Rng.uniform rng ~lo:(-10.0) ~hi:10.0
      in
      let data = Array.init (pn * pdim) value in
      let q = Array.init pdim (fun i -> value (i + 1)) in
      let want = Array.make pn nan in
      K.sq_dists_range_with K.Ocaml ~data ~dim:pdim ~r0:0 ~r1:pn ~q ~oq:0 ~out:want
        ~off:0;
      List.iter
        (fun b ->
          let out = Array.make pn nan in
          K.sq_dists_range_with b ~data ~dim:pdim ~r0:0 ~r1:pn ~q ~oq:0 ~out ~off:0;
          for i = 0 to pn - 1 do
            if not (bit_eq out.(i) want.(i)) then
              failwith
                (Printf.sprintf
                   "kernels bench: %s range kernel diverged from the OCaml reference"
                   (K.backend_name b));
            let p = K.sq_dist_segs_with b data (i * pdim) q 0 pdim in
            if not (bit_eq p want.(i)) then
              failwith
                (Printf.sprintf
                   "kernels bench: %s pair kernel diverged from the OCaml reference"
                   (K.backend_name b))
          done)
        backends)
    [ (64, 16); (37, 13); (21, 7); (9, 3); (5, 1) ];
  Printf.printf "  backend parity (%s): ok (NaN/inf and all dim mod 4 covered)\n"
    (String.concat " vs " (List.map K.backend_name backends));
  let measure_shape (n, dim) =
    let data =
      Array.init (n * dim) (fun _ -> Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.0)
    in
    let q = Array.init dim (fun _ -> Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
    let out = Array.make n 0.0 in
    let sink = ref 0.0 in
    let tests =
      Array.of_list
        (List.concat_map
           (fun b ->
             [
               ( "range-" ^ K.backend_name b,
                 fun () ->
                   K.sq_dists_range_with b ~data ~dim ~r0:0 ~r1:n ~q ~oq:0 ~out ~off:0
               );
               ( "pair-" ^ K.backend_name b,
                 fun () ->
                   let acc = ref 0.0 in
                   for i = 0 to n - 1 do
                     acc := !acc +. K.sq_dist_segs_with b data (i * dim) q 0 dim
                   done;
                   sink := !acc );
             ])
           backends)
    in
    let ns = ns_interleaved ~quota ~rounds:3 tests in
    (* One full scan reads the n*dim row floats (the query stays in
       registers): bytes per nanosecond is numerically GB/s. *)
    let scan_bytes = float_of_int (n * dim * 8) in
    Printf.printf "  -- n=%d dim=%d (matrix %d KB) --\n" n dim (n * dim * 8 / 1024);
    let stats =
      List.mapi
        (fun i b ->
          let range_ns = ns.(2 * i) and pair_ns = ns.((2 * i) + 1) in
          let per_row = range_ns /. float_of_int n in
          let gbps = scan_bytes /. range_ns in
          Printf.printf
            "  %-5s (%s)  range %8.0f ns/scan  %6.2f ns/row  %6.2f GB/s | pair loop \
             %8.0f ns\n"
            (K.backend_name b) (K.isa_name b) range_ns per_row gbps pair_ns;
          (b, range_ns, pair_ns, per_row, gbps))
        backends
    in
    let range_of bk =
      List.find_map (fun (b, r, _, _, _) -> if b = bk then Some r else None) stats
    in
    let speedup =
      match (range_of K.Ocaml, range_of K.Simd) with
      | Some o, Some s ->
          Printf.printf "  simd speedup vs ocaml: %.2fx\n" (o /. s);
          o /. s
      | _ -> nan
    in
    ((n, dim), stats, speedup)
  in
  let shape_stats = List.map measure_shape shapes in
  let oc = open_out json_path in
  Printf.fprintf oc "{\n  \"active_backend\": %S,\n  \"active_isa\": %S,\n"
    (K.active_name ()) (K.active_isa ());
  Printf.fprintf oc "  \"shapes\": [\n";
  List.iteri
    (fun si ((n, dim), stats, speedup) ->
      Printf.fprintf oc "    {\"n_rows\": %d, \"dim\": %d, \"backends\": {\n" n dim;
      List.iteri
        (fun i (b, range_ns, pair_ns, per_row, gbps) ->
          Printf.fprintf oc
            "      %S: {\"isa\": %S, \"range_scan_ns\": %.1f, \"range_ns_per_row\": \
             %.3f, \"range_gb_per_s\": %.3f, \"pair_loop_ns\": %.1f}%s\n"
            (K.backend_name b) (K.isa_name b) range_ns per_row gbps pair_ns
            (if i = List.length stats - 1 then "" else ","))
        stats;
      Printf.fprintf oc "    }, \"simd_speedup_vs_ocaml\": %.3f}%s\n" speedup
        (if si = List.length shape_stats - 1 then "" else ","))
    shape_stats;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let kernels_bench () =
  kernels_section
    ~shapes:[ (4096, 16); (1024, 64); (256, 256) ]
    ~quota:0.5 ~json_path:"BENCH_kernels.json" ()

let kernels_smoke () =
  kernels_section ~shapes:[ (512, 16) ] ~quota:0.05
    ~json_path:"BENCH_kernels_smoke.json" ()

(* Streaming weighted recalibration (Stream): the unit-weight parity
   gate, then the ingestion loop — admit / decay / evict / rebuild /
   swap — running against live serving traffic from a second thread.
   The gate fails the run on any diverging verdict bit; the live phase
   fails it on any failed request, since [Service.swap] promises that
   publishes never block or break serving. *)
let stream_section ~n_cal ~admissions ~capacity ~json_path () =
  section_header
    (Printf.sprintf "Streaming calibration: ingestion loop under live traffic (n_cal=%d)"
       n_cal);
  let open Prom_ml in
  let model, calibration, queries = inference_world ~n_cal ~n_queries:32 in
  let triples =
    List.init n_cal (fun i ->
        let x = calibration.Dataset.x.(i) in
        (x, calibration.Dataset.y.(i), model.Model.predict_proba x))
  in
  let traffic = Array.map (fun x -> (x, model.Model.predict_proba x)) queries in
  (* --- Parity gate: explicit all-ones weights must not move a bit. ---
     The same store with a unit weight vector folded in exercises the
     weighted rank sums, suffix tables and gather-free scaling; the
     contract is that they reproduce the unweighted arithmetic exactly,
     so every p-value must match bit for bit. *)
  let plain = Service.create triples in
  let weighted =
    match Service.snapshot plain with
    | Snapshot.Cls s ->
        let cal = s.Snapshot.cls_calibration in
        let ones = Array.make (Array.length cal.Calibration.entries) 1.0 in
        Service.of_snapshot
          (Snapshot.Cls
             { s with Snapshot.cls_calibration = Calibration.reweight_cls cal ones })
    | Snapshot.Reg _ -> assert false
  in
  let vp = Service.evaluate_batch plain traffic in
  let vw = Service.evaluate_batch weighted traffic in
  let bit_eq x y = Int64.bits_of_float x = Int64.bits_of_float y in
  Array.iteri
    (fun i (a : Detector.cls_verdict) ->
      let b = vw.(i) in
      let ok =
        a.Detector.drifted = b.Detector.drifted
        && bit_eq a.Detector.mean_credibility b.Detector.mean_credibility
        && bit_eq a.Detector.mean_confidence b.Detector.mean_confidence
        && List.for_all2
             (fun (ea : Scores.expert_verdict) (eb : Scores.expert_verdict) ->
               bit_eq ea.Scores.credibility eb.Scores.credibility
               && bit_eq ea.Scores.confidence eb.Scores.confidence
               && bit_eq ea.Scores.distance_pvalue eb.Scores.distance_pvalue)
             a.Detector.experts b.Detector.experts
      in
      if not ok then
        failwith "stream bench: unit-weight verdicts diverged from the plain store")
    vp;
  Printf.printf "  unit-weight parity (all-ones reweight, %d queries): bit-identical\n"
    (Array.length traffic);
  (* --- Live ingestion loop. --- *)
  let service = Service.create triples in
  let window = Stdlib.max 1 (capacity / 2) in
  let stream =
    Stream.create ~policy:(Decay.Sliding { window }) ~capacity ~compact_fraction:0.5
      service
  in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let latencies = ref [] in
  let lat_lock = Mutex.create () in
  let traffic_thread =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let t0 = Unix.gettimeofday () in
          (try ignore (Service.evaluate_batch service traffic : Detector.cls_verdict array)
           with _ -> Atomic.incr failures);
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.lock lat_lock;
          latencies := dt :: !latencies;
          Mutex.unlock lat_lock;
          Thread.yield ()
        done)
      ()
  in
  (* Baseline serving latency before any admission. *)
  let () = Thread.delay 0.2 in
  let baseline =
    Mutex.lock lat_lock;
    let l = Array.of_list !latencies in
    latencies := [];
    Mutex.unlock lat_lock;
    Array.sort Float.compare l;
    l
  in
  let rng = Prom_linalg.Rng.create (seed + 7) in
  let dim = Array.length calibration.Dataset.x.(0) in
  let n_classes = model.Model.n_classes in
  let max_swap = ref 0.0 and sum_swap = ref 0.0 in
  let max_rebuild = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to admissions - 1 do
    let label = i mod n_classes in
    (* Admissions drift slowly away from the seeding blobs, so the
       sliding window genuinely forgets the original region. *)
    let x =
      Array.init dim (fun j ->
          float_of_int (label * (1 + (j mod 3)))
          +. (0.002 *. float_of_int i)
          +. Prom_linalg.Rng.gaussian rng ~mu:0.0 ~sigma:1.5)
    in
    Stream.admit stream ~features:x ~label ~proba:(model.Model.predict_proba x);
    let st = Stream.stats stream in
    max_swap := Stdlib.max !max_swap st.Stream.last_swap_s;
    sum_swap := !sum_swap +. st.Stream.last_swap_s;
    max_rebuild := Stdlib.max !max_rebuild st.Stream.last_rebuild_s
  done;
  let admit_total = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Thread.join traffic_thread;
  let live =
    let l = Array.of_list !latencies in
    Array.sort Float.compare l;
    l
  in
  if Atomic.get failures > 0 then
    failwith
      (Printf.sprintf "stream bench: %d requests failed during ingestion"
         (Atomic.get failures));
  let st = Stream.stats stream in
  if st.Stream.compactions = 0 then
    failwith "stream bench: ingestion never triggered a compaction";
  let p arr q = if Array.length arr = 0 then 0.0 else percentile arr q in
  let admits_per_s = float_of_int admissions /. admit_total in
  let mean_swap_ms = !sum_swap /. float_of_int admissions *. 1000.0 in
  Printf.printf "  admissions        %6d in %.2fs (%6.0f admits/sec)\n" admissions
    admit_total admits_per_s;
  Printf.printf "  store             resident %d | live %d | evicted %d | compactions %d\n"
    st.Stream.resident st.Stream.live st.Stream.evicted st.Stream.compactions;
  Printf.printf "  publish (swap)    mean %.3f ms | max %.3f ms | rebuild max %.3f ms\n"
    mean_swap_ms (!max_swap *. 1000.0) (!max_rebuild *. 1000.0);
  Printf.printf
    "  live traffic      %d batches, 0 failures | batch p50 %.3f ms (baseline %.3f ms)\n"
    (Array.length live + Array.length baseline)
    (p live 0.5 *. 1000.0) (p baseline 0.5 *. 1000.0);
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{
  "calibration_entries": %d,
  "admissions": %d,
  "capacity": %d,
  "window": %d,
  "admits_per_sec": %.1f,
  "publishes": %d,
  "compactions": %d,
  "evicted": %d,
  "final_resident": %d,
  "swap_ms": { "mean": %.4f, "max": %.4f },
  "rebuild_ms_max": %.4f,
  "live_traffic": {
    "batches": %d,
    "failures": %d,
    "batch_p50_ms": %.4f,
    "batch_p99_ms": %.4f,
    "baseline_p50_ms": %.4f
  }
}
|}
    n_cal admissions capacity window admits_per_s st.Stream.publishes
    st.Stream.compactions st.Stream.evicted st.Stream.resident mean_swap_ms
    (!max_swap *. 1000.0)
    (!max_rebuild *. 1000.0)
    (Array.length live) (Atomic.get failures)
    (p live 0.5 *. 1000.0)
    (p live 0.99 *. 1000.0)
    (p baseline 0.5 *. 1000.0);
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let stream_bench () =
  stream_section ~n_cal:600 ~admissions:1500 ~capacity:800
    ~json_path:"BENCH_stream.json" ()

let stream_smoke () =
  stream_section ~n_cal:160 ~admissions:240 ~capacity:200
    ~json_path:"BENCH_stream_smoke.json" ()

let sections =
  [
    ("table2", table2);
    ("fig1", fig1);
    ("ablation", ablation);
    ("table3", table3);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13a", fig13a);
    ("fig13b", fig13b);
    ("fig13c", fig13c);
    ("fig13d", fig13d);
    ("overhead", overhead);
    ("inference", inference);
    ("inference-smoke", inference_smoke);
    ("prep", prep);
    ("prep-smoke", prep_smoke);
    ("snapshot", snapshot);
    ("snapshot-smoke", snapshot_smoke);
    ("index", index_bench);
    ("index-smoke", index_smoke);
    ("kernels", kernels_bench);
    ("kernels-smoke", kernels_smoke);
    ("serve", serve_bench);
    ("serve-smoke", serve_bench_smoke);
    ("tenants", tenants_bench);
    ("tenants-smoke", tenants_bench_smoke);
    ("stream", stream_bench);
    ("stream-smoke", stream_smoke);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    (* The [-smoke] variants are for the bench-smoke CI alias only; the
       default run uses the full-scale sections. *)
    | _ ->
        List.filter
          (fun n ->
            n <> "inference-smoke" && n <> "prep-smoke"
            && n <> "snapshot-smoke" && n <> "serve-smoke" && n <> "index-smoke"
            && n <> "kernels-smoke" && n <> "stream-smoke"
            && n <> "tenants-smoke")
          (List.map fst sections)
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested;
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
