(* Test runner: aggregates every module's suites. *)

let () =
  Alcotest.run "prom"
    (Test_linalg.suite @ Test_obs.suite @ Test_parallel.suite @ Test_ml.suite
   @ Test_autodiff.suite @ Test_nn.suite @ Test_synth.suite @ Test_store.suite
   @ Test_core.suite @ Test_tasks.suite @ Test_jsonx.suite @ Test_server.suite)
