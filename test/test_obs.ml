(* Tests for the observability layer: per-domain shard merging,
   snapshot determinism, histogram bucket semantics, registration
   validation, and the exposition renderer/validator. *)

module Obs = Prom_obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains text needle =
  Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains text needle)

let counter_tests =
  [
    Alcotest.test_case "inc and add merge into one value" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let c = Obs.counter reg "c_total" in
        Obs.Counter.inc c;
        Obs.Counter.inc c;
        Obs.Counter.add c 3.5;
        Alcotest.(check (float 0.0)) "value" 5.5 (Obs.Counter.value c));
    Alcotest.test_case "add rejects negative and non-finite increments" `Quick
      (fun () ->
        let reg = Obs.create_registry () in
        let c = Obs.counter reg "c_total" in
        List.iter
          (fun v ->
            Alcotest.check_raises "monotonic"
              (Invalid_argument "Obs.Counter.add: negative or non-finite increment")
              (fun () -> Obs.Counter.add c v))
          [ -1.0; Float.nan; Float.infinity ];
        Alcotest.(check (float 0.0)) "untouched" 0.0 (Obs.Counter.value c));
    Alcotest.test_case "shards merge across domains" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let c = Obs.counter reg "c_total" in
        for _ = 1 to 50 do
          Obs.Counter.inc c
        done;
        let workers =
          Array.init 3 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to 100 do
                    Obs.Counter.inc c
                  done))
        in
        Array.iter Domain.join workers;
        Alcotest.(check (float 0.0)) "merged" 350.0 (Obs.Counter.value c));
    Alcotest.test_case "get-or-create returns the same series" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let a = Obs.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "c_total" in
        (* label order is normalized, so the reversed list hits the same
           series *)
        let b = Obs.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "c_total" in
        Obs.Counter.inc a;
        Obs.Counter.inc b;
        Alcotest.(check (float 0.0)) "shared" 2.0 (Obs.Counter.value a));
    Alcotest.test_case "distinct labels are distinct series" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let a = Obs.counter reg ~labels:[ ("expert", "lac") ] "flags_total" in
        let b = Obs.counter reg ~labels:[ ("expert", "aps" ) ] "flags_total" in
        Obs.Counter.inc a;
        Alcotest.(check (float 0.0)) "a" 1.0 (Obs.Counter.value a);
        Alcotest.(check (float 0.0)) "b" 0.0 (Obs.Counter.value b));
  ]

let gauge_tests =
  [
    Alcotest.test_case "gauge is last-write-wins across domains" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let g = Obs.gauge reg "rate" in
        Obs.Gauge.set g 1.0;
        Domain.join (Domain.spawn (fun () -> Obs.Gauge.set g 7.0));
        Alcotest.(check (float 0.0)) "worker write visible" 7.0 (Obs.Gauge.value g);
        Obs.Gauge.set g 2.0;
        Alcotest.(check (float 0.0)) "overwritten" 2.0 (Obs.Gauge.value g));
  ]

let histogram_tests =
  [
    Alcotest.test_case "bucket boundaries use le semantics" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let h = Obs.histogram reg ~buckets:[| 1.0; 2.0; 5.0 |] "h" in
        (* a value exactly at a bound lands in that bound's bucket; above
           the last bound it lands only in +Inf *)
        List.iter (Obs.Histogram.observe h) [ 1.0; 1.5; 5.0; 5.1 ];
        Alcotest.(check (float 0.0)) "count" 4.0 (Obs.Histogram.count h);
        Alcotest.(check (float 1e-9)) "sum" 12.6 (Obs.Histogram.sum h);
        let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg) in
        check_contains text "h_bucket{le=\"1\"} 1\n";
        check_contains text "h_bucket{le=\"2\"} 2\n";
        check_contains text "h_bucket{le=\"5\"} 3\n";
        check_contains text "h_bucket{le=\"+Inf\"} 4\n";
        check_contains text "h_count 4\n");
    Alcotest.test_case "histogram shards merge across domains" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let h = Obs.histogram reg ~buckets:[| 10.0 |] "h" in
        Obs.Histogram.observe h 1.0;
        let workers =
          Array.init 2 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to 10 do
                    Obs.Histogram.observe h 2.0
                  done))
        in
        Array.iter Domain.join workers;
        Alcotest.(check (float 0.0)) "count" 21.0 (Obs.Histogram.count h);
        Alcotest.(check (float 1e-9)) "sum" 41.0 (Obs.Histogram.sum h));
    Alcotest.test_case "bucket bounds are validated" `Quick (fun () ->
        let reg = Obs.create_registry () in
        Alcotest.check_raises "empty" (Invalid_argument "Obs.histogram: empty bucket list")
          (fun () -> ignore (Obs.histogram reg ~buckets:[||] "h"));
        Alcotest.check_raises "non-increasing"
          (Invalid_argument "Obs.histogram: bucket bounds must be strictly increasing")
          (fun () -> ignore (Obs.histogram reg ~buckets:[| 1.0; 1.0 |] "h"));
        Alcotest.check_raises "non-finite"
          (Invalid_argument "Obs.histogram: non-finite bucket bound") (fun () ->
            ignore (Obs.histogram reg ~buckets:[| 1.0; Float.infinity |] "h")));
    Alcotest.test_case "default latency buckets are strictly increasing" `Quick
      (fun () ->
        let b = Obs.default_latency_buckets in
        Alcotest.(check bool) "non-empty" true (Array.length b > 0);
        for i = 1 to Array.length b - 1 do
          Alcotest.(check bool) "increasing" true (b.(i) > b.(i - 1))
        done);
  ]

let registration_tests =
  [
    Alcotest.test_case "kind mismatch raises" `Quick (fun () ->
        let reg = Obs.create_registry () in
        ignore (Obs.counter reg "m");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument "Obs: m already registered as a counter with a different kind")
          (fun () -> ignore (Obs.gauge reg "m"));
        ignore (Obs.histogram reg ~buckets:[| 1.0 |] "h");
        Alcotest.check_raises "different buckets"
          (Invalid_argument
             "Obs: h already registered as a histogram with different buckets or kind")
          (fun () -> ignore (Obs.histogram reg ~buckets:[| 2.0 |] "h")));
    Alcotest.test_case "invalid names are rejected" `Quick (fun () ->
        let reg = Obs.create_registry () in
        Alcotest.check_raises "leading digit"
          (Invalid_argument "Obs: invalid metric name \"9bad\"") (fun () ->
            ignore (Obs.counter reg "9bad"));
        Alcotest.check_raises "bad char"
          (Invalid_argument "Obs: invalid metric name \"has space\"") (fun () ->
            ignore (Obs.counter reg "has space"));
        Alcotest.check_raises "label with colon"
          (Invalid_argument "Obs: invalid label name \"bad:label\"") (fun () ->
            ignore (Obs.counter reg ~labels:[ ("bad:label", "v") ] "ok")));
    Alcotest.test_case "registries are independent" `Quick (fun () ->
        let a = Obs.create_registry () and b = Obs.create_registry () in
        Obs.Counter.inc (Obs.counter a "c_total");
        Alcotest.(check (float 0.0)) "isolated" 0.0 (Obs.Counter.value (Obs.counter b "c_total")));
  ]

let snapshot_tests =
  [
    Alcotest.test_case "snapshot is independent of domain touch order" `Quick
      (fun () ->
        (* same updates, shards created in opposite orders: merged output
           must be identical because merging sums cell-wise *)
        let build main_first =
          let reg = Obs.create_registry () in
          let c = Obs.counter reg ~help:"test counter" "c_total" in
          let h = Obs.histogram reg ~buckets:[| 1.0; 4.0 |] "h" in
          let from_worker () =
            Domain.join
              (Domain.spawn (fun () ->
                   Obs.Counter.add c 2.0;
                   Obs.Histogram.observe h 3.0))
          in
          let from_main () =
            Obs.Counter.add c 5.0;
            Obs.Histogram.observe h 0.5
          in
          if main_first then (from_main (); from_worker ())
          else (from_worker (); from_main ());
          Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg)
        in
        Alcotest.(check string) "deterministic" (build true) (build false));
    Alcotest.test_case "untouched metrics still render at zero" `Quick (fun () ->
        let reg = Obs.create_registry () in
        ignore (Obs.counter reg "c_total");
        ignore (Obs.histogram reg ~buckets:[| 1.0 |] "h");
        let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg) in
        check_contains text "c_total 0\n";
        check_contains text "h_count 0\n";
        check_contains text "h_bucket{le=\"+Inf\"} 0\n");
    Alcotest.test_case "label values are escaped" `Quick (fun () ->
        let reg = Obs.create_registry () in
        ignore (Obs.counter reg ~labels:[ ("k", "a\"b\\c\nd") ] "c_total");
        let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg) in
        check_contains text "c_total{k=\"a\\\"b\\\\c\\nd\"} 0\n";
        Alcotest.(check bool) "still valid" true
          (Result.is_ok (Obs.validate_exposition text)));
    Alcotest.test_case "json output carries the same numbers" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let c = Obs.counter reg ~labels:[ ("expert", "lac") ] "c_total" in
        Obs.Counter.add c 2.0;
        let h = Obs.histogram reg ~buckets:[| 1.0 |] "h" in
        Obs.Histogram.observe h 0.5;
        let json = Obs.Snapshot.to_json (Obs.Snapshot.take reg) in
        check_contains json "\"name\":\"c_total\"";
        check_contains json "\"labels\":{\"expert\":\"lac\"}";
        check_contains json "\"value\":2";
        check_contains json "{\"le\":\"+Inf\",\"count\":1}";
        check_contains json "\"sum\":0.5");
  ]

let validator_tests =
  [
    Alcotest.test_case "accepts its own exposition output" `Quick (fun () ->
        let reg = Obs.create_registry () in
        let c = Obs.counter reg ~help:"a counter" ~labels:[ ("k", "v") ] "c_total" in
        Obs.Counter.add c 4.0;
        Obs.Gauge.set (Obs.gauge reg "g") (-2.5);
        let h = Obs.histogram reg ~help:"a histogram" "h_seconds" in
        List.iter (Obs.Histogram.observe h) [ 1e-4; 0.2; 99.0 ];
        let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg) in
        match Obs.validate_exposition text with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "rejects malformed expositions" `Quick (fun () ->
        List.iter
          (fun (label, text) ->
            Alcotest.(check bool) label true
              (Result.is_error (Obs.validate_exposition text)))
          [
            ("sample without TYPE", "foo 1\n");
            ("unparseable value", "# TYPE foo counter\nfoo abc\n");
            ("bad metric name", "# TYPE 9foo counter\n");
            ("unknown type", "# TYPE foo widget\n");
            ("unclosed label", "# TYPE foo counter\nfoo{k=\"v 1\n");
            ( "histogram without +Inf",
              "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n" );
            ( "non-cumulative buckets",
              "# TYPE h histogram\n\
               h_bucket{le=\"1\"} 2\n\
               h_bucket{le=\"+Inf\"} 1\n\
               h_count 1\n" );
            ( "count mismatch",
              "# TYPE h histogram\n\
               h_bucket{le=\"1\"} 1\n\
               h_bucket{le=\"+Inf\"} 2\n\
               h_count 3\n" );
          ]);
    Alcotest.test_case "accepts foreign but well-formed text" `Quick (fun () ->
        let text =
          "# HELP up whether the target is up\n\
           # TYPE up gauge\n\
           up{job=\"prom\"} 1\n\
           # TYPE lat histogram\n\
           lat_bucket{le=\"0.1\"} 3\n\
           lat_bucket{le=\"+Inf\"} 5\n\
           lat_sum 0.9\n\
           lat_count 5\n"
        in
        Alcotest.(check bool) "ok" true (Result.is_ok (Obs.validate_exposition text)));
  ]

(* Property: a histogram's merged count/sum always agree with the raw
   observation stream, whatever the values. *)
let prop_hist_totals =
  QCheck2.Test.make ~name:"histogram count and sum match the observations" ~count:100
    QCheck2.Gen.(list_size (int_range 0 50) (float_range 0.0 20.0))
    (fun values ->
      let reg = Obs.create_registry () in
      let h = Obs.histogram reg ~buckets:[| 0.5; 2.0; 10.0 |] "h" in
      List.iter (Obs.Histogram.observe h) values;
      let total = List.fold_left ( +. ) 0.0 values in
      Obs.Histogram.count h = float_of_int (List.length values)
      && Float.abs (Obs.Histogram.sum h -. total) <= 1e-9 *. (1.0 +. Float.abs total))

let prop_exposition_valid =
  QCheck2.Test.make ~name:"any counter/gauge mix renders a valid exposition" ~count:50
    QCheck2.Gen.(
      list_size (int_range 0 8)
        (triple (int_range 0 3) (float_range 0.0 100.0) bool))
    (fun updates ->
      let reg = Obs.create_registry () in
      List.iter
        (fun (slot, v, is_counter) ->
          if is_counter then
            Obs.Counter.add (Obs.counter reg (Printf.sprintf "c%d_total" slot)) v
          else Obs.Gauge.set (Obs.gauge reg (Printf.sprintf "g%d" slot)) v)
        updates;
      Result.is_ok
        (Obs.validate_exposition (Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg))))

(* Property for the multi-tenant serving series: tenant names reaching
   the exposition are free-form label values. Whatever bytes they hold
   — quotes, backslashes, newlines, braces — the text format must
   escape them exactly (backslash, double-quote and newline each get a
   backslash escape) and the validator must accept the resulting
   multi-label series ([{code,tenant}], rendered in sorted label
   order). *)
let prop_tenant_label_escaped =
  let escape v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (function
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  in
  let label_char =
    QCheck2.Gen.oneofl
      [ 'a'; 'Z'; '0'; '-'; '_'; '.'; ' '; '"'; '\\'; '\n'; '{'; '}'; ','; '=' ]
  in
  QCheck2.Test.make
    ~name:"tenant label values are escaped and multi-label series validate"
    ~count:100
    QCheck2.Gen.(string_size ~gen:label_char (int_range 0 24))
    (fun tenant ->
      let reg = Obs.create_registry () in
      Obs.Counter.add
        (Obs.counter reg
           ~labels:[ ("code", "200"); ("tenant", tenant) ]
           "prom_http_requests_total")
        3.0;
      Obs.Gauge.set
        (Obs.gauge reg ~labels:[ ("tenant", tenant) ] "prom_tenant_queue_depth")
        1.0;
      let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.take reg) in
      let contains needle =
        let n = String.length needle and m = String.length text in
        let rec at i =
          i + n <= m && (String.sub text i n = needle || at (i + 1))
        in
        at 0
      in
      Result.is_ok (Obs.validate_exposition text)
      && contains
           (Printf.sprintf
              "prom_http_requests_total{code=\"200\",tenant=\"%s\"} 3"
              (escape tenant))
      && contains
           (Printf.sprintf "prom_tenant_queue_depth{tenant=\"%s\"} 1"
              (escape tenant)))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hist_totals; prop_exposition_valid; prop_tenant_label_escaped ]

let suite =
  [
    ("obs.counter", counter_tests);
    ("obs.gauge", gauge_tests);
    ("obs.histogram", histogram_tests);
    ("obs.registration", registration_tests);
    ("obs.snapshot", snapshot_tests);
    ("obs.validator", validator_tests);
    ("obs.properties", properties);
  ]
