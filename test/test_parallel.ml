(* Tests for the domain pool: deterministic chunked operations,
   sequential fallback, and error propagation. *)

module Pool = Prom_parallel.Pool

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let pool_tests =
  [
    Alcotest.test_case "create rejects non-positive sizes" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Pool.create: need at least one domain") (fun () ->
            ignore (Pool.create 0)));
    Alcotest.test_case "size reports total parallelism" `Quick (fun () ->
        with_pool 3 (fun pool -> Alcotest.(check int) "size" 3 (Pool.size pool)));
    Alcotest.test_case "default_size is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Pool.default_size () >= 1));
    Alcotest.test_case "env var name" `Quick (fun () ->
        Alcotest.(check string) "name" "PROM_NUM_DOMAINS" Pool.env_var);
    Alcotest.test_case "map matches Array.map" `Quick (fun () ->
        with_pool 2 (fun pool ->
            let xs = Array.init 101 (fun i -> i - 50) in
            Alcotest.(check (array int))
              "same" (Array.map (fun x -> x * x) xs)
              (Pool.map ~pool ~min_chunk:1 (fun x -> x * x) xs)));
    Alcotest.test_case "init matches Array.init" `Quick (fun () ->
        with_pool 4 (fun pool ->
            Alcotest.(check (array int))
              "same"
              (Array.init 257 (fun i -> 3 * i))
              (Pool.init ~pool ~min_chunk:1 257 (fun i -> 3 * i))));
    Alcotest.test_case "mapi preserves indices" `Quick (fun () ->
        with_pool 2 (fun pool ->
            let xs = Array.init 77 (fun i -> i) in
            Alcotest.(check (array int))
              "same"
              (Array.mapi (fun i x -> i + x) xs)
              (Pool.mapi ~pool ~min_chunk:1 (fun i x -> i + x) xs)));
    Alcotest.test_case "iteri visits every slot exactly once" `Quick (fun () ->
        with_pool 3 (fun pool ->
            let n = 123 in
            let out = Array.make n (-1) in
            Pool.iteri ~pool ~min_chunk:1 (fun i x -> out.(i) <- 2 * x)
              (Array.init n (fun i -> i));
            Alcotest.(check (array int)) "filled" (Array.init n (fun i -> 2 * i)) out));
    Alcotest.test_case "iter counts every element" `Quick (fun () ->
        with_pool 2 (fun pool ->
            let hits = Atomic.make 0 in
            Pool.iter ~pool ~min_chunk:1 (fun _ -> Atomic.incr hits)
              (Array.init 64 (fun i -> i));
            Alcotest.(check int) "count" 64 (Atomic.get hits)));
    Alcotest.test_case "empty and tiny inputs" `Quick (fun () ->
        with_pool 2 (fun pool ->
            Alcotest.(check (array int)) "empty" [||]
              (Pool.map ~pool ~min_chunk:1 (fun x -> x) [||]);
            Alcotest.(check (array int)) "singleton" [| 9 |]
              (Pool.map ~pool ~min_chunk:1 (fun x -> x + 4) [| 5 |])));
    Alcotest.test_case "sequential fallback below min_chunk is identical" `Quick
      (fun () ->
        with_pool 2 (fun pool ->
            let xs = Array.init 16 (fun i -> float_of_int i) in
            Alcotest.(check (array (float 0.0)))
              "same"
              (Pool.map ~pool ~min_chunk:1 sqrt xs)
              (Pool.map ~pool ~min_chunk:32 sqrt xs)));
    Alcotest.test_case "task exceptions propagate" `Quick (fun () ->
        with_pool 2 (fun pool ->
            Alcotest.check_raises "boom" (Failure "boom") (fun () ->
                ignore
                  (Pool.map ~pool ~min_chunk:1
                     (fun x -> if x = 37 then failwith "boom" else x)
                     (Array.init 64 (fun i -> i))))));
    Alcotest.test_case "attach_metrics records tasks, items and domains" `Quick
      (fun () ->
        with_pool 2 (fun pool ->
            let reg = Prom_obs.create_registry () in
            Pool.attach_metrics pool reg;
            ignore
              (Pool.map ~pool ~min_chunk:1 (fun x -> x + 1) (Array.init 100 (fun i -> i)));
            Alcotest.(check bool) "tasks recorded" true
              (Prom_obs.Counter.value (Prom_obs.counter reg "prom_pool_tasks_total")
              > 0.0);
            let text = Prom_obs.Snapshot.to_prometheus (Prom_obs.Snapshot.take reg) in
            (match Prom_obs.validate_exposition text with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let contains needle =
              let nh = String.length text and nn = String.length needle in
              let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
              go 0
            in
            (* chunk items partition the input, so their sum is the array
               length regardless of how many chunks ran *)
            Alcotest.(check bool) "chunk items sum to input size" true
              (contains "prom_pool_chunk_items_sum 100\n");
            Alcotest.(check bool) "domain gauge" true (contains "prom_pool_domains 2\n")));
    Alcotest.test_case "pool survives a failed batch" `Quick (fun () ->
        with_pool 2 (fun pool ->
            (try
               ignore
                 (Pool.map ~pool ~min_chunk:1
                    (fun x -> if x = 0 then failwith "first" else x)
                    (Array.init 40 (fun i -> i)))
             with Failure _ -> ());
            Alcotest.(check (array int))
              "usable after failure"
              (Array.init 40 (fun i -> i + 1))
              (Pool.map ~pool ~min_chunk:1 (fun x -> x + 1) (Array.init 40 (fun i -> i)))));
  ]

(* Property: pooled map over random arrays is Array.map, regardless of
   pool size and chunking. *)
let prop_map_equiv =
  QCheck2.Test.make ~name:"Pool.map equals Array.map" ~count:50
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 200) (float_range (-1e6) 1e6))
        (int_range 1 4))
    (fun (xs, np) ->
      with_pool np (fun pool ->
          let f x = (x *. 3.0) -. 1.0 in
          Pool.map ~pool ~min_chunk:1 f xs = Array.map f xs))

let properties = List.map QCheck_alcotest.to_alcotest [ prop_map_equiv ]

let suite = [ ("parallel.pool", pool_tests); ("parallel.properties", properties) ]
