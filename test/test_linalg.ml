(* Unit and property tests for the prom_linalg substrate. *)

open Prom_linalg

let check_float = Alcotest.(check (float 1e-9))
let check_floatish = Alcotest.(check (float 1e-6))

let rng_tests =
  [
    Alcotest.test_case "deterministic given seed" `Quick (fun () ->
        let a = Rng.create 5 and b = Rng.create 5 in
        for _ = 1 to 50 do
          Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        Alcotest.(check bool) "streams differ" true (xs <> ys));
    Alcotest.test_case "int bounds" `Quick (fun () ->
        let rng = Rng.create 3 in
        for _ = 1 to 1000 do
          let x = Rng.int rng 7 in
          Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
        done);
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int (Rng.create 1) 0)));
    Alcotest.test_case "uniform stays in range" `Quick (fun () ->
        let rng = Rng.create 4 in
        for _ = 1 to 1000 do
          let x = Rng.uniform rng ~lo:(-2.0) ~hi:3.0 in
          Alcotest.(check bool) "in range" true (x >= -2.0 && x < 3.0)
        done);
    Alcotest.test_case "gaussian moments" `Quick (fun () ->
        let rng = Rng.create 6 in
        let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:0.5) in
        Alcotest.(check bool) "mean near 2" true (abs_float (Stats.mean xs -. 2.0) < 0.02);
        Alcotest.(check bool) "std near 0.5" true (abs_float (Stats.std xs -. 0.5) < 0.02));
    Alcotest.test_case "bernoulli frequency" `Quick (fun () ->
        let rng = Rng.create 7 in
        let hits = ref 0 in
        for _ = 1 to 10000 do
          if Rng.bernoulli rng 0.3 then incr hits
        done;
        Alcotest.(check bool) "near 0.3" true (abs_float (float_of_int !hits /. 10000.0 -. 0.3) < 0.02));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = Rng.create 8 in
        let a = Array.init 100 Fun.id in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted);
    Alcotest.test_case "permutation covers 0..n-1" `Quick (fun () ->
        let p = Rng.permutation (Rng.create 9) 50 in
        let sorted = Array.copy p in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "complete" (Array.init 50 Fun.id) sorted);
    Alcotest.test_case "sample without replacement" `Quick (fun () ->
        let rng = Rng.create 10 in
        let s = Rng.sample rng (Array.init 20 Fun.id) 10 in
        let uniq = List.sort_uniq compare (Array.to_list s) in
        Alcotest.(check int) "distinct" 10 (List.length uniq));
    Alcotest.test_case "sample rejects oversize k" `Quick (fun () ->
        Alcotest.check_raises "too large" (Invalid_argument "Rng.sample: k out of range")
          (fun () -> ignore (Rng.sample (Rng.create 1) [| 1; 2 |] 3)));
    Alcotest.test_case "categorical respects weights" `Quick (fun () ->
        let rng = Rng.create 11 in
        let counts = Array.make 3 0 in
        for _ = 1 to 10000 do
          let i = Rng.categorical rng [| 1.0; 0.0; 3.0 |] in
          counts.(i) <- counts.(i) + 1
        done;
        Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
        Alcotest.(check bool) "3x ratio" true
          (float_of_int counts.(2) /. float_of_int counts.(0) > 2.0));
    Alcotest.test_case "categorical rejects all-zero weights" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Rng.categorical: weights sum to zero")
          (fun () -> ignore (Rng.categorical (Rng.create 1) [| 0.0; 0.0 |])));
    Alcotest.test_case "split decouples streams" `Quick (fun () ->
        let a = Rng.create 12 in
        let b = Rng.split a in
        let xs = List.init 10 (fun _ -> Rng.int a 1000) in
        let ys = List.init 10 (fun _ -> Rng.int b 1000) in
        Alcotest.(check bool) "independent" true (xs <> ys));
  ]

let vec_tests =
  [
    Alcotest.test_case "add/sub roundtrip" `Quick (fun () ->
        let a = [| 1.0; 2.0; 3.0 |] and b = [| 0.5; -1.0; 2.0 |] in
        Alcotest.(check (array (float 1e-12))) "a+b-b = a" a (Vec.sub (Vec.add a b) b));
    Alcotest.test_case "dot" `Quick (fun () ->
        check_float "dot" 11.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 3.0; 1.0; 2.0 |]));
    Alcotest.test_case "dimension mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
            ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |])));
    Alcotest.test_case "norm of 3-4-0" `Quick (fun () ->
        check_float "norm" 5.0 (Vec.norm [| 3.0; 4.0; 0.0 |]));
    Alcotest.test_case "axpy updates in place" `Quick (fun () ->
        let y = [| 1.0; 1.0 |] in
        Vec.axpy ~alpha:2.0 [| 1.0; 3.0 |] y;
        Alcotest.(check (array (float 1e-12))) "y" [| 3.0; 7.0 |] y);
    Alcotest.test_case "argmax picks first on ties" `Quick (fun () ->
        Alcotest.(check int) "first" 1 (Vec.argmax [| 0.0; 5.0; 5.0; 1.0 |]));
    Alcotest.test_case "softmax sums to one" `Quick (fun () ->
        check_floatish "sum" 1.0 (Vec.sum (Vec.softmax [| 1.0; 5.0; -2.0 |])));
    Alcotest.test_case "softmax is stable for large logits" `Quick (fun () ->
        let p = Vec.softmax [| 1000.0; 999.0 |] in
        Alcotest.(check bool) "finite" true (Float.is_finite p.(0) && Float.is_finite p.(1));
        check_floatish "sum" 1.0 (Vec.sum p));
    Alcotest.test_case "normalize yields unit norm" `Quick (fun () ->
        check_floatish "norm" 1.0 (Vec.norm (Vec.normalize [| 2.0; -7.0; 0.1 |])));
    Alcotest.test_case "normalize of zero vector is identity" `Quick (fun () ->
        Alcotest.(check (array (float 1e-12))) "zeros" [| 0.0; 0.0 |]
          (Vec.normalize [| 0.0; 0.0 |]));
  ]

let mat_tests =
  [
    Alcotest.test_case "matvec identity" `Quick (fun () ->
        let v = [| 1.0; 2.0; 3.0 |] in
        Alcotest.(check (array (float 1e-12))) "I v = v" v (Mat.matvec (Mat.identity 3) v));
    Alcotest.test_case "matmul associativity with identity" `Quick (fun () ->
        let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        let p = Mat.matmul m (Mat.identity 2) in
        Alcotest.(check (array (float 1e-12))) "row0" m.(0) p.(0);
        Alcotest.(check (array (float 1e-12))) "row1" m.(1) p.(1));
    Alcotest.test_case "transpose involution" `Quick (fun () ->
        let m = Mat.init ~rows:3 ~cols:2 (fun i j -> float_of_int ((i * 10) + j)) in
        let t = Mat.transpose (Mat.transpose m) in
        for i = 0 to 2 do
          Alcotest.(check (array (float 1e-12))) "row" m.(i) t.(i)
        done);
    Alcotest.test_case "of_rows rejects ragged input" `Quick (fun () ->
        Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
          (fun () -> ignore (Mat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |])));
    Alcotest.test_case "solve recovers solution" `Quick (fun () ->
        let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let x = [| 1.5; -2.0 |] in
        let b = Mat.matvec a x in
        let got = Mat.solve a b in
        Alcotest.(check (array (float 1e-9))) "x" x got);
    Alcotest.test_case "solve with pivoting handles zero diagonal" `Quick (fun () ->
        let a = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
        let got = Mat.solve a [| 2.0; 3.0 |] in
        Alcotest.(check (array (float 1e-9))) "x" [| 3.0; 2.0 |] got);
    Alcotest.test_case "solve rejects singular matrix" `Quick (fun () ->
        Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix") (fun () ->
            ignore (Mat.solve (Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]) [| 1.0; 2.0 |])));
    Alcotest.test_case "gram is symmetric" `Quick (fun () ->
        let m = Mat.init ~rows:4 ~cols:3 (fun i j -> float_of_int (i + (2 * j))) in
        let g = Mat.gram m in
        for i = 0 to 2 do
          for j = 0 to 2 do
            check_float "sym" g.(i).(j) g.(j).(i)
          done
        done);
  ]

let stats_tests =
  [
    Alcotest.test_case "mean" `Quick (fun () ->
        check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]));
    Alcotest.test_case "variance of constant is zero" `Quick (fun () ->
        check_float "var" 0.0 (Stats.variance [| 4.0; 4.0; 4.0 |]));
    Alcotest.test_case "sample variance uses n-1" `Quick (fun () ->
        check_float "var" 1.0 (Stats.sample_variance [| 1.0; 2.0; 3.0 |]));
    Alcotest.test_case "median odd and even" `Quick (fun () ->
        check_float "odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
        check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]));
    Alcotest.test_case "quantile endpoints" `Quick (fun () ->
        let a = [| 5.0; 1.0; 3.0 |] in
        check_float "q0" 1.0 (Stats.quantile a 0.0);
        check_float "q1" 5.0 (Stats.quantile a 1.0));
    Alcotest.test_case "quantile rejects out-of-range q" `Quick (fun () ->
        Alcotest.check_raises "q" (Invalid_argument "Stats.quantile: q outside [0,1]")
          (fun () -> ignore (Stats.quantile [| 1.0 |] 1.5)));
    Alcotest.test_case "geomean of powers" `Quick (fun () ->
        check_floatish "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]));
    Alcotest.test_case "geomean rejects non-positive" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Stats.geomean: non-positive value")
          (fun () -> ignore (Stats.geomean [| 1.0; -1.0 |])));
    Alcotest.test_case "histogram counts all samples" `Quick (fun () ->
        let h = Stats.histogram [| 0.0; 0.5; 1.0; 0.9 |] ~bins:4 in
        Alcotest.(check int) "total" 4 (Array.fold_left ( + ) 0 h));
    Alcotest.test_case "histogram of constant array" `Quick (fun () ->
        let h = Stats.histogram [| 2.0; 2.0 |] ~bins:3 in
        Alcotest.(check int) "first bin" 2 h.(0));
    Alcotest.test_case "pearson of identical arrays" `Quick (fun () ->
        check_floatish "corr" 1.0 (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 1.0; 2.0; 3.0 |]));
    Alcotest.test_case "pearson of anti-correlated arrays" `Quick (fun () ->
        check_floatish "corr" (-1.0) (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]));
    Alcotest.test_case "pearson zero-variance guard" `Quick (fun () ->
        check_float "corr" 0.0 (Stats.pearson [| 1.0; 1.0 |] [| 1.0; 2.0 |]));
    Alcotest.test_case "standardize yields zero mean unit std" `Quick (fun () ->
        let z, _, _ = Stats.standardize [| 2.0; 4.0; 6.0; 8.0 |] in
        Alcotest.(check bool) "mean 0" true (abs_float (Stats.mean z) < 1e-9);
        Alcotest.(check bool) "std 1" true (abs_float (Stats.std z -. 1.0) < 1e-9));
    Alcotest.test_case "suffix_sums hand case" `Quick (fun () ->
        Alcotest.(check (array (float 0.0)))
          "sums" [| 6.0; 5.0; 3.0; 0.0 |]
          (Stats.suffix_sums [| 1.0; 2.0; 3.0 |]));
    Alcotest.test_case "suffix_sums of empty is the zero sentinel" `Quick (fun () ->
        Alcotest.(check (array (float 0.0))) "sentinel" [| 0.0 |]
          (Stats.suffix_sums [||]));
    Alcotest.test_case "suffix_sums accumulates right to left exactly" `Quick
      (fun () ->
        (* integer-valued floats accumulate without rounding, so the
           deterministic descending-index order is bit-checkable *)
        let a = Array.init 17 (fun i -> float_of_int ((i * 7 mod 5) + 1)) in
        let s = Stats.suffix_sums a in
        Alcotest.(check int) "length" (Array.length a + 1) (Array.length s);
        for i = Array.length a - 1 downto 0 do
          Alcotest.(check (float 0.0)) "recurrence" (a.(i) +. s.(i + 1)) s.(i)
        done);
  ]

let distance_tests =
  [
    Alcotest.test_case "euclidean" `Quick (fun () ->
        check_float "dist" 5.0 (Distance.euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |]));
    Alcotest.test_case "manhattan" `Quick (fun () ->
        check_float "dist" 7.0 (Distance.manhattan [| 0.0; 0.0 |] [| 3.0; 4.0 |]));
    Alcotest.test_case "chebyshev" `Quick (fun () ->
        check_float "dist" 4.0 (Distance.chebyshev [| 0.0; 0.0 |] [| 3.0; 4.0 |]));
    Alcotest.test_case "cosine of parallel vectors is zero" `Quick (fun () ->
        check_floatish "cos" 0.0 (Distance.cosine [| 1.0; 2.0 |] [| 2.0; 4.0 |]));
    Alcotest.test_case "cosine of orthogonal vectors is one" `Quick (fun () ->
        check_floatish "cos" 1.0 (Distance.cosine [| 1.0; 0.0 |] [| 0.0; 1.0 |]));
    Alcotest.test_case "cosine zero-vector convention" `Quick (fun () ->
        check_float "cos" 1.0 (Distance.cosine [| 0.0; 0.0 |] [| 1.0; 1.0 |]));
    Alcotest.test_case "nearest returns sorted neighbours" `Quick (fun () ->
        let xs = [| [| 0.0 |]; [| 10.0 |]; [| 3.0 |]; [| 5.0 |] |] in
        let idx = Distance.nearest ~dist:Distance.euclidean xs [| 4.0 |] 3 in
        Alcotest.(check (array int)) "order" [| 2; 3; 0 |] idx);
    Alcotest.test_case "nearest clamps k" `Quick (fun () ->
        let xs = [| [| 0.0 |]; [| 1.0 |] |] in
        Alcotest.(check int) "clamped" 2
          (Array.length (Distance.nearest ~dist:Distance.euclidean xs [| 0.0 |] 10)));
  ]

(* Sort-based reference for top-k selection: indices ordered by
   ascending (value, index) — the contract Select must reproduce. *)
let topk_reference xs k =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match Float.compare xs.(i) xs.(j) with 0 -> compare i j | c -> c)
    idx;
  Array.sub idx 0 (Stdlib.min k n)

let select_tests =
  [
    Alcotest.test_case "smallest_k on a hand case" `Quick (fun () ->
        Alcotest.(check (array int))
          "order" [| 3; 0; 2 |]
          (Select.smallest_k [| 2.0; 9.0; 5.0; 1.0 |] 3));
    Alcotest.test_case "duplicate values break ties by index" `Quick (fun () ->
        let xs = [| 1.0; 0.5; 0.5; 1.0; 0.5 |] in
        Alcotest.(check (array int)) "ties" [| 1; 2; 4; 0 |] (Select.smallest_k xs 4));
    Alcotest.test_case "k clamps to the array length" `Quick (fun () ->
        Alcotest.(check (array int)) "all" [| 1; 0 |]
          (Select.smallest_k [| 2.0; 1.0 |] 10));
    Alcotest.test_case "negative k rejected" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Select.smallest_k: negative k")
          (fun () -> ignore (Select.smallest_k [| 1.0 |] (-1))));
    Alcotest.test_case "smallest_k_pairs carries the values" `Quick (fun () ->
        let xs = [| 3.0; 1.0; 2.0 |] in
        Array.iter
          (fun (i, v) -> check_float "value" xs.(i) v)
          (Select.smallest_k_pairs xs 3));
    Alcotest.test_case "streaming heap agrees with the reference" `Quick (fun () ->
        let xs = [| 4.0; 0.0; 4.0; 2.0; 7.0; 0.0; 2.0 |] in
        let h = Select.heap_create 4 in
        Array.iteri (fun i v -> Select.offer h v i) xs;
        Alcotest.(check (array int))
          "order" (topk_reference xs 4)
          (Array.map fst (Select.drain_sorted h)));
    Alcotest.test_case "select_in_place orders the prefix" `Quick (fun () ->
        let xs = [| 5.0; 1.0; 3.0; 3.0; 0.0; 2.0 |] in
        let s = Select.scratch_create () in
        let keys = Select.scratch_keys s (Array.length xs) in
        Array.blit xs 0 keys 0 (Array.length xs);
        Select.select_in_place s ~n:(Array.length xs) ~k:4;
        let idxs = Select.scratch_idxs s and vals = Select.scratch_vals s in
        Alcotest.(check (array int)) "prefix" (topk_reference xs 4) (Array.sub idxs 0 4);
        for r = 0 to 3 do
          check_float "value follows index" xs.(idxs.(r)) vals.(r)
        done);
    Alcotest.test_case "scratch is reusable across sizes" `Quick (fun () ->
        let s = Select.scratch_create () in
        List.iter
          (fun xs ->
            let n = Array.length xs in
            let keys = Select.scratch_keys s n in
            Array.blit xs 0 keys 0 n;
            Select.select_in_place s ~n ~k:n;
            Alcotest.(check (array int))
              "full sort" (topk_reference xs n)
              (Array.sub (Select.scratch_idxs s) 0 n))
          [ [| 3.0; 1.0 |]; [| 9.0; 2.0; 2.0; 7.0; 0.0 |]; [| 1.0 |] ]);
    Alcotest.test_case "heap_reset + drain_into reuse one heap" `Quick (fun () ->
        let h = Select.heap_create 0 in
        let idxs = Array.make 8 (-1) and vals = Array.make 8 nan in
        List.iter
          (fun (xs, k) ->
            Select.heap_reset h k;
            Array.iteri (fun i v -> Select.offer h v i) xs;
            let m = Select.drain_into h ~idxs ~vals in
            let expect = topk_reference xs k in
            Alcotest.(check int) "count" (Array.length expect) m;
            Alcotest.(check (array int)) "order" expect (Array.sub idxs 0 m);
            Array.iteri
              (fun r i -> check_float "value follows index" xs.(i) vals.(r))
              (Array.sub idxs 0 m))
          [
            ([| 4.0; 0.0; 4.0; 2.0; 7.0; 0.0; 2.0 |], 4);
            ([| 1.0; 1.0; 1.0 |], 8);
            ([| 5.0 |], 1);
            ([| 2.0; 3.0 |], 0);
          ]);
    Alcotest.test_case "drain_into rejects undersized scratch" `Quick (fun () ->
        let h = Select.heap_create 3 in
        Array.iteri (fun i v -> Select.offer h v i) [| 3.0; 1.0; 2.0 |];
        Alcotest.check_raises "small"
          (Invalid_argument "Select.drain_into: scratch too small") (fun () ->
            ignore (Select.drain_into h ~idxs:(Array.make 2 0) ~vals:(Array.make 2 0.0))));
    Alcotest.test_case "scale_by folds factors through the index map" `Quick
      (fun () ->
        let weights = [| 0.5; 0.25; 1.0; 9.0 |] in
        let idxs = [| 2; 0; 1; 7 |] in
        let factors = [| 0.5; 0.0; 2.0 |] in
        (* n = 3: the prefix is scaled, the tail (and its out-of-range
           idx entry) is never touched *)
        Select.scale_by ~weights ~idxs ~factors ~n:3;
        Alcotest.(check (array (float 0.0)))
          "scaled prefix, untouched tail" [| 1.0; 0.125; 0.0; 9.0 |] weights);
    Alcotest.test_case "scale_by with unit factors is the identity" `Quick
      (fun () ->
        let weights = [| 0.125; 0.75; 0.375 |] in
        let before = Array.copy weights in
        Select.scale_by ~weights ~idxs:[| 1; 2; 0 |] ~factors:(Array.make 3 1.0)
          ~n:3;
        Alcotest.(check (array (float 0.0))) "bit-identical" before weights);
    Alcotest.test_case "scale_by rejects an oversized prefix" `Quick (fun () ->
        Alcotest.check_raises "n too large"
          (Invalid_argument "Select.scale_by: bad n") (fun () ->
            Select.scale_by ~weights:(Array.make 2 1.0) ~idxs:[| 0; 1 |]
              ~factors:[| 1.0 |] ~n:3))
  ]

let featmat_tests =
  [
    Alcotest.test_case "rows round-trip" `Quick (fun () ->
        let rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
        let fm = Featmat.of_rows rows in
        Alcotest.(check int) "n" 3 (Featmat.length fm);
        Alcotest.(check int) "dim" 2 (Featmat.dim fm);
        Array.iteri
          (fun i row -> Alcotest.(check (array (float 0.0))) "row" row (Featmat.row fm i))
          rows);
    Alcotest.test_case "ragged rows rejected" `Quick (fun () ->
        Alcotest.check_raises "ragged" (Invalid_argument "Featmat.of_rows: ragged rows")
          (fun () -> ignore (Featmat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |])));
    Alcotest.test_case "sq_dist_row matches Distance" `Quick (fun () ->
        let rows = [| [| 0.0; 1.0 |]; [| -2.0; 3.0 |] |] in
        let fm = Featmat.of_rows rows in
        let v = [| 1.5; -0.5 |] in
        Array.iteri
          (fun i row ->
            check_float "sq" (Distance.sq_euclidean row v) (Featmat.sq_dist_row fm i v))
          rows);
    Alcotest.test_case "nearest agrees with the vector path" `Quick (fun () ->
        let rows = Array.init 30 (fun i -> [| float_of_int (i mod 7); float_of_int i |]) in
        let fm = Featmat.of_rows rows in
        let v = [| 3.0; 11.0 |] in
        let got = Featmat.nearest fm v ~k:5 in
        let sq = Array.map (fun row -> Distance.sq_euclidean row v) rows in
        Alcotest.(check (array int)) "indices" (topk_reference sq 5) (Array.map fst got);
        Array.iter
          (fun (i, d) -> check_float "distance" (Distance.euclidean rows.(i) v) d)
          got);
    Alcotest.test_case "sq_dists_into accepts a larger buffer" `Quick (fun () ->
        let rows = [| [| 0.0 |]; [| 2.0 |]; [| 5.0 |] |] in
        let fm = Featmat.of_rows rows in
        let out = Array.make 10 nan in
        Featmat.sq_dists_into fm [| 1.0 |] out;
        Alcotest.(check (array (float 1e-12))) "prefix" [| 1.0; 1.0; 16.0 |]
          (Array.sub out 0 3));
    Alcotest.test_case "knn_mean_dist averages the k nearest" `Quick (fun () ->
        let rows = [| [| 0.0 |]; [| 1.0 |]; [| 10.0 |] |] in
        let fm = Featmat.of_rows rows in
        check_float "mean" 0.5 (Featmat.knn_mean_dist fm [| 0.5 |] ~k:2));
    Alcotest.test_case "append keeps old rows and adds new ones" `Quick (fun () ->
        let fm = Featmat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        let fm' = Featmat.append fm [| [| 5.0; 6.0 |] |] in
        Alcotest.(check int) "n" 3 (Featmat.length fm');
        Alcotest.(check (array (float 0.0))) "old row" [| 3.0; 4.0 |] (Featmat.row fm' 1);
        Alcotest.(check (array (float 0.0))) "new row" [| 5.0; 6.0 |] (Featmat.row fm' 2);
        let v = [| 0.5; -1.0 |] in
        check_float "old distances unchanged" (Featmat.sq_dist_row fm 0 v)
          (Featmat.sq_dist_row fm' 0 v));
    Alcotest.test_case "append to empty adopts the rows" `Quick (fun () ->
        let fm = Featmat.append (Featmat.of_rows [||]) [| [| 7.0 |]; [| 8.0 |] |] in
        Alcotest.(check int) "n" 2 (Featmat.length fm);
        Alcotest.(check int) "dim" 1 (Featmat.dim fm));
    Alcotest.test_case "append rejects ragged rows" `Quick (fun () ->
        let fm = Featmat.of_rows [| [| 1.0; 2.0 |] |] in
        Alcotest.check_raises "ragged" (Invalid_argument "Featmat.append: ragged rows")
          (fun () -> ignore (Featmat.append fm [| [| 1.0 |] |])));
    Alcotest.test_case "sq_dists_cross_block bit-equals row scans" `Quick (fun () ->
        let a = Featmat.of_rows (Array.init 9 (fun i -> [| float_of_int i; 1.0; -0.5 |])) in
        let b =
          Featmat.of_rows (Array.init 5 (fun i -> [| 0.25 *. float_of_int i; -2.0; 3.0 |]))
        in
        let out = Array.make (3 * Featmat.length b) nan in
        Featmat.sq_dists_cross_block a ~r0:4 ~r1:7 b out;
        for q = 0 to 2 do
          let v = Featmat.row a (4 + q) in
          for i = 0 to Featmat.length b - 1 do
            Alcotest.(check (float 0.0)) "cell" (Featmat.sq_dist_row b i v)
              out.((q * Featmat.length b) + i)
          done
        done);
  ]

(* Brute-force reference for the pruned index: full scan + top-k by
   ascending (squared distance, row index) — what Knn_index.query_into
   must reproduce bit for bit. *)
let knn_reference fm v k =
  let n = Featmat.length fm in
  let sq = Array.init n (fun i -> Featmat.sq_dist_row fm i v) in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j -> match Float.compare sq.(i) sq.(j) with 0 -> compare i j | c -> c)
    idx;
  let k = Stdlib.min k n in
  (Array.sub idx 0 k, Array.init k (fun r -> sq.(idx.(r))))

let check_index_parity_built idx fm k =
  let n = Featmat.length fm in
  let got_i = Array.make (Stdlib.max 1 k) (-1) and got_v = Array.make (Stdlib.max 1 k) nan in
  for q = 0 to Stdlib.min 9 (n - 1) do
    let v = Featmat.row fm q |> Array.map (fun x -> x +. 0.125) in
    let m = Knn_index.query_into idx fm v ~k ~idxs:got_i ~vals:got_v ~off:0 in
    let want_i, want_v = knn_reference fm v k in
    Alcotest.(check int) "count" (Array.length want_i) m;
    Alcotest.(check (array int)) "indices" want_i (Array.sub got_i 0 m);
    Alcotest.(check (array (float 0.0))) "values" want_v (Array.sub got_v 0 m)
  done

let check_index_parity ?n_clusters fm k =
  let idx =
    match n_clusters with
    | None -> Knn_index.build fm
    | Some c -> Knn_index.build ~n_clusters:c fm
  in
  check_index_parity_built idx fm k

let knn_index_tests =
  [
    Alcotest.test_case "query matches the scan on clustered data" `Quick (fun () ->
        let rows =
          Array.init 120 (fun i ->
              let c = float_of_int (i mod 4) *. 25.0 in
              [| c +. (0.1 *. float_of_int i); c -. (0.05 *. float_of_int (i mod 11)) |])
        in
        let fm = Featmat.of_rows rows in
        List.iter (fun k -> check_index_parity fm k) [ 1; 5; 60; 120 ]);
    Alcotest.test_case "duplicate rows keep index tie-break" `Quick (fun () ->
        let rows = Array.init 40 (fun i -> [| float_of_int (i mod 3); 0.0 |]) in
        let fm = Featmat.of_rows rows in
        List.iter (fun k -> check_index_parity fm k) [ 1; 7; 40 ]);
    Alcotest.test_case "all-identical rows (zero radii)" `Quick (fun () ->
        let fm = Featmat.of_rows (Array.make 25 [| 2.0; -1.0; 0.5 |]) in
        List.iter (fun k -> check_index_parity fm k) [ 1; 5; 25 ]);
    Alcotest.test_case "one cluster and n clusters both exact" `Quick (fun () ->
        let rows = Array.init 33 (fun i -> [| sin (float_of_int i); cos (float_of_int i) |]) in
        let fm = Featmat.of_rows rows in
        check_index_parity ~n_clusters:1 fm 6;
        check_index_parity ~n_clusters:33 fm 6);
    Alcotest.test_case "queries actually prune on separated clusters" `Quick (fun () ->
        let rows =
          Array.init 400 (fun i ->
              let c = float_of_int (i mod 8) *. 1000.0 in
              [| c +. (0.01 *. float_of_int i); c |])
        in
        let fm = Featmat.of_rows rows in
        let idx = Knn_index.build fm in
        let acc = Knn_index.acc_create () in
        let gi = Array.make 3 0 and gv = Array.make 3 0.0 in
        ignore (Knn_index.query_into ~stats:acc idx fm (Featmat.row fm 0) ~k:3 ~idxs:gi ~vals:gv ~off:0);
        Alcotest.(check bool) "rows pruned" true (acc.Knn_index.ac_rows_pruned > 0);
        Alcotest.(check bool) "clusters pruned" true (acc.Knn_index.ac_clusters_pruned > 0);
        let st = Knn_index.stats idx in
        Alcotest.(check int) "queries counted" 1 st.Knn_index.st_queries;
        Alcotest.(check int) "scanned consistent" st.Knn_index.st_scanned acc.Knn_index.ac_scanned);
    Alcotest.test_case "insert_batch stays exact and rebuilds on growth" `Quick (fun () ->
        let base = Array.init 60 (fun i -> [| float_of_int (i mod 5) *. 10.0; float_of_int i |]) in
        let fm = Featmat.of_rows base in
        let idx = Knn_index.build fm in
        (* small append: incremental, no rebuild *)
        let extra1 = Array.init 5 (fun i -> [| 3.0; float_of_int (100 + i) |]) in
        let fm1 = Featmat.append fm extra1 in
        let idx1, rebuilt1 = Knn_index.insert_batch idx fm1 ~from_row:60 in
        Alcotest.(check bool) "no rebuild" false rebuilt1;
        Alcotest.(check int) "inserted tracked" 5 (Knn_index.inserted_since_build idx1);
        check_index_parity_built idx1 fm1 7;
        (* large append: crosses the half-growth policy, rebuilds *)
        let extra2 = Array.init 80 (fun i -> [| 47.0; float_of_int (200 + i) |]) in
        let fm2 = Featmat.append fm1 extra2 in
        let idx2, rebuilt2 = Knn_index.insert_batch idx1 fm2 ~from_row:65 in
        Alcotest.(check bool) "rebuilt" true rebuilt2;
        Alcotest.(check int) "reset" 0 (Knn_index.inserted_since_build idx2);
        check_index_parity_built idx2 fm2 7);
    Alcotest.test_case "insert_batch rejects a mismatched from_row" `Quick (fun () ->
        let fm = Featmat.of_rows (Array.init 10 (fun i -> [| float_of_int i |])) in
        let idx = Knn_index.build fm in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Knn_index.insert_batch: from_row mismatch") (fun () ->
            ignore (Knn_index.insert_batch idx fm ~from_row:3)));
    Alcotest.test_case "export/import round-trips bit-exactly" `Quick (fun () ->
        let rows = Array.init 90 (fun i -> [| float_of_int (i mod 6) *. 7.0; sin (float_of_int i) |]) in
        let fm = Featmat.of_rows rows in
        let idx = Knn_index.build fm in
        let e = Knn_index.export idx in
        let idx' = Knn_index.import e in
        Alcotest.(check int) "clusters" (Knn_index.clusters idx) (Knn_index.clusters idx');
        Alcotest.(check bool) "export equal" true (Knn_index.export idx' = e);
        check_index_parity_built idx' fm 9);
    Alcotest.test_case "import rejects corrupt structure" `Quick (fun () ->
        let fm = Featmat.of_rows (Array.init 12 (fun i -> [| float_of_int i |])) in
        let e = Knn_index.export (Knn_index.build fm) in
        let dup = { e with Knn_index.ex_members = Array.make e.Knn_index.ex_n 0 } in
        Alcotest.check_raises "members"
          (Invalid_argument "Knn_index.import: members not a permutation") (fun () ->
            ignore (Knn_index.import dup));
        let bad_r = { e with Knn_index.ex_radii = Array.map (fun _ -> nan) e.Knn_index.ex_radii } in
        Alcotest.check_raises "radius" (Invalid_argument "Knn_index.import: invalid radius")
          (fun () -> ignore (Knn_index.import bad_r)));
    Alcotest.test_case "build rejects empty matrix" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Knn_index.build: empty matrix")
          (fun () -> ignore (Knn_index.build (Featmat.of_rows [||]))));
  ]

(* Property-based tests. *)
let float_array = QCheck2.Gen.(array_size (int_range 1 20) (float_range (-100.0) 100.0))

(* Keys drawn from a small set force heavy duplication, exercising the
   tie-break paths of the quickselect and the heap. *)
let dup_keys =
  QCheck2.Gen.(array_size (int_range 0 60) (map float_of_int (int_range 0 5)))

let prop_smallest_k =
  QCheck2.Test.make ~name:"smallest_k equals the sort-based reference" ~count:300
    QCheck2.Gen.(pair dup_keys (int_range 0 70))
    (fun (xs, k) -> Select.smallest_k xs k = topk_reference xs k)

let prop_heap_topk =
  QCheck2.Test.make ~name:"streaming heap equals the sort-based reference" ~count:300
    QCheck2.Gen.(pair dup_keys (int_range 0 70))
    (fun (xs, k) ->
      let h = Select.heap_create (Stdlib.min k (Array.length xs)) in
      Array.iteri (fun i v -> Select.offer h v i) xs;
      Array.map fst (Select.drain_sorted h) = topk_reference xs k)

let prop_triangle =
  QCheck2.Test.make ~name:"euclidean satisfies triangle inequality" ~count:200
    QCheck2.Gen.(
      triple (array_size (return 4) (float_range (-50.) 50.))
        (array_size (return 4) (float_range (-50.) 50.))
        (array_size (return 4) (float_range (-50.) 50.)))
    (fun (a, b, c) ->
      Distance.euclidean a c <= Distance.euclidean a b +. Distance.euclidean b c +. 1e-9)

let prop_softmax =
  QCheck2.Test.make ~name:"softmax sums to 1 and is positive" ~count:200 float_array
    (fun a ->
      let p = Prom_linalg.Vec.softmax a in
      abs_float (Prom_linalg.Vec.sum p -. 1.0) < 1e-9 && Array.for_all (fun x -> x >= 0.0) p)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantiles are monotone" ~count:200 float_array (fun a ->
      Stats.quantile a 0.25 <= Stats.quantile a 0.75)

let prop_mean_bounds =
  QCheck2.Test.make ~name:"mean lies within min and max" ~count:200 float_array (fun a ->
      let m = Stats.mean a in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* Random matrices covering every unroll remainder (dim mod 4, including
   dim < 4) plus the row-tile boundary, with query counts crossing the
   block kernel's tile loop. The distance kernels promise *exact* float
   equality with the naive scalar reference — the bit-identity the
   shared-scan pipeline rests on — so the properties compare with [=],
   not a tolerance. *)
let matrix_gen =
  QCheck2.Gen.(
    int_range 1 24 >>= fun dim ->
    int_range 1 40 >>= fun n ->
    array_size (return n) (array_size (return dim) (float_range (-50.0) 50.0)))

let queries_gen rows nq =
  let dim = Array.length rows.(0) in
  QCheck2.Gen.(array_size (int_range 1 nq) (array_size (return dim) (float_range (-50.0) 50.0)))

let prop_sq_dist_row_exact =
  QCheck2.Test.make ~name:"unrolled sq_dist_row bit-equals the scalar reference" ~count:200
    QCheck2.Gen.(matrix_gen >>= fun rows -> pair (return rows) (queries_gen rows 1))
    (fun (rows, qs) ->
      let fm = Featmat.of_rows rows in
      let v = qs.(0) in
      Array.for_all
        (fun i -> Featmat.sq_dist_row fm i v = Distance.sq_euclidean rows.(i) v)
        (Array.init (Array.length rows) Fun.id))

let prop_sq_dists_block_exact =
  QCheck2.Test.make ~name:"sq_dists_block bit-equals independent row scans" ~count:200
    QCheck2.Gen.(matrix_gen >>= fun rows -> pair (return rows) (queries_gen rows 9))
    (fun (rows, qs) ->
      let fm = Featmat.of_rows rows in
      let n = Array.length rows in
      let out = Array.make (Array.length qs * n) nan in
      Featmat.sq_dists_block fm qs out;
      Array.for_all
        (fun q ->
          Array.for_all
            (fun i -> out.((q * n) + i) = Featmat.sq_dist_row fm i qs.(q))
            (Array.init n Fun.id))
        (Array.init (Array.length qs) Fun.id))

let prop_sq_dists_rows_block_exact =
  QCheck2.Test.make ~name:"sq_dists_rows_block bit-equals sq_dist_rows" ~count:200
    QCheck2.Gen.(
      matrix_gen >>= fun rows ->
      let n = Array.length rows in
      int_range 0 (n - 1) >>= fun r0 ->
      int_range r0 n >>= fun r1 -> return (rows, r0, r1))
    (fun (rows, r0, r1) ->
      let fm = Featmat.of_rows rows in
      let n = Array.length rows in
      let out = Array.make (Stdlib.max 1 ((r1 - r0) * n)) nan in
      Featmat.sq_dists_rows_block fm ~r0 ~r1 out;
      Array.for_all
        (fun q ->
          Array.for_all
            (fun i -> out.((q * n) + i) = Featmat.sq_dist_rows fm (r0 + q) i)
            (Array.init n Fun.id))
        (Array.init (r1 - r0) Fun.id))

(* Cross-backend bit-identity of the native distance kernels. All
   backends follow the same 4-lane accumulation-order contract, so
   their outputs must be the *same bits* on every input — NaN and
   infinity included (where [=] would reject NaN = NaN, so the
   comparison goes through [Int64.bits_of_float]). Dimensions cover
   every unroll remainder (dim mod 4, including dim < 4) and row
   ranges cover the chunked-stub boundary offsets. *)
let fbits = Int64.bits_of_float

(* Exact bit equality, except that any NaN matches any NaN.  When both
   operands of an accumulator add are NaN (a NaN row element and an
   inf-minus-inf difference landing in the same lane), the hardware
   keeps the first operand's payload — but C compilers may commute the
   add, so which payload survives is not pinned by any portable
   construction.  NaN-ness and NaN positions are still exact; only the
   payload bits of a NaN result are exempt. *)
let kernel_bit_eq x y = fbits x = fbits y || (x <> x && y <> y)

let kernel_value_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, float_range (-50.0) 50.0);
        (1, oneofl [ nan; infinity; neg_infinity; 0.0; -0.0; 1e300; 1e-300 ]);
      ])

let prop_kernel_backends_bit_identical =
  QCheck2.Test.make ~name:"kernel backends bit-identical across OCaml/C/SIMD" ~count:300
    QCheck2.Gen.(
      int_range 1 25 >>= fun dim ->
      int_range 1 30 >>= fun n ->
      array_size (return (n * dim)) kernel_value_gen >>= fun data ->
      array_size (return dim) kernel_value_gen >>= fun q ->
      int_range 0 (n - 1) >>= fun r0 ->
      int_range r0 n >>= fun r1 -> return (dim, n, data, q, r0, r1))
    (fun (dim, n, data, q, r0, r1) ->
      let backends =
        List.filter Kernels.available [ Kernels.Ocaml; Kernels.C; Kernels.Simd ]
      in
      let seg_ok =
        Array.for_all
          (fun i ->
            let want = Kernels.sq_dist_segs_with Kernels.Ocaml data (i * dim) q 0 dim in
            List.for_all
              (fun b ->
                kernel_bit_eq (Kernels.sq_dist_segs_with b data (i * dim) q 0 dim) want)
              backends)
          (Array.init n Fun.id)
      in
      let len = Stdlib.max 1 (r1 - r0) in
      let want = Array.make len nan in
      Kernels.sq_dists_range_with Kernels.Ocaml ~data ~dim ~r0 ~r1 ~q ~oq:0 ~out:want
        ~off:0;
      let range_ok =
        List.for_all
          (fun b ->
            let out = Array.make len nan in
            Kernels.sq_dists_range_with b ~data ~dim ~r0 ~r1 ~q ~oq:0 ~out ~off:0;
            Array.for_all2 kernel_bit_eq out want)
          backends
      in
      seg_ok && range_ok)

(* Row generators biased towards duplicates and tight clusters: integer
   coordinates from a small range make exact ties and zero-radius
   clusters common, the cases where pruning correctness is subtle. *)
let index_matrix_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun dim ->
    int_range 1 150 >>= fun n ->
    array_size (return n) (array_size (return dim) (map float_of_int (int_range (-4) 4))))

let prop_knn_index_parity =
  QCheck2.Test.make ~name:"Knn_index.query_into bit-equals the full scan" ~count:150
    QCheck2.Gen.(
      index_matrix_gen >>= fun rows ->
      let n = Array.length rows and dim = Array.length rows.(0) in
      int_range 1 (n + 3) >>= fun k ->
      int_range 1 (n + 2) >>= fun nc ->
      array_size (return dim) (float_range (-5.0) 5.0) >>= fun q ->
      return (rows, k, nc, q))
    (fun (rows, k, nc, q) ->
      let fm = Featmat.of_rows rows in
      let idx = Knn_index.build ~n_clusters:nc fm in
      let cap = Stdlib.max 1 k in
      let gi = Array.make cap (-1) and gv = Array.make cap nan in
      let m = Knn_index.query_into idx fm q ~k ~idxs:gi ~vals:gv ~off:0 in
      let want_i, want_v = knn_reference fm q k in
      m = Array.length want_i
      && Array.sub gi 0 m = want_i
      && Array.sub gv 0 m = want_v)

let prop_knn_index_insert_parity =
  QCheck2.Test.make ~name:"Knn_index stays exact after insert_batch" ~count:100
    QCheck2.Gen.(
      index_matrix_gen >>= fun rows ->
      let n = Array.length rows and dim = Array.length rows.(0) in
      int_range 1 (Stdlib.max 1 (n / 2)) >>= fun extra ->
      array_size (return extra) (array_size (return dim) (map float_of_int (int_range (-4) 4)))
      >>= fun added ->
      int_range 1 8 >>= fun k ->
      array_size (return dim) (float_range (-5.0) 5.0) >>= fun q ->
      return (rows, added, k, q))
    (fun (rows, added, k, q) ->
      let fm = Featmat.of_rows rows in
      let idx = Knn_index.build fm in
      let fm' = Featmat.append fm added in
      let idx', _rebuilt = Knn_index.insert_batch idx fm' ~from_row:(Array.length rows) in
      let cap = Stdlib.max 1 k in
      let gi = Array.make cap (-1) and gv = Array.make cap nan in
      let m = Knn_index.query_into idx' fm' q ~k ~idxs:gi ~vals:gv ~off:0 in
      let want_i, want_v = knn_reference fm' q k in
      m = Array.length want_i
      && Array.sub gi 0 m = want_i
      && Array.sub gv 0 m = want_v)

let prop_solve =
  QCheck2.Test.make ~name:"Mat.solve solves well-conditioned systems" ~count:100
    QCheck2.Gen.(array_size (return 3) (float_range (-5.0) 5.0))
    (fun x ->
      (* Diagonally dominant matrix: always solvable. *)
      let a =
        Mat.init ~rows:3 ~cols:3 (fun i j ->
            if i = j then 10.0 else float_of_int ((i + j) mod 3))
      in
      let b = Mat.matvec a x in
      let got = Mat.solve a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) x got)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_triangle; prop_softmax; prop_quantile_monotone; prop_mean_bounds; prop_solve;
      prop_smallest_k; prop_heap_topk; prop_sq_dist_row_exact; prop_sq_dists_block_exact;
      prop_sq_dists_rows_block_exact; prop_kernel_backends_bit_identical;
      prop_knn_index_parity; prop_knn_index_insert_parity;
    ]

let suite =
  [
    ("linalg.rng", rng_tests);
    ("linalg.vec", vec_tests);
    ("linalg.mat", mat_tests);
    ("linalg.stats", stats_tests);
    ("linalg.distance", distance_tests);
    ("linalg.select", select_tests);
    ("linalg.featmat", featmat_tests);
    ("linalg.knn_index", knn_index_tests);
    ("linalg.properties", properties);
  ]
