(* Tests for the shared JSON writer/parser: bit-exact number round
   trips, string escaping, structural round trips of random values,
   parser error reporting and the accessor helpers. *)

module J = Prom_jsonx

let bits = Int64.bits_of_float

(* Structural equality with bit-exact float comparison (so 0.0 and
   -0.0 are distinguished, exactly like the wire format does). *)
let rec jequal a b =
  match (a, b) with
  | J.Num x, J.Num y -> bits x = bits y
  | J.Arr xs, J.Arr ys -> (
      try List.for_all2 jequal xs ys with Invalid_argument _ -> false)
  | J.Obj xs, J.Obj ys -> (
      try
        List.for_all2 (fun (k, v) (k', v') -> k = k' && jequal v v') xs ys
      with Invalid_argument _ -> false)
  | a, b -> a = b

let finite_float =
  QCheck2.Gen.(
    map
      (fun f -> if Float.is_finite f then f else 0.0)
      (oneof
         [
           float;
           oneofl
             [
               0.0; -0.0; 1.0; -1.0; 0.1; 1e15; 1e16; max_float; min_float;
               epsilon_float; 4e-320; 1234567890.0; -1.5e308; 3.141592653589793;
             ];
         ]))

let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return J.Null;
                 map (fun b -> J.Bool b) bool;
                 map (fun f -> J.Num f) finite_float;
                 map (fun s -> J.Str s) (string_size (int_range 0 12));
               ]
           in
           if n <= 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun l -> J.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                 map
                   (fun l -> J.Obj l)
                   (list_size (int_range 0 4)
                      (pair (string_size (int_range 0 6)) (self (n / 2))));
               ]))

let prop_number_roundtrip =
  QCheck2.Test.make ~name:"number formatting round-trips bit-exactly" ~count:2000
    finite_float
    (fun v -> bits (float_of_string (J.number v)) = bits v)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"string escape/parse round trip (all bytes)" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64))
    (fun s ->
      match J.parse (J.to_string (J.Str s)) with
      | Ok (J.Str s') -> s' = s
      | _ -> false)

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"value print/parse round trip" ~count:500 gen_json
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> jequal v v'
      | Error _ -> false)

let unit_tests =
  let check_parse name input expected =
    Alcotest.test_case name `Quick (fun () ->
        match J.parse input with
        | Ok v ->
            Alcotest.(check bool)
              (Printf.sprintf "parse %S" input)
              true (jequal v expected)
        | Error e -> Alcotest.fail (Printf.sprintf "parse %S failed: %s" input e))
  in
  let check_rejects name input =
    Alcotest.test_case name `Quick (fun () ->
        match J.parse input with
        | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S should fail" input)
        | Error e ->
            Alcotest.(check bool) "error cites a byte offset" true
              (String.length e >= 5 && String.sub e 0 5 = "byte "))
  in
  [
    check_parse "whitespace and nesting"
      " { \"a\" : [ 1 , true , null ] , \"b\" : \"x\" } "
      (J.Obj
         [
           ("a", J.Arr [ J.Num 1.0; J.Bool true; J.Null ]); ("b", J.Str "x");
         ]);
    check_parse "negative exponent number" "-1.25e-3" (J.Num (-0.00125));
    check_parse "escapes decode" "\"a\\n\\t\\\\\\\"\\u0041\""
      (J.Str "a\n\t\\\"A");
    check_parse "surrogate pair decodes to UTF-8" "\"\\ud83d\\ude00\""
      (J.Str "\xf0\x9f\x98\x80");
    check_rejects "trailing garbage" "1 2";
    check_rejects "unterminated string" "\"abc";
    check_rejects "bare word" "nope";
    check_rejects "lone surrogate" "\"\\ud83d\"";
    check_rejects "unbalanced bracket" "[1,2";
    check_rejects "missing colon" "{\"a\" 1}";
    Alcotest.test_case "depth limit holds" `Quick (fun () ->
        let deep = String.make 1000 '[' ^ String.make 1000 ']' in
        match J.parse deep with
        | Ok _ -> Alcotest.fail "1000-deep nesting should be rejected"
        | Error _ -> ());
    Alcotest.test_case "member: first duplicate wins" `Quick (fun () ->
        match J.parse "{\"k\":1,\"k\":2}" with
        | Ok v ->
            Alcotest.(check (option (float 0.0)))
              "first k" (Some 1.0)
              (Option.bind (J.member "k" v) J.to_float)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "accessors" `Quick (fun () ->
        let v =
          J.Obj
            [
              ("f", J.Num 2.5);
              ("s", J.Str "hi");
              ("b", J.Bool false);
              ("a", J.Arr [ J.Num 1.0; J.Num 2.0 ]);
            ]
        in
        Alcotest.(check (option (float 0.0)))
          "to_float" (Some 2.5)
          (Option.bind (J.member "f" v) J.to_float);
        Alcotest.(check (option string))
          "to_string_opt" (Some "hi")
          (Option.bind (J.member "s" v) J.to_string_opt);
        Alcotest.(check (option bool))
          "to_bool" (Some false)
          (Option.bind (J.member "b" v) J.to_bool);
        (match Option.bind (J.member "a" v) J.float_array with
        | Some [| 1.0; 2.0 |] -> ()
        | _ -> Alcotest.fail "float_array");
        Alcotest.(check (option (float 0.0)))
          "missing member" None
          (Option.bind (J.member "zz" v) J.to_float);
        Alcotest.(check bool)
          "float_array rejects mixed" true
          (J.float_array (J.Arr [ J.Num 1.0; J.Str "x" ]) = None));
    Alcotest.test_case "non-finite numbers render as null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (J.to_string (J.Num nan));
        Alcotest.(check string) "inf" "null" (J.to_string (J.Num infinity)));
    Alcotest.test_case "integral floats print as integers" `Quick (fun () ->
        Alcotest.(check string) "42" "42" (J.number 42.0);
        Alcotest.(check string) "-0" "-0" (J.number (-0.0));
        Alcotest.(check string) "1e15 stays exact" "1e+15" (J.number 1e15))
  ]

let suite =
  [
    ( "jsonx",
      List.map QCheck_alcotest.to_alcotest
        [ prop_number_roundtrip; prop_string_roundtrip; prop_value_roundtrip ]
      @ unit_tests );
  ]
