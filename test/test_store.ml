(* Tests for the snapshot layer: the Buf serialization primitives, the
   CRC-32, the versioned container store, every model codec's bit-exact
   round trip, snapshot encode/decode, corrupt-generation fallback,
   kill-and-reload verdict identity and the service hot-swap. *)

open Prom_linalg
open Prom_ml
open Prom
module Buf = Prom_store.Buf
module Crc32 = Prom_store.Crc32
module Store = Prom_store.Store

let fresh_dir () = Filename.temp_dir "prom-store-test" ""

let bits = Int64.bits_of_float

let check_bits name a b =
  Alcotest.(check int64) name (bits a) (bits b)

(* ---------- Buf primitives ---------- *)

(* Floats whose round trips are easy to get wrong: NaN (any
   string-based format loses the payload), infinities, signed zero and
   the subnormal/extreme range. *)
let awkward_floats =
  [ nan; infinity; neg_infinity; 0.0; -0.0; max_float; min_float; epsilon_float;
    4e-320; -1.5e308 ]

let float_gen =
  QCheck2.Gen.(oneof [ float; oneofl awkward_floats ])

let prop_float_roundtrip =
  QCheck2.Test.make ~name:"Buf float round trip is bit-exact" ~count:500 float_gen
    (fun v ->
      let b = Buffer.create 8 in
      Buf.w_float b v;
      let r = Buf.reader (Buffer.contents b) in
      let v' = Buf.r_float r in
      Buf.expect_end r;
      bits v = bits v')

let prop_int_roundtrip =
  QCheck2.Test.make ~name:"Buf int round trip" ~count:500
    QCheck2.Gen.(oneof [ int; oneofl [ 0; 1; -1; max_int; min_int ] ])
    (fun v ->
      let b = Buffer.create 8 in
      Buf.w_int b v;
      let r = Buf.reader (Buffer.contents b) in
      let v' = Buf.r_int r in
      Buf.expect_end r;
      v = v')

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"Buf string round trip" ~count:200
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      let b = Buffer.create 32 in
      Buf.w_string b s;
      let r = Buf.reader (Buffer.contents b) in
      let s' = Buf.r_string r in
      Buf.expect_end r;
      String.equal s s')

let prop_floats_roundtrip =
  QCheck2.Test.make ~name:"Buf float-array round trip (incl. empty, NaN)" ~count:200
    QCheck2.Gen.(array_size (int_range 0 16) float_gen)
    (fun a ->
      let b = Buffer.create 64 in
      Buf.w_floats b a;
      let r = Buf.reader (Buffer.contents b) in
      let a' = Buf.r_floats r in
      Buf.expect_end r;
      Array.length a = Array.length a'
      && Array.for_all2 (fun x y -> bits x = bits y) a a')

let prop_truncation_detected =
  QCheck2.Test.make ~name:"every truncation of a valid encoding raises Corrupt"
    ~count:100
    QCheck2.Gen.(array_size (int_range 0 8) float_gen)
    (fun a ->
      let b = Buffer.create 64 in
      Buf.w_floats b a;
      let full = Buffer.contents b in
      let ok = ref true in
      for len = 0 to String.length full - 1 do
        let r = Buf.reader (String.sub full 0 len) in
        (match Buf.r_floats r with
        | _ -> ok := false
        | exception Buf.Corrupt _ -> ())
      done;
      !ok)

let buf_unit_tests =
  [
    Alcotest.test_case "empty aggregates round-trip" `Quick (fun () ->
        let b = Buffer.create 16 in
        Buf.w_floats b [||];
        Buf.w_ints b [||];
        Buf.w_bools b [||];
        Buf.w_float_rows b [||];
        Buf.w_string b "";
        Buf.w_option Buf.w_float b None;
        let r = Buf.reader (Buffer.contents b) in
        Alcotest.(check int) "floats" 0 (Array.length (Buf.r_floats r));
        Alcotest.(check int) "ints" 0 (Array.length (Buf.r_ints r));
        Alcotest.(check int) "bools" 0 (Array.length (Buf.r_bools r));
        Alcotest.(check int) "rows" 0 (Array.length (Buf.r_float_rows r));
        Alcotest.(check string) "string" "" (Buf.r_string r);
        Alcotest.(check bool) "option" true (Buf.r_option Buf.r_float r = None);
        Buf.expect_end r);
    Alcotest.test_case "absurd length rejected before allocation" `Quick (fun () ->
        let b = Buffer.create 8 in
        Buf.w_int b max_int;
        let r = Buf.reader (Buffer.contents b) in
        (match Buf.r_floats r with
        | _ -> Alcotest.fail "absurd length accepted"
        | exception Buf.Corrupt _ -> ()));
    Alcotest.test_case "negative length rejected" `Quick (fun () ->
        let b = Buffer.create 8 in
        Buf.w_int b (-1);
        let r = Buf.reader (Buffer.contents b) in
        (match Buf.r_ints r with
        | _ -> Alcotest.fail "negative length accepted"
        | exception Buf.Corrupt _ -> ()));
    Alcotest.test_case "expect_end rejects trailing junk" `Quick (fun () ->
        let r = Buf.reader "\x00extra" in
        ignore (Buf.r_u8 r);
        (match Buf.expect_end r with
        | () -> Alcotest.fail "trailing junk accepted"
        | exception Buf.Corrupt _ -> ()));
    Alcotest.test_case "invalid bool byte rejected" `Quick (fun () ->
        let r = Buf.reader "\x07" in
        (match Buf.r_bool r with
        | _ -> Alcotest.fail "invalid bool accepted"
        | exception Buf.Corrupt _ -> ()));
  ]

(* ---------- CRC-32 ---------- *)

let crc_tests =
  [
    Alcotest.test_case "IEEE check value" `Quick (fun () ->
        (* The canonical CRC-32 test vector. *)
        Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.digest "123456789"));
    Alcotest.test_case "empty string" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (Crc32.digest ""));
    Alcotest.test_case "digest_sub matches digest of slice" `Quick (fun () ->
        let s = "abcdefghij" in
        Alcotest.(check int) "sub" (Crc32.digest "cdef")
          (Crc32.digest_sub s ~pos:2 ~len:4));
    Alcotest.test_case "single byte flip changes the digest" `Quick (fun () ->
        let s = "snapshot payload" in
        let s' = Bytes.of_string s in
        Bytes.set s' 3 (Char.chr (Char.code (Bytes.get s' 3) lxor 0x10));
        Alcotest.(check bool) "differs" true
          (Crc32.digest s <> Crc32.digest (Bytes.to_string s')));
  ]

(* ---------- Container store ---------- *)

let corrupt_byte path offset =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let i = if offset < len then offset else len - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let store_tests =
  [
    Alcotest.test_case "save/load round trip preserves payload and header" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let payload = "\x00\x01binary\xffpayload" in
        let info = Store.save ~dir ~kind:"t" ~codec_version:3 payload in
        Alcotest.(check int) "generation" 1 info.Store.generation;
        Alcotest.(check string) "kind" "t" info.Store.kind;
        Alcotest.(check int) "codec" 3 info.Store.codec_version;
        let info', payload' = Store.load info.Store.path in
        Alcotest.(check string) "payload" payload payload';
        Alcotest.(check int) "crc" info.Store.crc info'.Store.crc;
        Alcotest.(check bool) "manifest written" true
          (Sys.file_exists (Store.manifest_path ~dir 1)));
    Alcotest.test_case "generations are monotone" `Quick (fun () ->
        let dir = fresh_dir () in
        ignore (Store.save ~dir ~kind:"t" ~codec_version:1 "a");
        ignore (Store.save ~dir ~kind:"t" ~codec_version:1 "b");
        ignore (Store.save ~dir ~kind:"t" ~codec_version:1 "c");
        Alcotest.(check (list int)) "gens" [ 1; 2; 3 ] (Store.generations dir);
        match Store.load_latest ~dir () with
        | Some (info, payload) ->
            Alcotest.(check int) "latest" 3 info.Store.generation;
            Alcotest.(check string) "payload" "c" payload
        | None -> Alcotest.fail "no generation loaded");
    Alcotest.test_case "corrupt newest falls back to previous" `Quick (fun () ->
        let dir = fresh_dir () in
        ignore (Store.save ~dir ~kind:"t" ~codec_version:1 "good");
        let i2 = Store.save ~dir ~kind:"t" ~codec_version:1 "newer" in
        corrupt_byte i2.Store.path (String.length "newer" + 10);
        match Store.load_latest ~dir () with
        | Some (info, payload) ->
            Alcotest.(check int) "fell back" 1 info.Store.generation;
            Alcotest.(check string) "payload" "good" payload
        | None -> Alcotest.fail "fallback failed");
    Alcotest.test_case "every generation corrupt yields None" `Quick (fun () ->
        let dir = fresh_dir () in
        let i1 = Store.save ~dir ~kind:"t" ~codec_version:1 "a" in
        let i2 = Store.save ~dir ~kind:"t" ~codec_version:1 "b" in
        corrupt_byte i1.Store.path 4;
        corrupt_byte i2.Store.path 4;
        Alcotest.(check bool) "none" true (Store.load_latest ~dir () = None));
    Alcotest.test_case "kind filter skips foreign snapshots" `Quick (fun () ->
        let dir = fresh_dir () in
        ignore (Store.save ~dir ~kind:"cls" ~codec_version:1 "c");
        ignore (Store.save ~dir ~kind:"reg" ~codec_version:1 "r");
        (match Store.load_latest ~kind:"cls" ~dir () with
        | Some (info, payload) ->
            Alcotest.(check int) "gen" 1 info.Store.generation;
            Alcotest.(check string) "payload" "c" payload
        | None -> Alcotest.fail "kind filter lost the snapshot");
        Alcotest.(check bool) "missing kind" true
          (Store.load_latest ~kind:"other" ~dir () = None));
    Alcotest.test_case "empty or missing directory" `Quick (fun () ->
        let dir = fresh_dir () in
        Alcotest.(check (list int)) "empty" [] (Store.generations dir);
        Alcotest.(check bool) "no latest" true (Store.load_latest ~dir () = None);
        Alcotest.(check (list int)) "missing" []
          (Store.generations (Filename.concat dir "nope")));
  ]

(* ---------- Model codecs ---------- *)

let cls_data ?(n = 60) ?(seed = 11) () =
  let rng = Rng.create seed in
  let xs =
    Array.init n (fun i ->
        let cx = if i mod 2 = 0 then 0.0 else 3.0 in
        [|
          Rng.gaussian rng ~mu:cx ~sigma:0.8;
          Rng.gaussian rng ~mu:(-.cx) ~sigma:0.8;
          Rng.gaussian rng ~mu:(cx /. 2.0) ~sigma:0.5;
        |])
  in
  Dataset.create xs (Array.init n (fun i -> i mod 2))

let reg_data ?(n = 60) ?(seed = 13) () =
  let rng = Rng.create seed in
  let xs =
    Array.init n (fun _ ->
        [| Rng.uniform rng ~lo:(-2.0) ~hi:2.0; Rng.uniform rng ~lo:(-2.0) ~hi:2.0 |])
  in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) -. (0.5 *. x.(1)) +. 0.25) xs in
  Dataset.create xs ys

let probes ?(seed = 17) () =
  let rng = Rng.create seed in
  Array.init 12 (fun _ ->
      Array.init 3 (fun _ -> Rng.gaussian rng ~mu:1.0 ~sigma:2.5))

let reg_probes ?(seed = 19) () =
  let rng = Rng.create seed in
  Array.init 12 (fun _ ->
      Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-3.0) ~hi:3.0))

let roundtrip to_buf of_buf m =
  let b = Buffer.create 256 in
  to_buf b m;
  let r = Buf.reader (Buffer.contents b) in
  let m' = of_buf r in
  Buf.expect_end r;
  m'

let cls_codec_case name train to_buf of_buf =
  Alcotest.test_case (name ^ " round trip is bit-identical") `Quick (fun () ->
      let d = cls_data () in
      let (m : Model.classifier) = train d in
      let (m' : Model.classifier) = roundtrip to_buf of_buf m in
      Alcotest.(check string) "name" m.Model.name m'.Model.name;
      Alcotest.(check int) "classes" m.Model.n_classes m'.Model.n_classes;
      let inputs = Array.append d.Dataset.x (probes ()) in
      Array.iter
        (fun x ->
          let p = m.Model.predict_proba x and p' = m'.Model.predict_proba x in
          Alcotest.(check int) "dims" (Array.length p) (Array.length p');
          Array.iteri (fun i v -> check_bits "proba bits" v p'.(i)) p)
        inputs)

let reg_codec_case name train to_buf of_buf =
  Alcotest.test_case (name ^ " round trip is bit-identical") `Quick (fun () ->
      let d = reg_data () in
      let (m : Model.regressor) = train d in
      let (m' : Model.regressor) = roundtrip to_buf of_buf m in
      Alcotest.(check string) "name" m.Model.name m'.Model.name;
      let inputs = Array.append d.Dataset.x (reg_probes ()) in
      Array.iter
        (fun x -> check_bits "prediction bits" (m.Model.predict x) (m'.Model.predict x))
        inputs)

let model_codec_tests =
  [
    cls_codec_case "logistic" (Logistic.train ?params:None ?init:None) Logistic.to_buf
      Logistic.of_buf;
    cls_codec_case "naive_bayes"
      (Naive_bayes.train ?var_smoothing:None ?init:None)
      Naive_bayes.to_buf Naive_bayes.of_buf;
    cls_codec_case "knn" (Knn.train ?params:None ?init:None) Knn.to_buf Knn.of_buf;
    cls_codec_case "decision_tree"
      (Decision_tree.classifier ?params:None)
      Decision_tree.to_buf Decision_tree.of_buf;
    cls_codec_case "random_forest"
      (Random_forest.train ?params:None ?init:None)
      Random_forest.to_buf Random_forest.of_buf;
    cls_codec_case "gradient_boosting"
      (Gradient_boosting.train ?params:None ?init:None)
      Gradient_boosting.to_buf Gradient_boosting.of_buf;
    cls_codec_case "mlp" (Mlp.train ?params:None ?init:None) Mlp.to_buf Mlp.of_buf;
    cls_codec_case "svm (linear)" (Svm.train ?params:None ?init:None) Svm.to_buf
      Svm.of_buf;
    cls_codec_case "svm (rbf random features)"
      (Svm.train
         ~params:
           {
             Svm.default_params with
             Svm.kernel = Svm.Rbf { gamma = 0.5; n_components = 16 };
           }
         ?init:None)
      Svm.to_buf Svm.of_buf;
    reg_codec_case "linreg" (Linreg.train ?l2:None ?init:None) Linreg.reg_to_buf
      Linreg.reg_of_buf;
    reg_codec_case "knn regressor"
      (Knn.train_regressor ?params:None ?init:None)
      Knn.reg_to_buf Knn.reg_of_buf;
    reg_codec_case "decision_tree regressor"
      (Decision_tree.regressor ?params:None)
      Decision_tree.reg_to_buf Decision_tree.reg_of_buf;
    reg_codec_case "random_forest regressor"
      (Random_forest.train_regressor ?params:None ?init:None)
      Random_forest.reg_to_buf Random_forest.reg_of_buf;
    reg_codec_case "gradient_boosting regressor"
      (Gradient_boosting.train_regressor ?params:None ?init:None)
      Gradient_boosting.reg_to_buf Gradient_boosting.reg_of_buf;
    reg_codec_case "mlp regressor"
      (Mlp.train_regressor ?params:None ?init:None)
      Mlp.reg_to_buf Mlp.reg_of_buf;
    Alcotest.test_case "truncated model blob raises Corrupt" `Quick (fun () ->
        let m = Logistic.train (cls_data ()) in
        let b = Buffer.create 256 in
        Logistic.to_buf b m;
        let full = Buffer.contents b in
        let r = Buf.reader (String.sub full 0 (String.length full / 2)) in
        match Logistic.of_buf r with
        | _ -> Alcotest.fail "truncated blob accepted"
        | exception Buf.Corrupt _ -> ());
  ]

(* ---------- Snapshot encode/decode ---------- *)

let cls_detector ?config ?committee ?(seed = 23) () =
  let d = cls_data ~n:80 ~seed () in
  let model = Logistic.train d in
  Detector.Classification.create ?config ?committee ~model ~feature_of:Fun.id d

let reg_detector ?(seed = 29) () =
  let d = reg_data ~n:80 ~seed () in
  let model = Linreg.train d in
  Detector.Regression.create ~model ~feature_of:Fun.id ~seed d

let check_cls_verdicts name det det' inputs =
  Array.iter
    (fun x ->
      let v = Detector.Classification.evaluate det x in
      let v' = Detector.Classification.evaluate det' x in
      Alcotest.(check bool) (name ^ " drifted") v.Detector.drifted v'.Detector.drifted;
      check_bits (name ^ " credibility") v.Detector.mean_credibility
        v'.Detector.mean_credibility;
      check_bits (name ^ " confidence") v.Detector.mean_confidence
        v'.Detector.mean_confidence)
    inputs

let check_reg_verdicts name det det' inputs =
  Array.iter
    (fun x ->
      let v = Detector.Regression.evaluate det x in
      let v' = Detector.Regression.evaluate det' x in
      Alcotest.(check bool) (name ^ " drifted") v.Detector.reg_drifted
        v'.Detector.reg_drifted;
      check_bits (name ^ " prediction") v.Detector.predicted_value
        v'.Detector.predicted_value;
      check_bits (name ^ " credibility") v.Detector.reg_mean_credibility
        v'.Detector.reg_mean_credibility;
      check_bits (name ^ " confidence") v.Detector.reg_mean_confidence
        v'.Detector.reg_mean_confidence)
    inputs

let snapshot_tests =
  [
    Alcotest.test_case "classification snapshot round trip" `Quick (fun () ->
        let det = cls_detector () in
        let snap = Snapshot.of_cls_detector det in
        let snap' = Snapshot.decode (Snapshot.encode snap) in
        (match snap' with
        | Snapshot.Cls s ->
            let det' = Snapshot.to_cls_detector s in
            check_cls_verdicts "cls" det det' (probes ())
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped"));
    Alcotest.test_case "non-default config and committee survive" `Quick (fun () ->
        let config =
          {
            Config.default with
            Config.epsilon = 0.25;
            Config.decision_rule = Config.Credibility_only;
            Config.vote_fraction = 0.5;
          }
        in
        let committee = Nonconformity.extended_committee in
        let det = cls_detector ~config ~committee () in
        match Snapshot.decode (Snapshot.encode (Snapshot.of_cls_detector det)) with
        | Snapshot.Cls s ->
            Alcotest.(check bool) "config" true (s.Snapshot.cls_config = config);
            Alcotest.(check (list string)) "committee"
              (List.map (fun e -> e.Nonconformity.cls_name) committee)
              (List.map (fun e -> e.Nonconformity.cls_name) s.Snapshot.cls_committee);
            let det' = Snapshot.to_cls_detector s in
            check_cls_verdicts "extended" det det' (probes ())
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped");
    Alcotest.test_case "monitor window state survives" `Quick (fun () ->
        let det = cls_detector () in
        let monitor = Monitor.create ~window:6 ~threshold:0.5 ~patience:2 () in
        let drifts = [ true; false; true; true; false; true; true; true ] in
        List.iter (fun d -> ignore (Monitor.observe monitor ~drifted:d)) drifts;
        let snap = Snapshot.of_cls_detector ~monitor det in
        match Snapshot.decode (Snapshot.encode snap) with
        | Snapshot.Cls { cls_monitor = Some p; _ } ->
            let restored = Monitor.restore p in
            Alcotest.(check string) "status"
              (Monitor.status_to_string (Monitor.status monitor))
              (Monitor.status_to_string (Monitor.status restored));
            check_bits "drift rate" (Monitor.drift_rate monitor)
              (Monitor.drift_rate restored);
            Alcotest.(check int) "observed" (Monitor.observed monitor)
              (Monitor.observed restored);
            (* The restored monitor continues identically. *)
            List.iter
              (fun d ->
                Alcotest.(check string) "next status"
                  (Monitor.status_to_string (Monitor.observe monitor ~drifted:d))
                  (Monitor.status_to_string (Monitor.observe restored ~drifted:d)))
              [ true; true; false; true; true; true ]
        | _ -> Alcotest.fail "monitor lost");
    Alcotest.test_case "regression snapshot round trip" `Quick (fun () ->
        let det = reg_detector () in
        match Snapshot.decode (Snapshot.encode (Snapshot.of_reg_detector det)) with
        | Snapshot.Reg s ->
            let det' = Snapshot.to_reg_detector s in
            check_reg_verdicts "reg" det det' (reg_probes ())
        | Snapshot.Cls _ -> Alcotest.fail "kind flipped");
    Alcotest.test_case "external-model snapshot refuses detector restore" `Quick
      (fun () ->
        let det = cls_detector () in
        match
          Snapshot.decode
            (Snapshot.encode (Snapshot.of_cls_detector ~external_model:true det))
        with
        | Snapshot.Cls s ->
            Alcotest.(check bool) "model absent" true (s.Snapshot.cls_model = None);
            (match Snapshot.to_cls_detector s with
            | _ -> Alcotest.fail "external model restored as detector"
            | exception Invalid_argument _ -> ())
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped");
    Alcotest.test_case "payload truncation raises Corrupt, never Invalid_argument"
      `Quick (fun () ->
        let payload = Snapshot.encode (Snapshot.of_cls_detector (cls_detector ())) in
        let n = String.length payload in
        List.iter
          (fun len ->
            match Snapshot.decode (String.sub payload 0 len) with
            | _ -> Alcotest.fail "truncated payload accepted"
            | exception Buf.Corrupt _ -> ())
          [ 0; 1; n / 4; n / 2; n - 1 ]);
    Alcotest.test_case "flipped payload bytes raise Corrupt, never escape" `Quick
      (fun () ->
        let payload = Snapshot.encode (Snapshot.of_cls_detector (cls_detector ())) in
        let n = String.length payload in
        (* Flip a byte at several offsets; decode must either still
           produce a snapshot (the flip hit a float payload) or raise
           Corrupt — anything else (Invalid_argument, Failure,
           out-of-bounds) would defeat the generation fallback. *)
        List.iter
          (fun off ->
            let b = Bytes.of_string payload in
            Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x3f));
            match Snapshot.decode (Bytes.to_string b) with
            | _ -> ()
            | exception Buf.Corrupt _ -> ())
          [ 0; 1; n / 3; n / 2; (2 * n) / 3; n - 2 ]);
  ]

(* ---------- Indexed snapshots (codec v2) ---------- *)

(* An indexed calibration store must travel through the snapshot
   bit-exactly: the decoded detector adopts the serialized index — same
   clusters, same member order, same insertion debt — instead of
   pausing to rebuild it, and answers every probe bit-identically. *)

let with_index_threshold v f =
  Unix.putenv Calibration.index_threshold_env v;
  Fun.protect ~finally:(fun () -> Unix.putenv Calibration.index_threshold_env "") f

(* Lean selection so the index gate (4 * query_k <= n) opens at this
   file's calibration sizes. *)
let index_config =
  { Config.default with Config.select_ratio = 0.05; Config.select_all_below = 32 }

let indexed_cls_detector ?(seed = 47) ?(n = 300) () =
  let d = cls_data ~n ~seed () in
  let model = Logistic.train d in
  with_index_threshold "1" (fun () ->
      Detector.Classification.create ~config:index_config ~model ~feature_of:Fun.id
        d)

let indexed_reg_detector ?(seed = 53) ?(n = 300) () =
  let d = reg_data ~n ~seed () in
  let model = Linreg.train d in
  with_index_threshold "1" (fun () ->
      Detector.Regression.create ~config:index_config ~model ~feature_of:Fun.id
        ~seed d)

let index_exn name = function
  | Some ix -> ix
  | None -> Alcotest.fail (name ^ ": index missing")

let check_index_equal name ix ix' =
  let e = Knn_index.export ix and e' = Knn_index.export ix' in
  Alcotest.(check int) (name ^ " dim") e.Knn_index.ex_dim e'.Knn_index.ex_dim;
  Alcotest.(check int) (name ^ " n") e.Knn_index.ex_n e'.Knn_index.ex_n;
  (* Equal built_n means the restored side carried the insertion debt
     over instead of silently rebuilding. *)
  Alcotest.(check int) (name ^ " built_n") e.Knn_index.ex_built_n
    e'.Knn_index.ex_built_n;
  Alcotest.(check (array int)) (name ^ " members") e.Knn_index.ex_members
    e'.Knn_index.ex_members;
  Alcotest.(check (array int)) (name ^ " offsets") e.Knn_index.ex_offsets
    e'.Knn_index.ex_offsets;
  let floats tag a a' =
    Alcotest.(check int)
      (name ^ " " ^ tag ^ " length")
      (Array.length a) (Array.length a');
    Array.iteri (fun i v -> check_bits (name ^ " " ^ tag) v a'.(i)) a
  in
  floats "centroids" e.Knn_index.ex_centroids e'.Knn_index.ex_centroids;
  floats "radii" e.Knn_index.ex_radii e'.Knn_index.ex_radii;
  Alcotest.(check int) (name ^ " insertion debt")
    (Knn_index.inserted_since_build ix)
    (Knn_index.inserted_since_build ix')

let index_snapshot_tests =
  [
    Alcotest.test_case "indexed classification store round-trips bit-exactly" `Quick
      (fun () ->
        let det = indexed_cls_detector () in
        let ix =
          index_exn "before"
            (Calibration.index_of_cls (Detector.Classification.calibration det))
        in
        (* Decode with the env threshold at its default: the restored
           index must come from the payload, not from re-deriving the
           size gate at restore time. *)
        match Snapshot.decode (Snapshot.encode (Snapshot.of_cls_detector det)) with
        | Snapshot.Cls s ->
            let det' = Snapshot.to_cls_detector s in
            let ix' =
              index_exn "after"
                (Calibration.index_of_cls
                   (Detector.Classification.calibration det'))
            in
            check_index_equal "cls" ix ix';
            check_cls_verdicts "cls indexed" det det' (probes ())
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped");
    Alcotest.test_case "indexed regression store round-trips bit-exactly" `Quick
      (fun () ->
        let det = indexed_reg_detector () in
        let ix =
          index_exn "before"
            (Calibration.index_of_reg (Detector.Regression.calibration det))
        in
        match Snapshot.decode (Snapshot.encode (Snapshot.of_reg_detector det)) with
        | Snapshot.Reg s ->
            let det' = Snapshot.to_reg_detector s in
            let ix' =
              index_exn "after"
                (Calibration.index_of_reg (Detector.Regression.calibration det'))
            in
            check_index_equal "reg" ix ix';
            check_reg_verdicts "reg indexed" det det' (reg_probes ())
        | Snapshot.Cls _ -> Alcotest.fail "kind flipped");
    Alcotest.test_case "admit-grown index survives with its insertion debt" `Quick
      (fun () ->
        let det = indexed_cls_detector () in
        let rng = Rng.create 91 in
        let adds =
          Array.init 15 (fun i ->
              ( [|
                  Rng.gaussian rng ~mu:0.0 ~sigma:0.8;
                  Rng.gaussian rng ~mu:0.0 ~sigma:0.8;
                  Rng.gaussian rng ~mu:0.0 ~sigma:0.5;
                |],
                i mod 2 ))
        in
        let det =
          with_index_threshold "1" (fun () ->
              Detector.Classification.admit det adds)
        in
        let ix =
          index_exn "grown"
            (Calibration.index_of_cls (Detector.Classification.calibration det))
        in
        Alcotest.(check int) "debt before snapshot" 15
          (Knn_index.inserted_since_build ix);
        match Snapshot.decode (Snapshot.encode (Snapshot.of_cls_detector det)) with
        | Snapshot.Cls s ->
            let det' = Snapshot.to_cls_detector s in
            let ix' =
              index_exn "restored"
                (Calibration.index_of_cls
                   (Detector.Classification.calibration det'))
            in
            Alcotest.(check int) "restored length" 315 (Knn_index.length ix');
            check_index_equal "grown" ix ix';
            check_cls_verdicts "grown indexed" det det' (probes ());
            check_cls_verdicts "grown admitted" det det'
              (Array.map fst adds)
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped");
  ]

(* ---------- Generation fallback with real snapshots ---------- *)

let fallback_tests =
  [
    Alcotest.test_case "corrupt newest generation falls back bit-identically" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let det = cls_detector () in
        let info1 = Snapshot.save ~dir (Snapshot.of_cls_detector det) in
        let det2 = cls_detector ~seed:31 () in
        let info2 = Snapshot.save ~dir (Snapshot.of_cls_detector det2) in
        Alcotest.(check int) "gen2" 2 info2.Store.generation;
        corrupt_byte info2.Store.path 100;
        (match Snapshot.load_latest ~dir () with
        | Some (Snapshot.Cls s, info) ->
            Alcotest.(check int) "fell back" info1.Store.generation
              info.Store.generation;
            check_cls_verdicts "fallback" det (Snapshot.to_cls_detector s) (probes ())
        | _ -> Alcotest.fail "fallback lost the snapshot"));
    Alcotest.test_case "all generations corrupt yields None" `Quick (fun () ->
        let dir = fresh_dir () in
        let det = cls_detector () in
        let i1 = Snapshot.save ~dir (Snapshot.of_cls_detector det) in
        let i2 = Snapshot.save ~dir (Snapshot.of_cls_detector det) in
        (* Flip payload bytes (well past the ~68-byte header) so the
           checksum, not header framing, is what catches it. *)
        corrupt_byte i1.Store.path 100;
        corrupt_byte i2.Store.path 100;
        Alcotest.(check bool) "none" true (Snapshot.load_latest ~dir () = None));
    Alcotest.test_case "unknown codec version is skipped" `Quick (fun () ->
        let dir = fresh_dir () in
        let det = cls_detector () in
        let snap = Snapshot.of_cls_detector det in
        ignore (Snapshot.save ~dir snap);
        (* A future codec writes generation 2; today's loader must fall
           back to the generation it can decode. *)
        ignore
          (Store.save ~dir ~kind:Snapshot.kind_cls
             ~codec_version:(Snapshot.codec_version + 1)
             (Snapshot.encode snap));
        match Snapshot.load_latest ~dir () with
        | Some (_, info) -> Alcotest.(check int) "fell back" 1 info.Store.generation
        | None -> Alcotest.fail "codec-version fallback failed");
    Alcotest.test_case "kind filter separates cls and reg snapshots" `Quick (fun () ->
        let dir = fresh_dir () in
        ignore (Snapshot.save ~dir (Snapshot.of_cls_detector (cls_detector ())));
        ignore (Snapshot.save ~dir (Snapshot.of_reg_detector (reg_detector ())));
        (match Snapshot.load_latest ~kind:Snapshot.kind_cls ~dir () with
        | Some (Snapshot.Cls _, info) ->
            Alcotest.(check int) "cls gen" 1 info.Store.generation
        | _ -> Alcotest.fail "cls filter failed");
        match Snapshot.load_latest ~kind:Snapshot.kind_reg ~dir () with
        | Some (Snapshot.Reg _, info) ->
            Alcotest.(check int) "reg gen" 2 info.Store.generation
        | _ -> Alcotest.fail "reg filter failed");
  ]

(* ---------- Kill-and-reload end to end ---------- *)

let kill_reload_tests =
  [
    Alcotest.test_case "deploy, kill, reload: verdicts bit-identical" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let data = cls_data ~n:100 ~seed:37 () in
        let deployed =
          Framework.deploy ~snapshot_dir:dir ~trainer:(Logistic.trainer ()) ~seed:37
            data
        in
        let queries = probes ~seed:41 () in
        let before =
          Array.map (Detector.Classification.evaluate deployed.Framework.detector)
            queries
        in
        (* "Kill" the process: everything in memory is dropped; only the
           snapshot directory survives. *)
        (match Snapshot.load_latest ~dir () with
        | Some (Snapshot.Cls s, info) ->
            Alcotest.(check int) "one checkpoint" 1 info.Store.generation;
            let det = Snapshot.to_cls_detector s in
            Array.iteri
              (fun i x ->
                let v = Detector.Classification.evaluate det x in
                Alcotest.(check bool) "drifted" before.(i).Detector.drifted
                  v.Detector.drifted;
                check_bits "credibility" before.(i).Detector.mean_credibility
                  v.Detector.mean_credibility;
                check_bits "confidence" before.(i).Detector.mean_confidence
                  v.Detector.mean_confidence)
              queries
        | _ -> Alcotest.fail "no checkpoint after deploy"));
    Alcotest.test_case "improve writes a second generation that reloads" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let data = cls_data ~n:100 ~seed:43 () in
        let deployed =
          Framework.deploy ~snapshot_dir:dir ~trainer:(Logistic.trainer ()) ~seed:43
            data
        in
        let rng = Rng.create 47 in
        let drift_stream =
          Array.init 20 (fun _ ->
              Array.init 3 (fun _ -> Rng.gaussian rng ~mu:6.0 ~sigma:0.5))
        in
        let deployed', _ =
          Framework.improve ~budget_fraction:0.5 deployed ~oracle:(fun _ -> 0)
            drift_stream
        in
        Alcotest.(check (list int)) "two generations" [ 1; 2 ] (Store.generations dir);
        match Snapshot.load_latest ~dir () with
        | Some (Snapshot.Cls s, info) ->
            Alcotest.(check int) "latest is the retrain" 2 info.Store.generation;
            check_cls_verdicts "post-improve" deployed'.Framework.detector
              (Snapshot.to_cls_detector s) (probes ~seed:53 ())
        | _ -> Alcotest.fail "retrain checkpoint unreadable");
    Alcotest.test_case "regression detector save/reload round trip on disk" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let det = reg_detector () in
        ignore (Snapshot.save ~dir (Snapshot.of_reg_detector det));
        match Snapshot.load_latest ~kind:Snapshot.kind_reg ~dir () with
        | Some (Snapshot.Reg s, _) ->
            check_reg_verdicts "reg reload" det (Snapshot.to_reg_detector s)
              (reg_probes ())
        | _ -> Alcotest.fail "regression snapshot unreadable");
    Alcotest.test_case "snapshot save updates telemetry" `Quick (fun () ->
        let dir = fresh_dir () in
        let registry = Prom_obs.create_registry () in
        let telemetry = Telemetry.create registry in
        let det = cls_detector () in
        let info = Snapshot.save ~telemetry ~dir (Snapshot.of_cls_detector det) in
        ignore (Snapshot.load_latest ~telemetry ~dir ());
        let text = Telemetry.exposition telemetry in
        let has needle =
          let n = String.length needle and m = String.length text in
          let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
          at 0
        in
        ignore (info : Store.info);
        Alcotest.(check bool) "saves counted" true (has "prom_snapshot_saves_total 1");
        Alcotest.(check bool) "loads counted" true (has "prom_snapshot_loads_total 1");
        Alcotest.(check bool) "generation gauge" true
          (has "prom_snapshot_generation 1"));
  ]

(* ---------- Service hot swap ---------- *)

let service_of_detector ?telemetry det data =
  let model = Detector.Classification.model det in
  let triples =
    List.init (Dataset.length data) (fun i ->
        let x, y = Dataset.get data i in
        (x, y, model.Model.predict_proba x))
  in
  Service.create ?telemetry triples

let swap_tests =
  [
    Alcotest.test_case "swap replaces verdicts between batches" `Quick (fun () ->
        let data_a = cls_data ~n:60 ~seed:59 () in
        let data_b = cls_data ~n:60 ~seed:61 () in
        let det_a = cls_detector ~seed:59 () in
        let det_b = cls_detector ~seed:61 () in
        let service = service_of_detector det_a data_a in
        let reference = service_of_detector det_b data_b in
        let model_b = Detector.Classification.model det_b in
        let queries =
          Array.map (fun x -> (x, model_b.Model.predict_proba x)) (probes ~seed:67 ())
        in
        Alcotest.(check int) "generation 0" 0 (Service.generation service);
        let before = Service.evaluate_batch service queries in
        (* Background "retrain": capture the reference service's state
           and hot-swap it into the live one. *)
        Service.swap service (Service.snapshot reference);
        Alcotest.(check int) "generation 1" 1 (Service.generation service);
        let after = Service.evaluate_batch service queries in
        let expected = Service.evaluate_batch reference queries in
        Array.iteri
          (fun i v ->
            Alcotest.(check bool) "post-swap drifted" expected.(i).Detector.drifted
              v.Detector.drifted;
            check_bits "post-swap credibility" expected.(i).Detector.mean_credibility
              v.Detector.mean_credibility)
          after;
        (* The swap must actually change behaviour for this workload —
           otherwise the identity above proves nothing. *)
        let changed = ref false in
        Array.iteri
          (fun i v ->
            if
              bits v.Detector.mean_credibility
              <> bits before.(i).Detector.mean_credibility
            then changed := true)
          after;
        Alcotest.(check bool) "swap changed the engine" true !changed);
    Alcotest.test_case "no query fails across repeated swaps mid-workload" `Quick
      (fun () ->
        let data = cls_data ~n:60 ~seed:71 () in
        let det = cls_detector ~seed:71 () in
        let service = service_of_detector det data in
        let snap = Service.snapshot service in
        let model = Detector.Classification.model det in
        let queries =
          Array.map (fun x -> (x, model.Model.predict_proba x)) (probes ~seed:73 ())
        in
        let baseline = Service.evaluate_batch service queries in
        for gen = 1 to 5 do
          Service.swap service snap;
          Alcotest.(check int) "generation" gen (Service.generation service);
          let v = Service.evaluate_batch service queries in
          Array.iteri
            (fun i x ->
              Alcotest.(check bool) "stable verdict" baseline.(i).Detector.drifted
                x.Detector.drifted;
              check_bits "stable credibility" baseline.(i).Detector.mean_credibility
                x.Detector.mean_credibility)
            v
        done);
    Alcotest.test_case "of_snapshot restores a service bit-identically" `Quick
      (fun () ->
        let data = cls_data ~n:60 ~seed:79 () in
        let det = cls_detector ~seed:79 () in
        let service = service_of_detector det data in
        let restored = Service.of_snapshot (Service.snapshot service) in
        let model = Detector.Classification.model det in
        let queries =
          Array.map (fun x -> (x, model.Model.predict_proba x)) (probes ~seed:83 ())
        in
        let a = Service.evaluate_batch service queries in
        let b = Service.evaluate_batch restored queries in
        Array.iteri
          (fun i v ->
            Alcotest.(check bool) "drifted" a.(i).Detector.drifted v.Detector.drifted;
            check_bits "credibility" a.(i).Detector.mean_credibility
              v.Detector.mean_credibility;
            check_bits "confidence" a.(i).Detector.mean_confidence
              v.Detector.mean_confidence)
          b);
    Alcotest.test_case "swap rejects regression snapshots" `Quick (fun () ->
        let data = cls_data ~n:60 ~seed:89 () in
        let det = cls_detector ~seed:89 () in
        let service = service_of_detector det data in
        let reg_snap = Snapshot.of_reg_detector (reg_detector ()) in
        (match Service.swap service reg_snap with
        | () -> Alcotest.fail "regression snapshot swapped in"
        | exception Invalid_argument _ -> ());
        match Service.of_snapshot reg_snap with
        | _ -> Alcotest.fail "regression snapshot restored as service"
        | exception Invalid_argument _ -> ());
  ]

(* ---------- Streaming weighted snapshots (codec v3) ---------- *)

(* The weighted-conformal state added in v3 — per-entry weights, the
   sorted-LOO permutation and the streaming window state — must travel
   through the codec without disturbing verdicts, and its absence
   (a pre-v3 payload) must restore a store that behaves exactly like
   one that never heard of weights. *)

let stream_snapshot_tests =
  [
    Alcotest.test_case "weights, LOO order and window state survive codec v3"
      `Quick (fun () ->
        let data = cls_data ~n:60 ~seed:91 () in
        let det = cls_detector ~seed:91 () in
        let service = service_of_detector det data in
        match Service.snapshot service with
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped"
        | Snapshot.Cls s ->
            let cal = s.Snapshot.cls_calibration in
            let n = Array.length cal.Calibration.entries in
            let w = Array.init n (fun i -> if i mod 3 = 0 then 0.25 else 1.0) in
            let cal' = Calibration.reweight_cls cal w in
            let ws =
              {
                Decay.ws_policy = Decay.Sliding { window = 8 };
                ws_capacity = 64;
                ws_compact_fraction = 0.5;
                ws_scale = 0.5;
                ws_seqs = Array.init n Fun.id;
                ws_next_seq = n;
              }
            in
            let snap =
              Snapshot.Cls
                { s with Snapshot.cls_calibration = cal'; cls_stream = Some ws }
            in
            (match Snapshot.decode (Snapshot.encode snap) with
            | Snapshot.Reg _ -> Alcotest.fail "kind flipped"
            | Snapshot.Cls s' ->
                let c' = s'.Snapshot.cls_calibration in
                Alcotest.(check (array int)) "loo order"
                  cal'.Calibration.loo_order c'.Calibration.loo_order;
                Alcotest.(check int) "weight count" n
                  (Array.length c'.Calibration.ent_weights);
                Array.iteri
                  (fun i v -> check_bits "entry weight" v c'.Calibration.ent_weights.(i))
                  cal'.Calibration.ent_weights;
                (match s'.Snapshot.cls_stream with
                | Some ws' -> Alcotest.(check bool) "window state" true (ws = ws')
                | None -> Alcotest.fail "window state lost");
                (* the decoded weighted store serves bit-identically *)
                let model = Detector.Classification.model det in
                let queries =
                  Array.map
                    (fun x -> (x, model.Model.predict_proba x))
                    (probes ~seed:93 ())
                in
                let a = Service.evaluate_batch (Service.of_snapshot snap) queries in
                let b =
                  Service.evaluate_batch (Service.of_snapshot (Snapshot.Cls s'))
                    queries
                in
                Array.iteri
                  (fun i v ->
                    Alcotest.(check bool) "drifted" a.(i).Detector.drifted
                      v.Detector.drifted;
                    check_bits "credibility" a.(i).Detector.mean_credibility
                      v.Detector.mean_credibility;
                    check_bits "confidence" a.(i).Detector.mean_confidence
                      v.Detector.mean_confidence)
                  b));
    Alcotest.test_case "pre-v3 restore stays unit-weighted and bit-identical"
      `Quick (fun () ->
        let det = cls_detector ~seed:95 () in
        let cal = Detector.Classification.calibration det in
        (* the exact call shape the v1/v2 decode path uses: no LOO
           permutation, no weight vector *)
        let restored =
          Calibration.restore_cls ~entries:cal.Calibration.entries
            ~config:Config.default ~scaler:cal.Calibration.scaler
            ~tau:cal.Calibration.tau ~loo_distances:cal.Calibration.loo_distances
            ()
        in
        Alcotest.(check int) "no weights" 0
          (Array.length restored.Calibration.ent_weights);
        Alcotest.(check int) "no permutation" 0
          (Array.length restored.Calibration.loo_order);
        Array.iter
          (fun x ->
            check_bits "distance p-value"
              (Calibration.distance_pvalue_cls cal
                 (Calibration.standardize_cls cal x))
              (Calibration.distance_pvalue_cls restored
                 (Calibration.standardize_cls restored x)))
          (probes ~seed:97 ());
        (* reweighting a store without the permutation leaves the
           distance test unweighted: no suffix sums appear *)
        let n = Array.length restored.Calibration.entries in
        let rw = Calibration.reweight_cls restored (Array.make n 0.5) in
        Alcotest.(check int) "distance test stays unweighted" 0
          (Array.length rw.Calibration.loo_suffix));
    Alcotest.test_case "stream resumes from a decoded window state" `Quick
      (fun () ->
        let data = cls_data ~n:60 ~seed:99 () in
        let det = cls_detector ~seed:99 () in
        let service = service_of_detector det data in
        let stream =
          Stream.create ~policy:(Decay.Sliding { window = 16 }) ~capacity:64
            service
        in
        let model = Detector.Classification.model det in
        let rng = Rng.create 101 in
        for _ = 1 to 5 do
          let x = Array.init 3 (fun _ -> Rng.gaussian rng ~mu:1.5 ~sigma:0.8) in
          Stream.admit stream ~features:x ~label:1
            ~proba:(model.Model.predict_proba x)
        done;
        let payload = Snapshot.encode (Stream.snapshot stream) in
        match Snapshot.decode payload with
        | Snapshot.Reg _ -> Alcotest.fail "kind flipped"
        | Snapshot.Cls s ->
            (match s.Snapshot.cls_stream with
            | None -> Alcotest.fail "window state lost"
            | Some ws ->
                let resumed =
                  Stream.create ~state:ws
                    (Service.of_snapshot (Snapshot.Cls s))
                in
                Alcotest.(check int) "same residency"
                  (Stream.stats stream).Stream.resident
                  (Stream.stats resumed).Stream.resident;
                Alcotest.(check int) "same live set"
                  (Stream.stats stream).Stream.live
                  (Stream.stats resumed).Stream.live;
                (* the resumed loop keeps ingesting *)
                let x = Array.init 3 (fun _ -> Rng.gaussian rng ~mu:1.5 ~sigma:0.8) in
                Stream.admit resumed ~features:x ~label:0
                  ~proba:(model.Model.predict_proba x);
                Alcotest.(check int) "admission continues" 1
                  (Stream.stats resumed).Stream.admitted));
  ]

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_float_roundtrip;
      prop_int_roundtrip;
      prop_string_roundtrip;
      prop_floats_roundtrip;
      prop_truncation_detected;
    ]

let suite =
  [
    ("store.buf", properties @ buf_unit_tests);
    ("store.crc32", crc_tests);
    ("store.container", store_tests);
    ("store.model_codecs", model_codec_tests);
    ("store.snapshot", snapshot_tests);
    ("store.index_snapshot", index_snapshot_tests);
    ("store.fallback", fallback_tests);
    ("store.kill_reload", kill_reload_tests);
    ("store.hot_swap", swap_tests);
    ("store.stream_snapshot", stream_snapshot_tests);
  ]
