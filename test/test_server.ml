(* Tests for the serving layer: the adaptive micro-batcher's ordering,
   coalescing, backpressure and drain semantics; HTTP/1.1 framing round
   trips; and end-to-end server behaviour — bit-identical verdicts vs
   the direct service path, 4xx on malformed input, 503 under overload,
   hot-swap under live traffic and graceful shutdown. *)

open Prom_linalg
open Prom_ml
open Prom
module J = Prom_jsonx
module Http = Prom_server.Http
module Batcher = Prom_server.Batcher
module Server = Prom_server.Server

let bits = Int64.bits_of_float
let check_bits name a b = Alcotest.(check int64) name (bits a) (bits b)

let has_substring text needle =
  let n = String.length needle and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
  at 0

(* ---------- world helpers (same two-cluster world as test_store) ---------- *)

let cls_data ?(n = 60) ?(seed = 11) () =
  let rng = Rng.create seed in
  let xs =
    Array.init n (fun i ->
        let cx = if i mod 2 = 0 then 0.0 else 3.0 in
        [|
          Rng.gaussian rng ~mu:cx ~sigma:0.8;
          Rng.gaussian rng ~mu:(-.cx) ~sigma:0.8;
          Rng.gaussian rng ~mu:(cx /. 2.0) ~sigma:0.5;
        |])
  in
  Dataset.create xs (Array.init n (fun i -> i mod 2))

let make_world ?telemetry ?(seed = 23) () =
  let data = cls_data ~n:80 ~seed () in
  let model = Logistic.train data in
  let triples =
    List.init (Dataset.length data) (fun i ->
        let x, y = Dataset.get data i in
        (x, y, model.Model.predict_proba x))
  in
  (Service.create ?telemetry triples, model)

let queries_of ?(seed = 17) model n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let x = Array.init 3 (fun _ -> Rng.gaussian rng ~mu:1.0 ~sigma:2.5) in
      (x, model.Model.predict_proba x))

(* ---------- HTTP client helpers ---------- *)

type client = { fd : Unix.file_descr; creader : Http.reader }

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; creader = Http.reader fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc c ~meth ~path body =
  Http.write_request c.fd ~meth ~path body;
  match Http.read_response c.creader with
  | Ok r -> r
  | Error `Eof -> Alcotest.fail "connection closed mid-response"
  | Error (`Bad m) -> Alcotest.fail ("bad response: " ^ m)
  | Error (`Too_large _) -> Alcotest.fail "response too large"

let with_server ?config ?telemetry ?snapshot_dir ?tenants ?before_batch service
    f =
  let server =
    Server.start ?config ?telemetry ?snapshot_dir ?tenants ?before_batch service
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let json_vec v = J.Arr (Array.to_list (Array.map (fun x -> J.Num x) v))

let query_json (features, proba) =
  J.Obj [ ("features", json_vec features); ("proba", json_vec proba) ]

let parse_body (r : Http.response) =
  match J.parse r.Http.resp_body with
  | Ok v -> v
  | Error e -> Alcotest.fail ("unparseable response body: " ^ e)

let ffield name v =
  match Option.bind (J.member name v) J.to_float with
  | Some f -> f
  | None -> Alcotest.fail ("missing numeric field " ^ name)

let sfield name v =
  match Option.bind (J.member name v) J.to_string_opt with
  | Some s -> s
  | None -> Alcotest.fail ("missing string field " ^ name)

let bfield name v =
  match Option.bind (J.member name v) J.to_bool with
  | Some b -> b
  | None -> Alcotest.fail ("missing bool field " ^ name)

let check_verdict_json name (expected : Detector.cls_verdict) v =
  Alcotest.(check string)
    (name ^ " verdict")
    (if expected.Detector.drifted then "reject" else "accept")
    (sfield "verdict" v);
  Alcotest.(check bool)
    (name ^ " drifted") expected.Detector.drifted (bfield "drifted" v);
  Alcotest.(check int)
    (name ^ " predicted") expected.Detector.predicted
    (int_of_float (ffield "predicted" v));
  check_bits (name ^ " credibility") expected.Detector.mean_credibility
    (ffield "credibility" v);
  check_bits (name ^ " confidence") expected.Detector.mean_confidence
    (ffield "confidence" v)

(* ---------- batcher ---------- *)

let batcher_tests =
  [
    Alcotest.test_case "outputs are grouped and ordered" `Quick (fun () ->
        let b =
          Batcher.create ~max_batch:8 ~max_wait_us:500
            (Array.map (fun x -> x * 2))
        in
        let results = Array.make 6 (Ok [||]) in
        let threads =
          Array.init 6 (fun i ->
              Thread.create
                (fun () ->
                  let items = Array.init (i + 1) (fun j -> (i * 10) + j) in
                  results.(i) <- Batcher.submit_many b items)
                ())
        in
        Array.iter Thread.join threads;
        Batcher.shutdown b;
        Array.iteri
          (fun i r ->
            match r with
            | Ok out ->
                Alcotest.(check int) "group arity" (i + 1) (Array.length out);
                Array.iteri
                  (fun j v ->
                    Alcotest.(check int) "in-order value" (((i * 10) + j) * 2) v)
                  out
            | Error _ -> Alcotest.fail "group submission failed")
          results);
    Alcotest.test_case "concurrent singles coalesce into shared batches" `Quick
      (fun () ->
        let sizes = ref [] in
        let sizes_lock = Mutex.create () in
        let b =
          Batcher.create ~max_batch:64 ~max_wait_us:1000
            ~on_batch:(fun n ->
              Mutex.lock sizes_lock;
              sizes := n :: !sizes;
              Mutex.unlock sizes_lock)
            ~before_batch:(fun () -> Thread.delay 0.2)
            (Array.map succ)
        in
        let threads =
          Array.init 6 (fun i ->
              Thread.create (fun () -> ignore (Batcher.submit b i)) ())
        in
        Array.iter Thread.join threads;
        Batcher.shutdown b;
        Alcotest.(check int) "all items ran" 6 (List.fold_left ( + ) 0 !sizes);
        Alcotest.(check bool)
          "adaptive batching formed a multi-item batch" true
          (List.exists (fun n -> n >= 2) !sizes);
        Alcotest.(check bool)
          "fewer dispatches than items" true
          (List.length !sizes < 6));
    Alcotest.test_case "bounded queue rejects overload, then recovers" `Quick
      (fun () ->
        let b =
          Batcher.create ~max_batch:1 ~max_wait_us:0 ~capacity:2
            ~before_batch:(fun () -> Thread.delay 0.3)
            (Array.map succ)
        in
        let r1 = ref (Error `Shutdown) and r2 = ref (Error `Shutdown) in
        let r3 = ref (Error `Shutdown) in
        let t1 = Thread.create (fun () -> r1 := Batcher.submit b 0) () in
        Thread.delay 0.05;
        (* item 0 is mid-evaluation; the queue is empty again *)
        let t2 = Thread.create (fun () -> r2 := Batcher.submit b 1) () in
        let t3 = Thread.create (fun () -> r3 := Batcher.submit b 2) () in
        Thread.delay 0.05;
        (* queue now holds items 1 and 2 = capacity *)
        (match Batcher.submit b 3 with
        | Error `Overloaded -> ()
        | Ok _ -> Alcotest.fail "expected overload rejection"
        | Error _ -> Alcotest.fail "wrong rejection");
        Thread.join t1;
        Thread.join t2;
        Thread.join t3;
        (match (!r1, !r2, !r3) with
        | Ok 1, Ok 2, Ok 3 -> ()
        | _ -> Alcotest.fail "accepted submissions must all complete");
        (* capacity is free again after the drain *)
        (match Batcher.submit b 9 with
        | Ok 10 -> ()
        | _ -> Alcotest.fail "recovery submission failed");
        Batcher.shutdown b);
    Alcotest.test_case "evaluation failure is isolated" `Quick (fun () ->
        let b =
          Batcher.create ~max_batch:4 ~max_wait_us:100
            (Array.map (fun x -> if x < 0 then failwith "boom" else x + 1))
        in
        (match Batcher.submit b (-1) with
        | Error (`Failed (Failure _)) -> ()
        | _ -> Alcotest.fail "expected `Failed");
        (match Batcher.submit b 5 with
        | Ok 6 -> ()
        | _ -> Alcotest.fail "batcher must survive a failed batch");
        (match Batcher.submit_many b [||] with
        | Ok [||] -> ()
        | _ -> Alcotest.fail "empty submission");
        Batcher.shutdown b;
        match Batcher.submit b 1 with
        | Error `Shutdown -> ()
        | _ -> Alcotest.fail "post-shutdown submit must be rejected");
    Alcotest.test_case "shutdown answers every accepted submitter" `Quick
      (fun () ->
        let b =
          Batcher.create ~max_batch:1 ~max_wait_us:0
            ~before_batch:(fun () -> Thread.delay 0.1)
            (Array.map succ)
        in
        let results = Array.make 4 None in
        let threads =
          Array.init 4 (fun i ->
              Thread.create (fun () -> results.(i) <- Some (Batcher.submit b i)) ())
        in
        Thread.delay 0.05;
        Batcher.shutdown b;
        Array.iter Thread.join threads;
        Alcotest.(check int) "drained queue" 0 (Batcher.depth b);
        Array.iteri
          (fun i r ->
            match r with
            | Some (Ok v) -> Alcotest.(check int) "drained value" (i + 1) v
            | Some (Error `Shutdown) ->
                (* raced the stop flag; rejected immediately, not dropped *)
                ()
            | Some (Error _) -> Alcotest.fail "accepted work failed"
            | None -> Alcotest.fail "submitter left hanging")
          results);
    Alcotest.test_case "on_depth may call back into the batcher" `Quick
      (fun () ->
        (* on_depth used to run with the batcher lock held, so a hook
           touching [depth] deadlocked the submitter. *)
        let bref = ref None in
        let fired = ref 0 in
        let b =
          Batcher.create ~max_batch:4 ~max_wait_us:100
            ~on_depth:(fun _ ->
              (match !bref with
              | Some b -> ignore (Batcher.depth b)
              | None -> ());
              incr fired)
            (Array.map succ)
        in
        bref := Some b;
        (match Batcher.submit_many b [| 1; 2; 3 |] with
        | Ok [| 2; 3; 4 |] -> ()
        | _ -> Alcotest.fail "submission failed");
        Batcher.shutdown b;
        Alcotest.(check bool) "on_depth fired" true (!fired > 0));
    Alcotest.test_case "deficit round robin serves a cold key ahead of a hot \
                        backlog" `Quick (fun () ->
        (* One hot key piles up four groups while the dispatcher is
           busy; a cold key submits one. Under FIFO the cold item would
           run last; under DRR it rides the very next batch. *)
        let order = ref [] in
        let olock = Mutex.create () in
        let note tag =
          Mutex.lock olock;
          order := tag :: !order;
          Mutex.unlock olock
        in
        let b =
          Batcher.create ~max_batch:2 ~max_wait_us:100 ~quantum:1
            ~before_batch:(fun () -> Thread.delay 0.15)
            (Array.map succ)
        in
        let t0 =
          Thread.create (fun () -> ignore (Batcher.submit ~key:0 b 100)) ()
        in
        Thread.delay 0.05;
        (* the first batch is mid-evaluation; build the backlog *)
        for i = 1 to 4 do
          Batcher.submit_async ~key:0 b [| i |] ~notify:(fun _ -> note `Hot)
        done;
        Batcher.submit_async ~key:1 b [| 9 |] ~notify:(fun _ -> note `Cold);
        Alcotest.(check int) "hot key depth" 4 (Batcher.key_depth b 0);
        Alcotest.(check int) "cold key depth" 1 (Batcher.key_depth b 1);
        Thread.join t0;
        Batcher.shutdown b;
        let seq = List.rev !order in
        Alcotest.(check int) "everything ran" 5 (List.length seq);
        let cold_pos =
          let rec idx i = function
            | [] -> Alcotest.fail "cold item never completed"
            | `Cold :: _ -> i
            | `Hot :: rest -> idx (i + 1) rest
          in
          idx 0 seq
        in
        Alcotest.(check bool)
          "cold item rode the first post-backlog batch" true (cold_pos <= 1));
    Alcotest.test_case "per-key capacity rejects the hot key only" `Quick
      (fun () ->
        let b =
          Batcher.create ~max_batch:1 ~max_wait_us:0 ~capacity:16
            ~key_capacity:2
            ~before_batch:(fun () -> Thread.delay 0.2)
            (Array.map succ)
        in
        let r1 = ref (Error `Shutdown) in
        let r2 = ref (Error `Shutdown) and r3 = ref (Error `Shutdown) in
        let r_cold = ref (Error `Shutdown) in
        let t1 = Thread.create (fun () -> r1 := Batcher.submit ~key:0 b 0) () in
        Thread.delay 0.05;
        (* item 0 is mid-evaluation; fill key 0 to its cap *)
        let t2 = Thread.create (fun () -> r2 := Batcher.submit ~key:0 b 1) () in
        let t3 = Thread.create (fun () -> r3 := Batcher.submit ~key:0 b 2) () in
        Thread.delay 0.05;
        (match Batcher.submit ~key:0 b 3 with
        | Error `Overloaded -> ()
        | Ok _ -> Alcotest.fail "expected per-key overload rejection"
        | Error _ -> Alcotest.fail "wrong rejection");
        (* the global queue still has headroom: another key is admitted *)
        let tc =
          Thread.create (fun () -> r_cold := Batcher.submit ~key:1 b 7) ()
        in
        Thread.join t1;
        Thread.join t2;
        Thread.join t3;
        Thread.join tc;
        (match (!r1, !r2, !r3, !r_cold) with
        | Ok 1, Ok 2, Ok 3, Ok 8 -> ()
        | _ -> Alcotest.fail "accepted submissions must all complete");
        (* the hot key's budget frees up after the drain *)
        (match Batcher.submit ~key:0 b 9 with
        | Ok 10 -> ()
        | _ -> Alcotest.fail "hot key must recover after the drain");
        Batcher.shutdown b);
    Alcotest.test_case "submit_async answers without a parked thread" `Quick
      (fun () ->
        let b = Batcher.create ~max_batch:4 ~max_wait_us:100 (Array.map succ) in
        let lock = Mutex.create () and cond = Condition.create () in
        let result = ref None in
        Batcher.submit_async b [| 7; 8 |] ~notify:(fun r ->
            Mutex.lock lock;
            result := Some r;
            Condition.signal cond;
            Mutex.unlock lock);
        Mutex.lock lock;
        while !result = None do
          Condition.wait cond lock
        done;
        Mutex.unlock lock;
        (match !result with
        | Some (Ok [| 8; 9 |]) -> ()
        | _ -> Alcotest.fail "async group not answered in order");
        (* rejections come back synchronously on the caller's thread *)
        let b2 =
          Batcher.create ~max_batch:1 ~max_wait_us:0 ~capacity:1
            (Array.map succ)
        in
        let sync = ref None in
        Batcher.submit_async b2 [| 1; 2 |] ~notify:(fun r -> sync := Some r);
        (match !sync with
        | Some (Error `Overloaded) -> ()
        | _ -> Alcotest.fail "oversized group must be rejected synchronously");
        let empty = ref None in
        Batcher.submit_async b2 [||] ~notify:(fun r -> empty := Some r);
        (match !empty with
        | Some (Ok [||]) -> ()
        | _ -> Alcotest.fail "empty group must be answered synchronously");
        Batcher.shutdown b2;
        let post = ref None in
        Batcher.submit_async b2 [| 1 |] ~notify:(fun r -> post := Some r);
        (match !post with
        | Some (Error `Shutdown) -> ()
        | _ -> Alcotest.fail "post-shutdown async submit must be rejected");
        Batcher.shutdown b);
  ]

(* ---------- HTTP framing ---------- *)

let socketpair () = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0

let with_pair f =
  let a, b = socketpair () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let fake_request ?(version = "HTTP/1.1") headers =
  {
    Http.meth = "GET";
    path = "/";
    version;
    req_headers = headers;
    req_body = "";
  }

let http_tests =
  [
    Alcotest.test_case "request round trip" `Quick (fun () ->
        with_pair (fun a b ->
            Http.write_request a ~meth:"POST" ~path:"/predict"
              ~extra_headers:[ ("X-Trace", "7") ]
              "{\"x\":1}";
            let r = Http.reader b in
            match Http.read_request r with
            | Ok req ->
                Alcotest.(check string) "meth" "POST" req.Http.meth;
                Alcotest.(check string) "path" "/predict" req.Http.path;
                Alcotest.(check string) "body" "{\"x\":1}" req.Http.req_body;
                Alcotest.(check (option string))
                  "header name lowercased" (Some "7")
                  (Http.header "x-trace" req.Http.req_headers);
                Alcotest.(check bool) "keep alive" true (Http.keep_alive req)
            | Error _ -> Alcotest.fail "request did not parse"));
    Alcotest.test_case "response round trip" `Quick (fun () ->
        with_pair (fun a b ->
            Http.write_response a ~status:503
              ~extra_headers:[ ("Retry-After", "1") ]
              ~keep_alive:false "{\"error\":\"x\"}";
            let r = Http.reader b in
            match Http.read_response r with
            | Ok resp ->
                Alcotest.(check int) "status" 503 resp.Http.status;
                Alcotest.(check string)
                  "reason" "Service Unavailable" resp.Http.reason;
                Alcotest.(check string)
                  "body" "{\"error\":\"x\"}" resp.Http.resp_body;
                Alcotest.(check (option string))
                  "retry-after" (Some "1")
                  (Http.header "retry-after" resp.Http.resp_headers);
                Alcotest.(check (option string))
                  "connection close" (Some "close")
                  (Http.header "connection" resp.Http.resp_headers)
            | Error _ -> Alcotest.fail "response did not parse"));
    Alcotest.test_case "pipelined requests are buffered" `Quick (fun () ->
        with_pair (fun a b ->
            Http.write_request a ~meth:"POST" ~path:"/one" "11";
            Http.write_request a ~meth:"POST" ~path:"/two" "22";
            let r = Http.reader b in
            (match Http.read_request r with
            | Ok req -> Alcotest.(check string) "first" "/one" req.Http.path
            | Error _ -> Alcotest.fail "first request");
            Alcotest.(check bool) "second is buffered" true (Http.buffered r);
            Alcotest.(check bool)
              "buffered data is ready" true
              (Http.wait_readable r ~timeout:0.0 = `Ready);
            match Http.read_request r with
            | Ok req ->
                Alcotest.(check string) "second" "/two" req.Http.path;
                Alcotest.(check string) "second body" "22" req.Http.req_body
            | Error _ -> Alcotest.fail "second request"));
    Alcotest.test_case "read errors are classified" `Quick (fun () ->
        with_pair (fun a b ->
            (* clean close before any bytes -> `Eof *)
            Unix.close a;
            match Http.read_request (Http.reader b) with
            | Error `Eof -> ()
            | _ -> Alcotest.fail "expected `Eof");
        with_pair (fun a b ->
            let junk = "NOT AN HTTP LINE AT ALL\r\n\r\n" in
            ignore (Unix.write_substring a junk 0 (String.length junk));
            match Http.read_request (Http.reader b) with
            | Error (`Bad _) -> ()
            | _ -> Alcotest.fail "expected `Bad");
        with_pair (fun a b ->
            let big =
              "GET / HTTP/1.1\r\nX-Big: " ^ String.make 300 'a' ^ "\r\n\r\n"
            in
            ignore (Unix.write_substring a big 0 (String.length big));
            match Http.read_request ~max_header:64 (Http.reader b) with
            | Error (`Too_large `Head) -> ()
            | _ -> Alcotest.fail "expected `Too_large `Head");
        with_pair (fun a b ->
            Http.write_request a ~meth:"POST" ~path:"/p" (String.make 256 'x');
            match Http.read_request ~max_body:64 (Http.reader b) with
            | Error (`Too_large `Body) -> ()
            | _ -> Alcotest.fail "expected `Too_large `Body"));
    Alcotest.test_case "duplicate content-length is rejected" `Quick (fun () ->
        let raw_request headers =
          "POST /p HTTP/1.1\r\n"
          ^ String.concat "" (List.map (fun h -> h ^ "\r\n") headers)
          ^ "\r\nhi"
        in
        let expect_bad name headers =
          with_pair (fun a b ->
              let raw = raw_request headers in
              ignore (Unix.write_substring a raw 0 (String.length raw));
              match Http.read_request (Http.reader b) with
              | Error (`Bad _) -> ()
              | _ -> Alcotest.fail (name ^ ": expected `Bad"))
        in
        (* Conflicting copies smuggle; identical copies are rejected
           too — an intermediary may dedup them differently. *)
        expect_bad "conflicting copies"
          [ "Content-Length: 2"; "Content-Length: 5" ];
        expect_bad "identical copies"
          [ "Content-Length: 2"; "Content-Length: 2" ];
        expect_bad "negative length" [ "Content-Length: -2" ];
        (* a single well-formed length still parses *)
        with_pair (fun a b ->
            let raw = raw_request [ "Content-Length: 2" ] in
            ignore (Unix.write_substring a raw 0 (String.length raw));
            match Http.read_request (Http.reader b) with
            | Ok req -> Alcotest.(check string) "body" "hi" req.Http.req_body
            | Error _ -> Alcotest.fail "single content-length must parse"));
    Alcotest.test_case "connection header is a comma-separated token list"
      `Quick (fun () ->
        let keep ?version headers =
          Http.keep_alive (fake_request ?version headers)
        in
        Alcotest.(check bool)
          "1.1: keep-alive token plus another token" true
          (keep [ ("connection", "keep-alive, upgrade") ]);
        Alcotest.(check bool)
          "1.1: close anywhere in the list wins" false
          (keep [ ("connection", "Upgrade, Close") ]);
        Alcotest.(check bool)
          "1.1: close beats keep-alive in the same list" false
          (keep [ ("connection", "keep-alive, close") ]);
        Alcotest.(check bool)
          "1.0: keep-alive token in a list turns persistence on" true
          (keep ~version:"HTTP/1.0" [ ("connection", "Keep-Alive, upgrade") ]);
        Alcotest.(check bool)
          "1.0: unrelated tokens leave persistence off" false
          (keep ~version:"HTTP/1.0" [ ("connection", "upgrade") ]);
        Alcotest.(check bool)
          "whitespace around tokens is trimmed" false
          (keep [ ("connection", " upgrade ,  close ") ]));
    Alcotest.test_case "keep-alive semantics" `Quick (fun () ->
        Alcotest.(check bool)
          "1.1 default on" true
          (Http.keep_alive (fake_request []));
        Alcotest.(check bool)
          "1.1 close" false
          (Http.keep_alive (fake_request [ ("connection", "close") ]));
        Alcotest.(check bool)
          "1.1 close value is case-insensitive" false
          (Http.keep_alive (fake_request [ ("connection", "Close") ]));
        Alcotest.(check bool)
          "1.0 default off" false
          (Http.keep_alive (fake_request ~version:"HTTP/1.0" []));
        Alcotest.(check bool)
          "1.0 explicit keep-alive" true
          (Http.keep_alive
             (fake_request ~version:"HTTP/1.0" [ ("connection", "keep-alive") ])));
  ]

(* ---------- end-to-end server ---------- *)

let e2e_tests =
  [
    Alcotest.test_case "healthz, metrics, 404 and 405 on one connection" `Quick
      (fun () ->
        let registry = Prom_obs.create_registry () in
        let telemetry = Telemetry.create registry in
        let service, _ = make_world ~telemetry () in
        with_server ~telemetry service (fun server ->
            Alcotest.(check bool)
              "service accessor" true
              (Server.service server == service);
            let c = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let h = rpc c ~meth:"GET" ~path:"/healthz" "" in
                Alcotest.(check int) "healthz status" 200 h.Http.status;
                let hv = parse_body h in
                Alcotest.(check string) "status ok" "ok" (sfield "status" hv);
                Alcotest.(check int)
                  "feature_dim" 3
                  (int_of_float (ffield "feature_dim" hv));
                Alcotest.(check int)
                  "n_classes" 2
                  (int_of_float (ffield "n_classes" hv));
                let nf = rpc c ~meth:"GET" ~path:"/nope" "" in
                Alcotest.(check int) "404" 404 nf.Http.status;
                let mna = rpc c ~meth:"GET" ~path:"/predict" "" in
                Alcotest.(check int) "405" 405 mna.Http.status;
                let m = rpc c ~meth:"GET" ~path:"/metrics" "" in
                Alcotest.(check int) "metrics status" 200 m.Http.status;
                (match Prom_obs.validate_exposition m.Http.resp_body with
                | Ok () -> ()
                | Error e -> Alcotest.fail ("invalid exposition: " ^ e));
                Alcotest.(check bool)
                  "request counter exported" true
                  (has_substring m.Http.resp_body "prom_http_requests_total");
                Alcotest.(check bool)
                  "latency histogram exported" true
                  (has_substring m.Http.resp_body "prom_http_request_seconds"))));
    Alcotest.test_case "served verdicts are bit-identical to the direct path"
      `Quick (fun () ->
        let service, model = make_world () in
        let queries = queries_of model 10 in
        let direct = Service.evaluate_batch service queries in
        with_server service (fun server ->
            let c = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                Array.iteri
                  (fun i q ->
                    let r =
                      rpc c ~meth:"POST" ~path:"/predict"
                        (J.to_string (query_json q))
                    in
                    Alcotest.(check int) "single status" 200 r.Http.status;
                    check_verdict_json
                      (Printf.sprintf "single %d" i)
                      direct.(i) (parse_body r))
                  queries;
                let batch_body =
                  J.to_string
                    (J.Obj
                       [
                         ( "queries",
                           J.Arr
                             (Array.to_list (Array.map query_json queries)) );
                       ])
                in
                let r = rpc c ~meth:"POST" ~path:"/predict" batch_body in
                Alcotest.(check int) "batch status" 200 r.Http.status;
                match Option.bind (J.member "results" (parse_body r)) J.to_list with
                | Some results ->
                    Alcotest.(check int)
                      "batch arity" (Array.length queries) (List.length results);
                    List.iteri
                      (fun i v ->
                        check_verdict_json
                          (Printf.sprintf "batch %d" i)
                          direct.(i) v)
                      results
                | None -> Alcotest.fail "batch response missing results")));
    Alcotest.test_case "malformed requests get 4xx and never crash" `Quick
      (fun () ->
        let service, model = make_world () in
        let config = { Server.default_config with max_body_bytes = 2048 } in
        with_server ~config service (fun server ->
            let port = Server.port server in
            let expect name status body =
              let c = connect port in
              Fun.protect
                ~finally:(fun () -> close c)
                (fun () ->
                  let r = rpc c ~meth:"POST" ~path:"/predict" body in
                  Alcotest.(check int) name status r.Http.status;
                  Alcotest.(check bool)
                    (name ^ " has error field")
                    true
                    (has_substring r.Http.resp_body "\"error\""))
            in
            expect "bad JSON" 400 "this is not json";
            expect "wrong feature dim" 422
              "{\"features\":[1.0],\"proba\":[0.5,0.5]}";
            expect "wrong proba dim" 422
              "{\"features\":[1.0,2.0,3.0],\"proba\":[1.0]}";
            expect "non-numeric features" 422
              "{\"features\":[\"a\",\"b\",\"c\"],\"proba\":[0.5,0.5]}";
            expect "queries not an array" 422 "{\"queries\":3}";
            expect "empty batch" 422 "{\"queries\":[]}";
            expect "oversized body" 413 (String.make 4096 ' ');
            (* the server is still healthy afterwards *)
            let q = (queries_of model 1).(0) in
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let r =
                  rpc c ~meth:"POST" ~path:"/predict"
                    (J.to_string (query_json q))
                in
                Alcotest.(check int) "still serving" 200 r.Http.status)));
    Alcotest.test_case "overload answers 503 with Retry-After, then recovers"
      `Quick (fun () ->
        let service, model = make_world () in
        let q = (queries_of model 1).(0) in
        let body = J.to_string (query_json q) in
        let config =
          {
            Server.default_config with
            max_batch = 1;
            max_wait_us = 0;
            queue_capacity = 2;
          }
        in
        with_server ~config
          ~before_batch:(fun () -> Thread.delay 0.25)
          service
          (fun server ->
            let port = Server.port server in
            let statuses = Array.make 8 0 in
            let retry_after = Array.make 8 None in
            let threads =
              Array.init 8 (fun i ->
                  Thread.create
                    (fun () ->
                      try
                        let c = connect port in
                        Fun.protect
                          ~finally:(fun () -> close c)
                          (fun () ->
                            Http.write_request c.fd ~meth:"POST"
                              ~path:"/predict" body;
                            match Http.read_response c.creader with
                            | Ok r ->
                                statuses.(i) <- r.Http.status;
                                retry_after.(i) <-
                                  Http.header "retry-after" r.Http.resp_headers
                            | Error _ -> statuses.(i) <- -1)
                      with _ -> statuses.(i) <- -2)
                    ())
            in
            Array.iter Thread.join threads;
            let count s =
              Array.fold_left (fun a x -> if x = s then a + 1 else a) 0 statuses
            in
            Alcotest.(check int)
              "every request got a well-formed answer" 8
              (count 200 + count 503);
            Alcotest.(check bool) "some served" true (count 200 >= 1);
            Alcotest.(check bool) "some shed" true (count 503 >= 1);
            Array.iteri
              (fun i s ->
                if s = 503 then
                  Alcotest.(check (option string))
                    "503 carries Retry-After" (Some "1") retry_after.(i))
              statuses;
            (* the queue drains and service resumes *)
            Thread.delay 0.3;
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let r = rpc c ~meth:"POST" ~path:"/predict" body in
                Alcotest.(check int) "recovered" 200 r.Http.status)));
    Alcotest.test_case "graceful stop drains in-flight requests" `Quick
      (fun () ->
        let service, model = make_world () in
        let q = (queries_of model 1).(0) in
        let body = J.to_string (query_json q) in
        let config =
          { Server.default_config with max_batch = 1; max_wait_us = 0 }
        in
        let server =
          Server.start ~config
            ~before_batch:(fun () -> Thread.delay 0.3)
            service
        in
        let port = Server.port server in
        let result = ref None in
        let th =
          Thread.create
            (fun () ->
              try
                let c = connect port in
                Fun.protect
                  ~finally:(fun () -> close c)
                  (fun () ->
                    Http.write_request c.fd ~meth:"POST" ~path:"/predict" body;
                    match Http.read_response c.creader with
                    | Ok r -> result := Some r.Http.status
                    | Error _ -> result := Some (-1))
              with _ -> result := Some (-2))
            ()
        in
        Thread.delay 0.1;
        (* the request is mid-batch; stop must wait for it *)
        Server.stop server;
        Thread.join th;
        Alcotest.(check (option int)) "in-flight request served" (Some 200)
          !result;
        (* stop is idempotent *)
        Server.stop server;
        match connect port with
        | c ->
            close c;
            Alcotest.fail "listener should be closed after stop"
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
    Alcotest.test_case "431 for an oversized head, 413 for an oversized body"
      `Quick (fun () ->
        let service, model = make_world () in
        let config = { Server.default_config with max_body_bytes = 1024 } in
        with_server ~config service (fun server ->
            let port = Server.port server in
            (* head past the 16 KiB cap: 431, not 413 *)
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let huge =
                  "GET /healthz HTTP/1.1\r\nX-Pad: "
                  ^ String.make 20_000 'a'
                  ^ "\r\n\r\n"
                in
                ignore (Unix.write_substring c.fd huge 0 (String.length huge));
                match Http.read_response c.creader with
                | Ok r ->
                    Alcotest.(check int) "oversized head" 431 r.Http.status;
                    Alcotest.(check (option string))
                      "431 closes the connection" (Some "close")
                      (Http.header "connection" r.Http.resp_headers)
                | Error _ -> Alcotest.fail "431 response unreadable");
            (* declared body past max_body_bytes: 413, answered from the
               head alone *)
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let r =
                  rpc c ~meth:"POST" ~path:"/predict" (String.make 4096 ' ')
                in
                Alcotest.(check int) "oversized body" 413 r.Http.status);
            (* the server survives both *)
            let q = (queries_of model 1).(0) in
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let r =
                  rpc c ~meth:"POST" ~path:"/predict"
                    (J.to_string (query_json q))
                in
                Alcotest.(check int) "still serving" 200 r.Http.status)));
    Alcotest.test_case "admission 503 is fully accounted in metrics" `Quick
      (fun () ->
        let service, model = make_world () in
        let q = (queries_of model 1).(0) in
        let config = { Server.default_config with max_connections = 1 } in
        with_server ~config service (fun server ->
            let port = Server.port server in
            let c1 = connect port in
            Fun.protect
              ~finally:(fun () -> close c1)
              (fun () ->
                (* second connection is past the soft cap: its request is
                   still read and answered 503 + close *)
                let c2 = connect port in
                Fun.protect
                  ~finally:(fun () -> close c2)
                  (fun () ->
                    let r =
                      rpc c2 ~meth:"POST" ~path:"/predict"
                        (J.to_string (query_json q))
                    in
                    Alcotest.(check int) "admission 503" 503 r.Http.status;
                    Alcotest.(check (option string))
                      "admission 503 carries Retry-After" (Some "1")
                      (Http.header "retry-after" r.Http.resp_headers);
                    Alcotest.(check (option string))
                      "admission 503 closes" (Some "close")
                      (Http.header "connection" r.Http.resp_headers));
                let m = rpc c1 ~meth:"GET" ~path:"/metrics" "" in
                Alcotest.(check int) "metrics still served" 200 m.Http.status;
                Alcotest.(check bool)
                  "503 hit the status counter" true
                  (has_substring m.Http.resp_body
                     "prom_http_requests_total{code=\"503\"} 1");
                (* the latency histogram observed it too — this was the
                   accounting bug in the old accept loop *)
                Alcotest.(check bool)
                  "503 hit the latency histogram" true
                  (has_substring m.Http.resp_body
                     "prom_http_request_seconds_count 1");
                Alcotest.(check bool)
                  "open-connections gauge exported" true
                  (has_substring m.Http.resp_body "prom_http_open_connections"))));
    Alcotest.test_case
      "1100 simultaneous keep-alive connections predict and drain" `Quick
      (fun () ->
        (* The point of the event loop: descriptors far past FD_SETSIZE
           (1024) — where the old select-based loop silently corrupted
           its fd_set — serve requests and drain like any other. *)
        let service, model = make_world () in
        let q = (queries_of model 1).(0) in
        let body = J.to_string (query_json q) in
        let direct = (Service.evaluate_batch service [| q |]).(0) in
        let n = 1100 in
        let config =
          {
            Server.default_config with
            max_connections = n + 64;
            queue_capacity = 4096;
          }
        in
        with_server ~config service (fun server ->
            let port = Server.port server in
            let conns = Array.init n (fun _ -> connect port) in
            Fun.protect
              ~finally:(fun () -> Array.iter close conns)
              (fun () ->
                (* a sample of connections — including the very last,
                   whose descriptor is well past 1024 — serve predicts
                   while the other thousand-plus sit idle *)
                let served = ref 0 in
                Array.iteri
                  (fun i c ->
                    if i mod 109 = 0 || i = n - 1 then begin
                      let r = rpc c ~meth:"POST" ~path:"/predict" body in
                      Alcotest.(check int)
                        (Printf.sprintf "status on conn %d" i)
                        200 r.Http.status;
                      check_verdict_json
                        (Printf.sprintf "conn %d" i)
                        direct (parse_body r);
                      incr served
                    end)
                  conns;
                Alcotest.(check bool)
                  "sampled across the fd range" true (!served >= 10);
                (* drain with 1100 connections still open: idle ones are
                   swept immediately, stop returns promptly *)
                Server.stop server;
                let eof =
                  match Unix.read conns.(0).fd (Bytes.create 1) 0 1 with
                  | 0 -> true
                  | _ -> false
                  | exception
                      Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                      true
                in
                Alcotest.(check bool) "drained idle conn closed" true eof)));
  ]

(* ---------- hot swap under live traffic ---------- *)

let swap_live_tests =
  [
    Alcotest.test_case
      "hot swap under live traffic: zero failures, bit-identical verdicts"
      `Quick (fun () ->
        let registry = Prom_obs.create_registry () in
        let telemetry = Telemetry.create registry in
        let service, model = make_world ~telemetry () in
        let dir = Filename.temp_dir "prom-server-test" "" in
        ignore (Snapshot.save ~dir (Service.snapshot service));
        let queries = queries_of model 4 in
        let direct = Service.evaluate_batch service queries in
        let bodies = Array.map (fun q -> J.to_string (query_json q)) queries in
        with_server ~telemetry ~snapshot_dir:dir service (fun server ->
            let port = Server.port server in
            let n_workers = 6 and n_reqs = 25 in
            let worker_err = Array.make n_workers None in
            let workers =
              Array.init n_workers (fun w ->
                  Thread.create
                    (fun () ->
                      try
                        let c = connect port in
                        Fun.protect
                          ~finally:(fun () -> close c)
                          (fun () ->
                            for k = 0 to n_reqs - 1 do
                              let j = k mod Array.length queries in
                              Http.write_request c.fd ~meth:"POST"
                                ~path:"/predict" bodies.(j);
                              match Http.read_response c.creader with
                              | Ok r when r.Http.status = 200 -> (
                                  match J.parse r.Http.resp_body with
                                  | Ok v ->
                                      let cred =
                                        Option.bind (J.member "credibility" v)
                                          J.to_float
                                      in
                                      if
                                        cred
                                        <> Some
                                             direct.(j).Detector
                                              .mean_credibility
                                      then
                                        worker_err.(w) <-
                                          Some "verdict drifted across swap"
                                  | Error e -> worker_err.(w) <- Some e)
                              | Ok r ->
                                  worker_err.(w) <-
                                    Some
                                      (Printf.sprintf "status %d" r.Http.status)
                              | Error _ ->
                                  worker_err.(w) <- Some "read error"
                            done)
                      with e -> worker_err.(w) <- Some (Printexc.to_string e))
                    ())
            in
            (* five hot swaps while the workers hammer /predict *)
            let admin = connect port in
            Fun.protect
              ~finally:(fun () -> close admin)
              (fun () ->
                for s = 1 to 5 do
                  let r = rpc admin ~meth:"POST" ~path:"/admin/swap" "" in
                  Alcotest.(check int) "swap status" 200 r.Http.status;
                  let v = parse_body r in
                  Alcotest.(check bool) "swapped" true (bfield "swapped" v);
                  Alcotest.(check int)
                    "swaps monotone" s
                    (int_of_float (ffield "swaps" v));
                  Thread.delay 0.05
                done);
            Array.iter Thread.join workers;
            Array.iteri
              (fun w err ->
                match err with
                | None -> ()
                | Some e ->
                    Alcotest.fail (Printf.sprintf "worker %d failed: %s" w e))
              worker_err;
            (* counters agree: five swaps, zero drops *)
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let h = rpc c ~meth:"GET" ~path:"/healthz" "" in
                Alcotest.(check int)
                  "healthz swaps" 5
                  (int_of_float (ffield "swaps" (parse_body h)));
                let m = rpc c ~meth:"GET" ~path:"/metrics" "" in
                Alcotest.(check bool)
                  "swap counter exported" true
                  (has_substring m.Http.resp_body "prom_service_swaps_total 5"))));
  ]

(* ---------- multi-tenant serving ---------- *)

let tenant_tests =
  [
    Alcotest.test_case
      "two tenants share batches, each bit-identical to its direct path" `Quick
      (fun () ->
        let registry = Prom_obs.create_registry () in
        let telemetry = Telemetry.create registry in
        let svc_a, model_a = make_world ~telemetry ~seed:23 () in
        let svc_b, model_b = make_world ~telemetry ~seed:41 () in
        let tenants = Tenant.create () in
        ignore (Tenant.register ~service:svc_b tenants "b");
        let qa = queries_of model_a 6 in
        let qb = queries_of ~seed:19 model_b 6 in
        let da = Service.evaluate_batch svc_a qa in
        let db = Service.evaluate_batch svc_b qb in
        (* slow the batcher down so concurrent requests from both
           tenants land in shared rounds *)
        with_server ~telemetry ~tenants
          ~before_batch:(fun () -> Thread.delay 0.02)
          svc_a
          (fun server ->
            let port = Server.port server in
            Alcotest.(check int)
              "registry holds b and default" 2
              (Tenant.count (Server.tenants server));
            let errs = Array.make 2 None in
            let worker w path queries direct =
              Thread.create
                (fun () ->
                  try
                    let c = connect port in
                    Fun.protect
                      ~finally:(fun () -> close c)
                      (fun () ->
                        for k = 0 to 17 do
                          let j = k mod Array.length queries in
                          let r =
                            rpc c ~meth:"POST" ~path
                              (J.to_string (query_json queries.(j)))
                          in
                          if r.Http.status <> 200 then
                            errs.(w) <-
                              Some (Printf.sprintf "status %d" r.Http.status)
                          else
                            check_verdict_json
                              (Printf.sprintf "%s %d" path j)
                              direct.(j) (parse_body r)
                        done)
                  with e -> errs.(w) <- Some (Printexc.to_string e))
                ()
            in
            let ta = worker 0 "/predict" qa da in
            let tb = worker 1 "/t/b/predict" qb db in
            Thread.join ta;
            Thread.join tb;
            Array.iter
              (function
                | None -> ()
                | Some e -> Alcotest.fail ("tenant worker failed: " ^ e))
              errs;
            (* unprefixed routes are the default tenant *)
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let body = J.to_string (query_json qa.(0)) in
                let plain = rpc c ~meth:"POST" ~path:"/predict" body in
                let routed =
                  rpc c ~meth:"POST" ~path:"/t/default/predict" body
                in
                Alcotest.(check int) "routed status" 200 routed.Http.status;
                check_bits "unprefixed = /t/default"
                  (ffield "credibility" (parse_body plain))
                  (ffield "credibility" (parse_body routed));
                let m = rpc c ~meth:"GET" ~path:"/metrics" "" in
                (match Prom_obs.validate_exposition m.Http.resp_body with
                | Ok () -> ()
                | Error e -> Alcotest.fail ("invalid exposition: " ^ e));
                let text = m.Http.resp_body in
                Alcotest.(check bool)
                  "per-tenant request counter" true
                  (has_substring text
                     "prom_http_requests_total{code=\"200\",tenant=\"b\"}");
                Alcotest.(check bool)
                  "per-tenant batch share" true
                  (has_substring text "prom_tenant_batch_share{tenant=\"b\"}");
                Alcotest.(check bool)
                  "per-tenant queue gauge" true
                  (has_substring text
                     "prom_tenant_queue_depth{tenant=\"default\"}"))));
    Alcotest.test_case "invalid, traversal and unknown tenant paths answer 404"
      `Quick (fun () ->
        let service, _ = make_world () in
        let tenants = Tenant.create () in
        let svc_b, _ = make_world ~seed:41 () in
        ignore (Tenant.register ~service:svc_b tenants "b");
        with_server ~tenants service (fun server ->
            let c = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                List.iter
                  (fun path ->
                    let r = rpc c ~meth:"POST" ~path "{}" in
                    Alcotest.(check int) (path ^ " is 404") 404 r.Http.status)
                  [
                    "/t/../predict";
                    "/t/./predict";
                    "/t/%2e%2e/predict";
                    "/t/a.b/predict";
                    "/t//predict";
                    "/t/" ^ String.make 65 'a' ^ "/predict";
                    "/t/zzz/predict";
                    "/t/b/nope";
                  ];
                let mna = rpc c ~meth:"GET" ~path:"/t/b/predict" "" in
                Alcotest.(check int) "tenant predict GET is 405" 405
                  mna.Http.status;
                let h = rpc c ~meth:"GET" ~path:"/t/b/healthz" "" in
                Alcotest.(check int) "tenant healthz" 200 h.Http.status;
                let hv = parse_body h in
                Alcotest.(check string) "tenant name" "b" (sfield "tenant" hv);
                Alcotest.(check string)
                  "tenant state" "ready" (sfield "state" hv))));
    Alcotest.test_case
      "swap: empty snapshot dir answers 503 retryable, no dir answers 409"
      `Quick (fun () ->
        let service, _ = make_world () in
        let tenants = Tenant.create () in
        let svc_c, _ = make_world ~seed:29 () in
        let svc_d, _ = make_world ~seed:31 () in
        let empty = Filename.temp_dir "prom-tenant-empty" "" in
        ignore (Tenant.register ~snapshot_dir:empty ~service:svc_c tenants "c");
        ignore (Tenant.register ~service:svc_d tenants "d");
        with_server ~tenants service (fun server ->
            let c = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                (* no loadable generation yet: retryable, a writer may
                   land one any moment — 503, not 500 *)
                let r = rpc c ~meth:"POST" ~path:"/t/c/admin/swap" "" in
                Alcotest.(check int) "empty dir swap" 503 r.Http.status;
                Alcotest.(check (option string))
                  "empty dir swap carries Retry-After" (Some "1")
                  (Http.header "retry-after" r.Http.resp_headers);
                Alcotest.(check bool)
                  "error mentions the directory" true
                  (has_substring r.Http.resp_body "no loadable snapshot");
                (* no snapshot directory configured at all: not retryable *)
                let r = rpc c ~meth:"POST" ~path:"/t/d/admin/swap" "" in
                Alcotest.(check int) "no dir swap" 409 r.Http.status;
                (* a generation lands; the same swap now succeeds *)
                ignore (Snapshot.save ~dir:empty (Service.snapshot svc_c));
                let r = rpc c ~meth:"POST" ~path:"/t/c/admin/swap" "" in
                Alcotest.(check int) "swap after save" 200 r.Http.status;
                Alcotest.(check string)
                  "swap names its tenant" "c"
                  (sfield "tenant" (parse_body r)))));
    Alcotest.test_case
      "hot-swap of one tenant under live traffic on another: zero failures"
      `Quick (fun () ->
        let service, model = make_world () in
        let svc_b, _ = make_world ~seed:41 () in
        let dir = Filename.temp_dir "prom-tenant-swap" "" in
        ignore (Snapshot.save ~dir (Service.snapshot svc_b));
        let tenants = Tenant.create () in
        ignore (Tenant.register ~snapshot_dir:dir ~service:svc_b tenants "b");
        let queries = queries_of model 4 in
        let direct = Service.evaluate_batch service queries in
        let bodies = Array.map (fun q -> J.to_string (query_json q)) queries in
        with_server ~tenants service (fun server ->
            let port = Server.port server in
            let n_workers = 4 and n_reqs = 20 in
            let worker_err = Array.make n_workers None in
            let workers =
              Array.init n_workers (fun w ->
                  Thread.create
                    (fun () ->
                      try
                        let c = connect port in
                        Fun.protect
                          ~finally:(fun () -> close c)
                          (fun () ->
                            for k = 0 to n_reqs - 1 do
                              let j = k mod Array.length queries in
                              Http.write_request c.fd ~meth:"POST"
                                ~path:"/predict" bodies.(j);
                              match Http.read_response c.creader with
                              | Ok r when r.Http.status = 200 ->
                                  let cred =
                                    ffield "credibility" (parse_body r)
                                  in
                                  if
                                    bits cred
                                    <> bits direct.(j).Detector.mean_credibility
                                  then
                                    worker_err.(w) <-
                                      Some "verdict drifted during tenant swap"
                              | Ok r ->
                                  worker_err.(w) <-
                                    Some
                                      (Printf.sprintf "status %d" r.Http.status)
                              | Error _ -> worker_err.(w) <- Some "read error"
                            done)
                      with e -> worker_err.(w) <- Some (Printexc.to_string e))
                    ())
            in
            let admin = connect port in
            Fun.protect
              ~finally:(fun () -> close admin)
              (fun () ->
                for s = 1 to 3 do
                  let r = rpc admin ~meth:"POST" ~path:"/t/b/admin/swap" "" in
                  Alcotest.(check int) "tenant swap status" 200 r.Http.status;
                  let v = parse_body r in
                  Alcotest.(check string) "swapped tenant" "b"
                    (sfield "tenant" v);
                  Alcotest.(check int)
                    "tenant swaps monotone" s
                    (int_of_float (ffield "swaps" v));
                  Thread.delay 0.03
                done);
            Array.iter Thread.join workers;
            Array.iteri
              (fun w err ->
                match err with
                | None -> ()
                | Some e ->
                    Alcotest.fail (Printf.sprintf "worker %d failed: %s" w e))
              worker_err;
            let c = connect port in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                let h = rpc c ~meth:"GET" ~path:"/t/b/healthz" "" in
                Alcotest.(check int)
                  "tenant swaps surfaced in healthz" 3
                  (int_of_float (ffield "swaps" (parse_body h)));
                let m = rpc c ~meth:"GET" ~path:"/metrics" "" in
                Alcotest.(check bool)
                  "tenant swap counter exported" true
                  (has_substring m.Http.resp_body
                     "prom_tenant_swaps_total{tenant=\"b\"} 3"))));
  ]

let suite =
  [
    ("server.batcher", batcher_tests);
    ("server.http", http_tests);
    ("server.e2e", e2e_tests);
    ("server.swap_live", swap_live_tests);
    ("server.tenants", tenant_tests);
  ]
